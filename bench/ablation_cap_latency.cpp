// Ablation: cap-application latency and steady-state convergence (§V:
// "documentation on granularities of power capping, error bounds, and
// steady state convergence is sparse in the public domain"). We make the
// missing documentation: with firmware settle latencies injected into the
// AC922 model, measure how long a node takes from "cap write issued" to
// "draw within 2% of its converged value", and how a dynamic manager's
// control loop interacts with slow caps.
#include <iostream>

#include "bench/common.hpp"
#include "hwsim/ibm_ac922.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

using namespace fluxpower;

namespace {

/// Time from cap write to draw settling within 2% of final, under a
/// GEMM-like steady demand.
double convergence_time_s(double node_latency_s, double gpu_latency_s,
                          bool via_node_dial) {
  sim::Simulation sim;
  hwsim::IbmAc922Config hw;
  hw.node_cap_latency_s = node_latency_s;
  hw.gpu_cap_latency_s = gpu_latency_s;
  hwsim::IbmAc922Node node(sim, "n0", hw);
  hwsim::LoadDemand demand;
  demand.cpu_w = {110, 110};
  demand.gpu_w = {280, 280, 280, 280};
  demand.mem_w = 70;
  node.set_demand(demand);
  sim.run_until(10.0);

  const double t0 = sim.now();
  if (via_node_dial) {
    node.set_node_power_cap(1200.0);
  } else {
    for (int g = 0; g < 4; ++g) node.set_gpu_power_cap(g, 150.0);
  }
  // Sample the draw on a fine grid until stable.
  double converged_at = -1.0;
  double final_draw = 0.0;
  sim.run_until(t0 + std::max(node_latency_s, gpu_latency_s) + 5.0);
  final_draw = node.node_draw_w();
  // Replay: rerun and detect first time within 2% of final.
  sim::Simulation sim2;
  hwsim::IbmAc922Node node2(sim2, "n1", hw);
  node2.set_demand(demand);
  sim2.run_until(10.0);
  if (via_node_dial) {
    node2.set_node_power_cap(1200.0);
  } else {
    for (int g = 0; g < 4; ++g) node2.set_gpu_power_cap(g, 150.0);
  }
  for (double t = 0.0; t <= std::max(node_latency_s, gpu_latency_s) + 5.0;
       t += 0.05) {
    sim2.run_until(10.0 + t);
    if (std::abs(node2.node_draw_w() - final_draw) <= 0.02 * final_draw) {
      converged_at = t;
      break;
    }
  }
  return converged_at;
}

}  // namespace

int main() {
  bench::banner("Ablation: cap latency & convergence",
                "time from cap write to steady state (AC922 model)");
  util::TextTable table({"dial", "firmware latency s", "convergence s"});
  for (double latency : {0.0, 0.2, 1.0, 2.0, 5.0}) {
    table.add_row({"OPAL node cap", bench::num(latency, 1),
                   bench::num(convergence_time_s(latency, 0.0, true), 2)});
    table.add_row({"NVML per-GPU", bench::num(latency, 1),
                   bench::num(convergence_time_s(0.0, latency, false), 2)});
  }
  table.print(std::cout);
  bench::note(
      "in the model convergence equals the injected firmware latency (the "
      "power step is instantaneous once applied). The operational "
      "consequence: a manager whose control period is shorter than the "
      "firmware latency reads pre-write power and oscillates — the paper's "
      "argument for documented convergence bounds. FPP's 90 s interval is "
      "safely above any of these latencies.");
  return 0;
}
