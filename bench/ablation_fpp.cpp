// Ablation: FPP parameter space the paper explicitly defers to future work
// (§IV-D): "We also did not explore FPP parameters, such as the power
// capping interval (90 seconds) or the ranges for power caps (50 W
// reduction, 10-25 W steps)". We sweep the control interval, the probe
// depth, and the period estimator, on the Table IV workload, reporting
// GEMM runtime/energy so the trade-off surface is visible.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct Outcome {
  double gemm_t, gemm_kj, qs_t, qs_kj;
};

Outcome run_fpp(double interval_s, double p_reduce, dsp::PeriodMethod method) {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::Fpp;
  cfg.manager.fpp.powercap_time_s = interval_s;
  cfg.manager.fpp.fft_update_s = interval_s / 3.0;
  cfg.manager.fpp.p_reduce_w = p_reduce;
  cfg.manager.fpp.period_method = method;
  Scenario s(cfg);
  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 2.0;
  auto gid = s.submit(gemm);
  JobRequest qs;
  qs.kind = apps::AppKind::Quicksilver;
  qs.nnodes = 2;
  qs.work_scale = 27.5;
  auto qid = s.submit(qs);
  auto res = s.run();
  return {res.job(gid).runtime_s, res.job(gid).exact_avg_node_energy_j / 1e3,
          res.job(qid).runtime_s, res.job(qid).exact_avg_node_energy_j / 1e3};
}

const char* method_name(dsp::PeriodMethod m) {
  switch (m) {
    case dsp::PeriodMethod::HannPeriodogram: return "hann-periodogram";
    case dsp::PeriodMethod::RawPeriodogram: return "raw-periodogram";
    case dsp::PeriodMethod::Autocorrelation: return "autocorrelation";
    case dsp::PeriodMethod::WelchPeriodogram: return "welch";
  }
  return "?";
}

}  // namespace

int main() {
  bench::banner("Ablation: FPP parameters",
                "control interval x probe depth x period estimator "
                "(Table IV workload)");

  util::TextTable table({"interval s", "P_reduce W", "estimator", "GEMM t s",
                         "GEMM kJ", "QS t s", "QS kJ"});

  for (double interval : {45.0, 90.0, 180.0}) {
    for (double reduce : {25.0, 50.0, 75.0}) {
      const Outcome o =
          run_fpp(interval, reduce, dsp::PeriodMethod::HannPeriodogram);
      table.add_row({bench::num(interval, 0), bench::num(reduce, 0),
                     "hann-periodogram", bench::num(o.gemm_t, 0),
                     bench::num(o.gemm_kj, 0), bench::num(o.qs_t, 0),
                     bench::num(o.qs_kj, 0)});
    }
  }
  for (dsp::PeriodMethod m : {dsp::PeriodMethod::RawPeriodogram,
                              dsp::PeriodMethod::Autocorrelation,
                              dsp::PeriodMethod::WelchPeriodogram}) {
    const Outcome o = run_fpp(90.0, 50.0, m);
    table.add_row({"90", "50", method_name(m), bench::num(o.gemm_t, 0),
                   bench::num(o.gemm_kj, 0), bench::num(o.qs_t, 0),
                   bench::num(o.qs_kj, 0)});
  }
  table.print(std::cout);
  bench::note(
      "paper defaults are interval=90 s, P_reduce=50 W, FFT periodogram; "
      "shorter intervals probe more often (more savings AND more risk), "
      "deeper probes hurt compute-bound GEMM more.");
  return 0;
}
