// Ablation: synchronized vs staggered FPP probing.
//
// Probing one GPU at a time looks gentler than dropping all four caps at
// once — but a single-GPU −50 W probe slows the bulk-synchronous
// application by only a few percent, so the FFT sees |ΔT| under the 2 s
// convergence threshold and the caps could ratchet down one GPU at a time.
// Measured outcome: the opposite failure mode — staggering divides each
// controller's decision rate by the GPU count (one decision per 360 s on a
// 4-GPU node), so jobs finish before most controllers ever probe; the
// policy degenerates toward plain proportional sharing (fewer probes,
// shallower caps). Either way the lesson stands: per-device controllers
// fed by a single bulk-synchronous signal are cadence-sensitive, and
// synchronized actuation at the documented 90 s interval is the sane
// default.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "manager/power_manager.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct Outcome {
  double gemm_t, gemm_kj;
  double min_cap_w = 1e9;
};

Outcome run(bool stagger) {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::Fpp;
  cfg.manager.fpp.stagger_probes = stagger;
  Scenario s(cfg);
  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 2.0;
  const flux::JobId gid = s.submit(gemm);
  JobRequest qs;
  qs.kind = apps::AppKind::Quicksilver;
  qs.nnodes = 2;
  qs.work_scale = 27.5;
  s.submit(qs);

  Outcome out{};
  // Track the deepest per-GPU cap ever applied on a GEMM node.
  sim::PeriodicTask probe(s.sim(), 10.0, [&s, &out] {
    for (int g = 0; g < 4; ++g) {
      const auto cap = s.cluster().node(0).gpu_power_cap(g);
      if (cap) out.min_cap_w = std::min(out.min_cap_w, *cap);
    }
    return true;
  });
  auto res = s.run();
  out.gemm_t = res.job(gid).runtime_s;
  out.gemm_kj = res.job(gid).exact_avg_node_energy_j / 1e3;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation: FPP probe synchronization",
                "all-GPU probes vs one-GPU-per-round (Table IV workload)");
  util::TextTable table({"probing", "GEMM t s", "GEMM kJ/node",
                         "deepest GPU cap W"});
  for (bool stagger : {false, true}) {
    const Outcome o = run(stagger);
    table.add_row({stagger ? "staggered (1 GPU/round)" : "synchronized",
                   bench::num(o.gemm_t, 0), bench::num(o.gemm_kj, 0),
                   bench::num(o.min_cap_w, 0)});
  }
  table.print(std::cout);
  bench::note(
      "measured: staggering slows each controller's decision rate by the "
      "device count, so most GPUs never complete a probe cycle before the "
      "job ends — shallower caps, behavior collapses toward proportional "
      "sharing. Control cadence, not just step size, is an FPP parameter.");
  return 0;
}
