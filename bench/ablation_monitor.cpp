// Ablation: monitor sampling period vs overhead, energy-estimate accuracy
// and buffer coverage. The paper fixes a 2 s period and a 100,000-sample
// buffer (~2.3 days of coverage); this sweep shows the trade-off that
// motivates those defaults — faster sampling costs application time and
// shortens buffer coverage, slower sampling degrades the trapezoidal
// energy estimate on phase-heavy applications.
//
// A second section ablates the telemetry data plane itself: the same
// window query is issued over the typed protocol (PowerSample structs
// end-to-end) and the legacy JSON protocol (render at the node-agent,
// parse at the client), comparing host wall-clock per query and per-sample
// buffer memory.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "monitor/client.hpp"
#include "variorum/variorum.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  bench::banner("Ablation: monitor sampling period",
                "overhead vs accuracy vs buffer coverage (Quicksilver, 2 "
                "nodes, Lassen)");
  util::TextTable table({"period s", "runtime s", "overhead % vs no-monitor",
                         "energy est err %", "buffer covers (days)"});

  // Baseline without the monitor.
  const double base_t =
      run_single_job(hwsim::Platform::LassenIbmAc922, apps::AppKind::Quicksilver,
                     2, 27.5, /*with_monitor=*/false)
          .result.runtime_s;

  for (double period : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    ScenarioConfig cfg;
    cfg.nodes = 2;
    monitor::PowerMonitorConfig mcfg = monitor::PowerMonitorConfig::for_lassen();
    mcfg.sample_period_s = period;
    cfg.monitor = mcfg;
    Scenario s(cfg);
    JobRequest req;
    req.kind = apps::AppKind::Quicksilver;
    req.nnodes = 2;
    req.work_scale = 27.5;
    const flux::JobId id = s.submit(req);
    auto res = s.run();
    const JobResult& job = res.job(id);

    const double overhead = (job.runtime_s - base_t) / base_t * 100.0;
    const double err = (job.avg_node_energy_j - job.exact_avg_node_energy_j) /
                       job.exact_avg_node_energy_j * 100.0;
    const double coverage_days = 100000.0 * period / 86400.0;
    table.add_row({bench::num(period, 1), bench::num(job.runtime_s, 1),
                   bench::num(overhead, 2), bench::num(err, 2),
                   bench::num(coverage_days, 2)});
  }
  table.print(std::cout);
  bench::note(
      "the paper's 2 s / 100k-sample default sits where overhead is ~0.4%, "
      "the 2 s trapezoid tracks exact energy within a few percent, and the "
      "circular buffer covers multi-day jobs.");

  bench::banner("Ablation: telemetry data plane",
                "typed PowerSample end-to-end vs JSON at every layer (8 "
                "nodes, Lassen, full-window queries)");
  util::TextTable plane({"data plane", "host us/query", "samples/query",
                         "per-sample bytes"});
  double json_us = 0.0, typed_us = 0.0;
  for (const bool typed : {false, true}) {
    ScenarioConfig cfg;
    cfg.nodes = 8;
    cfg.monitor = monitor::PowerMonitorConfig::for_lassen();
    Scenario s(cfg);
    s.sim().run_until(400.0);  // ~200 samples per node in the buffers
    monitor::MonitorClient client(s.instance());
    client.set_typed_protocol(typed);
    std::vector<flux::Rank> ranks;
    for (int i = 0; i < cfg.nodes; ++i) ranks.push_back(i);

    std::size_t samples = 0;
    const int reps = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      auto window = client.query_window_blocking(ranks, 0.0, 400.0);
      samples = 0;
      if (window) {
        for (const auto& n : window->nodes) samples += n.samples.size();
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double us_per_query =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
    (typed ? typed_us : json_us) = us_per_query;

    // Per-sample memory in the node-agent's ring buffer.
    sim::Simulation probe_sim;
    hwsim::IbmAc922Node probe(probe_sim, "lassen0");
    const std::size_t per_sample =
        typed ? sizeof(hwsim::PowerSample)
              : variorum::get_node_power_json(probe).dump().size();
    // Host wall-clock is nondeterministic: the column renders "-" unless
    // FLUXPOWER_HOST_TIMING=1, keeping default stdout byte-stable.
    plane.add_row({typed ? "typed (PowerSample)" : "JSON (legacy)",
                   bench::host_us(us_per_query),
                   std::to_string(samples), std::to_string(per_sample)});
  }
  plane.print(std::cout);
  if (bench::host_timing_enabled() && typed_us > 0.0) {
    bench::note("typed data plane speedup over JSON: " +
                bench::num(json_us / typed_us, 2) + "x per query");
  }
  return 0;
}
