// Ablation: monitor sampling period vs overhead, energy-estimate accuracy
// and buffer coverage. The paper fixes a 2 s period and a 100,000-sample
// buffer (43.4 MB, ~2.3 days of coverage); this sweep shows the trade-off
// that motivates those defaults — faster sampling costs application time
// and shortens buffer coverage, slower sampling degrades the trapezoidal
// energy estimate on phase-heavy applications.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "monitor/client.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  bench::banner("Ablation: monitor sampling period",
                "overhead vs accuracy vs buffer coverage (Quicksilver, 2 "
                "nodes, Lassen)");
  util::TextTable table({"period s", "runtime s", "overhead % vs no-monitor",
                         "energy est err %", "buffer covers (days)"});

  // Baseline without the monitor.
  const double base_t =
      run_single_job(hwsim::Platform::LassenIbmAc922, apps::AppKind::Quicksilver,
                     2, 27.5, /*with_monitor=*/false)
          .result.runtime_s;

  for (double period : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    ScenarioConfig cfg;
    cfg.nodes = 2;
    monitor::PowerMonitorConfig mcfg = monitor::PowerMonitorConfig::for_lassen();
    mcfg.sample_period_s = period;
    cfg.monitor = mcfg;
    Scenario s(cfg);
    JobRequest req;
    req.kind = apps::AppKind::Quicksilver;
    req.nnodes = 2;
    req.work_scale = 27.5;
    const flux::JobId id = s.submit(req);
    auto res = s.run();
    const JobResult& job = res.job(id);

    const double overhead = (job.runtime_s - base_t) / base_t * 100.0;
    const double err = (job.avg_node_energy_j - job.exact_avg_node_energy_j) /
                       job.exact_avg_node_energy_j * 100.0;
    const double coverage_days = 100000.0 * period / 86400.0;
    table.add_row({bench::num(period, 1), bench::num(job.runtime_s, 1),
                   bench::num(overhead, 2), bench::num(err, 2),
                   bench::num(coverage_days, 2)});
  }
  table.print(std::cout);
  bench::note(
      "the paper's 2 s / 100k-sample default sits where overhead is ~0.4%, "
      "the 2 s trapezoid tracks exact energy within a few percent, and the "
      "circular buffer covers multi-day jobs.");
  return 0;
}
