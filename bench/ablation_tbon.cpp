// Ablation: TBON fanout vs telemetry aggregation latency and message
// traffic. The paper's scalability rests on the tree overlay; this bench
// quantifies the root-agent's job-query latency (fan-out RPC to every
// node-agent of a job) for cluster sizes up to Lassen scale (792 nodes)
// under different fanouts, plus messages routed.
#include <iostream>

#include "bench/common.hpp"
#include "flux/instance.hpp"
#include "hwsim/cluster.hpp"
#include "monitor/client.hpp"
#include "monitor/power_monitor.hpp"

using namespace fluxpower;

namespace {

struct Outcome {
  double query_latency_ms;
  std::uint64_t messages;
  std::uint64_t root_fan_in;  ///< messages received by the root broker
  int tree_height;
};

Outcome run(int nodes, int fanout, bool tree_aggregation) {
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, nodes);
  std::vector<hwsim::Node*> ptrs;
  for (int i = 0; i < nodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::InstanceConfig icfg;
  icfg.tbon_fanout = fanout;
  flux::Instance instance(sim, std::move(ptrs), icfg);
  instance.jobs().set_launcher(nullptr);
  monitor::PowerMonitorConfig mcfg = monitor::PowerMonitorConfig::for_lassen();
  mcfg.tree_aggregation = tree_aggregation;
  instance.load_module_on_all<monitor::PowerMonitorModule>(mcfg);

  // A whole-cluster job that completes instantly; then query its window.
  flux::JobSpec spec;
  spec.name = "probe";
  spec.app = "probe";
  spec.nnodes = nodes;
  const flux::JobId id = instance.jobs().submit(spec);
  sim.run_until(10.0);  // accumulate a few samples

  const std::uint64_t routed_before = instance.messages_routed();
  const std::uint64_t root_rx_before = instance.root().messages_received();
  const double t0 = sim.now();
  monitor::MonitorClient client(instance);
  double t_done = -1.0;
  client.query(id, [&](auto, auto) { t_done = sim.now(); });
  while (t_done < 0.0 && sim.step()) {
  }
  return {(t_done - t0) * 1e3, instance.messages_routed() - routed_before,
          instance.root().messages_received() - root_rx_before,
          instance.tbon().height()};
}

}  // namespace

int main() {
  bench::banner("Ablation: TBON fanout x aggregation strategy",
                "whole-cluster telemetry query latency and root fan-in");
  util::TextTable table({"nodes", "fanout", "height", "aggregation",
                         "latency ms", "messages", "root fan-in"});
  for (int nodes : {16, 64, 256, 792}) {
    for (int fanout : {2, 4, 16}) {
      for (bool tree : {false, true}) {
        const Outcome o = run(nodes, fanout, tree);
        table.add_row({std::to_string(nodes), std::to_string(fanout),
                       std::to_string(o.tree_height),
                       tree ? "tree-reduce" : "root fan-out",
                       bench::num(o.query_latency_ms, 3),
                       std::to_string(o.messages),
                       std::to_string(o.root_fan_in)});
      }
    }
  }
  table.print(std::cout);
  bench::note(
      "root fan-out receives one response per node at the root (fan-in ~N); "
      "tree reduction bounds every broker's fan-in by the fanout and merges "
      "on the way up — the scalability property the paper's TBON design "
      "provides. 792 nodes is Lassen's full size.");
  return 0;
}
