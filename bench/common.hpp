// common.hpp — shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the measured quantity from the simulator next to
// (b) the value the paper reports, so running `for b in build/bench/*` gives
// a complete paper-vs-measured readout. Absolute agreement is not expected
// (the substrate is a simulator); the *shape* — who wins, rough factors,
// crossovers — is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace fluxpower::bench {

/// Optional observability dump, gated entirely on the environment:
///   FLUXPOWER_METRICS_OUT=<path>  — write the process registry's Prometheus
///                                   text exposition at exit.
///   FLUXPOWER_TRACE_OUT=<path>    — enable the process trace sink and write
///                                   Chrome trace-event JSON at exit.
/// With neither variable set this is a no-op: nothing is enabled, nothing
/// is written, and bench stdout stays byte-identical. Output goes to files
/// only — never stdout — so enabling it cannot perturb the readouts either.
inline void obs_init_from_env() {
  static bool initialised = false;
  if (initialised) return;
  initialised = true;
  const char* metrics_out = std::getenv("FLUXPOWER_METRICS_OUT");
  const char* trace_out = std::getenv("FLUXPOWER_TRACE_OUT");
  if (metrics_out == nullptr && trace_out == nullptr) return;
  if (trace_out != nullptr) obs::process_trace().set_enabled(true);
  // Leak-free static storage for the atexit hook's paths.
  static std::string metrics_path, trace_path;
  if (metrics_out != nullptr) metrics_path = metrics_out;
  if (trace_out != nullptr) trace_path = trace_out;
  std::atexit([] {
    if (!metrics_path.empty()) {
      if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
        const std::string text = obs::process_registry().expose_text();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      }
    }
    if (!trace_path.empty()) {
      if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
        const std::string json = obs::process_trace().to_chrome_json().dump();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      }
    }
  });
}

inline void banner(const std::string& id, const std::string& title) {
  obs_init_from_env();
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

inline std::string num(double v, int precision = 2) {
  return util::TextTable::num(v, precision);
}

/// Host wall-clock readouts are a side channel, gated entirely on the
/// environment: FLUXPOWER_HOST_TIMING=1 prints real microseconds; unset,
/// the affected cells render "-" so bench stdout stays byte-identical
/// run-to-run (the CI byte-diff lanes depend on that).
inline bool host_timing_enabled() {
  const char* v = std::getenv("FLUXPOWER_HOST_TIMING");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// A host wall-clock cell: the measured value with timing enabled, "-"
/// (deterministic) otherwise.
inline std::string host_us(double us, int precision = 1) {
  return host_timing_enabled() ? num(us, precision) : std::string("-");
}

/// "measured (paper X)" cell.
inline std::string vs(double measured, double paper, int precision = 2) {
  return num(measured, precision) + " (" + num(paper, precision) + ")";
}

inline std::string vs_str(double measured, const std::string& paper,
                          int precision = 2) {
  return num(measured, precision) + " (" + paper + ")";
}

}  // namespace fluxpower::bench
