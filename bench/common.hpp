// common.hpp — shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the measured quantity from the simulator next to
// (b) the value the paper reports, so running `for b in build/bench/*` gives
// a complete paper-vs-measured readout. Absolute agreement is not expected
// (the substrate is a simulator); the *shape* — who wins, rough factors,
// crossovers — is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>

#include "util/table.hpp"

namespace fluxpower::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

inline std::string num(double v, int precision = 2) {
  return util::TextTable::num(v, precision);
}

/// "measured (paper X)" cell.
inline std::string vs(double measured, double paper, int precision = 2) {
  return num(measured, precision) + " (" + num(paper, precision) + ")";
}

inline std::string vs_str(double measured, const std::string& paper,
                          int precision = 2) {
  return num(measured, precision) + " (" + paper + ")";
}

}  // namespace fluxpower::bench
