// Extension: converged-computing site coordination (paper future work,
// §VI: "studying diverse job queues in converged computing setups").
//
// One facility budget (20 kW) feeds two independent Flux instances: an
// 8-node HPC partition running long MPI jobs and a 8-node cloud partition
// running short bursty jobs. The SiteCoordinator reads each instance's
// power-manager status every 15 s and re-apportions the budget by demand;
// each instance's own proportional-sharing manager then splits its share
// across jobs. The timeline shows power following the load across
// partitions.
#include <iostream>
#include <stdexcept>

#include "apps/launcher.hpp"
#include "bench/common.hpp"
#include "hwsim/cluster.hpp"
#include "manager/power_manager.hpp"
#include "manager/site_coordinator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace fluxpower;

namespace {

struct Site {
  std::string name;
  hwsim::Cluster cluster;
  std::unique_ptr<flux::Instance> instance;
};

std::unique_ptr<Site> make_site(sim::Simulation& sim, const std::string& name,
                                int nodes) {
  auto site = std::make_unique<Site>();
  site->name = name;
  site->cluster = hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922,
                                      nodes, name);
  std::vector<hwsim::Node*> ptrs;
  for (int i = 0; i < nodes; ++i) ptrs.push_back(&site->cluster.node(i));
  site->instance = std::make_unique<flux::Instance>(sim, std::move(ptrs));
  site->instance->jobs().set_launcher(apps::make_launcher(
      {.platform = hwsim::Platform::LassenIbmAc922}));
  manager::PowerManagerConfig cfg;
  cfg.cluster_power_bound_w = 2000.0;  // placeholder until coordinated
  cfg.node_policy = manager::NodePolicy::DirectGpuBudget;
  site->instance->load_module_on_all<manager::PowerManagerModule>(cfg);
  return site;
}

void submit(Site& site, apps::AppKind kind, int nnodes, double scale) {
  flux::JobSpec spec;
  spec.name = apps::app_kind_name(kind);
  spec.app = apps::app_kind_name(kind);
  spec.nnodes = nnodes;
  spec.attributes = util::Json::object();
  spec.attributes["work_scale"] = scale;
  site.instance->jobs().submit(spec);
}

}  // namespace

int main() {
  bench::banner("Extension",
                "converged-computing site: one 20 kW budget over an HPC and "
                "a cloud partition");

  sim::Simulation sim;
  auto hpc = make_site(sim, "hpc", 8);
  auto cloud = make_site(sim, "cloud", 8);

  manager::SiteCoordinator coord(sim, 20000.0, 15.0);
  coord.add_member({"hpc", hpc->instance.get(), 3050.0, 2000.0});
  coord.add_member({"cloud", cloud->instance.get(), 3050.0, 2000.0});

  // HPC: one long GEMM campaign from t=0.
  sim.schedule_at(0.0, [&] { submit(*hpc, apps::AppKind::Gemm, 6, 2.2); });
  // Cloud: bursts of short jobs arriving between t=150 and t=400.
  util::Rng rng(7);
  double t = 150.0;
  while (t < 400.0) {
    sim.schedule_at(t, [&cloud] {
      submit(*cloud, apps::AppKind::Quicksilver, 2, 6.0);
      submit(*cloud, apps::AppKind::Laghos, 2, 8.0);
    });
    t += rng.uniform(60.0, 120.0);
  }

  util::TextTable table({"t (s)", "hpc bound W", "hpc draw W", "cloud bound W",
                         "cloud draw W", "site draw W"});
  auto bound_of = [](Site& s) {
    auto* mod = dynamic_cast<manager::PowerManagerModule*>(
        s.instance->broker(0).find_module("power-manager"));
    if (mod == nullptr) {
      throw std::runtime_error("ext_converged_site: site '" + s.name +
                               "' has no power-manager module loaded");
    }
    return mod->config().cluster_power_bound_w;
  };
  sim::PeriodicTask recorder(sim, 30.0, [&] {
    const double hw = hpc->cluster.total_draw_w();
    const double cw = cloud->cluster.total_draw_w();
    table.add_row({bench::num(sim.now(), 0), bench::num(bound_of(*hpc), 0),
                   bench::num(hw, 0), bench::num(bound_of(*cloud), 0),
                   bench::num(cw, 0), bench::num(hw + cw, 0)});
    return sim.now() < 700.0;
  });
  sim.run_until(720.0);
  table.print(std::cout);

  std::printf("rebalances performed: %d\n", coord.rebalances());
  bench::note(
      "shape: the HPC partition holds nearly the whole budget until the "
      "cloud burst arrives (~t=150 s); the coordinator shifts power to the "
      "cloud partition and returns it as bursts drain. Site draw stays "
      "under 20 kW throughout.");
  return 0;
}
