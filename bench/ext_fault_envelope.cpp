// Extension: the fault envelope — how far the §III stack degrades before
// it breaks. The paper's production argument (§V) is qualitative: vendor
// interfaces fail, so the framework must keep the bound and keep reporting.
// This bench quantifies it. A 12-node power-constrained mix (GEMM +
// Quicksilver under a 14.4 kW bound) runs against increasing deterministic
// fault weather — lossy TBON links, node crash/reboot cycles, sensor
// dropouts, failing cap writes — and the table reports, per level:
//   * bound overshoot: peak exact cluster draw vs the configured bound;
//   * telemetry coverage: responding / requested nodes per job query;
//   * the degradation machinery at work: cap-write retries, quarantined
//     ranks, sensor-faulted sweeps, dropped messages.
// Everything is driven by one seed; re-running prints a byte-identical
// table (the determinism contract of the fault plane).
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "manager/power_manager.hpp"
#include "monitor/client.hpp"
#include "util/table.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct FaultLevel {
  const char* name;
  faultsim::FaultPlaneConfig faults;
};

struct Outcome {
  double overshoot_pct = 0.0;
  double makespan_s = 0.0;
  std::size_t requested = 0;
  std::size_t responding = 0;
  std::uint64_t sensor_faults = 0;
  std::uint64_t msgs_lost = 0;
  std::uint64_t cap_failures = 0;
  std::uint64_t cap_retries = 0;
  std::uint64_t quarantine_events = 0;
  std::uint64_t crashes = 0;
};

constexpr double kBoundW = 14400.0;
constexpr int kNodes = 12;

Outcome run_level(const FaultLevel& level, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.nodes = kNodes;
  cfg.seed = seed;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = kBoundW;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  // Reconciliation on: crashed ranks are detected by their timeouts and
  // quarantined, instead of only being noticed at allocation events.
  cfg.manager.limit_refresh_s = 30.0;
  if (level.faults.msg_drop_rate > 0.0 || level.faults.node_mtbf_s > 0.0 ||
      level.faults.sensor_dropout_rate > 0.0 ||
      level.faults.cap_write_failure_rate > 0.0) {
    faultsim::FaultPlaneConfig f = level.faults;
    f.seed = seed;
    cfg.faults = f;
  }
  Scenario s(cfg);

  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 8;
  gemm.work_scale = 2.0;
  const flux::JobId gemm_id = s.submit(gemm);
  JobRequest qs;
  qs.kind = apps::AppKind::Quicksilver;
  qs.nnodes = 4;
  qs.work_scale = 15.0;
  const flux::JobId qs_id = s.submit(qs);

  ScenarioResult res = s.run(/*max_time_s=*/3600.0);

  Outcome out;
  out.overshoot_pct =
      std::max(0.0, res.max_cluster_power_w - kBoundW) / kBoundW * 100.0;
  out.makespan_s = res.makespan_s;

  monitor::MonitorClient client(s.instance());
  for (flux::JobId id : {gemm_id, qs_id}) {
    if (auto data = client.query_blocking(id)) {
      out.requested += data->requested_nodes();
      out.responding += data->responding_nodes();
    }
  }

  if (const faultsim::FaultPlane* plane = s.fault_plane()) {
    const faultsim::FaultCounters& c = plane->counters();
    out.sensor_faults = c.sensor_dropouts + c.sensor_stuck_sweeps;
    out.msgs_lost = c.msgs_dropped + c.msgs_blackholed;
    out.cap_failures = c.cap_write_failures;
    out.crashes = c.node_crashes;
  }
  for (int r = 0; r < s.instance().size(); ++r) {
    auto* pm = static_cast<manager::PowerManagerModule*>(
        s.instance().broker(r).find_module("power-manager"));
    if (pm != nullptr) out.cap_retries += pm->cap_retries();
  }
  auto* root_pm = static_cast<manager::PowerManagerModule*>(
      s.instance().root().find_module("power-manager"));
  if (root_pm != nullptr) out.quarantine_events = root_pm->quarantine_events();
  return out;
}

}  // namespace

int main() {
  bench::banner("EXT",
                "fault envelope: bound overshoot and telemetry coverage vs "
                "injected fault intensity");

  const std::uint64_t seed = 20260806;

  std::vector<FaultLevel> levels;
  levels.push_back({"none", {}});
  {
    faultsim::FaultPlaneConfig f;
    f.msg_drop_rate = 0.01;
    f.msg_dup_rate = 0.005;
    f.msg_delay_rate = 0.02;
    f.sensor_dropout_rate = 0.01;
    f.cap_write_failure_rate = 0.02;
    levels.push_back({"light", f});
  }
  {
    faultsim::FaultPlaneConfig f;
    f.msg_drop_rate = 0.05;
    f.msg_dup_rate = 0.01;
    f.msg_delay_rate = 0.05;
    f.node_mtbf_s = 3600.0;
    f.sensor_dropout_rate = 0.05;
    f.sensor_stuck_rate = 0.01;
    f.cap_write_failure_rate = 0.10;
    levels.push_back({"moderate", f});
  }
  {
    faultsim::FaultPlaneConfig f;
    f.msg_drop_rate = 0.15;
    f.msg_dup_rate = 0.03;
    f.msg_delay_rate = 0.10;
    f.node_mtbf_s = 900.0;
    f.node_reboot_s = 60.0;
    f.sensor_dropout_rate = 0.15;
    f.sensor_stuck_rate = 0.05;
    f.cap_write_failure_rate = 0.30;
    levels.push_back({"heavy", f});
  }

  util::TextTable table({"fault level", "overshoot %", "coverage",
                         "makespan s", "crashes", "msgs lost", "sensor faults",
                         "cap fails", "cap retries", "quarantined"});
  for (const FaultLevel& level : levels) {
    const Outcome o = run_level(level, seed);
    table.add_row({level.name, bench::num(o.overshoot_pct, 2),
                   std::to_string(o.responding) + "/" +
                       std::to_string(o.requested),
                   bench::num(o.makespan_s, 0), std::to_string(o.crashes),
                   std::to_string(o.msgs_lost),
                   std::to_string(o.sensor_faults),
                   std::to_string(o.cap_failures),
                   std::to_string(o.cap_retries),
                   std::to_string(o.quarantine_events)});
  }
  table.print(std::cout);
  bench::note(
      "coverage is responding/requested nodes over one post-run query per "
      "job; overshoot compares the peak exact cluster draw against the "
      "14.4 kW bound. The degradation machinery (cap-write backoff retries, "
      "root-level quarantine, partial aggregates) keeps the bound nearly "
      "intact and the telemetry denominator honest even under heavy "
      "weather; with zero fault rates the stack is byte-identical to a "
      "build without the fault plane.");
  return 0;
}
