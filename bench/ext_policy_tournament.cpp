// Extension: policy tournament over the policy plane.
//
// Every scheduler policy dispatches through the PolicyEngine by name and
// every node policy through its plugin, so this bench doubles as the
// plane's end-to-end exercise: 8 policy configurations (3 legacy scheduler
// policies, power-aware EASY, eco-mode, the PI degradation-bound node
// controller, plus FPP and progress node-policy combinations) scored on
// the three ext_queue_mixes archetypes under the same 16-node / 19.2 kW
// setup. Four scores per run:
//   * makespan — queue completion time;
//   * energy — exact meter joules;
//   * overshoot — cap-violation watt-seconds: sum over the 2 s cluster
//     timeline of max(0, draw - bound) * dt (how badly the bound leaked);
//   * fairness — per-job slowdown spread (max - min of runtime vs the
//     unconstrained FCFS baseline, keyed by submission index): a policy
//     that starves one job to speed the rest scores wide.
// Results also land in BENCH_policy.json for the CI bench-smoke lane.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

constexpr int kNodes = 16;
constexpr double kBoundW = 16 * 1200.0;

std::vector<apps::WorkloadJob> mix_queue(const std::string& archetype,
                                         std::uint64_t seed) {
  using apps::AppKind;
  std::vector<AppKind> kinds;
  if (archetype == "compute-heavy") {
    kinds = {AppKind::Gemm, AppKind::Gemm, AppKind::Lammps, AppKind::Lammps,
             AppKind::Gemm};
  } else if (archetype == "mixed") {
    kinds = {AppKind::Gemm, AppKind::Lammps, AppKind::Quicksilver,
             AppKind::Laghos, AppKind::Kripke, AppKind::Sw4lite};
  } else {  // cpu-heavy
    kinds = {AppKind::Laghos, AppKind::NQueens, AppKind::Laghos,
             AppKind::Quicksilver, AppKind::NQueens};
  }
  return apps::random_queue(seed, 10, 8, kinds);
}

/// One tournament entry: a scheduler policy (by plane name) plus a node
/// policy, and optional eco-mode enrollment of every submitted job.
struct Entrant {
  const char* label;
  const char* sched;  ///< PolicyEngine name
  manager::NodePolicy node;
  double eco_tolerance;  ///< > 0: every job enrolls with this tolerance
  bool report_progress;  ///< progress/pi-bound need job.progress events
};

struct Score {
  double makespan_s = 0.0;
  double energy_mj = 0.0;
  double overshoot_ws = 0.0;  ///< cap-violation watt-seconds
  double slowdown_spread = 0.0;
  double mean_slowdown = 0.0;
};

Score run(const std::string& archetype, const Entrant& e,
          const std::map<std::size_t, double>& baseline_runtimes,
          std::map<std::size_t, double>* record_runtimes) {
  // record_runtimes != nullptr marks the unconstrained baseline run (no
  // manager, plain FCFS); otherwise the entrant's full configuration runs.
  ScenarioConfig cfg;
  cfg.nodes = kNodes;
  if (record_runtimes == nullptr) {
    cfg.load_manager = true;
    cfg.manager.cluster_power_bound_w = kBoundW;
    cfg.manager.static_node_cap_w = 1950.0;
    cfg.manager.node_policy = e.node;
    cfg.sched_policy = e.sched;
    cfg.report_progress = e.report_progress;
  }
  Scenario s(cfg);
  double t = 0.0;
  std::size_t index = 0;
  std::map<flux::JobId, std::size_t> by_index;
  for (const apps::WorkloadJob& job : mix_queue(archetype, 777)) {
    t += job.submit_delay_s;
    JobRequest req;
    req.kind = job.kind;
    req.nnodes = job.nnodes;
    req.work_scale = job.work_scale;
    req.submit_time_s = t;
    if (record_runtimes == nullptr) req.eco_tolerance = e.eco_tolerance;
    by_index[s.submit(req)] = index++;
  }
  ScenarioResult res = s.run();

  Score score;
  score.makespan_s = res.makespan_s;
  score.energy_mj = res.total_energy_j / 1e6;
  double prev_t = -1.0;
  for (const auto& [ts, watts] : res.cluster_timeline) {
    if (prev_t >= 0.0 && watts > kBoundW) {
      score.overshoot_ws += (watts - kBoundW) * (ts - prev_t);
    }
    prev_t = ts;
  }
  util::RunningStats slow;
  for (const JobResult& j : res.jobs) {
    const std::size_t k = by_index.at(j.id);
    if (record_runtimes != nullptr) (*record_runtimes)[k] = j.runtime_s;
    if (!baseline_runtimes.empty()) {
      slow.add(j.runtime_s / baseline_runtimes.at(k));
    }
  }
  score.mean_slowdown = slow.count() ? slow.mean() : 1.0;
  score.slowdown_spread = slow.count() ? slow.max() - slow.min() : 0.0;
  return score;
}

}  // namespace

int main() {
  bench::banner("Extension: policy tournament",
                "every policy through the plane — makespan / energy / "
                "overshoot / fairness (16 nodes, 19.2 kW bound)");

  const std::vector<Entrant> entrants = {
      {"fcfs + prop", "fcfs", manager::NodePolicy::DirectGpuBudget, 0.0, false},
      {"easy-backfill + prop", "easy-backfill",
       manager::NodePolicy::DirectGpuBudget, 0.0, false},
      {"power-aware + prop", "power-aware",
       manager::NodePolicy::DirectGpuBudget, 0.0, false},
      {"power-aware-easy + prop", "power-aware-easy",
       manager::NodePolicy::DirectGpuBudget, 0.0, false},
      {"eco-mode 20% + prop", "eco-mode", manager::NodePolicy::DirectGpuBudget,
       0.2, false},
      {"fcfs + fpp", "fcfs", manager::NodePolicy::Fpp, 0.0, false},
      {"fcfs + progress", "fcfs", manager::NodePolicy::ProgressBased, 0.0,
       true},
      {"fcfs + pi-bound", "fcfs", manager::NodePolicy::PiBound, 0.0, true},
  };

  util::Json doc = util::Json::object();
  doc["bench"] = "ext_policy_tournament";
  doc["nodes"] = kNodes;
  doc["cluster_bound_w"] = kBoundW;
  util::Json archetypes = util::Json::array();

  util::TextTable table({"queue archetype", "policy", "makespan s",
                         "energy MJ", "overshoot Ws", "slowdown spread",
                         "mean slowdown"});
  for (const char* archetype : {"compute-heavy", "mixed", "cpu-heavy"}) {
    // Unconstrained FCFS baseline: reference runtimes for the slowdown
    // scores (keyed by submission index — job ids match across runs).
    std::map<std::size_t, double> baseline;
    Entrant base{"baseline", "fcfs", manager::NodePolicy::None, 0.0, false};
    run(archetype, base, {}, &baseline);

    util::Json arch = util::Json::object();
    arch["archetype"] = archetype;
    util::Json scores = util::Json::array();
    for (const Entrant& e : entrants) {
      const Score s = run(archetype, e, baseline, nullptr);
      table.add_row({archetype, e.label, bench::num(s.makespan_s, 0),
                     bench::num(s.energy_mj, 2), bench::num(s.overshoot_ws, 0),
                     bench::num(s.slowdown_spread, 3),
                     bench::num(s.mean_slowdown, 3)});
      util::Json row = util::Json::object();
      row["policy"] = e.label;
      row["sched_policy"] = e.sched;
      row["node_policy"] = manager::node_policy_name(e.node);
      row["makespan_s"] = s.makespan_s;
      row["energy_mj"] = s.energy_mj;
      row["overshoot_watt_seconds"] = s.overshoot_ws;
      row["slowdown_spread"] = s.slowdown_spread;
      row["mean_slowdown"] = s.mean_slowdown;
      scores.push_back(row);
    }
    arch["scores"] = scores;
    archetypes.push_back(arch);
  }
  doc["archetypes"] = archetypes;
  table.print(std::cout);

  if (std::FILE* f = std::fopen("BENCH_policy.json", "w")) {
    const std::string text = doc.dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  bench::note(
      "shape: admission policies (power-aware, power-aware-easy) keep "
      "overshoot near zero and slowdowns near 1.0 by queueing longer; "
      "throttling policies start sooner but spread slowdown unevenly; "
      "eco-mode trades a bounded per-job slowdown for fleet headroom. "
      "Full scores in BENCH_policy.json.");
  return 0;
}
