// Extension: power-aware job scheduling (the paper's future-work direction
// — power-performance optimization in hardware-overprovisioned clusters,
// citing Patki'13 / Sakamoto'17).
//
// Two ways to live under a cluster power bound:
//   (a) FCFS + proportional sharing — admit by nodes, then throttle every
//       running job so the bound holds (the paper's §IV-D approach);
//   (b) PowerAware admission — only start a job when its *peak power
//       estimate* fits in the remaining budget; admitted jobs then run at
//       full speed with the proportional-sharing manager as a safety net.
//
// The trade: (b) queues jobs longer but never throttles them; (a) starts
// jobs earlier but slows compute-bound ones. We compare makespan, mean job
// slowdown vs unconstrained, energy, and peak power on the paper's queue.
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct Outcome {
  double makespan_s = 0.0;
  double peak_kw = 0.0;
  double energy_mj = 0.0;
  double mean_slowdown = 0.0;  ///< runtime / unconstrained runtime
  double mean_wait_s = 0.0;
};

Outcome run(flux::Scheduler::Policy sched, bool constrained,
            const std::map<std::uint64_t, double>& baseline_runtimes,
            std::map<std::uint64_t, double>* record_runtimes) {
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.load_manager = true;
  if (constrained) {
    cfg.manager.cluster_power_bound_w = 16 * 1100.0;  // tight bound
    cfg.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  }
  Scenario s(cfg);
  s.instance().scheduler().set_policy(sched);

  double t = 0.0;
  std::uint64_t key = 0;
  std::map<flux::JobId, std::uint64_t> keys;
  for (const apps::WorkloadJob& job : apps::paper_queue(2024)) {
    t += job.submit_delay_s;
    JobRequest req;
    req.kind = job.kind;
    req.nnodes = job.nnodes;
    req.work_scale = job.work_scale;
    req.submit_time_s = t;
    keys[s.submit(req)] = key++;
  }
  ScenarioResult res = s.run();

  Outcome out;
  out.makespan_s = res.makespan_s;
  out.peak_kw = res.max_cluster_power_w / 1e3;
  out.energy_mj = res.total_energy_j / 1e6;
  util::RunningStats slow, wait;
  for (const JobResult& j : res.jobs) {
    const std::uint64_t k = keys.at(j.id);
    if (record_runtimes) (*record_runtimes)[k] = j.runtime_s;
    if (!baseline_runtimes.empty()) {
      slow.add(j.runtime_s / baseline_runtimes.at(k));
    }
    wait.add(j.t_start - j.t_submit);
  }
  out.mean_slowdown = slow.count() ? slow.mean() : 1.0;
  out.mean_wait_s = wait.mean();
  return out;
}

}  // namespace

int main() {
  bench::banner("Extension",
                "power-aware admission vs throttled FCFS under a 17.6 kW "
                "bound (paper queue, 16 nodes)");

  // Unconstrained baseline provides per-job reference runtimes.
  std::map<std::uint64_t, double> baseline;
  const Outcome unc =
      run(flux::Scheduler::Policy::Fcfs, false, {}, &baseline);

  const Outcome fcfs = run(flux::Scheduler::Policy::Fcfs, true, baseline, nullptr);
  const Outcome paware =
      run(flux::Scheduler::Policy::PowerAware, true, baseline, nullptr);

  util::TextTable table({"scheduler", "makespan s", "peak kW", "energy MJ",
                         "mean slowdown", "mean wait s"});
  table.add_row({"FCFS, unconstrained", bench::num(unc.makespan_s, 0),
                 bench::num(unc.peak_kw, 2), bench::num(unc.energy_mj, 2),
                 "1.00", bench::num(unc.mean_wait_s, 0)});
  table.add_row({"FCFS + prop sharing", bench::num(fcfs.makespan_s, 0),
                 bench::num(fcfs.peak_kw, 2), bench::num(fcfs.energy_mj, 2),
                 bench::num(fcfs.mean_slowdown, 3),
                 bench::num(fcfs.mean_wait_s, 0)});
  table.add_row({"PowerAware admission", bench::num(paware.makespan_s, 0),
                 bench::num(paware.peak_kw, 2), bench::num(paware.energy_mj, 2),
                 bench::num(paware.mean_slowdown, 3),
                 bench::num(paware.mean_wait_s, 0)});
  table.print(std::cout);
  bench::note(
      "expected shape: power-aware admission keeps per-job slowdown near "
      "1.0 and the peak under the bound by construction, at the cost of "
      "longer waits; throttled FCFS starts jobs sooner but slows "
      "compute-bound ones. Which wins on makespan depends on the queue's "
      "power mix — this harness is the tool for exploring exactly that.");
  return 0;
}
