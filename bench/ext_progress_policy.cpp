// Extension: comparing the two dynamic node policies the paper's design
// admits (§III-B: "policies based on past power history, measured
// performance counters, or other progress metrics"):
//
//   * FPP            — FFT over the power signal; application-oblivious,
//                      works only when power shows periodic phases;
//   * ProgressBased  — probe caps downward guarded by the application's
//                      own progress rate; needs cooperation, works on any
//                      application including aperiodic ones.
//
// Workloads: the Table IV pair (GEMM + Quicksilver) and a GPU-light pair
// (Quicksilver + Laghos) where caps have headroom.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct Workload {
  const char* label;
  apps::AppKind a_kind;
  int a_nodes;
  double a_scale;
  apps::AppKind b_kind;
  int b_nodes;
  double b_scale;
};

struct Outcome {
  double a_t, a_kj, b_t, b_kj;
};

Outcome run(const Workload& w, manager::NodePolicy policy) {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = policy;
  cfg.report_progress = true;  // harmless for non-progress policies
  Scenario s(cfg);
  JobRequest a;
  a.kind = w.a_kind;
  a.nnodes = w.a_nodes;
  a.work_scale = w.a_scale;
  const flux::JobId aid = s.submit(a);
  JobRequest b;
  b.kind = w.b_kind;
  b.nnodes = w.b_nodes;
  b.work_scale = w.b_scale;
  const flux::JobId bid = s.submit(b);
  auto res = s.run();
  return {res.job(aid).runtime_s, res.job(aid).exact_avg_node_energy_j / 1e3,
          res.job(bid).runtime_s, res.job(bid).exact_avg_node_energy_j / 1e3};
}

}  // namespace

int main() {
  bench::banner("Extension: dynamic policy comparison",
                "FPP (power-signal) vs ProgressBased (progress-metric)");

  const Workload workloads[] = {
      {"Table IV (GEMM x6 + QS x2)", apps::AppKind::Gemm, 6, 2.0,
       apps::AppKind::Quicksilver, 2, 27.5},
      {"GPU-light (QS x4 + Laghos x4)", apps::AppKind::Quicksilver, 4, 30.0,
       apps::AppKind::Laghos, 4, 30.0},
  };

  for (const Workload& w : workloads) {
    std::printf("\n%s:\n", w.label);
    util::TextTable table({"policy", "job A t s", "job A kJ/node",
                           "job B t s", "job B kJ/node"});
    for (auto [name, policy] :
         {std::pair{"prop sharing", manager::NodePolicy::DirectGpuBudget},
          std::pair{"FPP", manager::NodePolicy::Fpp},
          std::pair{"ProgressBased", manager::NodePolicy::ProgressBased}}) {
      const Outcome o = run(w, policy);
      table.add_row({name, bench::num(o.a_t, 0), bench::num(o.a_kj, 0),
                     bench::num(o.b_t, 0), bench::num(o.b_kj, 0)});
    }
    table.print(std::cout);
  }
  bench::note(
      "shape: on the compute-bound Table IV pair both dynamic policies "
      "track proportional sharing closely (little headroom). On the "
      "GPU-light pair ProgressBased walks the caps to the floor and saves "
      "energy FPP cannot see, at a bounded (tolerance-guarded) slowdown.");
  return 0;
}
