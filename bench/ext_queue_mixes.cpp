// Extension: diverse job-queue mixes (paper future work, §VI). The paper's
// §IV-E queue is "mostly compute-intensive"; this bench sweeps three
// archetypes under the same 16-node / 19.2 kW setup and reports how much
// each policy can save — quantifying the paper's expectation that "for
// applications that are less compute bound, a greater improvement in
// energy efficiency is expected". The idle-node low-power policy is shown
// as an additional row since sparse queues leave nodes idle.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

std::vector<apps::WorkloadJob> mix_queue(const char* archetype,
                                         std::uint64_t seed) {
  using apps::AppKind;
  std::vector<AppKind> kinds;
  const std::string name = archetype;
  if (name == "compute-heavy") {
    kinds = {AppKind::Gemm, AppKind::Gemm, AppKind::Lammps, AppKind::Lammps,
             AppKind::Gemm};
  } else if (name == "mixed") {
    kinds = {AppKind::Gemm, AppKind::Lammps, AppKind::Quicksilver,
             AppKind::Laghos, AppKind::Kripke, AppKind::Sw4lite};
  } else {  // cpu-heavy
    kinds = {AppKind::Laghos, AppKind::NQueens, AppKind::Laghos,
             AppKind::Quicksilver, AppKind::NQueens};
  }
  return apps::random_queue(seed, 10, 8, kinds);
}

struct Outcome {
  double makespan_s = 0.0;
  double energy_mj = 0.0;
};

Outcome run(const char* archetype, manager::NodePolicy policy,
            bool idle_low_power) {
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 16 * 1200.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = policy;
  cfg.manager.idle_low_power = idle_low_power;
  Scenario s(cfg);
  double t = 0.0;
  for (const apps::WorkloadJob& job : mix_queue(archetype, 777)) {
    t += job.submit_delay_s;
    JobRequest req;
    req.kind = job.kind;
    req.nnodes = job.nnodes;
    req.work_scale = job.work_scale;
    req.submit_time_s = t;
    s.submit(req);
  }
  auto res = s.run();
  return {res.makespan_s, res.total_energy_j / 1e6};
}

}  // namespace

int main() {
  bench::banner("Extension: diverse queue mixes",
                "energy by policy across queue archetypes (16 nodes, "
                "19.2 kW bound)");
  util::TextTable table({"queue archetype", "policy", "makespan s",
                         "energy MJ", "vs prop %"});
  for (const char* archetype : {"compute-heavy", "mixed", "cpu-heavy"}) {
    const Outcome prop = run(archetype, manager::NodePolicy::DirectGpuBudget,
                             false);
    const Outcome fpp = run(archetype, manager::NodePolicy::Fpp, false);
    const Outcome fpp_idle = run(archetype, manager::NodePolicy::Fpp, true);
    table.add_row({archetype, "prop sharing", bench::num(prop.makespan_s, 0),
                   bench::num(prop.energy_mj, 2), "-"});
    table.add_row({archetype, "FPP", bench::num(fpp.makespan_s, 0),
                   bench::num(fpp.energy_mj, 2),
                   bench::num((fpp.energy_mj - prop.energy_mj) /
                                  prop.energy_mj * 100.0,
                              2)});
    table.add_row({archetype, "FPP + idle low-power",
                   bench::num(fpp_idle.makespan_s, 0),
                   bench::num(fpp_idle.energy_mj, 2),
                   bench::num((fpp_idle.energy_mj - prop.energy_mj) /
                                  prop.energy_mj * 100.0,
                              2)});
  }
  table.print(std::cout);
  bench::note(
      "shape: policy choice barely moves the makespan anywhere; FPP's "
      "saving is largest where GPU headroom exists, and idle-node parking "
      "adds savings whenever the queue leaves nodes unallocated.");
  return 0;
}
