// Extension: production-site operations study (roadmap scenario pack).
//
// A heterogeneous federation — a Lassen-like GPU machine, a Tioga-like
// MI250X machine, and an ARM Grace CPU pool — shares one 14 kW facility
// budget for two simulated weeks of diurnally modulated arrivals. Each
// site-apportionment policy replays the *same* workload (same seed, same
// candidate arrival skeleton), so the table isolates the policy decision:
// what the site pays for energy under a time-of-use tariff, how many jobs
// start within their requested deadline (SLO, measured against the
// original submit time — deferral is never free), and how many minutes the
// site spends above its facility bound.
//
// Results also land in BENCH_site.json for the CI bench-smoke lane.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/site_ops.hpp"
#include "manager/site_policy.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace fluxpower;

int main() {
  bench::banner("Extension",
                "production-site operations: two weeks, three clusters, one "
                "14 kW budget, three site policies");

  experiments::SiteOpsConfig base;
  base.workload.duration_s = 14.0 * 86400.0;
  base.workload.jobs_per_hour_peak = 30.0;
  base.site_bound_w = 14000.0;

  std::printf(
      "federation: lassen (8n AC922) + tioga (6n EX235a) + grace (8n ARM), "
      "%.0f W site bound\n",
      base.site_bound_w);
  std::printf(
      "workload: %.0f days, %.0f jobs/h at the diurnal plateau, %.0f%% "
      "deferrable, %.0f%% eco-enrolled\n",
      base.workload.duration_s / 86400.0, base.workload.jobs_per_hour_peak,
      base.workload.deferrable_frac * 100.0, base.workload.eco_frac * 100.0);
  std::printf(
      "tariff: %.0f / %.0f / %.0f USD/MWh (off-peak / shoulder / peak, "
      "weekday peak %.0f-%.0fh)\n",
      base.tariff.offpeak_usd_mwh, base.tariff.shoulder_usd_mwh,
      base.tariff.peak_usd_mwh, base.tariff.peak_start_h,
      base.tariff.peak_end_h);

  util::Json doc = util::Json::object();
  doc["bench"] = "ext_site_ops";
  doc["site_bound_w"] = base.site_bound_w;
  doc["duration_days"] = base.workload.duration_s / 86400.0;
  doc["jobs_per_hour_peak"] = base.workload.jobs_per_hour_peak;
  util::Json policies = util::Json::array();

  util::TextTable table({"site policy", "jobs", "deferred", "energy MWh",
                         "cost USD", "SLO %", "cap-viol min", "peak kW",
                         "rounds"});
  for (const policy::PolicyInfo& info : manager::site_policies()) {
    experiments::SiteOpsConfig cfg = base;
    cfg.site_policy = info.name;
    const experiments::SiteOpsResult r = experiments::run_site_ops(cfg);
    table.add_row({info.name, bench::num(r.jobs_total, 0),
                   bench::num(r.jobs_deferred, 0),
                   bench::num(r.energy_j / 3.6e9, 3),
                   bench::num(r.energy_cost_usd, 2),
                   bench::num(r.slo_attainment * 100.0, 1),
                   bench::num(r.cap_violation_min, 0),
                   bench::num(r.peak_site_draw_w / 1000.0, 2),
                   bench::num(r.rounds_completed, 0)});

    util::Json row = util::Json::object();
    row["policy"] = info.name;
    row["jobs_total"] = r.jobs_total;
    row["jobs_deferred"] = r.jobs_deferred;
    row["jobs_completed"] = r.jobs_completed;
    row["energy_j"] = r.energy_j;
    row["energy_cost_usd"] = r.energy_cost_usd;
    row["slo_attainment"] = r.slo_attainment;
    row["cap_violation_min"] = r.cap_violation_min;
    row["peak_site_draw_w"] = r.peak_site_draw_w;
    row["avg_site_draw_w"] = r.avg_site_draw_w;
    row["rounds_completed"] = r.rounds_completed;
    row["member_misses"] = static_cast<double>(r.member_misses);
    util::Json members = util::Json::array();
    for (const experiments::SiteMemberStats& m : r.members) {
      util::Json member = util::Json::object();
      member["name"] = m.name;
      member["jobs"] = m.jobs;
      member["completed"] = m.completed;
      member["energy_j"] = m.energy_j;
      members.push_back(member);
    }
    row["members"] = members;
    policies.push_back(row);
  }
  doc["policies"] = policies;
  table.print(std::cout);

  if (std::FILE* f = std::fopen("BENCH_site.json", "w")) {
    const std::string text = doc.dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  bench::note(
      "shape: tariff-aware-dr buys the lowest energy cost by shifting "
      "deferrable submissions out of the weekday peak window and tightening "
      "the apportioned bound while the price is at its peak tier, at a "
      "small SLO cost; fair-share trades SLO for predictable per-tenant "
      "headroom; demand-proportional is the throughput baseline. Full "
      "scores in BENCH_site.json.");
  return 0;
}
