// Fig 1 reproduction: power-consumption timeline for LAMMPS and Quicksilver
// on a single Lassen node using all four GPUs. The paper's plot shows node,
// one-socket and one-GPU power on a log scale; we print the same three
// series on the monitor's 2 s grid, downsampled for readability.
//
// Shape targets (Fig 1): LAMMPS has a flat high-power profile (~1300 W
// node); Quicksilver shows periodic phase behaviour with large swings
// between a GPU-active high phase (~950 W) and a CPU phase (~450 W).
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

void timeline(const char* name, apps::AppKind kind, double work_scale,
              double print_every_s) {
  auto out = run_single_job(hwsim::Platform::LassenIbmAc922, kind, 1,
                            work_scale);
  std::printf("\n%s, 1 node, 4 GPUs (runtime %.1f s)\n", name,
              out.result.runtime_s);
  util::TextTable table({"t (s)", "node W", "cpu0 W", "gpu0 W"});
  double next_print = 0.0;
  for (const TimelinePoint& p : out.timeline) {
    if (p.t_s + 1e-9 < next_print) continue;
    next_print = p.t_s + print_every_s;
    table.add_row({bench::num(p.t_s, 0), bench::num(p.node_w, 0),
                   bench::num(p.cpu_w.empty() ? 0.0 : p.cpu_w[0], 0),
                   bench::num(p.gpu_w.empty() ? 0.0 : p.gpu_w[0], 0)});
  }
  table.print(std::cout);

  std::vector<double> node_w;
  for (const TimelinePoint& p : out.timeline) node_w.push_back(p.node_w);
  const double swing = util::max_of(node_w) - util::min_of(node_w);
  std::printf("node power: mean %.0f W, min %.0f W, max %.0f W, swing %.0f W\n",
              util::mean(node_w), util::min_of(node_w), util::max_of(node_w),
              swing);
}

}  // namespace

int main() {
  bench::banner("Fig 1", "power timelines, LAMMPS and Quicksilver on Lassen");

  // LAMMPS on one node (strong-scaled baseline problem): flat profile.
  timeline("LAMMPS (a)", apps::AppKind::Lammps, 1.0, 20.0);
  bench::note("paper shape: relatively flat power timeline without swings");

  // Quicksilver scaled long enough to show several of its ~8.7 s phases.
  timeline("Quicksilver (b)", apps::AppKind::Quicksilver, 27.5, 8.0);
  bench::note(
      "paper shape: periodic phase behaviour, large swings between the "
      "GPU cycle-tracking phase (~950 W) and the CPU phase (~450 W)");
  return 0;
}
