// Fig 2 reproduction: per-component power data aggregated by the
// flux-power-monitor for applications scaled 1-32 nodes on Lassen and
// 1-8 nodes on Tioga. For each (app, nodes) we report the monitor's
// per-node averages for each measurable component — on Tioga only CPU and
// OAM exist, and node power is the conservative CPU+OAM estimate.
//
// Shape targets: weakly scaled apps (Quicksilver, Laghos) have flat
// per-component power across scales; strongly scaled LAMMPS loses power —
// mostly GPU power — as node count grows; Tioga draws more absolute power
// than Lassen for the same app (8 GCDs vs 4 GPUs).
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "monitor/client.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct ComponentAvgs {
  double node = 0.0, cpu = 0.0, mem = 0.0, gpu = 0.0;
  bool has_mem = false;
};

ComponentAvgs run_and_average(hwsim::Platform platform, apps::AppKind kind,
                              int nnodes, double work_scale) {
  ScenarioConfig cfg;
  cfg.platform = platform;
  cfg.nodes = nnodes;
  Scenario scenario(cfg);
  JobRequest req;
  req.kind = kind;
  req.nnodes = nnodes;
  req.work_scale = work_scale;
  const flux::JobId id = scenario.submit(req);
  scenario.run();

  monitor::MonitorClient client(scenario.instance());
  auto data = client.query_blocking(id);
  ComponentAvgs avg;
  if (!data) return avg;
  util::RunningStats node, cpu, mem, gpu;
  for (const auto& n : data->nodes) {
    for (const auto& s : n.samples) {
      node.add(s.best_node_w());
      double c = 0.0;
      for (double w : s.cpu_w) c += w;
      cpu.add(c);
      if (s.mem_w) {
        mem.add(*s.mem_w);
        avg.has_mem = true;
      }
      double g = 0.0;
      for (double w : s.gpu_w) g += w;
      gpu.add(g);
    }
  }
  avg.node = node.mean();
  avg.cpu = cpu.mean();
  avg.mem = mem.mean();
  avg.gpu = gpu.mean();
  return avg;
}

void platform_sweep(const char* label, hwsim::Platform platform,
                    const std::vector<int>& node_counts) {
  std::printf("\n-- %s --\n", label);
  std::vector<apps::AppKind> kinds{apps::AppKind::Lammps,
                                   apps::AppKind::Quicksilver,
                                   apps::AppKind::Laghos, apps::AppKind::Gemm};
  if (platform == hwsim::Platform::LassenIbmAc922) {
    kinds.push_back(apps::AppKind::NQueens);  // Charm++, Lassen runs only
  }
  for (apps::AppKind kind : kinds) {
    util::TextTable table(
        {"nodes", "node W/node", "cpu W/node", "mem W/node", "gpu W/node"});
    // Scale work so short baselines produce enough 2 s samples at any size.
    const double work_scale = kind == apps::AppKind::Lammps ? 1.0 : 8.0;
    for (int n : node_counts) {
      const ComponentAvgs avg = run_and_average(platform, kind, n, work_scale);
      table.add_row({std::to_string(n), bench::num(avg.node, 0),
                     bench::num(avg.cpu, 0),
                     avg.has_mem ? bench::num(avg.mem, 0) : std::string("n/a"),
                     bench::num(avg.gpu, 0)});
    }
    std::printf("\n%s:\n", apps::app_kind_name(kind));
    table.print(std::cout);
  }
}

// Whole-site run on the sharded engine: a 65,536-node Lassen-class fleet
// (fanout-16 TBON, 8 islands, 8 workers) running a small job mix to
// completion. The power numbers are byte-identical to a shards=1 run (the
// shard-invariance suite pins that), so the sharded engine is purely a
// wall-clock lever at this scale. 131,072 nodes rides the same path when
// FLUXPOWER_BENCH_XL=1 (it roughly doubles memory and host time).
void whole_site_sweep() {
  bench::banner("Whole site (sharded engine)",
                "65k-node site, monitor everywhere, 8 islands / 8 workers");
  std::vector<int> sizes{65536};
  if (const char* xl = std::getenv("FLUXPOWER_BENCH_XL");
      xl != nullptr && xl[0] != '\0' && xl[0] != '0') {
    sizes.push_back(131072);
  }
  util::TextTable table({"nodes", "jobs", "makespan s", "peak site MW",
                         "avg site MW", "windows", "host s"});
  for (int nodes : sizes) {
    ScenarioConfig cfg;
    cfg.nodes = nodes;
    cfg.tbon_fanout = 16;
    cfg.shards = 8;
    cfg.workers = 8;
    monitor::PowerMonitorConfig mcfg = monitor::PowerMonitorConfig::for_lassen();
    mcfg.buffer_capacity = 16;  // bound resident memory at site scale
    mcfg.archive_jobs = false;
    cfg.monitor = mcfg;
    Scenario scenario(cfg);
    JobRequest gemm;
    gemm.kind = apps::AppKind::Gemm;
    gemm.nnodes = 2048;
    gemm.work_scale = 0.5;
    scenario.submit(gemm);
    JobRequest lammps;
    lammps.kind = apps::AppKind::Lammps;
    lammps.nnodes = 1024;
    lammps.submit_time_s = 20.0;
    scenario.submit(lammps);
    JobRequest quicksilver;
    quicksilver.kind = apps::AppKind::Quicksilver;
    quicksilver.nnodes = 512;
    quicksilver.work_scale = 4.0;
    quicksilver.submit_time_s = 40.0;
    scenario.submit(quicksilver);
    const auto t0 = std::chrono::steady_clock::now();
    const ScenarioResult res = scenario.run(3600.0);
    const double host_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    table.add_row({std::to_string(nodes),
                   std::to_string(res.jobs.size()),
                   bench::num(res.makespan_s, 1),
                   bench::num(res.max_cluster_power_w / 1e6, 3),
                   bench::num(res.avg_cluster_power_w / 1e6, 3),
                   std::to_string(scenario.engine()->windows_executed()),
                   bench::host_timing_enabled() ? bench::num(host_s, 1)
                                                : std::string("-")});
  }
  table.print(std::cout);
  bench::note(
      "whole-site output is shard-count invariant; pick shards for speed, "
      "not semantics. Set FLUXPOWER_BENCH_XL=1 for the 131k-node row.");
}

}  // namespace

int main() {
  bench::banner("Fig 2", "per-component power vs node count (monitor data)");
  platform_sweep("Lassen (IBM AC922, 4 GPUs/node; direct node+mem sensors)",
                 hwsim::Platform::LassenIbmAc922, {1, 2, 4, 8, 16, 32});
  platform_sweep(
      "Tioga (HPE EX235a, 4 OAMs/node; node = conservative CPU+OAM estimate)",
      hwsim::Platform::TiogaCrayEx235a, {1, 2, 4, 8});
  whole_site_sweep();
  bench::note(
      "paper shapes: weak-scaled apps flat across scales; LAMMPS power "
      "drops with node count (mostly GPU); Tioga > Lassen absolute power "
      "for the same app (8 GCDs vs 4 GPUs).");
  return 0;
}
