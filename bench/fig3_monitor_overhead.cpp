// Fig 3 reproduction: percentage slowdown in execution time with the
// flux-power-monitor loaded vs not loaded, averaged over six repetitions,
// for three applications across node counts on Lassen (1-32) and Tioga
// (1-8). The run-to-run variability model is active, so low node counts on
// Lassen show the same noisy outliers the paper reports (Laghos 6.2% @ 1
// node, 8.2% @ 2 nodes; Quicksilver 9.3% @ 2 nodes), while the systematic
// monitor cost stays small (~0.4% at 2 s sampling).
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {
constexpr int kReps = 6;

double run_once(hwsim::Platform platform, apps::AppKind kind, int nnodes,
                bool with_monitor, std::uint64_t seed) {
  auto out = run_single_job(platform, kind, nnodes, /*work_scale=*/1.0,
                            with_monitor, seed, /*runtime_variability=*/true);
  return out.result.runtime_s;
}

void sweep(const char* label, hwsim::Platform platform,
           const std::vector<int>& node_counts) {
  std::printf("\n-- %s --\n", label);
  util::TextTable table({"app", "nodes", "t off (s)", "t on (s)",
                         "overhead %"});
  util::RunningStats all_overheads;
  for (apps::AppKind kind : {apps::AppKind::Lammps, apps::AppKind::Laghos,
                             apps::AppKind::Quicksilver}) {
    for (int n : node_counts) {
      std::vector<double> off, on;
      for (int rep = 0; rep < kReps; ++rep) {
        // Distinct, independent seeds per repetition and configuration:
        // as on the real machine, with- and without-monitor repetitions see
        // different jitter draws, so low-node-count cells reflect
        // variability luck on top of the monitor's systematic cost.
        const std::uint64_t seed =
            30011ULL * static_cast<std::uint64_t>(n) + 131ULL * rep +
            static_cast<std::uint64_t>(kind);
        off.push_back(run_once(platform, kind, n, false, seed));
        on.push_back(run_once(platform, kind, n, true, seed + 999983ULL));
      }
      const double overhead =
          util::percent_change(util::mean(off), util::mean(on));
      all_overheads.add(overhead);
      table.add_row({apps::app_kind_name(kind), std::to_string(n),
                     bench::num(util::mean(off)), bench::num(util::mean(on)),
                     bench::num(overhead)});
    }
  }
  table.print(std::cout);
  std::printf("average overhead across apps/scales: %.2f%%\n",
              all_overheads.mean());
}

}  // namespace

int main() {
  bench::banner("Fig 3", "flux-power-monitor overhead, 6 repetitions");
  sweep("Lassen (paper: 1.2% average; noisy at 1-2 nodes)",
        hwsim::Platform::LassenIbmAc922, {1, 2, 4, 8, 16, 32});
  sweep("Tioga (paper: 0.04% average)", hwsim::Platform::TiogaCrayEx235a,
        {1, 2, 4, 8});
  bench::note(
      "negative overheads are run-to-run noise, as in the paper ('we don't "
      "believe using flux-power-monitor can speed applications up').");
  return 0;
}
