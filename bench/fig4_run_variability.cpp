// Fig 4 reproduction: run-to-run variation of raw execution times for
// Laghos and Quicksilver at low node counts on Lassen, with and without the
// monitor loaded, as box plots (five-number summaries) over six repeated
// runs. The paper observed >20% swings at 1-2 nodes even without the
// monitor, attributing them to OS jitter and congestion.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {
constexpr int kReps = 6;

std::vector<double> runtimes(apps::AppKind kind, int nnodes, bool monitor) {
  std::vector<double> out;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed = 7717ULL * static_cast<std::uint64_t>(nnodes) +
                               37ULL * rep + (monitor ? 555ULL : 0ULL) +
                               static_cast<std::uint64_t>(kind) * 1009ULL;
    out.push_back(run_single_job(hwsim::Platform::LassenIbmAc922, kind, nnodes,
                                 1.0, monitor, seed, true)
                      .result.runtime_s);
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Fig 4",
                "run-to-run variation, Laghos & Quicksilver at low node "
                "counts on Lassen (box plots over 6 runs)");
  util::TextTable table({"app", "nodes", "monitor", "min", "q1", "median",
                         "q3", "max", "spread %"});
  for (apps::AppKind kind : {apps::AppKind::Laghos, apps::AppKind::Quicksilver}) {
    for (int n : {1, 2, 4}) {
      for (bool monitor : {false, true}) {
        const auto ts = runtimes(kind, n, monitor);
        const util::BoxStats b = util::box_stats(ts);
        table.add_row({apps::app_kind_name(kind), std::to_string(n),
                       monitor ? "loaded" : "not loaded", bench::num(b.min),
                       bench::num(b.q1), bench::num(b.median),
                       bench::num(b.q3), bench::num(b.max),
                       bench::num((b.max - b.min) / b.median * 100.0, 1)});
      }
    }
  }
  table.print(std::cout);
  bench::note(
      "paper shape: >20% spread for Laghos/Quicksilver at 1-2 nodes with or "
      "without the monitor; the variability, not the monitor, explains the "
      "Fig 3 outliers. Spread shrinks by 4+ nodes.");
  return 0;
}
