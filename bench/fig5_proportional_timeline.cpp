// Fig 5 reproduction: proportional power sharing timeline. GEMM (6 nodes)
// and Quicksilver (2 nodes) share a 9.6 kW cluster bound; while both run,
// every allocated node is limited to 1200 W. When Quicksilver finishes,
// the cluster-level-manager reclaims its power and GEMM's per-node limit
// rises to 1600 W — visible as a step up in GEMM's node power.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  bench::banner("Fig 5",
                "proportional power sharing: GEMM gains power when "
                "Quicksilver finishes");

  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  Scenario s(cfg);

  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 2.0;
  const flux::JobId gemm_id = s.submit(gemm);
  JobRequest qs;
  qs.kind = apps::AppKind::Quicksilver;
  qs.nnodes = 2;
  qs.work_scale = 27.5;
  const flux::JobId qs_id = s.submit(qs);

  auto res = s.run();
  const double qs_end = res.job(qs_id).t_end;

  util::TextTable table({"t (s)", "GEMM node W", "GEMM gpu0 cap W",
                         "QS node W"});
  const auto& gemm_tl = res.timelines.at(gemm_id);
  const auto& qs_tl = res.timelines.at(qs_id);
  auto qs_at = [&](double t) -> std::string {
    for (const TimelinePoint& p : qs_tl) {
      if (std::abs(p.t_s - t) < 1.0) return bench::num(p.node_w, 0);
    }
    return "(done)";
  };
  double next_print = 0.0;
  for (const TimelinePoint& p : gemm_tl) {
    if (p.t_s + 1e-9 < next_print) continue;
    next_print = p.t_s + 20.0;
    table.add_row({bench::num(p.t_s, 0), bench::num(p.node_w, 0),
                   bench::num(p.gpu_cap_w.empty() ? 0.0 : p.gpu_cap_w[0], 0),
                   qs_at(p.t_s)});
  }
  table.print(std::cout);

  // Quantify the step.
  util::RunningStats before, after;
  for (const TimelinePoint& p : gemm_tl) {
    if (p.t_s < qs_end - 10.0) before.add(p.node_w);
    else if (p.t_s > qs_end + 20.0) after.add(p.node_w);
  }
  std::printf(
      "Quicksilver ends at t=%.0f s; GEMM node power steps %.0f W -> %.0f W "
      "(per-node limit 1200 -> 1600 W)\n",
      qs_end, before.mean(), after.mean());
  bench::note(
      "paper shape: GEMM receives additional power the moment Quicksilver "
      "is no longer executing; other nodes behave identically.");
  return 0;
}
