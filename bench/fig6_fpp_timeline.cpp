// Fig 6 reproduction: FPP timeline for GEMM + Quicksilver under the 9.6 kW
// bound. Visible events: the 90 s control cadence; the exploratory -50 W
// probe; the give-back when GEMM's iteration period stretches; convergence
// ("FPP converges quickly for both applications, as there is not a lot of
// opportunity to save power while preserving performance").
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  bench::banner("Fig 6", "FFT-based power policy (FPP) timeline");

  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::Fpp;
  Scenario s(cfg);

  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 2.0;
  const flux::JobId gemm_id = s.submit(gemm);
  JobRequest qs;
  qs.kind = apps::AppKind::Quicksilver;
  qs.nnodes = 2;
  qs.work_scale = 27.5;
  const flux::JobId qs_id = s.submit(qs);

  auto res = s.run();

  util::TextTable table(
      {"t (s)", "GEMM node W", "GEMM gpu0 cap W", "QS node W", "QS gpu0 cap W"});
  const auto& gemm_tl = res.timelines.at(gemm_id);
  const auto& qs_tl = res.timelines.at(qs_id);
  auto qs_at = [&](double t, bool cap) -> std::string {
    for (const TimelinePoint& p : qs_tl) {
      if (std::abs(p.t_s - t) < 1.0) {
        return bench::num(cap ? (p.gpu_cap_w.empty() ? 0.0 : p.gpu_cap_w[0])
                              : p.node_w,
                          0);
      }
    }
    return "(done)";
  };
  double next_print = 0.0;
  for (const TimelinePoint& p : gemm_tl) {
    if (p.t_s + 1e-9 < next_print) continue;
    next_print = p.t_s + 30.0;
    table.add_row({bench::num(p.t_s, 0), bench::num(p.node_w, 0),
                   bench::num(p.gpu_cap_w.empty() ? 0.0 : p.gpu_cap_w[0], 0),
                   qs_at(p.t_s, false), qs_at(p.t_s, true)});
  }
  table.print(std::cout);

  std::printf("GEMM: t=%.0f s, %.0f kJ/node | QS: t=%.0f s, %.0f kJ/node\n",
              res.job(gemm_id).runtime_s,
              res.job(gemm_id).exact_avg_node_energy_j / 1e3,
              res.job(qs_id).runtime_s,
              res.job(qs_id).exact_avg_node_energy_j / 1e3);
  bench::note(
      "paper shape: FPP probes -50 W per GPU on the 90 s control boundary; "
      "GEMM's period stretches, so the cap is given back and FPP converges "
      "near the budget; Quicksilver's period is insensitive, so it converges "
      "immediately. Paper: GEMM 602 s / 598 kJ, QS 350 s / 174 kJ.");
  return 0;
}
