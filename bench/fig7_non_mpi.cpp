// Fig 7 reproduction: proportional power capping applied to a non-MPI
// application. A Charm++ NQueens job (2 nodes, CPU-only, 160 PEs) runs
// alongside GEMM (6 nodes). Because the power manager operates on Flux
// jobs, not on MPI, the capping applies identically: GEMM's power drops
// the moment NQueens enters the system and recovers when it leaves.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  bench::banner("Fig 7",
                "proportional capping with a non-MPI (Charm++) application");

  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  Scenario s(cfg);

  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 2.0;
  const flux::JobId gemm_id = s.submit(gemm);

  // NQueens enters 60 s into GEMM's run and finishes well before it.
  JobRequest nq;
  nq.kind = apps::AppKind::NQueens;
  nq.nnodes = 2;
  nq.work_scale = 1.0;
  nq.submit_time_s = 60.0;
  const flux::JobId nq_id = s.submit(nq);

  auto res = s.run();
  const double nq_start = res.job(nq_id).t_start;
  const double nq_end = res.job(nq_id).t_end;

  util::TextTable table({"t (s)", "GEMM node W", "NQueens node W"});
  const auto& gemm_tl = res.timelines.at(gemm_id);
  const auto& nq_tl = res.timelines.at(nq_id);
  auto nq_at = [&](double t) -> std::string {
    for (const TimelinePoint& p : nq_tl) {
      if (std::abs(p.t_s - t) < 1.0) return bench::num(p.node_w, 0);
    }
    return t < nq_start ? "(not started)" : "(done)";
  };
  double next_print = 0.0;
  for (const TimelinePoint& p : gemm_tl) {
    if (p.t_s + 1e-9 < next_print) continue;
    next_print = p.t_s + 20.0;
    table.add_row({bench::num(p.t_s, 0), bench::num(p.node_w, 0),
                   nq_at(p.t_s)});
  }
  table.print(std::cout);

  util::RunningStats solo, shared;
  for (const TimelinePoint& p : gemm_tl) {
    if (p.t_s < nq_start - 5.0) solo.add(p.node_w);
    else if (p.t_s > nq_start + 15.0 && p.t_s < nq_end - 5.0) shared.add(p.node_w);
  }
  std::printf(
      "NQueens (Charm++, CPU-only) runs t=%.0f..%.0f s; GEMM node power "
      "drops %.0f W -> %.0f W while sharing the bound, then recovers.\n",
      nq_start, nq_end, solo.mean(), shared.mean());
  bench::note(
      "paper shape: 'GEMM power consumption drops when the NQueens "
      "application enters the system' — power management applies to any "
      "Flux job, MPI or not.");
  return 0;
}
