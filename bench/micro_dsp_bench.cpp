// Microbenchmarks for the DSP substrate: FFT kernel cost across sizes
// (radix-2 vs Bluestein paths) and the full FINDPERIOD estimator at FPP's
// operating point (45 samples = 90 s window at 2 s sampling). These bound
// the compute cost FPP adds to the node-level-manager control loop.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "dsp/period.hpp"
#include "util/rng.hpp"

using namespace fluxpower;

namespace {

std::vector<dsp::Complex> random_signal(std::size_t n) {
  util::Rng rng(n);
  std::vector<dsp::Complex> x(n);
  for (auto& c : x) c = dsp::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return x;
}

std::vector<double> power_signal(std::size_t n, double period_s) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 2.0 * static_cast<double>(i);
    xs[i] = 500.0 + 250.0 * std::sin(2.0 * std::numbers::pi * t / period_s);
  }
  return xs;
}

void BM_FftRadix2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_signal(n);
  for (auto _ : state) {
    auto copy = x;
    dsp::fft_radix2(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftRadix2)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_FftBluestein(benchmark::State& state) {
  // Prime-ish sizes force the Bluestein path.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto x = random_signal(n);
  for (auto _ : state) {
    auto spectrum = dsp::fft(x);
    benchmark::DoNotOptimize(spectrum);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(63)->Arg(251)->Arg(1021)->Arg(4093);

void BM_FindPeriodFppWindow(benchmark::State& state) {
  // FPP's real operating point: 90 s of 2 s samples.
  const auto xs = power_signal(45, 8.7);
  for (auto _ : state) {
    auto est = dsp::find_period(xs, 2.0);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_FindPeriodFppWindow);

void BM_FindPeriodMethod(benchmark::State& state) {
  const auto method = static_cast<dsp::PeriodMethod>(state.range(0));
  const auto xs = power_signal(256, 12.0);
  for (auto _ : state) {
    auto est = dsp::find_period(xs, 2.0, method);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_FindPeriodMethod)
    ->Arg(static_cast<int>(dsp::PeriodMethod::HannPeriodogram))
    ->Arg(static_cast<int>(dsp::PeriodMethod::RawPeriodogram))
    ->Arg(static_cast<int>(dsp::PeriodMethod::Autocorrelation));

}  // namespace

BENCHMARK_MAIN();
