// Microbenchmarks for the hardware substrate: sensor sampling, grant
// recomputation under caps, full-cluster draw summation, and the codec hot
// path — the per-tick costs everything else multiplies.
#include <benchmark/benchmark.h>

#include "flux/codec.hpp"
#include "hwsim/cluster.hpp"
#include "hwsim/ibm_ac922.hpp"

using namespace fluxpower;

namespace {

hwsim::LoadDemand gemm_demand() {
  hwsim::LoadDemand d;
  d.cpu_w = {110, 110};
  d.gpu_w = {280, 280, 280, 280};
  d.mem_w = 70;
  return d;
}

void BM_NodeSample(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "n0");
  node.set_sensor_noise(0.004);
  node.set_demand(gemm_demand());
  for (auto _ : state) {
    auto s = node.sample();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_NodeSample);

void BM_GrantRecompute(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "n0");
  node.set_node_power_cap(1200.0);
  const auto d = gemm_demand();
  for (auto _ : state) {
    node.set_demand(d);  // forces a full grant recomputation
    benchmark::DoNotOptimize(node.grants());
  }
}
BENCHMARK(BM_GrantRecompute);

void BM_GpuCapWrite(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "n0");
  node.set_demand(gemm_demand());
  double cap = 150.0;
  for (auto _ : state) {
    node.set_gpu_power_cap(0, cap);
    cap = cap >= 290.0 ? 150.0 : cap + 1.0;
  }
}
BENCHMARK(BM_GpuCapWrite);

void BM_ClusterTotalDraw(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.total_draw_w());
  }
}
BENCHMARK(BM_ClusterTotalDraw)->Arg(8)->Arg(64)->Arg(792);

void BM_MessageEncodeDecode(benchmark::State& state) {
  flux::Message m;
  m.type = flux::Message::Type::Request;
  m.topic = "power-monitor.get-data";
  m.sender = 0;
  m.dest = 7;
  m.matchtag = 99;
  m.payload = util::Json::object();
  m.payload["start"] = 0.0;
  m.payload["end"] = 100.0;
  for (auto _ : state) {
    auto back = flux::decode_message(flux::encode_message(m));
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_MessageEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
