// Microbenchmarks for the monitor data plane: the columnar (SoA) sample
// store against the seed's row-of-structs ring, the consume-variant period
// estimator, and — sim-driven — the two TBON traffic optimizations this
// refactor introduced (incremental delta aggregation, batched cap
// fan-out).
//
// Workloads:
//   * sweep stats      — mean/peak of best-node-watts over the whole ring
//                        (the ledger/report sweep shape); row vs columnar
//   * percentile       — p99 via nth_element over the extracted watt
//                        column; row vs columnar
//   * window query     — [start, end] window stats: linear timestamp scan
//                        (row) vs binary search + unit-stride segments
//   * find_period      — copying estimator vs the in-place consume variant
//                        on a column already materialized by copy_best_w
//   * merge bytes/hop  — full re-merge vs delta aggregation: samples
//                        shipped per repeated root window query, read off
//                        the fluxpower_monitor_merge_bytes_total registry
//                        counters of a live 16-node TBON stack
//   * cap fan-out      — per-rank vs batched limit-push waves: root
//                        fan-out and hop-weighted message count per
//                        refresh wave on a 32-node stack, via the message
//                        journal
//
// The `row` namespace replicates the seed layout (util::RingBuffer of
// PowerSample structs) so the before/after comparison is carried inside
// one binary and one JSON file.
//
// Unless the caller passes its own --benchmark_out, results are written to
// BENCH_monitor.json (google-benchmark JSON format).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/launcher.hpp"
#include "dsp/period.hpp"
#include "flux/instance.hpp"
#include "flux/journal.hpp"
#include "hwsim/cluster.hpp"
#include "manager/power_manager.hpp"
#include "monitor/client.hpp"
#include "monitor/power_monitor.hpp"
#include "monitor/sample_store.hpp"
#include "util/ring_buffer.hpp"

using namespace fluxpower;

namespace row {

/// Seed-layout baseline: the monitor's original row-of-structs ring with
/// the linear read paths it forced. Kept minimal — push, indexed get and a
/// linear window scan — exactly what the pre-columnar module did.
class RowSampleStore {
 public:
  explicit RowSampleStore(std::size_t capacity) : ring_(capacity) {}

  void push(const hwsim::PowerSample& s) { ring_.push(s); }
  std::size_t size() const noexcept { return ring_.size(); }
  const hwsim::PowerSample& get(std::size_t i) const { return ring_[i]; }

 private:
  util::RingBuffer<hwsim::PowerSample> ring_;
};

}  // namespace row

namespace {

constexpr std::size_t kRingSamples = 65536;

hwsim::PowerSample make_sample(std::size_t i) {
  hwsim::PowerSample s;
  s.timestamp_s = 2.0 * static_cast<double>(i);
  s.hostname = "lassen0";
  // Deterministic pseudo-signal: a DC level plus two tones, the shape the
  // percentile and period sweeps see in production.
  const double x = static_cast<double>(i % 4096);
  const double w = 900.0 + 250.0 * ((i % 45) < 22 ? 1.0 : -1.0) +
                   0.01 * x;
  s.node_w = w;
  s.node_estimate_w = w - 40.0;
  s.cpu_w.push_back(120.0 + 0.001 * x);
  s.cpu_w.push_back(118.0);
  s.mem_w = 80.0;
  for (int g = 0; g < 4; ++g) {
    s.gpu_w.push_back(150.0 + 10.0 * static_cast<double>(g));
  }
  return s;
}

template <typename Store>
Store make_filled_store() {
  Store store(kRingSamples);
  for (std::size_t i = 0; i < kRingSamples + kRingSamples / 2; ++i) {
    store.push(make_sample(i));  // overfill so the ring seam is exercised
  }
  return store;
}

// --- Sweep stats: mean/peak of best-node-watts over the whole ring ---------

void BM_SweepStats_Row(benchmark::State& state) {
  const auto store = make_filled_store<row::RowSampleStore>();
  double sink = 0.0;
  for (auto _ : state) {
    double sum = 0.0, peak = 0.0;
    for (std::size_t i = 0; i < store.size(); ++i) {
      const double w = store.get(i).best_node_w();
      sum += w;
      peak = std::max(peak, w);
    }
    sink += sum + peak;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRingSamples));
}
BENCHMARK(BM_SweepStats_Row);

void BM_SweepStats_Columnar(benchmark::State& state) {
  const auto store = make_filled_store<monitor::ColumnarSampleStore>();
  double sink = 0.0;
  for (auto _ : state) {
    double sum = 0.0, peak = 0.0;
    const auto seg = store.best_w_segments(0, store.size());
    for (const std::span<const double> span : {seg.first, seg.second}) {
      for (const double w : span) {
        sum += w;
        peak = std::max(peak, w);
      }
    }
    sink += sum + peak;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRingSamples));
}
BENCHMARK(BM_SweepStats_Columnar);

// --- Percentile: p99 of the watt column ------------------------------------

void BM_Percentile_Row(benchmark::State& state) {
  const auto store = make_filled_store<row::RowSampleStore>();
  std::vector<double> watts;
  double sink = 0.0;
  for (auto _ : state) {
    watts.clear();
    watts.reserve(store.size());
    for (std::size_t i = 0; i < store.size(); ++i) {
      watts.push_back(store.get(i).best_node_w());
    }
    const std::size_t k = watts.size() * 99 / 100;
    std::nth_element(watts.begin(), watts.begin() + k, watts.end());
    sink += watts[k];
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRingSamples));
}
BENCHMARK(BM_Percentile_Row);

void BM_Percentile_Columnar(benchmark::State& state) {
  const auto store = make_filled_store<monitor::ColumnarSampleStore>();
  std::vector<double> watts;
  double sink = 0.0;
  for (auto _ : state) {
    store.copy_best_w(0, store.size(), watts);
    const std::size_t k = watts.size() * 99 / 100;
    std::nth_element(watts.begin(), watts.begin() + k, watts.end());
    sink += watts[k];
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRingSamples));
}
BENCHMARK(BM_Percentile_Columnar);

// --- Window query: stats over [start, end] ---------------------------------
//
// A 4096-sample window out of the 64k ring. The row path must scan
// timestamps linearly (the seed behavior); the columnar path binary
// searches the timestamp column and sweeps two contiguous spans.

void BM_WindowQuery_Row(benchmark::State& state) {
  const auto store = make_filled_store<row::RowSampleStore>();
  const double start = store.get(store.size() / 2).timestamp_s;
  const double end = start + 2.0 * 4096.0;
  double sink = 0.0;
  for (auto _ : state) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < store.size(); ++i) {
      const hwsim::PowerSample& s = store.get(i);
      if (s.timestamp_s < start || s.timestamp_s > end) continue;
      sum += s.best_node_w();
      ++n;
    }
    sink += sum / static_cast<double>(n);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRingSamples));
}
BENCHMARK(BM_WindowQuery_Row);

void BM_WindowQuery_Columnar(benchmark::State& state) {
  const auto store = make_filled_store<monitor::ColumnarSampleStore>();
  const double start = store.timestamp_at(store.size() / 2);
  const double end = start + 2.0 * 4096.0;
  double sink = 0.0;
  for (auto _ : state) {
    const auto [lo, hi] = store.window_range(start, end);
    double sum = 0.0;
    const auto seg = store.best_w_segments(lo, hi);
    for (const std::span<const double> span : {seg.first, seg.second}) {
      for (const double w : span) sum += w;
    }
    sink += sum / static_cast<double>(hi - lo);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRingSamples));
}
BENCHMARK(BM_WindowQuery_Columnar);

// --- find_period: copying estimator vs consume variant ---------------------
//
// Both variants start from a freshly materialized watt column (what the
// FPP estimator sees after copy_best_w); the consume variant detrends,
// windows and pads that buffer in place instead of copying it again.

void BM_FindPeriod_Copy(benchmark::State& state) {
  const auto store = make_filled_store<monitor::ColumnarSampleStore>();
  std::vector<double> watts;
  double sink = 0.0;
  for (auto _ : state) {
    store.copy_best_w(store.size() - 2048, store.size(), watts);
    const auto est = dsp::find_period(watts, 2.0);
    sink += est ? est->period_s : 0.0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_FindPeriod_Copy);

void BM_FindPeriod_Consume(benchmark::State& state) {
  const auto store = make_filled_store<monitor::ColumnarSampleStore>();
  std::vector<double> watts;
  double sink = 0.0;
  for (auto _ : state) {
    store.copy_best_w(store.size() - 2048, store.size(), watts);
    const auto est = dsp::find_period_consume(watts, 2.0);
    sink += est ? est->period_s : 0.0;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_FindPeriod_Consume);

// --- Merge bytes per hop: full re-merge vs delta aggregation ---------------
//
// A live 16-node TBON stack answering the same repeated root window query.
// Every broker's fluxpower_monitor_merge_bytes_total counts the samples it
// ships upward per merge; summed over the tree that is the query's
// hop-weighted payload. Arg 0 = full re-merge, arg 1 = delta aggregation
// (one warm-up query first, so the measured region is steady state — the
// first delta query is a full resync and ships everything). The acceptance
// gate is bytes_per_query(delta) strictly below bytes_per_query(full).

void BM_MergeBytesPerQuery(benchmark::State& state) {
  const bool delta = state.range(0) != 0;
  constexpr int kNodes = 16;
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, kNodes);
  std::vector<hwsim::Node*> ptrs;
  for (int i = 0; i < kNodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::InstanceConfig icfg;
  icfg.tbon_fanout = 2;
  flux::Instance instance(sim, std::move(ptrs), icfg);
  monitor::PowerMonitorConfig mcfg = monitor::PowerMonitorConfig::for_lassen();
  mcfg.archive_jobs = false;
  mcfg.delta_aggregation = delta;
  instance.load_module_on_all<monitor::PowerMonitorModule>(mcfg);
  std::vector<flux::Rank> ranks;
  for (int r = 0; r < kNodes; ++r) ranks.push_back(r);
  monitor::MonitorClient client(instance);

  // Bytes shipped at every broker's upward merge, and the interior subset
  // (every hop but the root's final client-facing serve — the root always
  // ships the full windowed answer, so the interior hops are where delta
  // vs full differ).
  auto merge_bytes = [&](bool interior_only) {
    double total = 0.0;
    for (int r = interior_only ? 1 : 0; r < kNodes; ++r) {
      total += instance.broker(r)
                   .metrics()
                   .value("fluxpower_monitor_merge_bytes_total")
                   .value_or(0.0);
    }
    return total;
  };
  auto query = [&] {
    client.query_window_blocking(ranks, sim.now() - 120.0, sim.now());
  };

  sim.run_until(180.0);
  query();  // delta resync: the first delta query ships everything retained
  const double bytes_before = merge_bytes(false);
  const double interior_before = merge_bytes(true);
  for (auto _ : state) {
    sim.run_until(sim.now() + 10.0);  // 5 fresh samples per node
    query();
  }
  const double queries = static_cast<double>(state.iterations());
  const double per_query = (merge_bytes(false) - bytes_before) / queries;
  const double interior = (merge_bytes(true) - interior_before) / queries;
  state.counters["merge_bytes_per_query"] = per_query;
  state.counters["interior_bytes_per_query"] = interior;
  state.counters["samples_per_query"] =
      per_query / static_cast<double>(sizeof(hwsim::PowerSample));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergeBytesPerQuery)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("delta")
    ->Unit(benchmark::kMillisecond);

// --- Cap fan-out: per-rank pushes vs batched subtree waves -----------------
//
// A 32-node stack with one full-cluster job and a 5 s limit refresh. Each
// bench iteration covers one refresh wave; the journal yields the root's
// request fan-out and the wave's hop-weighted message count. Batching
// bounds the former by the tree fanout and makes every message cross
// exactly one edge.

void BM_CapFanOut(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  constexpr int kNodes = 32;
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, kNodes);
  std::vector<hwsim::Node*> ptrs;
  for (int i = 0; i < kNodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::InstanceConfig icfg;
  icfg.tbon_fanout = 2;
  flux::Instance instance(sim, std::move(ptrs), icfg);
  apps::LauncherOptions lopts;
  lopts.platform = hwsim::Platform::LassenIbmAc922;
  instance.jobs().set_launcher(apps::make_launcher(lopts));
  flux::MessageJournal journal;
  instance.attach_journal(&journal);
  manager::PowerManagerConfig cfg;
  cfg.cluster_power_bound_w = 1200.0 * kNodes;
  cfg.node_policy = manager::NodePolicy::DirectGpuBudget;
  cfg.limit_refresh_s = 5.0;
  cfg.batch_limit_pushes = batched;
  instance.load_module_on_all<manager::PowerManagerModule>(cfg);
  flux::JobSpec spec;
  spec.name = "gemm";
  spec.app = "gemm";
  spec.nnodes = kNodes;
  spec.attributes = util::Json::object();
  spec.attributes["work_scale"] = 50.0;
  instance.jobs().submit(spec);
  sim.run_until(12.0);  // allocation wave done, refresh cadence running

  const flux::Tbon& tbon = instance.tbon();
  const std::size_t journal_before = journal.size();
  for (auto _ : state) {
    sim.run_until(sim.now() + 5.0);  // one refresh wave
  }
  std::uint64_t root_requests = 0;
  std::uint64_t hops = 0;
  for (std::size_t i = journal_before; i < journal.size(); ++i) {
    const flux::Message& m = journal.entry(i).msg;
    if (m.topic != manager::kSetNodeLimitTopic &&
        m.topic != manager::kSetNodeLimitBatchTopic) {
      continue;
    }
    hops += static_cast<std::uint64_t>(
        std::max(1, tbon.hops(m.sender, m.dest)));
    if (m.sender == flux::kRootRank && m.dest != flux::kRootRank &&
        m.type == flux::Message::Type::Request) {
      ++root_requests;
    }
  }
  const double waves = static_cast<double>(state.iterations());
  state.counters["root_fanout_per_wave"] =
      static_cast<double>(root_requests) / waves;
  state.counters["push_hops_per_wave"] = static_cast<double>(hops) / waves;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CapFanOut)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("batched")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to machine-readable output alongside the console report, unless
  // the caller chose their own output file.
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_monitor.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
