// Microbenchmarks for the discrete-event engine, the throughput ceiling of
// every experiment in this repository (2 s monitor sweeps on every node,
// TBON message delivery, cap-latency callbacks, app-runtime steps all
// funnel through sim::Simulation).
//
// Four workloads, in events/s:
//   * schedule-fire    — one-shot events scheduled then drained
//   * schedule-cancel  — half the scheduled events cancelled before firing
//   * periodic re-arm  — steady-state PeriodicTask firing (the monitor-sweep
//                        shape); also reports heap allocations per event via
//                        a bench-local operator-new counter
//   * mixed stack      — cluster + TBON instance + power monitor on every
//                        broker + broadcast traffic at 128/1k/8k nodes
//
// The `legacy` namespace is a line-faithful replica of the seed engine
// (std::function callbacks in an unordered_map, binary heap of ids) so the
// before/after comparison is carried inside one binary and one JSON file.
//
// Unless the caller passes its own --benchmark_out, results are written to
// BENCH_sim.json (google-benchmark JSON format).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <new>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "flux/instance.hpp"
#include "flux/tbon.hpp"
#include "hwsim/cluster.hpp"
#include "monitor/power_monitor.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulation.hpp"
#include "util/json.hpp"

// --- Allocation counter ----------------------------------------------------
//
// Counts every operator-new in the process. Benches snapshot the counter
// around the timed region to report allocations per event; the acceptance
// gate for the pooled engine is zero on the periodic re-arm path.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

using namespace fluxpower;

namespace legacy {

// Replica of the seed engine (pre-pool, pre-wheel) for the before/after
// comparison: one std::function heap allocation, one unordered_map insert,
// one find+erase, and one heap push/pop per event.
using Time = double;
using EventId = std::uint64_t;

class Simulation {
 public:
  Time now() const noexcept { return now_; }

  EventId schedule_at(Time t, std::function<void()> fn) {
    const EventId id = next_id_++;
    queue_.push(QueueEntry{t, next_seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }
  EventId schedule_after(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  bool cancel(EventId id) { return callbacks_.erase(id) > 0; }

  bool step() {
    while (!queue_.empty()) {
      QueueEntry entry = queue_.top();
      queue_.pop();
      auto it = callbacks_.find(entry.id);
      if (it == callbacks_.end()) continue;
      std::function<void()> fn = std::move(it->second);
      callbacks_.erase(it);
      now_ = entry.time;
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  void run_until(Time t) {
    while (!queue_.empty()) {
      const QueueEntry& top = queue_.top();
      if (!callbacks_.contains(top.id)) {
        queue_.pop();
        continue;
      }
      if (top.time > t) break;
      step();
    }
    if (now_ < t) now_ = t;
  }

  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct QueueEntry {
    Time time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      queue_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

class PeriodicTask {
 public:
  PeriodicTask(Simulation& sim, Time period, std::function<bool()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {
    arm(period_);
  }
  ~PeriodicTask() { stop(); }

  void stop() {
    running_ = false;
    if (pending_ != 0) {
      sim_.cancel(pending_);
      pending_ = 0;
    }
  }

 private:
  void arm(Time delay) {
    pending_ = sim_.schedule_after(delay, [this] {
      pending_ = 0;
      if (!running_) return;
      if (fn_()) {
        arm(period_);
      } else {
        running_ = false;
      }
    });
  }

  Simulation& sim_;
  Time period_;
  std::function<bool()> fn_;
  EventId pending_ = 0;
  bool running_ = true;
};

}  // namespace legacy

namespace {

// --- Schedule-fire: the raw one-shot event cycle ---------------------------
//
// Delays cycle through [0, 16 s) in 0.25 s steps so pooled runs exercise
// both the timer-wheel near buckets and ordinary in-epoch placement; heap
// runs see the same (time, seq) stream.

template <typename Sim>
void run_schedule_fire(benchmark::State& state) {
  constexpr int kBatch = 4096;
  Sim sim;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sim.schedule_after(0.25 * static_cast<double>(i % 64),
                         [&sink] { ++sink; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_ScheduleFire_Legacy(benchmark::State& state) {
  run_schedule_fire<legacy::Simulation>(state);
}
BENCHMARK(BM_ScheduleFire_Legacy);

void BM_ScheduleFire_Pooled(benchmark::State& state) {
  run_schedule_fire<sim::Simulation>(state);
}
BENCHMARK(BM_ScheduleFire_Pooled);

// --- Schedule-cancel: module unload / RPC-timeout churn --------------------

template <typename Sim>
void run_schedule_cancel(benchmark::State& state) {
  constexpr int kBatch = 4096;
  Sim sim;
  std::vector<std::uint64_t> ids(kBatch);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      ids[static_cast<std::size_t>(i)] = sim.schedule_after(
          0.25 * static_cast<double>(i % 64), [&sink] { ++sink; });
    }
    for (int i = 0; i < kBatch; i += 2) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_ScheduleCancel_Legacy(benchmark::State& state) {
  run_schedule_cancel<legacy::Simulation>(state);
}
BENCHMARK(BM_ScheduleCancel_Legacy);

void BM_ScheduleCancel_Pooled(benchmark::State& state) {
  run_schedule_cancel<sim::Simulation>(state);
}
BENCHMARK(BM_ScheduleCancel_Pooled);

// --- Periodic re-arm: the monitor-sweep shape ------------------------------
//
// 64 tasks at the monitor's 2 s period, run in steady state. Reports heap
// allocations per fired event; the pooled engine's re-arm path must be zero
// once the wheel/pool reach steady-state capacity.

template <typename Sim, typename Periodic>
void run_periodic_rearm(benchmark::State& state) {
  constexpr int kTasks = 64;
  constexpr double kPeriod = 2.0;
  constexpr double kWindow = 64 * kPeriod;
  // The pooled engine's wheel epoch is 1024 s: first touch of each bucket
  // grows its vector once. Warm past a full epoch so the measured region
  // sees only recycled capacity.
  constexpr double kWarmup = 1536.0;
  Sim sim;
  std::uint64_t fired = 0;
  std::vector<std::unique_ptr<Periodic>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<Periodic>(sim, kPeriod, [&fired] {
      ++fired;
      return true;
    }));
  }
  sim.run_until(sim.now() + kWarmup);  // warm up pool/wheel/map capacity
  const std::uint64_t fired_before = fired;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    sim.run_until(sim.now() + kWindow);
  }
  const std::uint64_t events = fired - fired_before;
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["heap_allocs_per_event"] =
      events == 0 ? 0.0
                  : static_cast<double>(allocs) / static_cast<double>(events);
}

void BM_PeriodicRearm_Legacy(benchmark::State& state) {
  run_periodic_rearm<legacy::Simulation, legacy::PeriodicTask>(state);
}
BENCHMARK(BM_PeriodicRearm_Legacy);

void BM_PeriodicRearm_Pooled(benchmark::State& state) {
  run_periodic_rearm<sim::Simulation, sim::PeriodicTask>(state);
}
BENCHMARK(BM_PeriodicRearm_Pooled);

// --- Mixed whole-stack workload --------------------------------------------
//
// The cluster-scale shape every experiment runs: N nodes, one broker each in
// the TBON, the power monitor sampling every 2 s on every broker, and a
// 10 s broadcast heartbeat fanning a delivery event to all N brokers. The
// metric is simulator events per second of host time. Seed-engine numbers
// for this bench are recorded in EXPERIMENTS.md ("Event engine" section).

void BM_MixedStack(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, nodes);
  std::vector<hwsim::Node*> ptrs;
  ptrs.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::Instance instance(sim, std::move(ptrs));
  monitor::PowerMonitorConfig config = monitor::PowerMonitorConfig::for_lassen();
  config.buffer_capacity = 256;  // bound resident memory at 8k nodes
  config.archive_jobs = false;
  instance.load_module_on_all<monitor::PowerMonitorModule>(config);
  sim::PeriodicTask heartbeat(sim, 10.0, [&] {
    instance.root().publish_event("bench.heartbeat", util::Json::object());
    return true;
  });
  sim.run_until(20.0);  // fill buffers/wheel to steady state
  std::uint64_t executed_before = sim.events_executed();
  for (auto _ : state) {
    sim.run_until(sim.now() + 20.0);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.events_executed() - executed_before));
}
BENCHMARK(BM_MixedStack)->Arg(128)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// --- Sharded whole-stack workload ------------------------------------------
//
// The same cluster + TBON + monitor + heartbeat shape, but run on the
// sharded engine: fanout-16 TBON, the 16 root cells dealt round-robin over
// `shards` islands advanced by `shards` worker threads under the
// conservative window barrier. Counters per row:
//   events_per_sec               — whole-stack simulator throughput
//   events_per_sec_per_core      — normalized by the worker count (the flat
//                                  line that shows barrier overhead stays
//                                  bounded as shards grow)
//   scaling_efficiency_vs_1shard — evps(S) / (S * evps(1)); 1.0 is perfect
//                                  linear scaling (needs >= S hardware cores
//                                  to be meaningful)
//   windows / cross_island_posts — conservative-barrier work volume
// Args: (nodes, shards). The 65536-node rows are the whole-site scale the
// paper's production argument targets; CI's bench-smoke lane runs one.

void BM_ShardedStack(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  flux::InstanceConfig icfg;
  icfg.tbon_fanout = 16;  // 16 root cells: shard counts 1/2/4/8 divide evenly
  const flux::Tbon tbon(nodes, icfg.tbon_fanout);
  const std::vector<flux::Rank> cells = tbon.children(0);
  const int islands = std::min<int>(shards, static_cast<int>(cells.size()));
  std::vector<int> island_of(static_cast<std::size_t>(nodes), 0);
  for (std::size_t j = 0; j < cells.size(); ++j) {
    for (flux::Rank r : tbon.subtree(cells[j])) {
      island_of[static_cast<std::size_t>(r)] = static_cast<int>(j) % islands;
    }
  }
  sim::ShardedEngine engine(islands, shards, icfg.hop_latency_s);
  hwsim::Cluster cluster = hwsim::make_cluster(
      [&](int r) -> sim::Simulation& {
        return engine.island(island_of[static_cast<std::size_t>(r)]);
      },
      hwsim::Platform::LassenIbmAc922, nodes);
  std::vector<hwsim::Node*> ptrs;
  ptrs.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::Instance instance(engine, island_of, std::move(ptrs), icfg);
  monitor::PowerMonitorConfig config = monitor::PowerMonitorConfig::for_lassen();
  config.buffer_capacity = nodes >= 65536 ? 16 : 256;  // bound memory
  config.archive_jobs = false;
  instance.load_module_on_all<monitor::PowerMonitorModule>(config);
  sim::PeriodicTask heartbeat(engine.island(0), 10.0, [&] {
    instance.root().publish_event("bench.heartbeat", util::Json::object());
    return true;
  });
  engine.advance_until(20.0);  // fill buffers/wheels to steady state
  const std::uint64_t executed_before = engine.total_events_executed();
  const std::uint64_t windows_before = engine.windows_executed();
  const std::uint64_t posts_before = engine.posts_delivered();
  double elapsed_s = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    engine.advance_until(engine.now() + 20.0);
    elapsed_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  const std::uint64_t events = engine.total_events_executed() - executed_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  const double evps =
      elapsed_s > 0.0 ? static_cast<double>(events) / elapsed_s : 0.0;
  // shards=1 rows run first for each node count, so the baseline is always
  // present when the multi-shard rows compute their efficiency.
  static std::map<int, double> baseline_evps;
  if (shards == 1) baseline_evps[nodes] = evps;
  state.counters["events_per_sec"] = evps;
  state.counters["events_per_sec_per_core"] =
      evps / static_cast<double>(shards);
  const auto base = baseline_evps.find(nodes);
  state.counters["scaling_efficiency_vs_1shard"] =
      (base != baseline_evps.end() && base->second > 0.0)
          ? evps / (static_cast<double>(shards) * base->second)
          : 0.0;
  const double iters = static_cast<double>(std::max<std::int64_t>(
      static_cast<std::int64_t>(state.iterations()), 1));
  state.counters["windows_per_iter"] =
      static_cast<double>(engine.windows_executed() - windows_before) / iters;
  state.counters["cross_island_posts_per_iter"] =
      static_cast<double>(engine.posts_delivered() - posts_before) / iters;
}
BENCHMARK(BM_ShardedStack)
    ->Args({8192, 1})->Args({8192, 2})->Args({8192, 4})->Args({8192, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedStack)
    ->Args({65536, 1})->Args({65536, 2})->Args({65536, 4})->Args({65536, 8})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to machine-readable output alongside the console report, unless
  // the caller chose their own output file.
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_sim.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
