// Microbenchmarks across the stack: the telemetry data plane typed-vs-JSON
// (sample → ring-buffer store → subtree aggregate, both ways), Variorum
// JSON encode/decode at the edges, Flux RPC round-trip through the
// simulated TBON, and the simulator's raw event throughput. Together these
// justify the "low overhead" telemetry claim — a sample costs microseconds
// of host CPU against a 2 s period — and quantify the typed data plane's
// win over the historical JSON-everywhere plane.
//
// Unless the caller passes its own --benchmark_out, results are also
// written to BENCH_stack.json (google-benchmark JSON format) so the perf
// trajectory is machine-readable run over run.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "flux/instance.hpp"
#include "flux/telemetry.hpp"
#include "hwsim/cluster.hpp"
#include "monitor/client.hpp"
#include "monitor/power_monitor.hpp"
#include "util/ring_buffer.hpp"
#include "variorum/variorum.hpp"

using namespace fluxpower;

namespace {

/// Approximate resident memory of a util::Json tree: the variant nodes plus
/// string storage plus container payloads. Used to compare the in-memory
/// cost of one JSON telemetry sample against sizeof(PowerSample).
std::size_t approx_json_memory_bytes(const util::Json& j) {
  std::size_t bytes = sizeof(util::Json);
  if (j.is_string()) {
    bytes += j.as_string().capacity();
  } else if (j.is_array()) {
    for (const util::Json& v : j.as_array()) bytes += approx_json_memory_bytes(v);
  } else if (j.is_object()) {
    for (const auto& [key, value] : j.as_object()) {
      bytes += sizeof(std::string) + key.capacity();
      bytes += approx_json_memory_bytes(value);
    }
  }
  return bytes;
}

// --- Typed vs JSON: the sample → store → aggregate hot path ---------------
//
// Models one node-agent tick plus its share of a window aggregation, the
// loop the monitor runs every 2 s on every node: read the sensors, store
// the sample, and (amortized) contribute it to a TBON merge that the client
// consumes as typed data. The JSON variant is the historical data plane:
// render to util::Json, store the object, copy it into the merged entry and
// parse it back to typed at the consumer.

void BM_SampleStoreAggregateJson(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  util::RingBuffer<util::Json> buffer(100000);
  double acc = 0.0;
  for (auto _ : state) {
    buffer.push(variorum::get_node_power_json(node));     // sample + store
    util::Json merged = util::Json::array();              // TBON contribution
    merged.push_back(buffer.back());
    const hwsim::PowerSample s =                          // consumer decode
        variorum::parse_node_power_json(merged[0]);
    acc += s.best_node_w();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["per_sample_bytes"] = static_cast<double>(
      approx_json_memory_bytes(variorum::get_node_power_json(node)));
}
BENCHMARK(BM_SampleStoreAggregateJson);

void BM_SampleStoreAggregateTyped(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  util::RingBuffer<hwsim::PowerSample> buffer(100000);
  double acc = 0.0;
  for (auto _ : state) {
    buffer.push(variorum::get_node_power_sample(node));   // sample + store
    flux::TelemetryNodeEntry entry;                       // TBON contribution
    entry.samples.push_back(buffer.back());
    acc += entry.samples.front().best_node_w();           // consumer read
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["per_sample_bytes"] =
      static_cast<double>(sizeof(hwsim::PowerSample));
}
BENCHMARK(BM_SampleStoreAggregateTyped);

// --- Typed vs JSON: a full window query through the instance --------------

void run_window_query_bench(benchmark::State& state, bool typed) {
  const int nodes = 8;
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, nodes);
  std::vector<hwsim::Node*> ptrs;
  for (int i = 0; i < nodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::Instance instance(sim, std::move(ptrs));
  instance.load_module_on_all<monitor::PowerMonitorModule>(
      monitor::PowerMonitorConfig::for_lassen());
  sim.run_until(200.0);  // fill the buffers with ~100 samples per node
  monitor::MonitorClient client(instance);
  client.set_typed_protocol(typed);
  std::vector<flux::Rank> ranks;
  for (int i = 0; i < nodes; ++i) ranks.push_back(i);
  for (auto _ : state) {
    auto window = client.query_window_blocking(ranks, 0.0, 200.0);
    benchmark::DoNotOptimize(window);
  }
  state.SetItemsProcessed(state.iterations() * nodes * 100);
}

void BM_MonitorWindowQueryJson(benchmark::State& state) {
  run_window_query_bench(state, /*typed=*/false);
}
BENCHMARK(BM_MonitorWindowQueryJson);

void BM_MonitorWindowQueryTyped(benchmark::State& state) {
  run_window_query_bench(state, /*typed=*/true);
}
BENCHMARK(BM_MonitorWindowQueryTyped);

// --- Edge costs: Variorum JSON render and parse ---------------------------

void BM_VariorumGetNodePowerJson(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  for (auto _ : state) {
    auto j = variorum::get_node_power_json(node);
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_VariorumGetNodePowerJson);

void BM_VariorumGetNodePowerSample(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  for (auto _ : state) {
    auto s = variorum::get_node_power_sample(node);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_VariorumGetNodePowerSample);

void BM_TelemetryJsonRoundTrip(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  const std::string text = variorum::get_node_power_json(node).dump();
  for (auto _ : state) {
    auto sample = variorum::parse_node_power_json(util::Json::parse(text));
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_TelemetryJsonRoundTrip);

void BM_RingBufferPush(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  util::RingBuffer<hwsim::PowerSample> buffer(100000);
  const hwsim::PowerSample sample = variorum::get_node_power_sample(node);
  for (auto _ : state) {
    buffer.push(sample);
    benchmark::DoNotOptimize(buffer);
  }
}
BENCHMARK(BM_RingBufferPush);

void BM_FluxRpcRoundTrip(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, nodes);
  std::vector<hwsim::Node*> ptrs;
  for (int i = 0; i < nodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::Instance instance(sim, std::move(ptrs));
  const flux::Rank leaf = nodes - 1;
  instance.broker(leaf).register_service(
      "echo", [&](const flux::Message& req) {
        instance.broker(leaf).respond(req, util::Json::object());
      });
  for (auto _ : state) {
    bool done = false;
    instance.root().rpc(leaf, "echo", util::Json::object(),
                        [&](const flux::Message&) { done = true; });
    while (!done) sim.step();
  }
}
BENCHMARK(BM_FluxRpcRoundTrip)->Arg(8)->Arg(64)->Arg(256);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_SimulationEventThroughput);

void BM_MonitorSampleSweep(benchmark::State& state) {
  // Cost of one node-agent sampling tick including the Variorum read and
  // buffer store, via 100 simulated seconds of sampling.
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, 1);
  std::vector<hwsim::Node*> ptrs{&cluster.node(0)};
  flux::Instance instance(sim, std::move(ptrs));
  instance.load_module_on_all<monitor::PowerMonitorModule>(
      monitor::PowerMonitorConfig::for_lassen());
  for (auto _ : state) {
    sim.run_until(sim.now() + 100.0);
  }
}
BENCHMARK(BM_MonitorSampleSweep);

}  // namespace

int main(int argc, char** argv) {
  // Default to machine-readable output alongside the console report, unless
  // the caller chose their own output file.
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_stack.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
