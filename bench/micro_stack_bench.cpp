// Microbenchmarks across the stack: Variorum JSON encode/decode (the
// telemetry hot path — one object per node per 2 s), monitor buffer push,
// Flux RPC round-trip through the simulated TBON, and the simulator's raw
// event throughput. Together these justify the "low overhead" telemetry
// claim: a sample costs microseconds of host CPU against a 2 s period.
#include <benchmark/benchmark.h>

#include "flux/instance.hpp"
#include "hwsim/cluster.hpp"
#include "monitor/power_monitor.hpp"
#include "util/ring_buffer.hpp"
#include "variorum/variorum.hpp"

using namespace fluxpower;

namespace {

void BM_VariorumGetNodePowerJson(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  for (auto _ : state) {
    auto j = variorum::get_node_power_json(node);
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_VariorumGetNodePowerJson);

void BM_TelemetryJsonRoundTrip(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  const std::string text = variorum::get_node_power_json(node).dump();
  for (auto _ : state) {
    auto sample = variorum::parse_node_power_json(util::Json::parse(text));
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_TelemetryJsonRoundTrip);

void BM_RingBufferPush(benchmark::State& state) {
  sim::Simulation sim;
  hwsim::IbmAc922Node node(sim, "lassen0");
  util::RingBuffer<util::Json> buffer(100000);
  const util::Json sample = variorum::get_node_power_json(node);
  for (auto _ : state) {
    buffer.push(sample);
    benchmark::DoNotOptimize(buffer);
  }
}
BENCHMARK(BM_RingBufferPush);

void BM_FluxRpcRoundTrip(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, nodes);
  std::vector<hwsim::Node*> ptrs;
  for (int i = 0; i < nodes; ++i) ptrs.push_back(&cluster.node(i));
  flux::Instance instance(sim, std::move(ptrs));
  const flux::Rank leaf = nodes - 1;
  instance.broker(leaf).register_service(
      "echo", [&](const flux::Message& req) {
        instance.broker(leaf).respond(req, util::Json::object());
      });
  for (auto _ : state) {
    bool done = false;
    instance.root().rpc(leaf, "echo", util::Json::object(),
                        [&](const flux::Message&) { done = true; });
    while (!done) sim.step();
  }
}
BENCHMARK(BM_FluxRpcRoundTrip)->Arg(8)->Arg(64)->Arg(256);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_SimulationEventThroughput);

void BM_MonitorSampleSweep(benchmark::State& state) {
  // Cost of one node-agent sampling tick including the Variorum read and
  // buffer store, via 100 simulated seconds of sampling.
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, 1);
  std::vector<hwsim::Node*> ptrs{&cluster.node(0)};
  flux::Instance instance(sim, std::move(ptrs));
  instance.load_module_on_all<monitor::PowerMonitorModule>(
      monitor::PowerMonitorConfig::for_lassen());
  for (auto _ : state) {
    sim.run_until(sim.now() + 100.0);
  }
}
BENCHMARK(BM_MonitorSampleSweep);

}  // namespace

BENCHMARK_MAIN();
