// Micro benchmarks for the digital-twin serving plane: snapshot capture
// cost and wire size, codec throughput, verified-replay restore latency,
// fork handle creation rate (the COW part — should be O(1) and allocation
// light), and end-to-end what-if query latency through the TwinServer with
// p50/p99 interpolated from the server's own obs::Histogram buckets.
//
// Emits BENCH_twin.json (google-benchmark JSON) unless the caller passes
// their own --benchmark_out.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "twin/server.hpp"

namespace {

using namespace fluxpower;

twin::TwinSpec bench_spec(bool chaos) {
  twin::TwinSpec spec;
  spec.scenario.nodes = 8;
  spec.scenario.load_manager = true;
  spec.scenario.manager.cluster_power_bound_w = 9600.0;
  spec.scenario.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  spec.scenario.manager.limit_refresh_s = 20.0;
  if (chaos) {
    faultsim::FaultPlaneConfig f;
    f.seed = 17;
    f.msg_drop_rate = 0.05;
    f.node_mtbf_s = 400.0;
    f.node_reboot_s = 20.0;
    f.cap_write_failure_rate = 0.1;
    spec.scenario.faults = f;
  }
  experiments::JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 1.2;
  spec.jobs.push_back(gemm);
  experiments::JobRequest lammps;
  lammps.kind = apps::AppKind::Lammps;
  lammps.nnodes = 2;
  lammps.work_scale = 1.5;
  lammps.submit_time_s = 15.0;
  spec.jobs.push_back(lammps);
  spec.max_time_s = 2400.0;
  return spec;
}

std::shared_ptr<const twin::Snapshot> bench_snapshot(bool chaos,
                                                     double t_snap) {
  twin::TwinSession session(bench_spec(chaos));
  session.advance_to(t_snap);
  return std::make_shared<const twin::Snapshot>(
      twin::Snapshot::capture(session));
}

/// Linear interpolation inside the winning bucket, Prometheus-style.
double percentile(const obs::Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  double lo = 0.0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    const std::uint64_t in_bucket = h.count_in(i);
    if (static_cast<double>(cum + in_bucket) >= target) {
      const double hi = h.bound(i);
      if (in_bucket == 0) return hi;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
    lo = h.bound(i);
  }
  return lo;  // landed in +Inf: report the last finite bound
}

void BM_SnapshotCapture(benchmark::State& state) {
  const bool chaos = state.range(0) != 0;
  twin::TwinSession session(bench_spec(chaos));
  session.advance_to(120.0);
  std::size_t bytes = 0;
  for (auto _ : state) {
    twin::Snapshot snap = twin::Snapshot::capture(session);
    bytes = snap.encode().size();
    benchmark::DoNotOptimize(snap.state_digest());
  }
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_SnapshotCapture)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("chaos")
    ->Unit(benchmark::kMicrosecond);

void BM_SnapshotEncodeDecode(benchmark::State& state) {
  auto snap = bench_snapshot(/*chaos=*/true, 120.0);
  const std::vector<std::uint8_t> wire = snap->encode();
  for (auto _ : state) {
    const std::vector<std::uint8_t> encoded = snap->encode();
    const twin::Snapshot decoded = twin::Snapshot::decode(encoded);
    benchmark::DoNotOptimize(decoded.state_digest());
  }
  state.counters["wire_bytes"] =
      benchmark::Counter(static_cast<double>(wire.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()) * 2);
}
BENCHMARK(BM_SnapshotEncodeDecode)->Unit(benchmark::kMicrosecond);

void BM_SnapshotRestore(benchmark::State& state) {
  // Verified replay restore: rebuild from spec, fast-forward to t, check
  // every section byte-for-byte. Cost scales with t, so report both a
  // shallow and a deep snapshot.
  const double t_snap = static_cast<double>(state.range(0));
  auto snap = bench_snapshot(/*chaos=*/false, t_snap);
  for (auto _ : state) {
    std::unique_ptr<twin::TwinSession> restored = snap->restore();
    benchmark::DoNotOptimize(restored->now());
  }
  state.counters["t_snap_s"] = benchmark::Counter(t_snap);
}
BENCHMARK(BM_SnapshotRestore)
    ->Arg(30)
    ->Arg(240)
    ->ArgName("t_snap")
    ->Unit(benchmark::kMillisecond);

void BM_ForkCreate(benchmark::State& state) {
  // Handle creation only — the COW promise: no replay, no allocation of
  // simulation state, just a shared_ptr bump and an overlay copy.
  auto snap = bench_snapshot(/*chaos=*/false, 120.0);
  twin::TwinFork parent(snap);
  parent.add({.kind = twin::Perturbation::Kind::BudgetScale,
              .at_s = 150.0,
              .value = 0.8});
  for (auto _ : state) {
    twin::TwinFork child = parent.fork();
    child.add({.kind = twin::Perturbation::Kind::BudgetSet,
               .at_s = 200.0,
               .value = 5000.0});
    benchmark::DoNotOptimize(child.overlay().size());
  }
  state.SetItemsProcessed(state.iterations());  // forks/sec in the report
}
BENCHMARK(BM_ForkCreate);

void BM_WhatIfQuery(benchmark::State& state) {
  // End-to-end query latency through the serving plane: fork, verified
  // restore, perturb, fast-forward ~2000 s of sim time, diff vs baseline.
  const int workers = static_cast<int>(state.range(0));
  auto snap = bench_snapshot(/*chaos=*/false, 120.0);
  twin::TwinServer server(snap, workers);
  server.baseline();  // pay the one-time baseline outside the timed loop

  const twin::WhatIfQuery queries[3] = {
      {"budget-drop-20pct",
       {{.kind = twin::Perturbation::Kind::BudgetScale,
         .at_s = 150.0,
         .value = 0.8}}},
      {"node-3-dies",
       {{.kind = twin::Perturbation::Kind::NodeKill,
         .at_s = 180.0,
         .rank = 3,
         .down_s = 60.0}}},
      {"hard-cap-6kw",
       {{.kind = twin::Perturbation::Kind::BudgetSet,
         .at_s = 150.0,
         .value = 6000.0}}},
  };
  int i = 0;
  for (auto _ : state) {
    std::vector<std::future<twin::WhatIfResult>> batch;
    batch.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      batch.push_back(server.submit(queries[i++ % 3]));
    }
    for (auto& f : batch) benchmark::DoNotOptimize(f.get().energy_j);
  }
  const obs::Histogram& lat = server.latency_histogram();
  state.counters["query_p50_ms"] =
      benchmark::Counter(percentile(lat, 0.50) * 1e3);
  state.counters["query_p99_ms"] =
      benchmark::Counter(percentile(lat, 0.99) * 1e3);
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK(BM_WhatIfQuery)
    ->Arg(1)
    ->Arg(4)
    ->ArgName("workers")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to machine-readable output alongside the console report, unless
  // the caller chose their own output file.
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_twin.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
