// §IV-E reproduction: impact of proportional sharing and FPP on a real job
// queue — 10 jobs (3 Laghos, 2 Quicksilver, 3 LAMMPS, 2 GEMM; 1-8 nodes
// each) on a 16-node Lassen allocation, FCFS scheduled.
//
// Shape targets (paper): the queue makespan is IDENTICAL under proportional
// sharing and FPP (1539 s), and FPP improves average per-job energy-per-
// node by ~1.26%.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct QueueOutcome {
  double makespan_s = 0.0;
  double avg_energy_per_node_kj = 0.0;
  double total_energy_mj = 0.0;
};

QueueOutcome run_queue(manager::NodePolicy policy, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 16 * 1200.0;  // constrained cluster
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = policy;
  cfg.seed = seed;
  Scenario s(cfg);

  double t = 0.0;
  for (const apps::WorkloadJob& job : apps::paper_queue(seed)) {
    t += job.submit_delay_s;
    JobRequest req;
    req.kind = job.kind;
    req.nnodes = job.nnodes;
    req.work_scale = job.work_scale;
    req.submit_time_s = t;
    s.submit(req);
  }
  auto res = s.run();

  QueueOutcome out;
  out.makespan_s = res.makespan_s;
  util::RunningStats per_job;
  for (const JobResult& j : res.jobs) {
    per_job.add(j.exact_avg_node_energy_j / 1e3);
  }
  out.avg_energy_per_node_kj = per_job.mean();
  out.total_energy_mj = res.total_energy_j / 1e6;
  return out;
}

}  // namespace

int main() {
  bench::banner("Queue (§IV-E)",
                "10-job queue on a 16-node allocation: prop sharing vs FPP");

  constexpr std::uint64_t kSeed = 2024;
  const QueueOutcome prop = run_queue(manager::NodePolicy::DirectGpuBudget, kSeed);
  const QueueOutcome fpp = run_queue(manager::NodePolicy::Fpp, kSeed);

  util::TextTable table({"policy", "makespan s", "avg job energy kJ/node",
                         "cluster energy MJ"});
  table.add_row({"Proportional sharing", bench::num(prop.makespan_s, 0),
                 bench::num(prop.avg_energy_per_node_kj, 1),
                 bench::num(prop.total_energy_mj, 2)});
  table.add_row({"FPP", bench::num(fpp.makespan_s, 0),
                 bench::num(fpp.avg_energy_per_node_kj, 1),
                 bench::num(fpp.total_energy_mj, 2)});
  table.print(std::cout);

  std::printf(
      "makespan delta: %.1f s (paper: identical, 1539 s); FPP energy/job "
      "change: %+.2f%% (paper: -1.26%%)\n",
      fpp.makespan_s - prop.makespan_s,
      (fpp.avg_energy_per_node_kj - prop.avg_energy_per_node_kj) /
          prop.avg_energy_per_node_kj * 100.0);
  bench::note(
      "the queue mix is the paper's (3 Laghos, 2 Quicksilver, 3 LAMMPS, 2 "
      "GEMM; 1-8 nodes each), deterministically shuffled; Flux schedules "
      "FCFS like any regular resource manager.");
  return 0;
}
