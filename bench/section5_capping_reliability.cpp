// §V reproduction: production challenges with vendor power capping.
//
// "On some nodes at a low node-level power cap (1200 W), NVIDIA GPU power
// capping failed intermittently, either picking up the last set power cap
// or defaulting to the maximum power cap."
//
// We inject that failure mode into the Lassen node model and quantify what
// it does to a power-constrained run: silent-failure counts, per-node peak
// power, and nodes exceeding their limit — with and without the OPAL node
// dial as a safety net. This is the paper's argument for why sites
// hesitate to adopt dynamic capping in production.
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "hwsim/ibm_ac922.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

using namespace fluxpower;

namespace {

struct Outcome {
  int silent_failures = 0;
  double worst_peak_w = 0.0;
  int nodes_over_limit = 0;
};

/// 8 nodes under a 1150 W limit, GEMM-like demand, a manager-style NVML
/// cap write (190 W per GPU) every 10 s for 600 s.
Outcome run(double failure_rate, bool opal_safety_net) {
  sim::Simulation sim;
  hwsim::IbmAc922Config hw;
  hw.nvml_failure_rate = failure_rate;
  std::vector<std::unique_ptr<hwsim::IbmAc922Node>> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(std::make_unique<hwsim::IbmAc922Node>(
        sim, "flaky" + std::to_string(i), hw));
  }
  hwsim::LoadDemand demand;
  demand.cpu_w = {110, 110};
  demand.gpu_w = {280, 280, 280, 280};
  demand.mem_w = 70;
  for (auto& n : nodes) {
    if (opal_safety_net) {
      n->set_node_power_cap(1150.0);  // puts NVML in the failure regime too
    } else {
      // Failure regime is keyed on the node cap; emulate "no node dial"
      // platforms by setting the cap then pretending enforcement is NVML
      // only: the failure threshold check uses the cap value.
      n->set_node_power_cap(1150.0);
      n->clear_node_power_cap();
      // Without OPAL the failure mode needs an explicit trigger: re-apply
      // a node cap below threshold is the model's knob, so approximate the
      // NVML-only platform by a cap at the threshold boundary.
      n->set_node_power_cap(1200.0);
    }
    n->set_demand(demand);
  }
  std::vector<double> peaks(8, 0.0);
  sim::PeriodicTask driver(sim, 10.0, [&] {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (int g = 0; g < 4; ++g) nodes[i]->set_gpu_power_cap(g, 190.0);
      peaks[i] = std::max(peaks[i], nodes[i]->node_draw_w());
    }
    return true;
  });
  sim.run_until(600.0);

  Outcome out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out.silent_failures += nodes[i]->nvml_silent_failures();
    out.worst_peak_w = std::max(out.worst_peak_w, peaks[i]);
    if (peaks[i] > 1150.0 + 1.0) ++out.nodes_over_limit;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("§V", "vendor capping reliability under injected NVML failures");

  util::TextTable table({"failure rate", "OPAL node cap", "silent failures",
                         "worst node peak W", "nodes over 1150 W"});
  for (double rate : {0.0, 0.05, 0.15, 0.30}) {
    for (bool opal : {true, false}) {
      const Outcome o = run(rate, opal);
      table.add_row({bench::num(rate, 2), opal ? "1150 W" : "1200 W (loose)",
                     std::to_string(o.silent_failures),
                     bench::num(o.worst_peak_w, 0),
                     std::to_string(o.nodes_over_limit)});
    }
  }
  table.print(std::cout);
  bench::note(
      "a silent NVML failure either keeps the stale cap (benign) or resets "
      "the GPU to 300 W; with the OPAL dial at the target the OCC still "
      "bounds the node, with a looser dial the node bursts past its "
      "intended limit until the next manager control round — the §V "
      "reliability gap that delays production adoption.");
  return 0;
}
