// Table II reproduction: runtime, average per-node power and per-node
// energy for LAMMPS, Laghos and Quicksilver at 4 and 8 nodes on Lassen and
// Tioga. Quicksilver's Tioga numbers carry the HIP-variant anomaly the
// paper reports (expected ~24-28 s from weak scaling, observed 102-106 s);
// like the paper we flag its cross-system energy as not comparable.
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct PaperRow {
  double lassen_t, tioga_t, lassen_w, tioga_w;
  const char* lassen_e;
  const char* tioga_e;
};

// Paper values from Table II (energy in kJ/node; "-" = not reported).
const std::map<std::pair<apps::AppKind, int>, PaperRow> kPaper = {
    {{apps::AppKind::Lammps, 4}, {77.17, 51.00, 1283.74, 1552.40, "99.07", "79.17"}},
    {{apps::AppKind::Lammps, 8}, {46.33, 29.67, 1155.08, 1388.99, "53.51", "41.21"}},
    {{apps::AppKind::Laghos, 4}, {12.55, 26.71, 472.91, 530.87, "5.94", "14.18"}},
    {{apps::AppKind::Laghos, 8}, {12.62, 26.81, 469.59, 532.28, "5.93", "14.27"}},
    {{apps::AppKind::Quicksilver, 4}, {12.78, 102.03, 546.99, 915.82, "-", "-"}},
    {{apps::AppKind::Quicksilver, 8}, {13.63, 106.15, 559.64, 924.85, "-", "-"}},
};

}  // namespace

int main() {
  bench::banner("Table II", "cross-system performance at 4 and 8 nodes");
  util::TextTable table({"app", "nodes", "Lassen t s (paper)",
                         "Tioga t s (paper)", "Lassen W/node (paper)",
                         "Tioga W/node (paper)", "Lassen kJ/node (paper)",
                         "Tioga kJ/node (paper)"});

  for (apps::AppKind kind : {apps::AppKind::Lammps, apps::AppKind::Laghos,
                             apps::AppKind::Quicksilver}) {
    for (int n : {4, 8}) {
      const auto lassen =
          run_single_job(hwsim::Platform::LassenIbmAc922, kind, n);
      const auto tioga =
          run_single_job(hwsim::Platform::TiogaCrayEx235a, kind, n);
      const PaperRow& p = kPaper.at({kind, n});
      const bool qs = kind == apps::AppKind::Quicksilver;
      table.add_row(
          {apps::app_kind_name(kind), std::to_string(n),
           bench::vs(lassen.result.runtime_s, p.lassen_t),
           bench::vs(tioga.result.runtime_s, p.tioga_t) + (qs ? "*" : ""),
           bench::vs(lassen.result.avg_node_power_w, p.lassen_w, 0),
           bench::vs(tioga.result.avg_node_power_w, p.tioga_w, 0),
           qs ? "-" : bench::vs_str(
                          lassen.result.exact_avg_node_energy_j / 1e3,
                          p.lassen_e),
           qs ? "-" : bench::vs_str(tioga.result.exact_avg_node_energy_j / 1e3,
                                    p.tioga_e)});
    }
  }
  table.print(std::cout);
  bench::note(
      "* Quicksilver-on-Tioga reproduces the HIP-variant anomaly (expected "
      "~24-28 s under weak scaling); energy is not compared, as in the paper.");
  bench::note(
      "shape: LAMMPS is faster and lower-energy on Tioga (-21.5% energy in "
      "the paper); Laghos energy/node rises on Tioga because the task count "
      "doubled under weak scaling.");
  return 0;
}
