// Table III reproduction: static power allocation on an 8-node Lassen
// cluster using IBM's node-level power capping. Workload: GEMM on 6 nodes
// (2x iterations) + Quicksilver on 2 nodes (10x problem). For each node cap
// we report IBM's derived per-GPU maximum and the maximum / average
// cluster-level power usage sampled every 2 s.
//
// Shape targets: an unconstrained run peaks far below the 24.4 kW worst
// case (~10.7 kW); at a 1200 W node cap IBM's conservative GPU derivation
// (100 W/GPU) leaves the measured peak (6.05 kW) way under the 9.6 kW
// budget; 1950 W/node is the cap whose measured peak approaches 9.6 kW.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"
#include "hwsim/ibm_ac922.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct Row {
  double node_cap;
  double paper_gpu_cap;
  double paper_max_kw;
  double paper_avg_kw;
  const char* label;
};

}  // namespace

int main() {
  bench::banner("Table III",
                "static allocation, IBM node capping, 8-node Lassen cluster");
  const Row rows[] = {
      {3050.0, 300.0, 10.66, 8.9, "Unconstrained"},
      {1200.0, 100.0, 6.05, 5.1, "Power-constr."},
      {1800.0, 216.0, 8.68, 7.2, "Power-constr."},
      {1950.0, 253.0, 9.5, 7.9, "Power-constr."},
  };

  util::TextTable table({"use case", "node cap W", "derived GPU cap W (paper)",
                         "max usage kW (paper)", "avg usage kW (paper)",
                         "avg node energy kJ"});

  for (const Row& row : rows) {
    ScenarioConfig cfg;
    cfg.nodes = 8;
    if (row.node_cap < 3050.0) {
      cfg.load_manager = true;
      cfg.manager.static_node_cap_w = row.node_cap;
      cfg.manager.node_policy = manager::NodePolicy::None;
    }
    Scenario scenario(cfg);
    JobRequest gemm;
    gemm.kind = apps::AppKind::Gemm;
    gemm.nnodes = 6;
    gemm.work_scale = 2.0;
    scenario.submit(gemm);
    JobRequest qs;
    qs.kind = apps::AppKind::Quicksilver;
    qs.nnodes = 2;
    qs.work_scale = 27.5;
    scenario.submit(qs);

    // Derived cap read straight from the node model (the OCC algorithm).
    const auto& node =
        dynamic_cast<const hwsim::IbmAc922Node&>(scenario.cluster().node(0));
    const double derived = node.derived_gpu_cap(row.node_cap);

    auto res = scenario.run();
    const double makespan = res.makespan_s;
    const double avg_energy_kj =
        res.total_energy_j / 8.0 / 1e3;  // per node over the whole run

    table.add_row({row.label, bench::num(row.node_cap, 0),
                   bench::vs(derived, row.paper_gpu_cap, 0),
                   bench::vs(res.max_cluster_power_w / 1e3, row.paper_max_kw),
                   bench::vs(res.avg_cluster_power_w / 1e3, row.paper_avg_kw),
                   bench::num(avg_energy_kj, 0) + " over " +
                       bench::num(makespan, 0) + " s"});
  }
  table.print(std::cout);
  bench::note(
      "paper findings reproduced: worst-case provisioning (24.4 kW allowed, "
      "~10.7 kW peak unconstrained); IBM's default algorithm is extremely "
      "conservative at 1200 W/node (peak well under the 9.6 kW bound); "
      "1950 W/node is the static cap that approaches the 9.6 kW budget, "
      "hence 1200 W and 1950 W are the Table IV baselines.");
  return 0;
}
