// Table IV reproduction: static vs dynamic job power management on the
// 8-node Lassen cluster (GEMM x6 nodes, Quicksilver x2 nodes, cluster bound
// 9.6 kW for the constrained rows). Policies:
//   * Unconstrained       — no caps;
//   * Constr. IBM default — static 1200 W node cap, OPAL enforcement;
//   * Constr. Static      — static 1950 W node cap;
//   * Constr. Prop. Shar. — proportional sharing, direct GPU-budget
//                           enforcement, 1950 W safety node cap;
//   * Constr. FPP         — proportional sharing + per-GPU FFT policy.
//
// Shape targets (paper): IBM default is worst on BOTH axes (GEMM 1145 s,
// 805 kJ); prop sharing beats static-1950 on energy; FPP beats prop on
// energy (~1%) at <1% runtime cost; Quicksilver is barely affected by any
// policy.
#include <iostream>

#include "bench/common.hpp"
#include "experiments/scenario.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct PolicyRow {
  const char* label;
  double node_cap;
  bool load_manager;
  manager::PowerManagerConfig mcfg;
  // Paper values: {gemm_max_w, qs_max_w, gemm_t, qs_t, gemm_kj, qs_kj}
  double paper[6];
};

ScenarioResult run_policy(const PolicyRow& row) {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = row.load_manager;
  cfg.manager = row.mcfg;
  Scenario s(cfg);
  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 2.0;
  s.submit(gemm);
  JobRequest qs;
  qs.kind = apps::AppKind::Quicksilver;
  qs.nnodes = 2;
  qs.work_scale = 27.5;
  s.submit(qs);
  return s.run();
}

}  // namespace

int main() {
  bench::banner("Table IV", "static vs dynamic power capping comparison");

  std::vector<PolicyRow> rows;
  {
    PolicyRow r{"Unconstr.", 3050, false, {}, {1523, 952, 548, 348, 726, 177}};
    rows.push_back(r);
  }
  {
    PolicyRow r{"Constr. IBM default", 1200, true, {},
                {841, 820, 1145, 359, 805, 160}};
    r.mcfg.static_node_cap_w = 1200.0;
    rows.push_back(r);
  }
  {
    PolicyRow r{"Constr. Static", 1950, true, {},
                {1330, 975, 564, 347, 652, 175}};
    r.mcfg.static_node_cap_w = 1950.0;
    rows.push_back(r);
  }
  {
    PolicyRow r{"Constr. Prop. Shar.", 1950, true, {},
                {1343, 939, 597, 347, 612, 170}};
    r.mcfg.static_node_cap_w = 1950.0;
    r.mcfg.cluster_power_bound_w = 9600.0;
    r.mcfg.node_policy = manager::NodePolicy::DirectGpuBudget;
    rows.push_back(r);
  }
  {
    PolicyRow r{"Constr. FPP", 1950, true, {},
                {1325, 951, 602, 350, 598, 174}};
    r.mcfg.static_node_cap_w = 1950.0;
    r.mcfg.cluster_power_bound_w = 9600.0;
    r.mcfg.node_policy = manager::NodePolicy::Fpp;
    rows.push_back(r);
  }

  util::TextTable table({"use case / policy", "node cap W",
                         "GEMM max W (paper)", "QS max W (paper)",
                         "GEMM t s (paper)", "QS t s (paper)",
                         "GEMM kJ (paper)", "QS kJ (paper)"});

  double ibm_gemm_e = 0.0, ibm_gemm_t = 0.0;
  double prop_gemm_e = 0.0, fpp_gemm_e = 0.0, fpp_gemm_t = 0.0;
  double static_gemm_e = 0.0;
  for (const PolicyRow& row : rows) {
    auto res = run_policy(row);
    const JobResult& gemm = res.jobs[0];
    const JobResult& qs = res.jobs[1];
    table.add_row({row.label, bench::num(row.node_cap, 0),
                   bench::vs(gemm.max_node_power_w, row.paper[0], 0),
                   bench::vs(qs.max_node_power_w, row.paper[1], 0),
                   bench::vs(gemm.runtime_s, row.paper[2], 0),
                   bench::vs(qs.runtime_s, row.paper[3], 0),
                   bench::vs(gemm.exact_avg_node_energy_j / 1e3, row.paper[4], 0),
                   bench::vs(qs.exact_avg_node_energy_j / 1e3, row.paper[5], 0)});
    if (std::string(row.label) == "Constr. IBM default") {
      ibm_gemm_e = gemm.exact_avg_node_energy_j;
      ibm_gemm_t = gemm.runtime_s;
    } else if (std::string(row.label) == "Constr. Static") {
      static_gemm_e = gemm.exact_avg_node_energy_j;
    } else if (std::string(row.label) == "Constr. Prop. Shar.") {
      prop_gemm_e = gemm.exact_avg_node_energy_j;
    } else if (std::string(row.label) == "Constr. FPP") {
      fpp_gemm_e = gemm.exact_avg_node_energy_j;
      fpp_gemm_t = gemm.runtime_s;
    }
  }
  table.print(std::cout);

  std::printf("\nheadline comparisons (GEMM):\n");
  std::printf("  FPP vs IBM default : energy %+.1f%% (paper -20%%), speedup %.2fx (paper 1.58x)\n",
              (fpp_gemm_e - ibm_gemm_e) / ibm_gemm_e * 100.0,
              ibm_gemm_t / fpp_gemm_t);
  std::printf("  FPP vs static 1950 : energy %+.1f%% (paper -6.6%%)\n",
              (fpp_gemm_e - static_gemm_e) / static_gemm_e * 100.0);
  std::printf("  FPP vs prop. share : energy %+.1f%% (paper -1.2%%)\n",
              (fpp_gemm_e - prop_gemm_e) / prop_gemm_e * 100.0);
  std::printf("  prop vs static 1950: energy %+.1f%% (paper -5.4%%)\n",
              (prop_gemm_e - static_gemm_e) / static_gemm_e * 100.0);
  return 0;
}
