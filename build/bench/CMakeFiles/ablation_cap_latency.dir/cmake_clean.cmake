file(REMOVE_RECURSE
  "CMakeFiles/ablation_cap_latency.dir/ablation_cap_latency.cpp.o"
  "CMakeFiles/ablation_cap_latency.dir/ablation_cap_latency.cpp.o.d"
  "ablation_cap_latency"
  "ablation_cap_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cap_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
