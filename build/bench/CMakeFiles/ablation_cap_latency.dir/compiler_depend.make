# Empty compiler generated dependencies file for ablation_cap_latency.
# This may be replaced when dependencies are built.
