file(REMOVE_RECURSE
  "CMakeFiles/ablation_fpp.dir/ablation_fpp.cpp.o"
  "CMakeFiles/ablation_fpp.dir/ablation_fpp.cpp.o.d"
  "ablation_fpp"
  "ablation_fpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
