# Empty dependencies file for ablation_fpp.
# This may be replaced when dependencies are built.
