file(REMOVE_RECURSE
  "CMakeFiles/ablation_fpp_stagger.dir/ablation_fpp_stagger.cpp.o"
  "CMakeFiles/ablation_fpp_stagger.dir/ablation_fpp_stagger.cpp.o.d"
  "ablation_fpp_stagger"
  "ablation_fpp_stagger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fpp_stagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
