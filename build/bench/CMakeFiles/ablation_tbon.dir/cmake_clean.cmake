file(REMOVE_RECURSE
  "CMakeFiles/ablation_tbon.dir/ablation_tbon.cpp.o"
  "CMakeFiles/ablation_tbon.dir/ablation_tbon.cpp.o.d"
  "ablation_tbon"
  "ablation_tbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
