# Empty compiler generated dependencies file for ablation_tbon.
# This may be replaced when dependencies are built.
