file(REMOVE_RECURSE
  "CMakeFiles/ext_converged_site.dir/ext_converged_site.cpp.o"
  "CMakeFiles/ext_converged_site.dir/ext_converged_site.cpp.o.d"
  "ext_converged_site"
  "ext_converged_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_converged_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
