# Empty compiler generated dependencies file for ext_converged_site.
# This may be replaced when dependencies are built.
