# Empty dependencies file for ext_power_aware_sched.
# This may be replaced when dependencies are built.
