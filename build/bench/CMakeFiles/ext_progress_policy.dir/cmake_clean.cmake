file(REMOVE_RECURSE
  "CMakeFiles/ext_progress_policy.dir/ext_progress_policy.cpp.o"
  "CMakeFiles/ext_progress_policy.dir/ext_progress_policy.cpp.o.d"
  "ext_progress_policy"
  "ext_progress_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_progress_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
