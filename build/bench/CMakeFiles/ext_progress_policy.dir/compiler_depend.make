# Empty compiler generated dependencies file for ext_progress_policy.
# This may be replaced when dependencies are built.
