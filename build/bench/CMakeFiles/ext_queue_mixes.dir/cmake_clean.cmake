file(REMOVE_RECURSE
  "CMakeFiles/ext_queue_mixes.dir/ext_queue_mixes.cpp.o"
  "CMakeFiles/ext_queue_mixes.dir/ext_queue_mixes.cpp.o.d"
  "ext_queue_mixes"
  "ext_queue_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_queue_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
