# Empty dependencies file for ext_queue_mixes.
# This may be replaced when dependencies are built.
