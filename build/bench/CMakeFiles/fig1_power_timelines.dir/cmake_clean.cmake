file(REMOVE_RECURSE
  "CMakeFiles/fig1_power_timelines.dir/fig1_power_timelines.cpp.o"
  "CMakeFiles/fig1_power_timelines.dir/fig1_power_timelines.cpp.o.d"
  "fig1_power_timelines"
  "fig1_power_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_power_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
