# Empty dependencies file for fig1_power_timelines.
# This may be replaced when dependencies are built.
