# Empty compiler generated dependencies file for fig2_scaling_power.
# This may be replaced when dependencies are built.
