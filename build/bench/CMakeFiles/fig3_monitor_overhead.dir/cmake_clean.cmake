file(REMOVE_RECURSE
  "CMakeFiles/fig3_monitor_overhead.dir/fig3_monitor_overhead.cpp.o"
  "CMakeFiles/fig3_monitor_overhead.dir/fig3_monitor_overhead.cpp.o.d"
  "fig3_monitor_overhead"
  "fig3_monitor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_monitor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
