# Empty dependencies file for fig3_monitor_overhead.
# This may be replaced when dependencies are built.
