file(REMOVE_RECURSE
  "CMakeFiles/fig4_run_variability.dir/fig4_run_variability.cpp.o"
  "CMakeFiles/fig4_run_variability.dir/fig4_run_variability.cpp.o.d"
  "fig4_run_variability"
  "fig4_run_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_run_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
