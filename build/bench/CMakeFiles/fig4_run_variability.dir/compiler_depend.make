# Empty compiler generated dependencies file for fig4_run_variability.
# This may be replaced when dependencies are built.
