file(REMOVE_RECURSE
  "CMakeFiles/fig5_proportional_timeline.dir/fig5_proportional_timeline.cpp.o"
  "CMakeFiles/fig5_proportional_timeline.dir/fig5_proportional_timeline.cpp.o.d"
  "fig5_proportional_timeline"
  "fig5_proportional_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_proportional_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
