file(REMOVE_RECURSE
  "CMakeFiles/fig6_fpp_timeline.dir/fig6_fpp_timeline.cpp.o"
  "CMakeFiles/fig6_fpp_timeline.dir/fig6_fpp_timeline.cpp.o.d"
  "fig6_fpp_timeline"
  "fig6_fpp_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fpp_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
