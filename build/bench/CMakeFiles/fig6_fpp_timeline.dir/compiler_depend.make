# Empty compiler generated dependencies file for fig6_fpp_timeline.
# This may be replaced when dependencies are built.
