file(REMOVE_RECURSE
  "CMakeFiles/fig7_non_mpi.dir/fig7_non_mpi.cpp.o"
  "CMakeFiles/fig7_non_mpi.dir/fig7_non_mpi.cpp.o.d"
  "fig7_non_mpi"
  "fig7_non_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_non_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
