# Empty dependencies file for fig7_non_mpi.
# This may be replaced when dependencies are built.
