file(REMOVE_RECURSE
  "CMakeFiles/micro_dsp_bench.dir/micro_dsp_bench.cpp.o"
  "CMakeFiles/micro_dsp_bench.dir/micro_dsp_bench.cpp.o.d"
  "micro_dsp_bench"
  "micro_dsp_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dsp_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
