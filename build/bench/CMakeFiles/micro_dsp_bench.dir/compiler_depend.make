# Empty compiler generated dependencies file for micro_dsp_bench.
# This may be replaced when dependencies are built.
