file(REMOVE_RECURSE
  "CMakeFiles/micro_hwsim_bench.dir/micro_hwsim_bench.cpp.o"
  "CMakeFiles/micro_hwsim_bench.dir/micro_hwsim_bench.cpp.o.d"
  "micro_hwsim_bench"
  "micro_hwsim_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hwsim_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
