# Empty dependencies file for micro_hwsim_bench.
# This may be replaced when dependencies are built.
