file(REMOVE_RECURSE
  "CMakeFiles/micro_stack_bench.dir/micro_stack_bench.cpp.o"
  "CMakeFiles/micro_stack_bench.dir/micro_stack_bench.cpp.o.d"
  "micro_stack_bench"
  "micro_stack_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stack_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
