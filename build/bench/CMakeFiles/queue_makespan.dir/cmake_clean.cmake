file(REMOVE_RECURSE
  "CMakeFiles/queue_makespan.dir/queue_makespan.cpp.o"
  "CMakeFiles/queue_makespan.dir/queue_makespan.cpp.o.d"
  "queue_makespan"
  "queue_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
