# Empty compiler generated dependencies file for queue_makespan.
# This may be replaced when dependencies are built.
