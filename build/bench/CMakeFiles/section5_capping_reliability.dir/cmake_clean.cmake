file(REMOVE_RECURSE
  "CMakeFiles/section5_capping_reliability.dir/section5_capping_reliability.cpp.o"
  "CMakeFiles/section5_capping_reliability.dir/section5_capping_reliability.cpp.o.d"
  "section5_capping_reliability"
  "section5_capping_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section5_capping_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
