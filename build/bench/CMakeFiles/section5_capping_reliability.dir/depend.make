# Empty dependencies file for section5_capping_reliability.
# This may be replaced when dependencies are built.
