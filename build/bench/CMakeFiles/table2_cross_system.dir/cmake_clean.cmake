file(REMOVE_RECURSE
  "CMakeFiles/table2_cross_system.dir/table2_cross_system.cpp.o"
  "CMakeFiles/table2_cross_system.dir/table2_cross_system.cpp.o.d"
  "table2_cross_system"
  "table2_cross_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cross_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
