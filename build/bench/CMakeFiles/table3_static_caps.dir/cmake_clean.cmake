file(REMOVE_RECURSE
  "CMakeFiles/table3_static_caps.dir/table3_static_caps.cpp.o"
  "CMakeFiles/table3_static_caps.dir/table3_static_caps.cpp.o.d"
  "table3_static_caps"
  "table3_static_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_static_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
