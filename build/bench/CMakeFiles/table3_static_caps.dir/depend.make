# Empty dependencies file for table3_static_caps.
# This may be replaced when dependencies are built.
