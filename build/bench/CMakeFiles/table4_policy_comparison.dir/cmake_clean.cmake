file(REMOVE_RECURSE
  "CMakeFiles/table4_policy_comparison.dir/table4_policy_comparison.cpp.o"
  "CMakeFiles/table4_policy_comparison.dir/table4_policy_comparison.cpp.o.d"
  "table4_policy_comparison"
  "table4_policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
