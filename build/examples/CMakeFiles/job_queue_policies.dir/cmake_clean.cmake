file(REMOVE_RECURSE
  "CMakeFiles/job_queue_policies.dir/job_queue_policies.cpp.o"
  "CMakeFiles/job_queue_policies.dir/job_queue_policies.cpp.o.d"
  "job_queue_policies"
  "job_queue_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_queue_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
