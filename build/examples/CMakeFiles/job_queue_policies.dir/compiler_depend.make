# Empty compiler generated dependencies file for job_queue_policies.
# This may be replaced when dependencies are built.
