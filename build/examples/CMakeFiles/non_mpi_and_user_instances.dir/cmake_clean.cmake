file(REMOVE_RECURSE
  "CMakeFiles/non_mpi_and_user_instances.dir/non_mpi_and_user_instances.cpp.o"
  "CMakeFiles/non_mpi_and_user_instances.dir/non_mpi_and_user_instances.cpp.o.d"
  "non_mpi_and_user_instances"
  "non_mpi_and_user_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/non_mpi_and_user_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
