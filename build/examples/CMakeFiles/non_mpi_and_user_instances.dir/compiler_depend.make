# Empty compiler generated dependencies file for non_mpi_and_user_instances.
# This may be replaced when dependencies are built.
