# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for non_mpi_and_user_instances.
