file(REMOVE_RECURSE
  "CMakeFiles/power_constrained_cluster.dir/power_constrained_cluster.cpp.o"
  "CMakeFiles/power_constrained_cluster.dir/power_constrained_cluster.cpp.o.d"
  "power_constrained_cluster"
  "power_constrained_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_constrained_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
