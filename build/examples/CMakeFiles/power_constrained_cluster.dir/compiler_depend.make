# Empty compiler generated dependencies file for power_constrained_cluster.
# This may be replaced when dependencies are built.
