file(REMOVE_RECURSE
  "CMakeFiles/trace_replay_workflow.dir/trace_replay_workflow.cpp.o"
  "CMakeFiles/trace_replay_workflow.dir/trace_replay_workflow.cpp.o.d"
  "trace_replay_workflow"
  "trace_replay_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
