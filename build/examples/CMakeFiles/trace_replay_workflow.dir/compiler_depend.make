# Empty compiler generated dependencies file for trace_replay_workflow.
# This may be replaced when dependencies are built.
