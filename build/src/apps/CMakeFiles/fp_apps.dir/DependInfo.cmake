
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_model.cpp" "src/apps/CMakeFiles/fp_apps.dir/app_model.cpp.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/app_model.cpp.o.d"
  "/root/repo/src/apps/app_runtime.cpp" "src/apps/CMakeFiles/fp_apps.dir/app_runtime.cpp.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/app_runtime.cpp.o.d"
  "/root/repo/src/apps/launcher.cpp" "src/apps/CMakeFiles/fp_apps.dir/launcher.cpp.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/launcher.cpp.o.d"
  "/root/repo/src/apps/trace_replay.cpp" "src/apps/CMakeFiles/fp_apps.dir/trace_replay.cpp.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/trace_replay.cpp.o.d"
  "/root/repo/src/apps/workload.cpp" "src/apps/CMakeFiles/fp_apps.dir/workload.cpp.o" "gcc" "src/apps/CMakeFiles/fp_apps.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flux/CMakeFiles/fp_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/fp_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
