file(REMOVE_RECURSE
  "CMakeFiles/fp_apps.dir/app_model.cpp.o"
  "CMakeFiles/fp_apps.dir/app_model.cpp.o.d"
  "CMakeFiles/fp_apps.dir/app_runtime.cpp.o"
  "CMakeFiles/fp_apps.dir/app_runtime.cpp.o.d"
  "CMakeFiles/fp_apps.dir/launcher.cpp.o"
  "CMakeFiles/fp_apps.dir/launcher.cpp.o.d"
  "CMakeFiles/fp_apps.dir/trace_replay.cpp.o"
  "CMakeFiles/fp_apps.dir/trace_replay.cpp.o.d"
  "CMakeFiles/fp_apps.dir/workload.cpp.o"
  "CMakeFiles/fp_apps.dir/workload.cpp.o.d"
  "libfp_apps.a"
  "libfp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
