file(REMOVE_RECURSE
  "libfp_apps.a"
)
