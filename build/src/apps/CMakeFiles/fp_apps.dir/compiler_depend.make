# Empty compiler generated dependencies file for fp_apps.
# This may be replaced when dependencies are built.
