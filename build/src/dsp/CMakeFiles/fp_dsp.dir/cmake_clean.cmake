file(REMOVE_RECURSE
  "CMakeFiles/fp_dsp.dir/fft.cpp.o"
  "CMakeFiles/fp_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/fp_dsp.dir/period.cpp.o"
  "CMakeFiles/fp_dsp.dir/period.cpp.o.d"
  "libfp_dsp.a"
  "libfp_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
