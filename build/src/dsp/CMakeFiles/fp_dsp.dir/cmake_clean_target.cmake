file(REMOVE_RECURSE
  "libfp_dsp.a"
)
