# Empty compiler generated dependencies file for fp_dsp.
# This may be replaced when dependencies are built.
