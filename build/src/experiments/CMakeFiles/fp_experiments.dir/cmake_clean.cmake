file(REMOVE_RECURSE
  "CMakeFiles/fp_experiments.dir/report.cpp.o"
  "CMakeFiles/fp_experiments.dir/report.cpp.o.d"
  "CMakeFiles/fp_experiments.dir/scenario.cpp.o"
  "CMakeFiles/fp_experiments.dir/scenario.cpp.o.d"
  "libfp_experiments.a"
  "libfp_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
