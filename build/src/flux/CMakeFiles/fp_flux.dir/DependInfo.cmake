
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flux/broker.cpp" "src/flux/CMakeFiles/fp_flux.dir/broker.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/broker.cpp.o.d"
  "/root/repo/src/flux/codec.cpp" "src/flux/CMakeFiles/fp_flux.dir/codec.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/codec.cpp.o.d"
  "/root/repo/src/flux/hostlist.cpp" "src/flux/CMakeFiles/fp_flux.dir/hostlist.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/hostlist.cpp.o.d"
  "/root/repo/src/flux/instance.cpp" "src/flux/CMakeFiles/fp_flux.dir/instance.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/instance.cpp.o.d"
  "/root/repo/src/flux/job_manager.cpp" "src/flux/CMakeFiles/fp_flux.dir/job_manager.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/job_manager.cpp.o.d"
  "/root/repo/src/flux/journal.cpp" "src/flux/CMakeFiles/fp_flux.dir/journal.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/journal.cpp.o.d"
  "/root/repo/src/flux/kvs.cpp" "src/flux/CMakeFiles/fp_flux.dir/kvs.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/kvs.cpp.o.d"
  "/root/repo/src/flux/scheduler.cpp" "src/flux/CMakeFiles/fp_flux.dir/scheduler.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/scheduler.cpp.o.d"
  "/root/repo/src/flux/tbon.cpp" "src/flux/CMakeFiles/fp_flux.dir/tbon.cpp.o" "gcc" "src/flux/CMakeFiles/fp_flux.dir/tbon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwsim/CMakeFiles/fp_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
