file(REMOVE_RECURSE
  "CMakeFiles/fp_flux.dir/broker.cpp.o"
  "CMakeFiles/fp_flux.dir/broker.cpp.o.d"
  "CMakeFiles/fp_flux.dir/codec.cpp.o"
  "CMakeFiles/fp_flux.dir/codec.cpp.o.d"
  "CMakeFiles/fp_flux.dir/hostlist.cpp.o"
  "CMakeFiles/fp_flux.dir/hostlist.cpp.o.d"
  "CMakeFiles/fp_flux.dir/instance.cpp.o"
  "CMakeFiles/fp_flux.dir/instance.cpp.o.d"
  "CMakeFiles/fp_flux.dir/job_manager.cpp.o"
  "CMakeFiles/fp_flux.dir/job_manager.cpp.o.d"
  "CMakeFiles/fp_flux.dir/journal.cpp.o"
  "CMakeFiles/fp_flux.dir/journal.cpp.o.d"
  "CMakeFiles/fp_flux.dir/kvs.cpp.o"
  "CMakeFiles/fp_flux.dir/kvs.cpp.o.d"
  "CMakeFiles/fp_flux.dir/scheduler.cpp.o"
  "CMakeFiles/fp_flux.dir/scheduler.cpp.o.d"
  "CMakeFiles/fp_flux.dir/tbon.cpp.o"
  "CMakeFiles/fp_flux.dir/tbon.cpp.o.d"
  "libfp_flux.a"
  "libfp_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
