file(REMOVE_RECURSE
  "libfp_flux.a"
)
