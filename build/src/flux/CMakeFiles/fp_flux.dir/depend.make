# Empty dependencies file for fp_flux.
# This may be replaced when dependencies are built.
