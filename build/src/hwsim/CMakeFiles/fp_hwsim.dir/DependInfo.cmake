
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwsim/arm_grace.cpp" "src/hwsim/CMakeFiles/fp_hwsim.dir/arm_grace.cpp.o" "gcc" "src/hwsim/CMakeFiles/fp_hwsim.dir/arm_grace.cpp.o.d"
  "/root/repo/src/hwsim/cluster.cpp" "src/hwsim/CMakeFiles/fp_hwsim.dir/cluster.cpp.o" "gcc" "src/hwsim/CMakeFiles/fp_hwsim.dir/cluster.cpp.o.d"
  "/root/repo/src/hwsim/cray_ex235a.cpp" "src/hwsim/CMakeFiles/fp_hwsim.dir/cray_ex235a.cpp.o" "gcc" "src/hwsim/CMakeFiles/fp_hwsim.dir/cray_ex235a.cpp.o.d"
  "/root/repo/src/hwsim/energy_meter.cpp" "src/hwsim/CMakeFiles/fp_hwsim.dir/energy_meter.cpp.o" "gcc" "src/hwsim/CMakeFiles/fp_hwsim.dir/energy_meter.cpp.o.d"
  "/root/repo/src/hwsim/ibm_ac922.cpp" "src/hwsim/CMakeFiles/fp_hwsim.dir/ibm_ac922.cpp.o" "gcc" "src/hwsim/CMakeFiles/fp_hwsim.dir/ibm_ac922.cpp.o.d"
  "/root/repo/src/hwsim/intel_xeon.cpp" "src/hwsim/CMakeFiles/fp_hwsim.dir/intel_xeon.cpp.o" "gcc" "src/hwsim/CMakeFiles/fp_hwsim.dir/intel_xeon.cpp.o.d"
  "/root/repo/src/hwsim/node.cpp" "src/hwsim/CMakeFiles/fp_hwsim.dir/node.cpp.o" "gcc" "src/hwsim/CMakeFiles/fp_hwsim.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
