file(REMOVE_RECURSE
  "CMakeFiles/fp_hwsim.dir/arm_grace.cpp.o"
  "CMakeFiles/fp_hwsim.dir/arm_grace.cpp.o.d"
  "CMakeFiles/fp_hwsim.dir/cluster.cpp.o"
  "CMakeFiles/fp_hwsim.dir/cluster.cpp.o.d"
  "CMakeFiles/fp_hwsim.dir/cray_ex235a.cpp.o"
  "CMakeFiles/fp_hwsim.dir/cray_ex235a.cpp.o.d"
  "CMakeFiles/fp_hwsim.dir/energy_meter.cpp.o"
  "CMakeFiles/fp_hwsim.dir/energy_meter.cpp.o.d"
  "CMakeFiles/fp_hwsim.dir/ibm_ac922.cpp.o"
  "CMakeFiles/fp_hwsim.dir/ibm_ac922.cpp.o.d"
  "CMakeFiles/fp_hwsim.dir/intel_xeon.cpp.o"
  "CMakeFiles/fp_hwsim.dir/intel_xeon.cpp.o.d"
  "CMakeFiles/fp_hwsim.dir/node.cpp.o"
  "CMakeFiles/fp_hwsim.dir/node.cpp.o.d"
  "libfp_hwsim.a"
  "libfp_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
