file(REMOVE_RECURSE
  "libfp_hwsim.a"
)
