# Empty compiler generated dependencies file for fp_hwsim.
# This may be replaced when dependencies are built.
