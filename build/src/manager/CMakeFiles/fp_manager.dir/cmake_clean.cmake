file(REMOVE_RECURSE
  "CMakeFiles/fp_manager.dir/fpp.cpp.o"
  "CMakeFiles/fp_manager.dir/fpp.cpp.o.d"
  "CMakeFiles/fp_manager.dir/power_manager.cpp.o"
  "CMakeFiles/fp_manager.dir/power_manager.cpp.o.d"
  "CMakeFiles/fp_manager.dir/site_coordinator.cpp.o"
  "CMakeFiles/fp_manager.dir/site_coordinator.cpp.o.d"
  "libfp_manager.a"
  "libfp_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
