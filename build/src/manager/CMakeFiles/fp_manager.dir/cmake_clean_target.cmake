file(REMOVE_RECURSE
  "libfp_manager.a"
)
