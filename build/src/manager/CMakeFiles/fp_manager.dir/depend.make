# Empty dependencies file for fp_manager.
# This may be replaced when dependencies are built.
