file(REMOVE_RECURSE
  "CMakeFiles/fp_monitor.dir/client.cpp.o"
  "CMakeFiles/fp_monitor.dir/client.cpp.o.d"
  "CMakeFiles/fp_monitor.dir/power_monitor.cpp.o"
  "CMakeFiles/fp_monitor.dir/power_monitor.cpp.o.d"
  "libfp_monitor.a"
  "libfp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
