file(REMOVE_RECURSE
  "libfp_monitor.a"
)
