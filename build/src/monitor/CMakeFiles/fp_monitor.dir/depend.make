# Empty dependencies file for fp_monitor.
# This may be replaced when dependencies are built.
