file(REMOVE_RECURSE
  "CMakeFiles/fp_sim.dir/simulation.cpp.o"
  "CMakeFiles/fp_sim.dir/simulation.cpp.o.d"
  "libfp_sim.a"
  "libfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
