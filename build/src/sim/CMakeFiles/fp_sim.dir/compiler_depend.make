# Empty compiler generated dependencies file for fp_sim.
# This may be replaced when dependencies are built.
