file(REMOVE_RECURSE
  "CMakeFiles/fp_variorum.dir/variorum.cpp.o"
  "CMakeFiles/fp_variorum.dir/variorum.cpp.o.d"
  "libfp_variorum.a"
  "libfp_variorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_variorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
