file(REMOVE_RECURSE
  "libfp_variorum.a"
)
