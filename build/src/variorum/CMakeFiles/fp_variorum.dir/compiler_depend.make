# Empty compiler generated dependencies file for fp_variorum.
# This may be replaced when dependencies are built.
