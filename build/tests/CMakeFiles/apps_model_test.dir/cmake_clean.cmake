file(REMOVE_RECURSE
  "CMakeFiles/apps_model_test.dir/apps/app_model_test.cpp.o"
  "CMakeFiles/apps_model_test.dir/apps/app_model_test.cpp.o.d"
  "apps_model_test"
  "apps_model_test.pdb"
  "apps_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
