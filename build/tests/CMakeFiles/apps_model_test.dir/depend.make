# Empty dependencies file for apps_model_test.
# This may be replaced when dependencies are built.
