file(REMOVE_RECURSE
  "CMakeFiles/apps_new_apps_test.dir/apps/new_apps_test.cpp.o"
  "CMakeFiles/apps_new_apps_test.dir/apps/new_apps_test.cpp.o.d"
  "apps_new_apps_test"
  "apps_new_apps_test.pdb"
  "apps_new_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_new_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
