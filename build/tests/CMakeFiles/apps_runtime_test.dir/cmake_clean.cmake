file(REMOVE_RECURSE
  "CMakeFiles/apps_runtime_test.dir/apps/app_runtime_test.cpp.o"
  "CMakeFiles/apps_runtime_test.dir/apps/app_runtime_test.cpp.o.d"
  "apps_runtime_test"
  "apps_runtime_test.pdb"
  "apps_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
