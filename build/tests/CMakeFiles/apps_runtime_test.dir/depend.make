# Empty dependencies file for apps_runtime_test.
# This may be replaced when dependencies are built.
