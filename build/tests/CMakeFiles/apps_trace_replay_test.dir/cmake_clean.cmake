file(REMOVE_RECURSE
  "CMakeFiles/apps_trace_replay_test.dir/apps/trace_replay_test.cpp.o"
  "CMakeFiles/apps_trace_replay_test.dir/apps/trace_replay_test.cpp.o.d"
  "apps_trace_replay_test"
  "apps_trace_replay_test.pdb"
  "apps_trace_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_trace_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
