# Empty compiler generated dependencies file for apps_trace_replay_test.
# This may be replaced when dependencies are built.
