file(REMOVE_RECURSE
  "CMakeFiles/dsp_period_test.dir/dsp/period_test.cpp.o"
  "CMakeFiles/dsp_period_test.dir/dsp/period_test.cpp.o.d"
  "dsp_period_test"
  "dsp_period_test.pdb"
  "dsp_period_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_period_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
