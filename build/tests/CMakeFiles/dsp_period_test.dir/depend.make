# Empty dependencies file for dsp_period_test.
# This may be replaced when dependencies are built.
