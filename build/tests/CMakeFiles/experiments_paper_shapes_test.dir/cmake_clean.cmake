file(REMOVE_RECURSE
  "CMakeFiles/experiments_paper_shapes_test.dir/experiments/paper_shapes_test.cpp.o"
  "CMakeFiles/experiments_paper_shapes_test.dir/experiments/paper_shapes_test.cpp.o.d"
  "experiments_paper_shapes_test"
  "experiments_paper_shapes_test.pdb"
  "experiments_paper_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_paper_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
