# Empty compiler generated dependencies file for experiments_paper_shapes_test.
# This may be replaced when dependencies are built.
