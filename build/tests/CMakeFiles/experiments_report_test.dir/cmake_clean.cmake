file(REMOVE_RECURSE
  "CMakeFiles/experiments_report_test.dir/experiments/report_test.cpp.o"
  "CMakeFiles/experiments_report_test.dir/experiments/report_test.cpp.o.d"
  "experiments_report_test"
  "experiments_report_test.pdb"
  "experiments_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
