# Empty dependencies file for experiments_report_test.
# This may be replaced when dependencies are built.
