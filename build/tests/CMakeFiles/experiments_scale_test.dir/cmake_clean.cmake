file(REMOVE_RECURSE
  "CMakeFiles/experiments_scale_test.dir/experiments/scale_test.cpp.o"
  "CMakeFiles/experiments_scale_test.dir/experiments/scale_test.cpp.o.d"
  "experiments_scale_test"
  "experiments_scale_test.pdb"
  "experiments_scale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
