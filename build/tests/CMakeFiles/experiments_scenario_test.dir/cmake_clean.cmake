file(REMOVE_RECURSE
  "CMakeFiles/experiments_scenario_test.dir/experiments/scenario_test.cpp.o"
  "CMakeFiles/experiments_scenario_test.dir/experiments/scenario_test.cpp.o.d"
  "experiments_scenario_test"
  "experiments_scenario_test.pdb"
  "experiments_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
