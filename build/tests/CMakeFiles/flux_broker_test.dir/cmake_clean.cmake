file(REMOVE_RECURSE
  "CMakeFiles/flux_broker_test.dir/flux/broker_test.cpp.o"
  "CMakeFiles/flux_broker_test.dir/flux/broker_test.cpp.o.d"
  "flux_broker_test"
  "flux_broker_test.pdb"
  "flux_broker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
