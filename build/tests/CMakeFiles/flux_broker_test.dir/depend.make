# Empty dependencies file for flux_broker_test.
# This may be replaced when dependencies are built.
