file(REMOVE_RECURSE
  "CMakeFiles/flux_codec_test.dir/flux/codec_test.cpp.o"
  "CMakeFiles/flux_codec_test.dir/flux/codec_test.cpp.o.d"
  "flux_codec_test"
  "flux_codec_test.pdb"
  "flux_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
