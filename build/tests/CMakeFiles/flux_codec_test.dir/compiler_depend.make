# Empty compiler generated dependencies file for flux_codec_test.
# This may be replaced when dependencies are built.
