file(REMOVE_RECURSE
  "CMakeFiles/flux_drain_test.dir/flux/drain_test.cpp.o"
  "CMakeFiles/flux_drain_test.dir/flux/drain_test.cpp.o.d"
  "flux_drain_test"
  "flux_drain_test.pdb"
  "flux_drain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_drain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
