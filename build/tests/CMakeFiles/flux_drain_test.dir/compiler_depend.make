# Empty compiler generated dependencies file for flux_drain_test.
# This may be replaced when dependencies are built.
