file(REMOVE_RECURSE
  "CMakeFiles/flux_hostlist_test.dir/flux/hostlist_test.cpp.o"
  "CMakeFiles/flux_hostlist_test.dir/flux/hostlist_test.cpp.o.d"
  "flux_hostlist_test"
  "flux_hostlist_test.pdb"
  "flux_hostlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_hostlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
