file(REMOVE_RECURSE
  "CMakeFiles/flux_job_test.dir/flux/job_test.cpp.o"
  "CMakeFiles/flux_job_test.dir/flux/job_test.cpp.o.d"
  "flux_job_test"
  "flux_job_test.pdb"
  "flux_job_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
