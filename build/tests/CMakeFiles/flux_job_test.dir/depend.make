# Empty dependencies file for flux_job_test.
# This may be replaced when dependencies are built.
