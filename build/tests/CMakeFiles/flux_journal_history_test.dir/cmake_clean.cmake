file(REMOVE_RECURSE
  "CMakeFiles/flux_journal_history_test.dir/flux/journal_history_test.cpp.o"
  "CMakeFiles/flux_journal_history_test.dir/flux/journal_history_test.cpp.o.d"
  "flux_journal_history_test"
  "flux_journal_history_test.pdb"
  "flux_journal_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_journal_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
