# Empty dependencies file for flux_journal_history_test.
# This may be replaced when dependencies are built.
