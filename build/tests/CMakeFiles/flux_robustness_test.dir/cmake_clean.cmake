file(REMOVE_RECURSE
  "CMakeFiles/flux_robustness_test.dir/flux/robustness_test.cpp.o"
  "CMakeFiles/flux_robustness_test.dir/flux/robustness_test.cpp.o.d"
  "flux_robustness_test"
  "flux_robustness_test.pdb"
  "flux_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
