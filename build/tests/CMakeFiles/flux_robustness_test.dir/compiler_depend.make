# Empty compiler generated dependencies file for flux_robustness_test.
# This may be replaced when dependencies are built.
