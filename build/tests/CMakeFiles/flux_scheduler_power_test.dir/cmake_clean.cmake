file(REMOVE_RECURSE
  "CMakeFiles/flux_scheduler_power_test.dir/flux/scheduler_power_test.cpp.o"
  "CMakeFiles/flux_scheduler_power_test.dir/flux/scheduler_power_test.cpp.o.d"
  "flux_scheduler_power_test"
  "flux_scheduler_power_test.pdb"
  "flux_scheduler_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_scheduler_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
