# Empty dependencies file for flux_scheduler_power_test.
# This may be replaced when dependencies are built.
