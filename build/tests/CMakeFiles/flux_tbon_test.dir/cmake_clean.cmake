file(REMOVE_RECURSE
  "CMakeFiles/flux_tbon_test.dir/flux/tbon_test.cpp.o"
  "CMakeFiles/flux_tbon_test.dir/flux/tbon_test.cpp.o.d"
  "flux_tbon_test"
  "flux_tbon_test.pdb"
  "flux_tbon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flux_tbon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
