# Empty dependencies file for flux_tbon_test.
# This may be replaced when dependencies are built.
