file(REMOVE_RECURSE
  "CMakeFiles/hwsim_arm_grace_test.dir/hwsim/arm_grace_test.cpp.o"
  "CMakeFiles/hwsim_arm_grace_test.dir/hwsim/arm_grace_test.cpp.o.d"
  "hwsim_arm_grace_test"
  "hwsim_arm_grace_test.pdb"
  "hwsim_arm_grace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwsim_arm_grace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
