# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hwsim_arm_grace_test.
