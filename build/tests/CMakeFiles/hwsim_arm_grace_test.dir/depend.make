# Empty dependencies file for hwsim_arm_grace_test.
# This may be replaced when dependencies are built.
