file(REMOVE_RECURSE
  "CMakeFiles/manager_emergency_test.dir/manager/emergency_test.cpp.o"
  "CMakeFiles/manager_emergency_test.dir/manager/emergency_test.cpp.o.d"
  "manager_emergency_test"
  "manager_emergency_test.pdb"
  "manager_emergency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_emergency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
