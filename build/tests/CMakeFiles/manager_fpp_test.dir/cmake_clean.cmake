file(REMOVE_RECURSE
  "CMakeFiles/manager_fpp_test.dir/manager/fpp_test.cpp.o"
  "CMakeFiles/manager_fpp_test.dir/manager/fpp_test.cpp.o.d"
  "manager_fpp_test"
  "manager_fpp_test.pdb"
  "manager_fpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_fpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
