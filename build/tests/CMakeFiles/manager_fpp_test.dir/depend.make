# Empty dependencies file for manager_fpp_test.
# This may be replaced when dependencies are built.
