file(REMOVE_RECURSE
  "CMakeFiles/manager_green_and_idle_test.dir/manager/green_and_idle_test.cpp.o"
  "CMakeFiles/manager_green_and_idle_test.dir/manager/green_and_idle_test.cpp.o.d"
  "manager_green_and_idle_test"
  "manager_green_and_idle_test.pdb"
  "manager_green_and_idle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_green_and_idle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
