# Empty dependencies file for manager_green_and_idle_test.
# This may be replaced when dependencies are built.
