file(REMOVE_RECURSE
  "CMakeFiles/manager_progress_policy_test.dir/manager/progress_policy_test.cpp.o"
  "CMakeFiles/manager_progress_policy_test.dir/manager/progress_policy_test.cpp.o.d"
  "manager_progress_policy_test"
  "manager_progress_policy_test.pdb"
  "manager_progress_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_progress_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
