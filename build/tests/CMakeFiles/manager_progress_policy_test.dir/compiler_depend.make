# Empty compiler generated dependencies file for manager_progress_policy_test.
# This may be replaced when dependencies are built.
