file(REMOVE_RECURSE
  "CMakeFiles/manager_site_coordinator_test.dir/manager/site_coordinator_test.cpp.o"
  "CMakeFiles/manager_site_coordinator_test.dir/manager/site_coordinator_test.cpp.o.d"
  "manager_site_coordinator_test"
  "manager_site_coordinator_test.pdb"
  "manager_site_coordinator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_site_coordinator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
