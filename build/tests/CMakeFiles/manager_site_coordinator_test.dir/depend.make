# Empty dependencies file for manager_site_coordinator_test.
# This may be replaced when dependencies are built.
