file(REMOVE_RECURSE
  "CMakeFiles/manager_vendor_neutral_test.dir/manager/vendor_neutral_test.cpp.o"
  "CMakeFiles/manager_vendor_neutral_test.dir/manager/vendor_neutral_test.cpp.o.d"
  "manager_vendor_neutral_test"
  "manager_vendor_neutral_test.pdb"
  "manager_vendor_neutral_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_vendor_neutral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
