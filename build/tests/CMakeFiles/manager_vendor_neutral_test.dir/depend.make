# Empty dependencies file for manager_vendor_neutral_test.
# This may be replaced when dependencies are built.
