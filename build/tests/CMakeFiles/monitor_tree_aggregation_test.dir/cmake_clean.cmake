file(REMOVE_RECURSE
  "CMakeFiles/monitor_tree_aggregation_test.dir/monitor/tree_aggregation_test.cpp.o"
  "CMakeFiles/monitor_tree_aggregation_test.dir/monitor/tree_aggregation_test.cpp.o.d"
  "monitor_tree_aggregation_test"
  "monitor_tree_aggregation_test.pdb"
  "monitor_tree_aggregation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_tree_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
