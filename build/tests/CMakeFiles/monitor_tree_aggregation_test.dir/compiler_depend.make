# Empty compiler generated dependencies file for monitor_tree_aggregation_test.
# This may be replaced when dependencies are built.
