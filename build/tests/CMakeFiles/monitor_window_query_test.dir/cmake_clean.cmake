file(REMOVE_RECURSE
  "CMakeFiles/monitor_window_query_test.dir/monitor/window_query_test.cpp.o"
  "CMakeFiles/monitor_window_query_test.dir/monitor/window_query_test.cpp.o.d"
  "monitor_window_query_test"
  "monitor_window_query_test.pdb"
  "monitor_window_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_window_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
