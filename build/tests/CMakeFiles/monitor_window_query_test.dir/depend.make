# Empty dependencies file for monitor_window_query_test.
# This may be replaced when dependencies are built.
