# Empty dependencies file for util_log_table_test.
# This may be replaced when dependencies are built.
