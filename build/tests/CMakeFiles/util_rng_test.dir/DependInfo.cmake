
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_rng_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_rng_test.dir/util/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/fp_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/fp_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/fp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/fp_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/variorum/CMakeFiles/fp_variorum.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/fp_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fp_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
