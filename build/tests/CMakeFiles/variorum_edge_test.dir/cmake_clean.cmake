file(REMOVE_RECURSE
  "CMakeFiles/variorum_edge_test.dir/variorum/variorum_edge_test.cpp.o"
  "CMakeFiles/variorum_edge_test.dir/variorum/variorum_edge_test.cpp.o.d"
  "variorum_edge_test"
  "variorum_edge_test.pdb"
  "variorum_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variorum_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
