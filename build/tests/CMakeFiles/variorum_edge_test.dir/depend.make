# Empty dependencies file for variorum_edge_test.
# This may be replaced when dependencies are built.
