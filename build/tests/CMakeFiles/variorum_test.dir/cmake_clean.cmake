file(REMOVE_RECURSE
  "CMakeFiles/variorum_test.dir/variorum/variorum_test.cpp.o"
  "CMakeFiles/variorum_test.dir/variorum/variorum_test.cpp.o.d"
  "variorum_test"
  "variorum_test.pdb"
  "variorum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variorum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
