# Empty compiler generated dependencies file for variorum_test.
# This may be replaced when dependencies are built.
