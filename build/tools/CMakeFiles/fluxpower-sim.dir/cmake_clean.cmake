file(REMOVE_RECURSE
  "CMakeFiles/fluxpower-sim.dir/fluxpower_sim.cpp.o"
  "CMakeFiles/fluxpower-sim.dir/fluxpower_sim.cpp.o.d"
  "fluxpower-sim"
  "fluxpower-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluxpower-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
