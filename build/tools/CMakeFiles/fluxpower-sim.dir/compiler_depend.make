# Empty compiler generated dependencies file for fluxpower-sim.
# This may be replaced when dependencies are built.
