file(REMOVE_RECURSE
  "CMakeFiles/policy-probe.dir/policy_probe.cpp.o"
  "CMakeFiles/policy-probe.dir/policy_probe.cpp.o.d"
  "policy-probe"
  "policy-probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy-probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
