# Empty dependencies file for policy-probe.
# This may be replaced when dependencies are built.
