// job_queue_policies — comparing power policies on a realistic job queue.
//
// Reproduces the §IV-E experiment shape interactively: the paper's 10-job
// mix (3 Laghos, 2 Quicksilver, 3 LAMMPS, 2 GEMM; 1-8 nodes each) on a
// 16-node allocation, run under three power policies and two scheduling
// policies. Demonstrates:
//   * the workload generator (deterministic per seed);
//   * per-job results from the monitor;
//   * that power policy choice does not disturb the makespan while
//     shifting energy (the paper's finding);
//   * FCFS vs conservative backfill as a scheduling ablation.
//
// Build & run:  ./build/examples/job_queue_policies
#include <cstdio>
#include <iostream>

#include "experiments/scenario.hpp"
#include "util/table.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

namespace {

struct Setup {
  const char* label;
  manager::NodePolicy policy;
  bool constrained;
  flux::Scheduler::Policy sched;
};

void run_setup(const Setup& setup, std::uint64_t seed, bool print_jobs) {
  ScenarioConfig cfg;
  cfg.nodes = 16;
  cfg.load_manager = true;
  if (setup.constrained) {
    cfg.manager.cluster_power_bound_w = 16 * 1200.0;
    cfg.manager.static_node_cap_w = 1950.0;
  }
  cfg.manager.node_policy = setup.policy;
  cfg.seed = seed;
  Scenario s(cfg);
  s.instance().scheduler().set_policy(setup.sched);

  double t = 0.0;
  for (const apps::WorkloadJob& job : apps::paper_queue(seed)) {
    t += job.submit_delay_s;
    JobRequest req;
    req.kind = job.kind;
    req.nnodes = job.nnodes;
    req.work_scale = job.work_scale;
    req.submit_time_s = t;
    s.submit(req);
  }
  ScenarioResult res = s.run();

  double energy_kj = 0.0;
  for (const JobResult& j : res.jobs) energy_kj += j.exact_avg_node_energy_j / 1e3;
  std::printf("%-34s makespan %6.0f s | avg job energy %6.1f kJ/node | cluster %5.2f MJ\n",
              setup.label, res.makespan_s, energy_kj / res.jobs.size(),
              res.total_energy_j / 1e6);

  if (print_jobs) {
    util::TextTable table({"job", "app", "nodes", "wait s", "run s",
                           "kJ/node"});
    for (const JobResult& j : res.jobs) {
      table.add_row({std::to_string(j.id), j.app, std::to_string(j.nnodes),
                     util::TextTable::num(j.t_start - j.t_submit, 0),
                     util::TextTable::num(j.runtime_s, 0),
                     util::TextTable::num(j.exact_avg_node_energy_j / 1e3, 0)});
    }
    table.print(std::cout);
  }
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 2024;
  std::printf("10-job queue (paper §IV-E mix) on a 16-node allocation\n\n");

  // Detailed view of the queue once, under proportional sharing.
  run_setup({"prop sharing + FCFS (detail)", manager::NodePolicy::DirectGpuBudget,
             true, flux::Scheduler::Policy::Fcfs},
            kSeed, /*print_jobs=*/true);
  std::printf("\npolicy comparison (same queue, same seed):\n");
  run_setup({"  unconstrained, FCFS", manager::NodePolicy::None, false,
             flux::Scheduler::Policy::Fcfs},
            kSeed, false);
  run_setup({"  prop sharing, FCFS", manager::NodePolicy::DirectGpuBudget, true,
             flux::Scheduler::Policy::Fcfs},
            kSeed, false);
  run_setup({"  FPP, FCFS", manager::NodePolicy::Fpp, true,
             flux::Scheduler::Policy::Fcfs},
            kSeed, false);
  run_setup({"  prop sharing, backfill", manager::NodePolicy::DirectGpuBudget,
             true, flux::Scheduler::Policy::EasyBackfill},
            kSeed, false);
  std::printf(
      "\npaper finding: prop sharing and FPP leave the makespan unchanged "
      "(1539 s) while FPP trims ~1.26%% energy per job.\n");
  return 0;
}
