// non_mpi_and_user_instances — two capabilities the paper highlights that
// traditional power runtimes (GEOPM, EAR) lack:
//
//   A. Power management of NON-MPI workloads: a Charm++ NQueens job shares
//      the constrained cluster with an MPI GEMM job; the manager caps both
//      identically because it operates on Flux jobs, not MPI (Fig 7).
//
//   B. USER-LEVEL instances: a user spawns their own Flux instance on the
//      nodes allocated to them and loads their own power monitor with a
//      custom (faster) sampling policy inside it — "different users can
//      choose different power-aware scheduling policies within their
//      respective allocations" (§I).
//
// Build & run:  ./build/examples/non_mpi_and_user_instances
#include <cstdio>

#include "apps/launcher.hpp"
#include "experiments/scenario.hpp"
#include "monitor/client.hpp"
#include "monitor/power_monitor.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  // ---- Part A: non-MPI job under proportional capping (Fig 7) -------------
  std::printf("A. Charm++ NQueens alongside MPI GEMM under a 9.6 kW bound\n");
  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  Scenario s(cfg);

  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 1.5;
  const flux::JobId gemm_id = s.submit(gemm);
  JobRequest nq;
  nq.kind = apps::AppKind::NQueens;  // Charm++, CPU-only, +p160
  nq.nnodes = 2;
  nq.submit_time_s = 60.0;
  const flux::JobId nq_id = s.submit(nq);

  ScenarioResult res = s.run();
  const JobResult& g = res.job(gemm_id);
  const JobResult& n = res.job(nq_id);
  std::printf("   GEMM    (MPI)    : %6.1f s, peak node %6.0f W\n",
              g.runtime_s, g.max_node_power_w);
  std::printf("   NQueens (Charm++): %6.1f s, peak node %6.0f W (GPUs idle)\n",
              n.runtime_s, n.max_node_power_w);

  // GEMM's node power before vs while NQueens shares the bound.
  const auto& tl = res.timelines.at(gemm_id);
  util::RunningStats solo, shared;
  for (const TimelinePoint& p : tl) {
    if (p.t_s < n.t_start - 5.0) solo.add(p.node_w);
    else if (p.t_s > n.t_start + 15.0 && p.t_s < n.t_end - 5.0) shared.add(p.node_w);
  }
  std::printf("   GEMM node power %.0f W -> %.0f W when NQueens enters: the "
              "manager is application-agnostic.\n\n",
              solo.mean(), shared.mean());

  // ---- Part B: user-level instance with a custom telemetry policy ---------
  std::printf("B. user-level Flux instance with custom monitor policy\n");
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, 8);
  std::vector<hwsim::Node*> nodes;
  for (int i = 0; i < cluster.size(); ++i) nodes.push_back(&cluster.node(i));
  flux::Instance system_instance(sim, std::move(nodes));
  system_instance.jobs().set_launcher(apps::make_launcher(
      {.platform = hwsim::Platform::LassenIbmAc922}));
  // Site default: 2 s sampling everywhere.
  system_instance.load_module_on_all<monitor::PowerMonitorModule>(
      monitor::PowerMonitorConfig::for_lassen());

  // The user got ranks 2..5; they bootstrap their own instance there and
  // load a 0.5 s-sampling monitor under their own control.
  flux::Instance& user_instance = system_instance.spawn_child({2, 3, 4, 5});
  user_instance.jobs().set_launcher(apps::make_launcher(
      {.platform = hwsim::Platform::LassenIbmAc922}));
  monitor::PowerMonitorConfig fast = monitor::PowerMonitorConfig::for_lassen();
  fast.sample_period_s = 0.5;
  user_instance.load_module_on_all<monitor::PowerMonitorModule>(fast);

  flux::JobSpec spec;
  spec.name = "user-laghos";
  spec.app = "laghos";
  spec.nnodes = 4;
  spec.attributes = util::Json::object();
  spec.attributes["work_scale"] = 4.0;
  const flux::JobId uid = user_instance.jobs().submit(spec);
  while (!user_instance.jobs().job(uid).done() && sim.step()) {
  }

  monitor::MonitorClient user_client(user_instance);
  auto udata = user_client.query_blocking(uid);
  if (udata) {
    const std::size_t samples = udata->nodes.front().samples.size();
    std::printf("   user instance sampled %zu points over a %.1f s job "
                "(0.5 s period vs the system-wide 2 s)\n",
                samples, user_instance.jobs().job(uid).runtime());
    std::printf("   avg node power %.0f W; telemetry stayed inside the "
                "user's allocation.\n",
                udata->average_node_power_w());
  }
  return 0;
}
