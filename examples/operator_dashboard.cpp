// operator_dashboard — the operations view of a power-managed cluster.
//
// Uses the framework's operator-facing surfaces together:
//   * live telemetry streaming ("power-monitor.sample" events) feeding a
//     cluster power histogram;
//   * the manager's allocation-history service for the budget timeline;
//   * ad-hoc window queries over an arbitrary hostlist;
//   * per-user energy accounting from the KVS;
//   * drain of a misbehaving node without disturbing running jobs.
//
// Build & run:  ./build/examples/operator_dashboard
#include <cstdio>

#include "experiments/scenario.hpp"
#include "flux/hostlist.hpp"
#include "manager/power_manager.hpp"
#include "monitor/client.hpp"
#include "monitor/power_monitor.hpp"
#include "util/histogram.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  cfg.manager.history_period_s = 20.0;
  monitor::PowerMonitorConfig mcfg = monitor::PowerMonitorConfig::for_lassen();
  mcfg.stream_samples = true;  // dashboards subscribe live
  cfg.monitor = mcfg;
  Scenario s(cfg);

  // Live feed -> power histogram.
  util::Histogram node_power(300.0, 1700.0, 14);
  s.instance().root().subscribe_event(
      "power-monitor.sample", [&](const flux::Message& m) {
        node_power.add(m.payload.at("sample").number_or(
            "power_node_watts", 0.0));
      });

  // Workload: two users share the cluster.
  auto submit_as = [&s](flux::UserId uid, const char* app, int nnodes,
                        double scale) {
    flux::JobSpec spec;
    spec.name = app;
    spec.app = app;
    spec.nnodes = nnodes;
    spec.userid = uid;
    spec.attributes = util::Json::object();
    spec.attributes["work_scale"] = scale;
    return s.instance().jobs().submit(spec);
  };
  const flux::JobId gemm = submit_as(1001, "gemm", 5, 1.0);
  const flux::JobId qs = submit_as(1002, "quicksilver", 2, 20.0);

  // Mid-run: operators notice rank 7 (idle) misbehaving and drain it.
  s.sim().schedule_at(60.0, [&s] {
    s.instance().scheduler().drain(7);
    std::printf("[t=60] drained rank 7 (suspected flaky NVML capping)\n");
  });

  while ((!s.instance().jobs().job(gemm).done() ||
          !s.instance().jobs().job(qs).done()) &&
         s.sim().step()) {
  }
  s.sim().run_until(s.sim().now() + 25.0);  // archives + history land

  std::printf("\n== cluster node-power distribution (live stream) ==\n%s",
              node_power.render(40).c_str());
  std::printf("fraction of samples >= 1200 W: %.1f%%\n\n",
              node_power.fraction_at_or_above(1200.0) * 100.0);

  // Budget timeline from the manager's history service.
  util::Json history;
  s.instance().root().rpc(flux::kRootRank, manager::kHistoryTopic,
                          util::Json::object(),
                          [&](const flux::Message& resp) {
                            history = resp.payload;
                          });
  s.sim().run_until(s.sim().now() + 1.0);
  std::printf("== allocation history (every 20 s) ==\n");
  for (const util::Json& p : history.at("points").as_array()) {
    std::printf("  t=%5.0f  allocated %7.0f / %.0f W over %d nodes (%d jobs)\n",
                p.number_or("t_s", 0.0), p.number_or("allocated_w", 0.0),
                p.number_or("bound_w", 0.0),
                static_cast<int>(p.int_or("allocated_nodes", 0)),
                static_cast<int>(p.int_or("jobs", 0)));
  }

  // Ad-hoc window query on a hostlist; hostnames resolve to broker ranks
  // through the cluster's hostname index.
  monitor::MonitorClient client(s.instance());
  const auto hosts = flux::hostlist_decode("lassen[0-2]");
  std::vector<int> query_ranks;
  for (const auto& h : hosts) {
    const int rank = s.cluster().rank_by_hostname(h);
    if (rank >= 0) query_ranks.push_back(rank);
  }
  std::printf("\n== ad-hoc query: %s over t=40..80 s ==\n",
              flux::hostlist_encode(hosts).c_str());
  auto window = client.query_window_blocking(query_ranks, 40.0, 80.0, 5);
  if (window) {
    for (const auto& n : window->nodes) {
      double avg = 0.0;
      for (const auto& smp : n.samples) avg += smp.best_node_w();
      if (!n.samples.empty()) avg /= static_cast<double>(n.samples.size());
      std::printf("  %-8s %zu samples (decimated), avg %6.0f W\n",
                  n.hostname.c_str(), n.samples.size(), avg);
    }
  }

  // Per-user chargeback.
  std::printf("\n== per-user energy accounting ==\n");
  for (flux::UserId uid : {1001, 1002}) {
    const auto acct =
        s.instance().kvs().get("accounting.users." + std::to_string(uid));
    if (acct) {
      std::printf("  user %d: %d job(s), %.1f kJ, %.0f node-seconds\n", uid,
                  static_cast<int>(acct->int_or("jobs", 0)),
                  acct->number_or("energy_j", 0.0) / 1e3,
                  acct->number_or("node_seconds", 0.0));
    }
  }
  std::printf("\nrank 7 drained: %s; free healthy nodes: %d\n",
              s.instance().scheduler().drained(7) ? "yes" : "no",
              s.instance().scheduler().free_node_count());
  return 0;
}
