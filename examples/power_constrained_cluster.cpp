// power_constrained_cluster — operating a hardware-overprovisioned system.
//
// An 8-node Lassen-like cluster has a 9.6 kW power bound (each node could
// draw 3050 W, so not all of them can run flat out — the paper's
// "power-constrained" use case, §IV-C/D). This example:
//
//   1. loads flux-power-manager with proportional sharing + direct
//      GPU-budget enforcement and a 1950 W safety node cap;
//   2. runs the paper's workload (GEMM x6 nodes + Quicksilver x2 nodes);
//   3. watches the cluster-level-manager's allocations via RPC while the
//      jobs run, showing the redistribution when Quicksilver finishes;
//   4. verifies the bound was respected and reports per-job energy.
//
// Build & run:  ./build/examples/power_constrained_cluster
#include <cstdio>

#include "experiments/scenario.hpp"
#include "manager/power_manager.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  cfg.load_manager = true;
  cfg.manager.cluster_power_bound_w = 9600.0;
  cfg.manager.node_peak_w = 3050.0;
  cfg.manager.static_node_cap_w = 1950.0;
  cfg.manager.node_policy = manager::NodePolicy::DirectGpuBudget;
  Scenario scenario(cfg);

  JobRequest gemm;
  gemm.kind = apps::AppKind::Gemm;
  gemm.nnodes = 6;
  gemm.work_scale = 2.0;
  const flux::JobId gemm_id = scenario.submit(gemm);

  JobRequest qs;
  qs.kind = apps::AppKind::Quicksilver;
  qs.nnodes = 2;
  qs.work_scale = 27.5;
  const flux::JobId qs_id = scenario.submit(qs);

  // Poll the cluster-level-manager over the message layer while running —
  // the same interface an operator dashboard would use.
  auto& root = scenario.instance().root();
  sim::PeriodicTask poll(scenario.sim(), 60.0, [&] {
    root.rpc(flux::kRootRank, manager::kClusterStatusTopic,
             util::Json::object(), [&](const flux::Message& resp) {
               std::printf("[t=%7.1f] allocated %.0f / %.0f W across %zu jobs:",
                           scenario.sim().now(),
                           resp.payload.number_or("allocated_power_w", 0.0),
                           resp.payload.number_or("cluster_power_bound_w", 0.0),
                           resp.payload.at("jobs").size());
               for (const util::Json& j : resp.payload.at("jobs").as_array()) {
                 std::printf("  job %lld: %d nodes @ %.0f W/node",
                             static_cast<long long>(j.int_or("id", 0)),
                             static_cast<int>(j.int_or("nnodes", 0)),
                             j.number_or("node_power_w", 0.0));
               }
               std::printf("\n");
             });
    return true;
  });

  ScenarioResult res = scenario.run();
  poll.stop();

  const JobResult& g = res.job(gemm_id);
  const JobResult& q = res.job(qs_id);
  std::printf("\nresults under the 9.6 kW bound:\n");
  std::printf("  GEMM       : %6.1f s, %6.1f kJ/node, peak node %6.1f W\n",
              g.runtime_s, g.exact_avg_node_energy_j / 1e3,
              g.max_node_power_w);
  std::printf("  Quicksilver: %6.1f s, %6.1f kJ/node, peak node %6.1f W\n",
              q.runtime_s, q.exact_avg_node_energy_j / 1e3,
              q.max_node_power_w);
  std::printf("  peak cluster power: %.2f kW (bound 9.60 kW)\n",
              res.max_cluster_power_w / 1e3);
  std::printf("  total cluster energy: %.2f MJ over %.0f s\n",
              res.total_energy_j / 1e6, res.makespan_s);
  if (res.max_cluster_power_w <= 9600.0 * 1.02) {
    std::printf("  bound respected.\n");
  } else {
    std::printf("  WARNING: bound exceeded!\n");
  }
  return 0;
}
