// quickstart — the smallest end-to-end use of the framework:
//
//   1. build a simulated 4-node Lassen-like cluster;
//   2. bootstrap a Flux instance over it and load flux-power-monitor on
//      every broker (root-agent on rank 0, node-agents everywhere);
//   3. submit a LAMMPS job through the job-manager;
//   4. after it completes, query the job's power telemetry by job id —
//      exactly what the paper's client script does — and print the CSV
//      plus summary statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "apps/launcher.hpp"
#include "flux/instance.hpp"
#include "hwsim/cluster.hpp"
#include "monitor/client.hpp"
#include "monitor/power_monitor.hpp"

using namespace fluxpower;

int main() {
  // 1. Hardware: four IBM AC922 nodes (2x Power9, 4x V100, OCC sensors).
  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, 4);
  cluster.set_sensor_noise(0.004);

  // 2. Flux instance + power monitor (2 s sampling, 100k-sample buffer).
  std::vector<hwsim::Node*> nodes;
  for (int i = 0; i < cluster.size(); ++i) nodes.push_back(&cluster.node(i));
  flux::Instance instance(sim, std::move(nodes));
  instance.jobs().set_launcher(apps::make_launcher(
      {.platform = hwsim::Platform::LassenIbmAc922}));
  instance.load_module_on_all<monitor::PowerMonitorModule>(
      monitor::PowerMonitorConfig::for_lassen());

  // 3. Submit a 4-node LAMMPS job (strong-scaled, ML-SNAP-style GPU load).
  flux::JobSpec spec;
  spec.name = "lammps-demo";
  spec.app = "lammps";
  spec.nnodes = 4;
  spec.tasks_per_node = 4;
  const flux::JobId id = instance.jobs().submit(spec);
  std::printf("submitted job %llu (%s) on %d nodes\n",
              static_cast<unsigned long long>(id), spec.name.c_str(),
              spec.nnodes);

  // Run the simulation until the job completes.
  while (!instance.jobs().job(id).done() && sim.step()) {
  }
  const flux::Job& job = instance.jobs().job(id);
  std::printf("job finished: runtime %.2f s (t=%.1f..%.1f)\n", job.runtime(),
              job.t_start, job.t_end);

  // 4. Query telemetry by job id, like the paper's Python client.
  monitor::MonitorClient client(instance);
  auto data = client.query_blocking(id);
  if (!data) {
    std::fprintf(stderr, "telemetry query failed\n");
    return 1;
  }

  const std::string csv = monitor::MonitorClient::to_csv(*data);
  std::printf("\nfirst lines of the job power CSV:\n");
  std::size_t shown = 0, pos = 0;
  while (shown < 6 && pos < csv.size()) {
    const std::size_t nl = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++shown;
  }

  std::printf("\nsummary:\n");
  std::printf("  average node power : %8.1f W\n", data->average_node_power_w());
  std::printf("  peak node power    : %8.1f W\n", data->max_node_power_w());
  std::printf("  peak job power     : %8.1f W (all nodes)\n",
              data->max_aggregate_power_w());
  std::printf("  energy per node    : %8.1f kJ\n",
              data->average_node_energy_j() / 1e3);
  std::printf("  dataset            : %s\n",
              data->nodes.front().complete ? "complete" : "partial");
  return 0;
}
