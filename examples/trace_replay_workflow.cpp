// trace_replay_workflow — validating a power policy against recorded
// telemetry before enabling it in production.
//
// The workflow a site would actually run:
//   1. RECORD: run the production workload with only the monitor loaded
//      and export its per-node power CSV (the monitor client's format);
//   2. REPLAY: feed the recorded trace back as synthetic load on a test
//      cluster with the power manager enabled, and verify the policy's
//      caps/energy effects against the recorded shape — no production
//      nodes at risk.
//
// Build & run:  ./build/examples/trace_replay_workflow
#include <cstdio>

#include "apps/trace_replay.hpp"
#include "experiments/scenario.hpp"
#include "monitor/client.hpp"
#include "util/stats.hpp"

using namespace fluxpower;
using namespace fluxpower::experiments;

int main() {
  // ---- 1. RECORD ----------------------------------------------------------
  std::printf("1. recording Quicksilver telemetry on a production-like node\n");
  ScenarioConfig rec_cfg;
  rec_cfg.nodes = 1;
  Scenario recorder(rec_cfg);
  JobRequest req;
  req.kind = apps::AppKind::Quicksilver;
  req.nnodes = 1;
  req.work_scale = 27.5;
  const flux::JobId id = recorder.submit(req);
  recorder.run();

  monitor::MonitorClient client(recorder.instance());
  auto data = client.query_blocking(id);
  if (!data) {
    std::fprintf(stderr, "recording failed\n");
    return 1;
  }
  const std::string csv = monitor::MonitorClient::to_csv(*data);
  std::printf("   recorded %zu samples, avg %.0f W, peak %.0f W\n",
              data->nodes.front().samples.size(), data->average_node_power_w(),
              data->max_node_power_w());

  // ---- 2. REPLAY under a power cap ---------------------------------------
  std::printf("2. replaying the trace on a test node with a 190 W GPU cap\n");
  const apps::PowerTrace trace = apps::PowerTrace::from_csv(csv);

  sim::Simulation sim;
  hwsim::Cluster cluster =
      hwsim::make_cluster(sim, hwsim::Platform::LassenIbmAc922, 1);
  auto& node = cluster.node(0);
  for (int g = 0; g < node.gpu_count(); ++g) node.set_gpu_power_cap(g, 190.0);

  apps::TraceReplayRuntime replay(sim, {&node}, trace);
  bool done = false;
  replay.start([&] { done = true; });
  util::RunningStats replay_power;
  sim::PeriodicTask sampler(sim, 2.0, [&] {
    replay_power.add(node.node_draw_w());
    return !done;
  });
  sim.run_until(trace.duration_s() + 10.0);

  const double replay_energy = node.energy_joules();
  std::printf("   replay: avg %.0f W, peak %.0f W, energy %.1f kJ over %.0f s\n",
              replay_power.mean(), replay_power.max(), replay_energy / 1e3,
              trace.duration_s());
  std::printf(
      "   verdict: Quicksilver's GPU bursts peak below 190 W, so the cap is "
      "harmless for this workload — safe to enable (what Table IV's QS "
      "column shows on the real system).\n");
  return 0;
}
