#include "apps/app_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fluxpower::apps {

using hwsim::Platform;

const char* app_kind_name(AppKind kind) noexcept {
  switch (kind) {
    case AppKind::Lammps: return "lammps";
    case AppKind::Gemm: return "gemm";
    case AppKind::Quicksilver: return "quicksilver";
    case AppKind::Laghos: return "laghos";
    case AppKind::NQueens: return "nqueens";
    case AppKind::Sw4lite: return "sw4lite";
    case AppKind::Kripke: return "kripke";
  }
  return "unknown";
}

AppKind app_kind_from_name(const std::string& name) {
  if (name == "lammps") return AppKind::Lammps;
  if (name == "gemm") return AppKind::Gemm;
  if (name == "quicksilver") return AppKind::Quicksilver;
  if (name == "laghos") return AppKind::Laghos;
  if (name == "nqueens") return AppKind::NQueens;
  if (name == "sw4lite") return AppKind::Sw4lite;
  if (name == "kripke") return AppKind::Kripke;
  throw std::invalid_argument("unknown application: " + name);
}

const char* canonical_input(AppKind kind) noexcept {
  // Verbatim from Table I (SW4lite/Kripke have no published inputs: the
  // paper could not run them on Tioga, §V).
  switch (kind) {
    case AppKind::Lammps: return "-v nx 64 -v ny 64 -v nz 64";
    case AppKind::Gemm: return "--sizefact 700 -repfact 50";
    case AppKind::Quicksilver:
      return "derived from rank count; base mesh 16, 300 particles per "
             "mesh, nsteps=40";
    case AppKind::Laghos:
      return "-pt {task-partition} -m {input-mesh} -rp 2 -tf 0.6 -no-vis "
             "-pa -d cuda --max-steps 40";
    case AppKind::NQueens: return "+p160, with 14 queens, grainsize=1000";
    case AppKind::Sw4lite: return "(no HIP variant; not run in the paper)";
    case AppKind::Kripke: return "(execution failed on Tioga; §V)";
  }
  return "";
}

TaskPartition task_partition(int ranks) {
  // §II-D: partitions for Quicksilver and Laghos by MPI rank count.
  switch (ranks) {
    case 4: return {2, 2, 1};
    case 8: return {2, 2, 2};
    case 16: return {2, 2, 4};
    case 32: return {4, 4, 2};
    case 64: return {4, 4, 4};
    default:
      throw std::invalid_argument(
          "task_partition: the paper defines partitions only for "
          "4/8/16/32/64 ranks");
  }
}

double eval_perf_curve(const PerfCurve& curve, double ratio) {
  if (curve.empty()) return std::clamp(ratio, 0.0, 1.0);
  const double r = std::clamp(ratio, 0.0, 1.0);
  if (r <= curve.front().first) return curve.front().second;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (r <= curve[i].first) {
      const auto& [x0, y0] = curve[i - 1];
      const auto& [x1, y1] = curve[i];
      const double t = (r - x0) / (x1 - x0);
      return y0 + t * (y1 - y0);
    }
  }
  return curve.back().second;
}

namespace {

/// Default power-performance response, shared by the GPU codes. Flat near
/// full power (DVFS headroom) then steepening — see header comment.
PerfCurve default_curve() {
  // Anchors solved from the paper's own measurements: GEMM at 35% of
  // demanded GPU power runs at ~0.48x (IBM-1200 row, 548 s -> 1145 s);
  // at ~75% of demand it keeps ~0.95x (proportional-sharing row); at 90%
  // it keeps ~0.98x (static-1950 row). Flat DVFS region near full power,
  // steep collapse below ~half the demand.
  return {{0.0, 0.0},   {0.20, 0.20}, {0.35, 0.40}, {0.55, 0.75},
          {0.70, 0.93}, {0.85, 0.97}, {1.0, 1.0}};
}

/// LAMMPS strong-scaling fit (Amdahl): T(n) = Wp/n + Ws, anchored to the
/// paper's Lassen runtimes (77.17 s @ 4 nodes, 46.33 s @ 8 nodes) and Tioga
/// runtimes (51.0 @ 4, 29.67 @ 8).
struct AmdahlFit {
  double par_s;
  double ser_s;
  double runtime(int n) const { return par_s / n + ser_s; }
  double utilization(int n) const {
    const double t = runtime(n);
    return (par_s / n) / t;
  }
};

constexpr AmdahlFit kLammpsLassen{247.4, 15.3};  // T(4)=77.2, T(8)=46.2
constexpr AmdahlFit kLammpsTioga{170.6, 8.35};   // T(4)=51.0, T(8)=29.7

AppProfile lassen_profile(AppKind kind, int nnodes, double work_scale) {
  AppProfile p;
  p.kind = kind;
  p.platform = Platform::LassenIbmAc922;
  p.nnodes = nnodes;
  p.tasks_per_node = 4;  // one MPI rank per GPU
  p.perf_curve = default_curve();

  switch (kind) {
    case AppKind::Lammps: {
      p.scaling = Scaling::Strong;
      p.runtime_s = kLammpsLassen.runtime(nnodes) * work_scale;
      // GPU utilization (and thus demand) falls as the strong-scaled
      // problem shrinks per node; calibrated to Table II average node
      // power: 1283.7 W @ 4 nodes, 1155.1 W @ 8 nodes.
      const double util = kLammpsLassen.utilization(nnodes);
      const double gpu_demand = 35.0 + 235.0 * util;
      p.phases = {
          {"md-step", 0.90, gpu_demand, 110.0, 70.0, 0.90, 0.05},
          {"neighbor", 0.10, 0.60 * gpu_demand, 130.0, 70.0, 0.55, 0.35},
      };
      p.iteration_s = 5.0;
      p.cpu_coupling = 0.6;
      break;
    }
    case AppKind::Gemm: {
      p.scaling = Scaling::Weak;
      p.runtime_s = 274.0 * work_scale;  // Table IV: 548 s at 2x iterations
      // Compute-dominant with a staging trough; peak node draw ~1523 W and
      // average ~1325-1400 W (Table IV unconstrained row).
      p.phases = {
          {"staging", 0.15, 140.0, 110.0, 55.0, 0.50, 0.30},
          {"dgemm", 0.85, 280.0, 100.0, 60.0, 0.93, 0.05},
      };
      p.iteration_s = 25.0;
      p.cpu_coupling = 0.8;
      break;
    }
    case AppKind::Quicksilver: {
      p.scaling = Scaling::Weak;
      // Weak-scaled baseline ~12.8 s @ 4 nodes, creeping up with scale
      // (Table II); §IV-C uses a 10x problem via work_scale.
      p.runtime_s = (12.0 + 0.4 * std::log2(std::max(1, nnodes))) * work_scale;
      // Periodic square wave (Fig 1b): GPU tracking bursts over a CPU-side
      // baseline. Average node ~540 W, peak ~950 W.
      p.phases = {
          {"cycle-tracking", 0.22, 140.0, 115.0, 70.0, 0.80, 0.15},
          {"cpu-phase", 0.78, 35.0, 77.0, 55.0, 0.05, 0.85},
      };
      p.iteration_s = p.runtime_s / 40.0;  // nsteps=40
      p.cpu_coupling = 0.6;
      break;
    }
    case AppKind::Laghos: {
      p.scaling = Scaling::Weak;
      p.runtime_s = 12.55 * work_scale;
      // CPU-heavy with minor GPU bursts; average node ~470 W (Table II).
      p.phases = {
          {"assembly", 0.92, 35.0, 85.0, 55.0, 0.05, 0.90},
          {"cuda-kernel", 0.08, 110.0, 80.0, 60.0, 0.60, 0.30},
      };
      p.iteration_s = p.runtime_s / 40.0;  // --max-steps 40
      p.cpu_coupling = 0.5;
      break;
    }
    case AppKind::NQueens: {
      p.scaling = Scaling::Weak;
      p.tasks_per_node = 80;  // +p160 over 2 nodes
      p.runtime_s = 120.0 * work_scale;
      // Charm++ CPU-only: GPUs stay at idle for the whole run.
      p.phases = {
          {"solve", 1.0, 35.0, 165.0, 55.0, 0.0, 0.95},
      };
      p.iteration_s = 6.0;
      p.cpu_coupling = 0.3;
      break;
    }
    case AppKind::Sw4lite: {
      // Seismic finite differences: memory-bandwidth bound. Moderate GPU
      // draw, high memory draw, weak power sensitivity (stalls dominate).
      p.scaling = Scaling::Weak;
      p.runtime_s = 90.0 * work_scale;
      p.phases = {
          {"stencil", 0.85, 185.0, 100.0, 105.0, 0.45, 0.25},
          {"boundary", 0.15, 90.0, 120.0, 80.0, 0.20, 0.55},
      };
      p.iteration_s = 7.0;
      p.cpu_coupling = 0.4;
      break;
    }
    case AppKind::Kripke: {
      // Sn transport: wavefront sweeps alternate with scattering — strong
      // periodic phase behaviour, similar in kind to Quicksilver's.
      p.scaling = Scaling::Weak;
      p.runtime_s = 80.0 * work_scale;
      p.phases = {
          {"sweep", 0.45, 235.0, 95.0, 85.0, 0.85, 0.10},
          {"scattering", 0.55, 70.0, 125.0, 70.0, 0.15, 0.75},
      };
      p.iteration_s = 9.0;
      p.cpu_coupling = 0.5;
      break;
    }
  }
  return p;
}

AppProfile tioga_profile(AppKind kind, int nnodes, double work_scale) {
  AppProfile p;
  p.kind = kind;
  p.platform = Platform::TiogaCrayEx235a;
  p.nnodes = nnodes;
  p.tasks_per_node = 8;  // one rank per GCD
  p.perf_curve = default_curve();

  switch (kind) {
    case AppKind::Lammps: {
      p.scaling = Scaling::Strong;
      p.runtime_s = kLammpsTioga.runtime(nnodes) * work_scale;
      const double util = kLammpsTioga.utilization(nnodes);
      const double gcd_demand = 45.0 + 155.0 * util;  // Table II: 1552 W @ 4n
      p.phases = {
          {"md-step", 0.90, gcd_demand, 185.0, 70.0, 0.90, 0.05},
          {"neighbor", 0.10, 0.60 * gcd_demand, 210.0, 70.0, 0.55, 0.35},
      };
      p.iteration_s = 4.0;
      p.cpu_coupling = 0.6;
      break;
    }
    case AppKind::Gemm: {
      p.scaling = Scaling::Weak;
      p.runtime_s = 180.0 * work_scale;
      p.phases = {
          {"staging", 0.15, 90.0, 200.0, 60.0, 0.50, 0.30},
          {"dgemm", 0.85, 210.0, 180.0, 70.0, 0.93, 0.05},
      };
      p.iteration_s = 20.0;
      p.cpu_coupling = 0.8;
      break;
    }
    case AppKind::Quicksilver: {
      p.scaling = Scaling::Weak;
      // The HIP variant anomaly (§IV-A, Table II): expected 24–28 s from
      // task doubling under weak scaling, observed 102–106 s. Modelled as a
      // 4x work inflation in the HIP port.
      const double expected = 25.5 + 0.3 * std::log2(std::max(1, nnodes));
      const double hip_anomaly = 4.05;
      p.runtime_s = expected * hip_anomaly * work_scale;
      p.phases = {
          {"cycle-tracking", 0.30, 150.0, 150.0, 70.0, 0.80, 0.15},
          {"cpu-phase", 0.70, 80.0, 100.0, 55.0, 0.05, 0.85},
      };
      p.iteration_s = p.runtime_s / 40.0;
      p.cpu_coupling = 0.6;
      break;
    }
    case AppKind::Laghos: {
      p.scaling = Scaling::Weak;
      // Task count doubled (8 GCDs) with problem scaled accordingly:
      // runtime roughly doubles vs Lassen (Table II: 26.7 s).
      p.runtime_s = 26.71 * work_scale;
      p.phases = {
          {"assembly", 0.92, 48.0, 130.0, 55.0, 0.05, 0.90},
          {"hip-kernel", 0.08, 75.0, 110.0, 60.0, 0.60, 0.30},
      };
      p.iteration_s = p.runtime_s / 40.0;
      p.cpu_coupling = 0.5;
      break;
    }
    case AppKind::NQueens: {
      p.scaling = Scaling::Weak;
      p.tasks_per_node = 64;
      p.runtime_s = 110.0 * work_scale;
      p.phases = {
          {"solve", 1.0, 45.0, 230.0, 55.0, 0.0, 0.95},
      };
      p.iteration_s = 6.0;
      p.cpu_coupling = 0.3;
      break;
    }
    case AppKind::Sw4lite:
      // §V: "we could not obtain a HIP variant for SW4lite".
      throw std::invalid_argument(
          "sw4lite: no HIP variant available on this platform");
    case AppKind::Kripke:
      // §V: "Kripke execution failed on the Tioga system".
      throw std::invalid_argument("kripke: execution fails on this platform");
  }
  return p;
}

AppProfile cpu_only_profile(AppKind kind, Platform platform, int nnodes,
                            double work_scale) {
  // Generic CPU-only platforms (Intel RAPL, ARM Grace) used by
  // vendor-neutrality tests: reuse the Lassen profile shapes but fold GPU
  // demand onto the sockets.
  AppProfile p = lassen_profile(kind, nnodes, work_scale);
  p.platform = platform;
  const double socket_ceiling =
      platform == Platform::GenericArmGrace ? 480.0 : 330.0;
  p.tasks_per_node = platform == Platform::GenericArmGrace ? 1 : 2;
  for (AppPhase& phase : p.phases) {
    phase.cpu_w = std::min(socket_ceiling, phase.cpu_w + 2.0 * phase.gpu_w * 0.5);
    phase.cpu_weight = std::min(0.95, phase.cpu_weight + phase.gpu_weight);
    phase.gpu_w = 0.0;
    phase.gpu_weight = 0.0;
  }
  return p;
}

}  // namespace

AppProfile make_profile(AppKind kind, Platform platform, int nnodes,
                        double work_scale) {
  if (nnodes <= 0) {
    throw std::invalid_argument("make_profile: nnodes must be positive");
  }
  if (work_scale <= 0.0) {
    throw std::invalid_argument("make_profile: work_scale must be positive");
  }
  switch (platform) {
    case Platform::LassenIbmAc922: return lassen_profile(kind, nnodes, work_scale);
    case Platform::TiogaCrayEx235a: return tioga_profile(kind, nnodes, work_scale);
    case Platform::GenericIntelXeon:
    case Platform::GenericArmGrace:
      return cpu_only_profile(kind, platform, nnodes, work_scale);
  }
  throw std::invalid_argument("make_profile: unknown platform");
}

double runtime_sigma(AppKind kind, Platform platform, int nnodes) {
  if (platform == Platform::TiogaCrayEx235a) return 0.002;
  if (platform == Platform::GenericIntelXeon ||
      platform == Platform::GenericArmGrace) {
    return 0.005;
  }
  // Lassen: Laghos and Quicksilver are jitter-sensitive at small node
  // counts (>20% run-to-run swings at 1–2 nodes, §IV-B / Fig 4).
  if (kind == AppKind::Laghos || kind == AppKind::Quicksilver) {
    if (nnodes <= 2) return 0.10;
    return 0.012;
  }
  return 0.006;
}

double estimate_peak_node_power_w(const AppProfile& profile) {
  // Canonical node shapes per platform (sockets, accelerators, base/mem
  // floors) matching the hwsim defaults.
  int sockets = 2, gpus = 4;
  double base = 100.0, mem_idle = 50.0;
  switch (profile.platform) {
    case Platform::LassenIbmAc922: break;
    case Platform::TiogaCrayEx235a:
      sockets = 1;
      gpus = 8;
      base = 90.0;
      mem_idle = 40.0;
      break;
    case Platform::GenericIntelXeon:
      sockets = 2;
      gpus = 0;
      base = 80.0;
      mem_idle = 35.0;
      break;
    case Platform::GenericArmGrace:
      sockets = 1;
      gpus = 0;
      base = 60.0;
      mem_idle = 30.0;
      break;
  }
  double peak = 0.0;
  for (const AppPhase& ph : profile.phases) {
    const double node = sockets * ph.cpu_w + gpus * ph.gpu_w +
                        std::max(ph.mem_w, mem_idle) + base;
    peak = std::max(peak, node);
  }
  return peak;
}

double phase_speed(const AppProfile& profile, const AppPhase& phase,
                   const hwsim::LoadDemand& demand,
                   const hwsim::Grants& grants) {
  auto device_ratio = [](const std::vector<double>& want,
                         const std::vector<double>& got) {
    double w = 0.0, g = 0.0;
    for (std::size_t i = 0; i < want.size(); ++i) {
      w += want[i];
      g += i < got.size() ? got[i] : 0.0;
    }
    if (w <= 0.0) return 1.0;
    return std::clamp(g / w, 0.0, 1.0);
  };
  const double gpu_speed =
      eval_perf_curve(profile.perf_curve, device_ratio(demand.gpu_w, grants.gpu_w));
  const double cpu_speed =
      eval_perf_curve(profile.perf_curve, device_ratio(demand.cpu_w, grants.cpu_w));
  const double insensitive =
      std::max(0.0, 1.0 - phase.gpu_weight - phase.cpu_weight);
  return std::clamp(
      phase.gpu_weight * gpu_speed + phase.cpu_weight * cpu_speed + insensitive,
      0.0, 1.0);
}

}  // namespace fluxpower::apps
