// app_model.hpp — application power/performance models.
//
// The paper evaluates five applications (§II-D): LAMMPS (strong-scaled MPI,
// GPU compute bound), GEMM from RajaPerf (weak-scaled, compute bound),
// Quicksilver (weak-scaled Monte Carlo with periodic phase behaviour),
// Laghos (weak-scaled, CPU-heavy with minor phases) and NQueens (CPU-only
// Charm++). Since real executables cannot run here, each application is an
// iteration/phase-structured model calibrated to the paper's published
// measurements (Fig 1 power shapes, Table II runtimes and powers, Table IV
// power/energy under caps). The two properties the power-management results
// depend on are preserved:
//   1. the *shape* of the power signal (flat vs periodic, amplitude,
//      CPU/GPU split), which FPP's FFT observes; and
//   2. the *power-performance sensitivity* (how much a GPU power cap slows
//      the application), which drives every energy/runtime trade-off.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "hwsim/cluster.hpp"
#include "hwsim/types.hpp"

namespace fluxpower::apps {

/// The paper's five evaluated applications plus the two it *attempted* on
/// Tioga (§V): SW4lite (no HIP variant existed) and Kripke (execution
/// failed on Tioga). Both run on Lassen; requesting them on Tioga throws,
/// reproducing the porting gap the paper reports.
enum class AppKind { Lammps, Gemm, Quicksilver, Laghos, NQueens, Sw4lite, Kripke };
enum class Scaling { Strong, Weak };

const char* app_kind_name(AppKind kind) noexcept;

/// Parse an application name ("lammps", "gemm", ...); throws on unknown.
AppKind app_kind_from_name(const std::string& name);

/// The canonical input the paper runs each application with (Table I).
/// Recorded for provenance; the models are calibrated against runs of
/// exactly these inputs.
const char* canonical_input(AppKind kind) noexcept;

/// Task partition (x, y, z) for rank-partitioned applications (Quicksilver
/// and Laghos, §II-D): (2,2,1) for 4 ranks up to (4,4,4) for 64. Throws
/// std::invalid_argument for rank counts the paper does not define.
struct TaskPartition {
  int x = 1, y = 1, z = 1;
  int ranks() const { return x * y * z; }
  bool operator==(const TaskPartition&) const = default;
};
TaskPartition task_partition(int ranks);

/// One phase of an application iteration. Power demands are absolute watts
/// per device; weights say how much of the phase's progress is bound to each
/// device class (remainder is power-insensitive, e.g. communication).
struct AppPhase {
  std::string name;
  double work_frac = 1.0;  ///< share of an iteration's work
  double gpu_w = 0.0;      ///< demand per GPU (per GCD on AMD)
  double cpu_w = 0.0;      ///< demand per socket
  double mem_w = 0.0;
  double gpu_weight = 0.0;  ///< progress sensitivity to GPU power
  double cpu_weight = 0.0;  ///< progress sensitivity to CPU power
};

/// Piecewise-linear speed response to a power ratio r = granted/demand.
/// Anchored so that small cap reductions near the top cost little
/// performance (DVFS region: power ~ V^2 f, perf ~ f) while deep throttling
/// costs nearly proportionally — the response the paper's GEMM numbers
/// imply (1200 W IBM cap → 2.09x slowdown; 1950 W cap → 1.03x).
using PerfCurve = std::vector<std::pair<double, double>>;

double eval_perf_curve(const PerfCurve& curve, double ratio);

struct AppProfile {
  AppKind kind = AppKind::Gemm;
  hwsim::Platform platform = hwsim::Platform::LassenIbmAc922;
  Scaling scaling = Scaling::Weak;
  int nnodes = 1;
  int tasks_per_node = 4;
  std::vector<AppPhase> phases;
  double iteration_s = 10.0;  ///< nominal wall seconds per iteration
  double runtime_s = 100.0;   ///< nominal unconstrained runtime
  PerfCurve perf_curve;
  /// How strongly CPU draw follows throttled progress (0 = CPU power
  /// independent of GPU throttling, 1 = fully coupled).
  double cpu_coupling = 0.7;

  /// Total work in "nominal seconds" (== runtime_s; progress at full power
  /// advances 1 work-second per wall second).
  double total_work() const { return runtime_s; }
};

/// Build the calibrated profile for an application at the given scale.
/// `work_scale` multiplies the problem size (the paper's §IV-C experiments
/// use a 10x Quicksilver problem and 2x GEMM iterations).
AppProfile make_profile(AppKind kind, hwsim::Platform platform, int nnodes,
                        double work_scale = 1.0);

/// Empirical run-to-run variability (relative sigma of runtime) for the
/// overhead study: the paper observed >20% swings for Laghos and
/// Quicksilver at 1–2 Lassen nodes (attributed to OS jitter and network
/// congestion, §IV-B) and near-zero variability on Tioga.
double runtime_sigma(AppKind kind, hwsim::Platform platform, int nnodes);

/// Compute a phase's progress speed (0..1] given demands and grants on one
/// node, using the profile's perf curve. Exposed for unit tests.
double phase_speed(const AppProfile& profile, const AppPhase& phase,
                   const hwsim::LoadDemand& demand, const hwsim::Grants& grants);

/// Peak per-node power (watts) the application can demand on its platform —
/// the estimate the power-aware scheduler admits jobs against. Computed
/// from the hottest phase on the platform's canonical node shape.
double estimate_peak_node_power_w(const AppProfile& profile);

}  // namespace fluxpower::apps
