#include "apps/app_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fluxpower::apps {

AppRuntime::AppRuntime(sim::Simulation& sim, std::vector<hwsim::Node*> nodes,
                       AppProfile profile, AppRuntimeOptions options)
    : sim_(sim),
      nodes_(std::move(nodes)),
      profile_(std::move(profile)),
      options_(options) {
  if (nodes_.empty()) {
    throw std::invalid_argument("AppRuntime: no nodes");
  }
  if (profile_.phases.empty()) {
    throw std::invalid_argument("AppRuntime: profile has no phases");
  }
  if (options_.step_s <= 0.0) {
    throw std::invalid_argument("AppRuntime: step must be positive");
  }
  double total = 0.0;
  for (const AppPhase& ph : profile_.phases) total += ph.work_frac;
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument(
        "AppRuntime: phase work fractions must sum to 1");
  }
}

AppRuntime::~AppRuntime() { cancel(); }

void AppRuntime::start(std::function<void()> on_complete) {
  if (running_) throw std::logic_error("AppRuntime::start: already running");
  on_complete_ = std::move(on_complete);
  running_ = true;
  // Drain any stale stolen time so this run is not charged for telemetry
  // activity that happened while the node was idle.
  for (hwsim::Node* n : nodes_) n->drain_stolen_time();
  if (options_.progress_broker != nullptr) {
    progress_task_ = std::make_unique<sim::PeriodicTask>(
        sim_, options_.progress_period_s, [this] {
          util::Json payload = util::Json::object();
          payload["id"] = options_.job_id;
          payload["work_done"] = work_done_;
          payload["total"] = profile_.total_work();
          util::Json ranks = util::Json::array();
          for (flux::Rank r : options_.ranks) ranks.push_back(r);
          payload["ranks"] = std::move(ranks);
          options_.progress_broker->publish_event("job.progress",
                                                  std::move(payload));
          return running_;
        });
  }
  pending_ = sim_.schedule_after(0.0, [this] { step(); });
}

void AppRuntime::cancel() {
  if (!running_) return;
  running_ = false;
  progress_task_.reset();
  if (pending_ != sim::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = sim::kInvalidEvent;
  }
  for (hwsim::Node* n : nodes_) n->idle();
}

const AppPhase& AppRuntime::phase_at(double work) const {
  // Position within the current iteration, in work seconds.
  const double iter = profile_.iteration_s;
  double pos = std::fmod(work, iter);
  for (const AppPhase& ph : profile_.phases) {
    const double span = ph.work_frac * iter;
    if (pos < span) return ph;
    pos -= span;
  }
  return profile_.phases.back();
}

void AppRuntime::apply_phase_demand(const AppPhase& phase) {
  // CPU/memory draw partially follows progress when the GPUs are throttled
  // (cores wait on kernels): scale the active-above-idle portion by the
  // coupling factor against last step's speed.
  const double follow =
      1.0 - profile_.cpu_coupling + profile_.cpu_coupling * last_speed_;
  for (hwsim::Node* n : nodes_) {
    const hwsim::LoadDemand floor = n->idle_demand();
    hwsim::LoadDemand d;
    d.cpu_w.resize(floor.cpu_w.size());
    for (std::size_t i = 0; i < d.cpu_w.size(); ++i) {
      d.cpu_w[i] = floor.cpu_w[i] + (phase.cpu_w - floor.cpu_w[i]) * follow;
    }
    d.gpu_w.assign(floor.gpu_w.size(), phase.gpu_w);
    d.mem_w = floor.mem_w + (phase.mem_w - floor.mem_w) * follow;
    n->set_demand(d);
  }
}

double AppRuntime::min_node_speed(const AppPhase& phase,
                                  const hwsim::LoadDemand& /*unused*/) const {
  double speed = 1.0;
  for (hwsim::Node* n : nodes_) {
    // Reconstruct the uncoupled demand for the ratio computation: speed is
    // driven by how much of the *wanted* power each device class received.
    hwsim::LoadDemand want;
    const hwsim::LoadDemand floor = n->idle_demand();
    want.cpu_w.assign(floor.cpu_w.size(), phase.cpu_w);
    want.gpu_w.assign(floor.gpu_w.size(), phase.gpu_w);
    want.mem_w = phase.mem_w;
    speed = std::min(speed, phase_speed(profile_, phase, want, n->grants()));
  }
  return speed;
}

void AppRuntime::step() {
  // step() only runs as this event's callback, so the id it fired under can
  // re-arm the stored callback in place (no per-tick lambda, no allocation).
  const sim::EventId fired = pending_;
  pending_ = sim::kInvalidEvent;
  if (!running_) return;

  const AppPhase& phase = phase_at(work_done_);
  apply_phase_demand(phase);
  double speed = min_node_speed(phase, {}) * options_.speed_factor;
  speed = std::clamp(speed, 1e-3, 2.0);
  last_speed_ = std::min(speed, 1.0);

  // Telemetry/OS CPU theft on any node stalls the bulk-synchronous step.
  double stolen = 0.0;
  for (hwsim::Node* n : nodes_) stolen = std::max(stolen, n->drain_stolen_time());
  const double effective_dt = std::max(0.0, options_.step_s - stolen);

  const double remaining = profile_.total_work() - work_done_;
  const double gained = effective_dt * speed;
  if (gained >= remaining && speed > 0.0) {
    // Finish mid-step at the exact completion instant.
    const double dt_needed =
        remaining / speed + std::min(stolen, options_.step_s);
    work_done_ = profile_.total_work();
    pending_ = sim_.schedule_after(std::min(dt_needed, options_.step_s),
                                   [this] { finish(); });
    return;
  }
  work_done_ += gained;
  pending_ = sim_.rearm_fired(fired, sim_.now() + options_.step_s);
}

void AppRuntime::finish() {
  pending_ = sim::kInvalidEvent;
  if (!running_) return;
  running_ = false;
  progress_task_.reset();
  for (hwsim::Node* n : nodes_) n->idle();
  if (on_complete_) {
    // Move out first: on_complete may destroy this runtime.
    auto cb = std::move(on_complete_);
    cb();
  }
}

}  // namespace fluxpower::apps
