// app_runtime.hpp — executes an application model on allocated nodes.
//
// AppRuntime is the flux::JobExecution the workload launcher hands to the
// job-manager. It advances the application in fixed simulation steps:
// each step sets the current phase's power demand on every allocated node,
// reads back the granted power under whatever caps the power manager has
// installed, converts the grant ratio into a progress speed, and advances
// the job bulk-synchronously at the *minimum* node speed (MPI semantics:
// the slowest rank gates the timestep). Telemetry-agent CPU theft recorded
// on the nodes is drained here and subtracts from progress — that is the
// monitor-overhead mechanism measured in Fig 3.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "apps/app_model.hpp"
#include "flux/broker.hpp"
#include "flux/job_manager.hpp"
#include "hwsim/node.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::apps {

struct AppRuntimeOptions {
  double step_s = 0.5;  ///< simulation step; phase boundaries are resolved
                        ///< to this granularity
  /// Multiplicative progress factor for this run (run-to-run variability /
  /// OS jitter model; 1.0 = nominal machine).
  double speed_factor = 1.0;
  /// Progress reporting: when set, the runtime publishes a `job.progress`
  /// event every `progress_period_s` with {id, ranks, work_done, total} —
  /// the "progress metrics" hook §III-B names for dynamic node policies.
  flux::Broker* progress_broker = nullptr;
  flux::JobId job_id = flux::kInvalidJob;
  std::vector<flux::Rank> ranks;
  double progress_period_s = 10.0;
};

class AppRuntime final : public flux::JobExecution {
 public:
  AppRuntime(sim::Simulation& sim, std::vector<hwsim::Node*> nodes,
             AppProfile profile, AppRuntimeOptions options = {});
  ~AppRuntime() override;

  void start(std::function<void()> on_complete) override;
  void cancel() override;

  const AppProfile& profile() const noexcept { return profile_; }
  /// Work completed so far, in nominal seconds (== runtime_s when done).
  double work_done() const noexcept { return work_done_; }
  bool running() const noexcept { return running_; }

  /// The phase active at a given work position (exposed for tests).
  const AppPhase& phase_at(double work) const;

 private:
  void step();
  void finish();
  void apply_phase_demand(const AppPhase& phase);
  double min_node_speed(const AppPhase& phase,
                        const hwsim::LoadDemand& demand) const;

  sim::Simulation& sim_;
  std::vector<hwsim::Node*> nodes_;
  AppProfile profile_;
  AppRuntimeOptions options_;
  std::function<void()> on_complete_;
  sim::EventId pending_ = sim::kInvalidEvent;
  std::unique_ptr<sim::PeriodicTask> progress_task_;
  double work_done_ = 0.0;
  double last_speed_ = 1.0;  ///< previous step's speed, for CPU coupling
  bool running_ = false;
};

}  // namespace fluxpower::apps
