#include "apps/launcher.hpp"

namespace fluxpower::apps {

AppProfile profile_for_job(const flux::Job& job,
                           const LauncherOptions& options) {
  const AppKind kind = app_kind_from_name(job.spec.app);
  const double work_scale = job.spec.attributes.number_or("work_scale", 1.0);
  return make_profile(kind, options.platform, job.spec.nnodes, work_scale);
}

flux::Launcher make_launcher(LauncherOptions options) {
  // The RNG is shared across all launches from this launcher and advanced
  // once per job, so a scenario's k-th job always sees the same draw.
  auto rng = std::make_shared<util::Rng>(options.noise_seed);
  return [options, rng](const flux::Job& job, flux::Instance& instance)
             -> std::unique_ptr<flux::JobExecution> {
    AppProfile profile = profile_for_job(job, options);

    AppRuntimeOptions rt_options;
    rt_options.step_s = options.step_s;
    if (options.runtime_variability) {
      const double sigma =
          runtime_sigma(profile.kind, options.platform, job.spec.nnodes);
      // OS jitter and congestion mostly slow a run (half-normal), with a
      // small symmetric component that occasionally yields the minor
      // "speedups" the paper attributes to noise (§IV-B).
      const double slow = std::abs(rng->normal(0.0, sigma));
      const double wiggle = rng->normal(0.0, 0.2 * sigma);
      rt_options.speed_factor = 1.0 / std::max(0.5, 1.0 + slow + wiggle);
    }

    std::vector<hwsim::Node*> nodes;
    nodes.reserve(job.ranks.size());
    for (flux::Rank r : job.ranks) {
      hwsim::Node* n = instance.node(r);
      if (n == nullptr) {
        throw std::logic_error("launcher: broker has no hardware node");
      }
      nodes.push_back(n);
    }
    if (options.report_progress && !job.ranks.empty()) {
      rt_options.progress_broker = &instance.broker(job.ranks.front());
      rt_options.job_id = job.id;
      rt_options.ranks = job.ranks;
      rt_options.progress_period_s = options.progress_period_s;
    }
    // Bind the runtime to the engine the job's nodes live on: with a
    // sharded engine this is the allocation's island (cell-confined
    // placement guarantees all ranks share it), otherwise instance.sim().
    sim::Simulation& app_sim = instance.sim_for(job.ranks.front());
    return std::make_unique<AppRuntime>(app_sim, std::move(nodes),
                                        std::move(profile), rt_options);
  };
}

}  // namespace fluxpower::apps
