// launcher.hpp — binds application models to the flux job-manager.
//
// The launcher turns a Job (whose spec.app names an application and whose
// attributes carry problem scaling) into an AppRuntime over the job's
// allocated nodes. Per-run variability is drawn from a seeded RNG so
// repeated runs of the same scenario differ realistically yet the whole
// experiment remains deterministic.
#pragma once

#include <memory>

#include "apps/app_model.hpp"
#include "apps/app_runtime.hpp"
#include "flux/instance.hpp"
#include "util/rng.hpp"

namespace fluxpower::apps {

struct LauncherOptions {
  hwsim::Platform platform = hwsim::Platform::LassenIbmAc922;
  double step_s = 0.5;
  /// Enable the run-to-run variability model (off = every run nominal).
  bool runtime_variability = false;
  std::uint64_t noise_seed = 42;
  /// Publish `job.progress` events (from the job's first-rank broker) every
  /// `progress_period_s` — required by the progress-based dynamic policy.
  bool report_progress = false;
  double progress_period_s = 10.0;
};

/// Job attributes understood by the launcher:
///   work_scale (number) — problem-size multiplier (default 1.0).
flux::Launcher make_launcher(LauncherOptions options);

/// Build the AppProfile a job would run with (for benches that want the
/// model without going through the scheduler).
AppProfile profile_for_job(const flux::Job& job, const LauncherOptions& options);

}  // namespace fluxpower::apps
