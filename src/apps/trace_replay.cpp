#include "apps/trace_replay.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace fluxpower::apps {

namespace {

/// Column map resolved from a header row.
struct Columns {
  int timestamp = -1;
  std::vector<int> cpu;
  int mem = -1;
  std::vector<int> gpu;
};

Columns resolve_columns(const std::vector<std::string>& header) {
  Columns cols;
  for (std::size_t i = 0; i < header.size(); ++i) {
    const std::string& name = header[i];
    const int idx = static_cast<int>(i);
    if (name == "timestamp_s" || name == "timestamp") {
      cols.timestamp = idx;
    } else if (name.rfind("cpu", 0) == 0 && name.ends_with("_w") &&
               name.find("cap") == std::string::npos) {
      // Cap columns (cpu0_cap_w) are control state, not demand — the same
      // exclusion the GPU branch always had.
      cols.cpu.push_back(idx);
    } else if (name == "mem_w") {
      cols.mem = idx;
    } else if ((name.rfind("gpu", 0) == 0 || name.rfind("oam", 0) == 0) &&
               name.ends_with("_w") && name.find("cap") == std::string::npos) {
      cols.gpu.push_back(idx);
    }
  }
  if (cols.timestamp < 0) {
    throw std::invalid_argument("trace: no timestamp column in header");
  }
  return cols;
}

double cell_number(const std::vector<std::string>& row, int idx) {
  if (idx < 0 || static_cast<std::size_t>(idx) >= row.size() ||
      row[static_cast<std::size_t>(idx)].empty()) {
    return 0.0;
  }
  try {
    return std::stod(row[static_cast<std::size_t>(idx)]);
  } catch (const std::exception&) {
    throw std::invalid_argument("trace: non-numeric cell '" +
                                row[static_cast<std::size_t>(idx)] + "'");
  }
}

}  // namespace

double DiurnalModel::level_at(double t_s) const noexcept {
  constexpr double kDayS = 86400.0;
  constexpr double kWeekS = 7.0 * kDayS;
  double week = std::fmod(t_s, kWeekS);
  if (week < 0.0) week += kWeekS;
  const int day = static_cast<int>(week / kDayS);
  const double h = std::fmod(week, kDayS) / 3600.0;

  double level = night_level;
  if (h >= ramp_start_h && h < ramp_end_h) {
    const double f = (h - ramp_start_h) / (ramp_end_h - ramp_start_h);
    level = night_level + (day_level - night_level) * f;
  } else if (h >= ramp_end_h && h < decline_start_h) {
    level = day_level;
  } else if (h >= decline_start_h && h < decline_end_h) {
    const double f = (h - decline_start_h) / (decline_end_h - decline_start_h);
    level = day_level + (night_level - day_level) * f;
  }
  if (day >= 5) level *= weekend_factor;
  return level;
}

PowerTrace make_diurnal_trace(const DiurnalModel& model, double duration_s,
                              double step_s, const hwsim::LoadDemand& peak) {
  if (duration_s <= 0.0 || step_s <= 0.0) {
    throw std::invalid_argument("make_diurnal_trace: nonpositive duration/step");
  }
  PowerTrace trace;
  const std::size_t steps = static_cast<std::size_t>(duration_s / step_s) + 1;
  trace.points.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    TracePoint p;
    p.t_s = static_cast<double>(i) * step_s;
    const double level = model.level_at(p.t_s);
    for (double w : peak.cpu_w) p.demand.cpu_w.push_back(w * level);
    for (double w : peak.gpu_w) p.demand.gpu_w.push_back(w * level);
    p.demand.mem_w = peak.mem_w * level;
    trace.points.push_back(std::move(p));
  }
  return trace;
}

PowerTrace PowerTrace::from_csv(const std::string& csv_text) {
  std::istringstream lines(csv_text);
  std::string line;
  if (!std::getline(lines, line)) {
    throw std::invalid_argument("trace: empty input");
  }
  const Columns cols = resolve_columns(util::parse_csv_line(line));

  PowerTrace trace;
  double t0 = 0.0;
  double prev_t = -1.0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto row = util::parse_csv_line(line);
    TracePoint p;
    const double t = cell_number(row, cols.timestamp);
    if (trace.points.empty()) t0 = t;
    p.t_s = t - t0;
    if (p.t_s < prev_t) {
      throw std::invalid_argument("trace: timestamps must be nondecreasing");
    }
    prev_t = p.t_s;
    for (int idx : cols.cpu) p.demand.cpu_w.push_back(cell_number(row, idx));
    for (int idx : cols.gpu) p.demand.gpu_w.push_back(cell_number(row, idx));
    p.demand.mem_w = cell_number(row, cols.mem);
    trace.points.push_back(std::move(p));
  }
  if (trace.points.empty()) {
    throw std::invalid_argument("trace: no data rows");
  }
  return trace;
}

TraceReplayRuntime::TraceReplayRuntime(sim::Simulation& sim,
                                       std::vector<hwsim::Node*> nodes,
                                       PowerTrace trace)
    : sim_(sim), nodes_(std::move(nodes)), trace_(std::move(trace)) {
  if (nodes_.empty()) {
    throw std::invalid_argument("TraceReplayRuntime: no nodes");
  }
  if (trace_.points.empty()) {
    throw std::invalid_argument("TraceReplayRuntime: empty trace");
  }
}

TraceReplayRuntime::~TraceReplayRuntime() { cancel(); }

void TraceReplayRuntime::start(std::function<void()> on_complete) {
  if (running_) {
    throw std::logic_error("TraceReplayRuntime::start: already running");
  }
  running_ = true;
  on_complete_ = std::move(on_complete);
  apply_point(0);
}

void TraceReplayRuntime::cancel() {
  if (!running_) return;
  running_ = false;
  if (pending_ != sim::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = sim::kInvalidEvent;
  }
  for (hwsim::Node* n : nodes_) n->idle();
}

void TraceReplayRuntime::apply_point(std::size_t index) {
  pending_ = sim::kInvalidEvent;
  if (!running_) return;
  const TracePoint& p = trace_.points[index];
  for (hwsim::Node* n : nodes_) n->set_demand(p.demand);
  if (index + 1 >= trace_.points.size()) {
    // Hold the final point for one nominal gap, then finish. Single-point
    // traces hold for 2 s (one telemetry period).
    const double hold =
        trace_.points.size() > 1
            ? p.t_s - trace_.points[index - 1].t_s
            : 2.0;
    pending_ = sim_.schedule_after(std::max(hold, 1e-3), [this] { finish(); });
    return;
  }
  const double dt = trace_.points[index + 1].t_s - p.t_s;
  pending_ = sim_.schedule_after(std::max(dt, 1e-3),
                                 [this, index] { apply_point(index + 1); });
}

void TraceReplayRuntime::finish() {
  pending_ = sim::kInvalidEvent;
  if (!running_) return;
  running_ = false;
  for (hwsim::Node* n : nodes_) n->idle();
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    cb();
  }
}

}  // namespace fluxpower::apps
