// trace_replay.hpp — replay recorded telemetry as a workload.
//
// Closes the telemetry loop: the CSV the monitor client writes (or any CSV
// with `timestamp_s`/`cpu<i>_w`/`mem_w`/`gpu<i>_w` columns) can be played
// back as a node's power demand, so policies can be evaluated against
// *recorded production shapes* rather than synthetic models — how a site
// would validate FPP against its own machines before enabling it.
//
// Replay is telemetry-shaped, not performance-modeled: the job runs for the
// trace's duration regardless of caps; caps simply clip the drawn power
// (grants). Use AppRuntime when the power-performance feedback matters.
#pragma once

#include <string>
#include <vector>

#include "flux/job_manager.hpp"
#include "hwsim/node.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::apps {

/// One demand point of a trace.
struct TracePoint {
  double t_s = 0.0;  ///< relative to trace start
  hwsim::LoadDemand demand;
};

struct PowerTrace {
  std::vector<TracePoint> points;

  double duration_s() const {
    return points.empty() ? 0.0 : points.back().t_s;
  }

  /// Parse monitor-client CSV (columns: anything containing `timestamp_s`,
  /// `cpu<i>_w`, `mem_w`, `gpu<i>_w` / `oam<i>_w`; extra columns ignored).
  /// Rows must carry nondecreasing timestamps; timestamps are rebased so
  /// the first row is t=0. Throws std::invalid_argument on malformed input.
  static PowerTrace from_csv(const std::string& csv_text);
};

/// Deterministic diurnal/weekly load curve: the multiplier a site's
/// aggregate demand follows over a day (night floor, morning ramp, daytime
/// plateau, evening decline) and a week (weekend factor). Site time is
/// anchored at t=0 == midnight Monday. Piecewise-linear, so multi-week
/// synthetic traces and arrival schedules generated from it replay
/// byte-identically.
struct DiurnalModel {
  double night_level = 0.35;  ///< relative load before the morning ramp
  double day_level = 1.0;     ///< plateau level
  double ramp_start_h = 7.0;
  double ramp_end_h = 9.0;
  double decline_start_h = 17.0;
  double decline_end_h = 22.0;
  /// Weekend (site days 5 and 6) load multiplier.
  double weekend_factor = 0.45;

  /// Load multiplier at site time t_s, in (0, day_level].
  double level_at(double t_s) const noexcept;
};

/// Synthesize a multi-week trace: every `step_s` the per-domain demand is
/// `peak * level_at(t)`. Feed it to TraceReplayRuntime to replay recorded
/// production *shapes* without recorded production *data* — the multi-week
/// operations studies (bench/ext_site_ops) build their background load this
/// way.
PowerTrace make_diurnal_trace(const DiurnalModel& model, double duration_s,
                              double step_s, const hwsim::LoadDemand& peak);

/// JobExecution that replays a trace on every allocated node.
class TraceReplayRuntime final : public flux::JobExecution {
 public:
  TraceReplayRuntime(sim::Simulation& sim, std::vector<hwsim::Node*> nodes,
                     PowerTrace trace);
  ~TraceReplayRuntime() override;

  void start(std::function<void()> on_complete) override;
  void cancel() override;

  bool running() const noexcept { return running_; }

 private:
  void apply_point(std::size_t index);
  void finish();

  sim::Simulation& sim_;
  std::vector<hwsim::Node*> nodes_;
  PowerTrace trace_;
  std::function<void()> on_complete_;
  sim::EventId pending_ = sim::kInvalidEvent;
  bool running_ = false;
};

}  // namespace fluxpower::apps
