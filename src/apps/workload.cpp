#include "apps/workload.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace fluxpower::apps {

std::vector<WorkloadJob> paper_queue(std::uint64_t seed) {
  util::Rng rng(seed);
  // Mix from §IV-E: mostly compute-intensive. Work scales stretch the
  // short-running weak-scaled baselines into multi-minute jobs so the
  // queue has realistic occupancy (total makespan ~1539 s in the paper).
  std::vector<WorkloadJob> jobs;
  auto add = [&](AppKind kind, int count, double min_scale, double max_scale) {
    for (int i = 0; i < count; ++i) {
      WorkloadJob j;
      j.kind = kind;
      j.nnodes = static_cast<int>(rng.uniform_int(1, 8));
      j.work_scale = rng.uniform(min_scale, max_scale);
      j.submit_delay_s = rng.uniform(0.0, 20.0);
      jobs.push_back(j);
    }
  };
  add(AppKind::Laghos, 3, 25.0, 45.0);       // ~315-570 s
  add(AppKind::Quicksilver, 2, 20.0, 38.0);  // ~260-500 s
  add(AppKind::Lammps, 3, 4.0, 9.0);         // strong-scaled, ~120-1100 s
  add(AppKind::Gemm, 2, 1.2, 2.6);           // ~330-710 s

  // Deterministic shuffle (Fisher-Yates with our seeded RNG).
  for (std::size_t i = jobs.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(jobs[i - 1], jobs[j]);
  }
  return jobs;
}

std::vector<WorkloadJob> random_queue(std::uint64_t seed, int count,
                                      int max_nodes,
                                      const std::vector<AppKind>& kinds) {
  if (kinds.empty() || count <= 0 || max_nodes <= 0) return {};
  util::Rng rng(seed);
  std::vector<WorkloadJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    WorkloadJob j;
    j.kind = kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
    j.nnodes = static_cast<int>(rng.uniform_int(1, max_nodes));
    j.work_scale = rng.uniform(5.0, 20.0);
    j.submit_delay_s = rng.exponential(15.0);
    jobs.push_back(j);
  }
  return jobs;
}

flux::JobSpec to_jobspec(const WorkloadJob& job) {
  flux::JobSpec spec;
  spec.name = std::string(app_kind_name(job.kind)) + "-" +
              std::to_string(job.nnodes) + "n";
  spec.app = app_kind_name(job.kind);
  spec.nnodes = job.nnodes;
  spec.tasks_per_node = 4;
  spec.attributes = util::Json::object();
  spec.attributes["work_scale"] = job.work_scale;
  return spec;
}

}  // namespace fluxpower::apps
