// workload.hpp — job-queue generation for the §IV-E experiment.
//
// The paper's queue study uses 10 jobs on a 16-node allocation: 3 Laghos,
// 2 Quicksilver, 3 LAMMPS and 2 GEMM jobs, each requesting 1–8 nodes, in a
// random order. The generator reproduces that mix deterministically from a
// seed, and supports generic mixes for the extension studies.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app_model.hpp"
#include "flux/jobspec.hpp"

namespace fluxpower::apps {

struct WorkloadJob {
  AppKind kind = AppKind::Gemm;
  int nnodes = 1;
  double work_scale = 1.0;
  double submit_delay_s = 0.0;  ///< delay after the previous submission
};

/// The paper's §IV-E queue: 3 Laghos, 2 Quicksilver, 3 LAMMPS, 2 GEMM with
/// 1–8 nodes each, shuffled deterministically by `seed`. Work scales are
/// inflated so each job runs minutes (actual runs, not toy lengths).
std::vector<WorkloadJob> paper_queue(std::uint64_t seed);

/// A general random mix drawn from the given kinds.
std::vector<WorkloadJob> random_queue(std::uint64_t seed, int count,
                                      int max_nodes,
                                      const std::vector<AppKind>& kinds);

/// Convert to a flux jobspec.
flux::JobSpec to_jobspec(const WorkloadJob& job);

}  // namespace fluxpower::apps
