#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fluxpower::dsp {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

namespace {

/// Bluestein's algorithm: express an N-point DFT as a convolution, which is
/// evaluated with zero-padded radix-2 FFTs of length M >= 2N-1.
std::vector<Complex> fft_bluestein(std::span<const Complex> input) {
  const std::size_t n = input.size();
  const std::size_t m = next_power_of_two(2 * n - 1);

  // Chirp sequence w_k = exp(-i*pi*k^2/n). Index k^2 is reduced mod 2n to
  // avoid precision loss for large k.
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = -std::numbers::pi * static_cast<double>(k2) /
                         static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> a(m, Complex{});
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];

  std::vector<Complex> b(m, Complex{});
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = b[k];  // circular symmetry
  }

  fft_radix2(a);
  fft_radix2(b);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_radix2(a, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(m);

  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = a[k] * scale * chirp[k];
  }
  return out;
}

}  // namespace

std::vector<Complex> fft(std::span<const Complex> input) {
  if (input.empty()) return {};
  std::vector<Complex> data(input.begin(), input.end());
  if (is_power_of_two(data.size())) {
    fft_radix2(data);
    return data;
  }
  return fft_bluestein(input);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  if (input.empty()) return {};
  // IFFT(x) = conj(FFT(conj(x))) / N — reuses the forward path for both the
  // radix-2 and Bluestein branches.
  std::vector<Complex> conj_in(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) conj_in[i] = std::conj(input[i]);
  std::vector<Complex> spectrum = fft(conj_in);
  const double scale = 1.0 / static_cast<double>(input.size());
  for (Complex& c : spectrum) c = std::conj(c) * scale;
  return spectrum;
}

std::vector<Complex> fft_real(std::span<const double> input) {
  std::vector<Complex> data(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) data[i] = Complex(input[i], 0.0);
  return fft(data);
}

std::vector<double> power_spectrum(std::span<const double> input) {
  const std::vector<Complex> spectrum = fft_real(input);
  const std::size_t half = input.size() / 2;
  std::vector<double> out(half + 1);
  for (std::size_t k = 0; k <= half && k < spectrum.size(); ++k) {
    out[k] = std::norm(spectrum[k]);
  }
  return out;
}

}  // namespace fluxpower::dsp
