// fft.hpp — fast Fourier transform kernels.
//
// FPP (the paper's FFT-based power policy, Algorithm 1) identifies an
// application's phase period from its sampled power signal. The estimator
// needs a transform for arbitrary sample counts: the node-agent delivers
// however many samples accumulated in the 30 s window, which is rarely a
// power of two. We provide an iterative radix-2 Cooley–Tukey kernel plus
// Bluestein's chirp-z algorithm for general N.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace fluxpower::dsp {

using Complex = std::complex<double>;

/// True if n is a power of two (n >= 1).
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// In-place iterative radix-2 DIT FFT. data.size() must be a power of two.
/// `inverse` applies the conjugate transform *without* the 1/N scaling;
/// callers that need a round trip use ifft() below.
void fft_radix2(std::span<Complex> data, bool inverse = false);

/// FFT for arbitrary N via Bluestein; dispatches to radix-2 when possible.
std::vector<Complex> fft(std::span<const Complex> input);

/// Inverse FFT (includes the 1/N scaling).
std::vector<Complex> ifft(std::span<const Complex> input);

/// FFT of a real signal; returns the full complex spectrum (size N).
std::vector<Complex> fft_real(std::span<const double> input);

/// Power spectrum |X_k|^2 for k = 0..N/2 of a real signal.
std::vector<double> power_spectrum(std::span<const double> input);

}  // namespace fluxpower::dsp
