#include "dsp/period.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace fluxpower::dsp {

void remove_mean(std::span<double> xs) {
  if (xs.empty()) return;
  double m = 0.0;
  for (double x : xs) m += x;
  m /= static_cast<double>(xs.size());
  for (double& x : xs) x -= m;
}

void remove_linear_trend(std::span<double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) {
    remove_mean(xs);
    return;
  }
  // Least-squares fit y = a + b*t with t = 0..n-1.
  const double nn = static_cast<double>(n);
  const double sum_t = nn * (nn - 1.0) / 2.0;
  const double sum_t2 = (nn - 1.0) * nn * (2.0 * nn - 1.0) / 6.0;
  double sum_y = 0.0, sum_ty = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_y += xs[i];
    sum_ty += static_cast<double>(i) * xs[i];
  }
  const double denom = nn * sum_t2 - sum_t * sum_t;
  const double b = denom != 0.0 ? (nn * sum_ty - sum_t * sum_y) / denom : 0.0;
  const double a = (sum_y - b * sum_t) / nn;
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] -= a + b * static_cast<double>(i);
  }
}

void hann_window(std::span<double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                           static_cast<double>(i) /
                                           static_cast<double>(n - 1)));
    xs[i] *= w;
  }
}

std::vector<double> autocorrelation(std::span<const double> xs) {
  std::vector<double> detrended(xs.begin(), xs.end());
  remove_mean(detrended);
  const std::size_t n = detrended.size();
  std::vector<double> acf(n, 0.0);
  for (std::size_t lag = 0; lag < n; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      acc += detrended[i] * detrended[i + lag];
    }
    // Unbiased normalization by the number of overlapping terms.
    acf[lag] = acc / static_cast<double>(n - lag);
  }
  if (acf[0] > 0.0) {
    const double norm = acf[0];
    for (double& v : acf) v /= norm;
  }
  return acf;
}

namespace {

// Internal estimators take the signal by value: the copying entry point
// passes a fresh vector, the consuming entry point moves the caller's
// buffer in — either way the arithmetic below sees the same values in the
// same order, so the two paths are bit-identical.
std::optional<PeriodEstimate> find_period_periodogram(std::vector<double> x,
                                                      double dt_s,
                                                      bool windowed) {
  const std::size_t n_samples = x.size();
  remove_linear_trend(x);

  double energy = 0.0;
  for (double v : x) energy += v * v;
  if (energy <= 1e-12) return std::nullopt;  // constant signal

  if (windowed) hann_window(x);

  // Zero-pad to >= 8N for fine frequency resolution: the FPP convergence
  // threshold is 2 s, so bin spacing must be well under that at typical
  // 30 s windows sampled at 2 s.
  const std::size_t padded = next_power_of_two(8 * x.size());
  x.resize(padded, 0.0);

  const std::vector<double> spec = power_spectrum(x);

  // Dominant non-DC bin. Skip bins whose period exceeds the observation
  // window: they are untrustworthy extrapolations of leakage.
  const double window_s = static_cast<double>(n_samples) * dt_s;
  const double df = 1.0 / (static_cast<double>(padded) * dt_s);
  std::size_t best = 0;
  double best_val = 0.0;
  double total = 0.0;
  for (std::size_t k = 1; k < spec.size(); ++k) {
    total += spec[k];
    const double freq = static_cast<double>(k) * df;
    if (freq < 1.0 / window_s) continue;
    if (spec[k] > best_val) {
      best_val = spec[k];
      best = k;
    }
  }
  if (best == 0 || total <= 0.0) return std::nullopt;

  // Parabolic interpolation around the peak for sub-bin accuracy.
  double delta = 0.0;
  if (best > 0 && best + 1 < spec.size()) {
    const double y0 = spec[best - 1];
    const double y1 = spec[best];
    const double y2 = spec[best + 1];
    const double denom = y0 - 2.0 * y1 + y2;
    if (std::abs(denom) > 1e-30) {
      delta = 0.5 * (y0 - y2) / denom;
      delta = std::clamp(delta, -0.5, 0.5);
    }
  }
  const double freq = (static_cast<double>(best) + delta) * df;

  PeriodEstimate est;
  est.frequency_hz = freq;
  est.period_s = 1.0 / freq;
  // Significance: spectral mass inside the peak's main lobe. Zero-padding
  // by `pad_factor` widens every lobe proportionally, and the Hann window's
  // main lobe spans 4 unpadded bins.
  const std::size_t pad_factor = padded / n_samples;
  const std::size_t half_width = 2 * pad_factor;
  double neighborhood = 0.0;
  const std::size_t lo = best > half_width ? best - half_width : 1;
  const std::size_t hi = std::min(best + half_width, spec.size() - 1);
  for (std::size_t k = lo; k <= hi; ++k) neighborhood += spec[k];
  est.significance = std::min(1.0, neighborhood / total);
  return est;
}

std::optional<PeriodEstimate> find_period_welch(std::vector<double> detrended,
                                                double dt_s) {
  // Half-length segments, 50% overlap -> 3 segments; average their padded
  // Hann periodograms, then pick the dominant bin like the single-window
  // estimator.
  const std::size_t n = detrended.size();
  const std::size_t seg = n / 2;
  if (seg < 4) return find_period_periodogram(std::move(detrended), dt_s, true);

  remove_linear_trend(detrended);
  double energy = 0.0;
  for (double v : detrended) energy += v * v;
  if (energy <= 1e-12) return std::nullopt;

  const std::size_t padded = next_power_of_two(8 * seg);
  std::vector<double> avg(padded / 2 + 1, 0.0);
  int segments = 0;
  for (std::size_t start = 0; start + seg <= n; start += seg / 2) {
    std::vector<double> x(detrended.begin() + static_cast<long>(start),
                          detrended.begin() + static_cast<long>(start + seg));
    remove_mean(x);
    hann_window(x);
    x.resize(padded, 0.0);
    const std::vector<double> spec = power_spectrum(x);
    for (std::size_t k = 0; k < avg.size() && k < spec.size(); ++k) {
      avg[k] += spec[k];
    }
    ++segments;
  }
  if (segments == 0) return std::nullopt;

  const double window_s = static_cast<double>(seg) * dt_s;
  const double df = 1.0 / (static_cast<double>(padded) * dt_s);
  std::size_t best = 0;
  double best_val = 0.0, total = 0.0;
  for (std::size_t k = 1; k < avg.size(); ++k) {
    total += avg[k];
    if (static_cast<double>(k) * df < 1.0 / window_s) continue;
    if (avg[k] > best_val) {
      best_val = avg[k];
      best = k;
    }
  }
  if (best == 0 || total <= 0.0) return std::nullopt;

  double delta = 0.0;
  if (best > 0 && best + 1 < avg.size()) {
    const double denom = avg[best - 1] - 2.0 * avg[best] + avg[best + 1];
    if (std::abs(denom) > 1e-30) {
      delta = std::clamp(0.5 * (avg[best - 1] - avg[best + 1]) / denom, -0.5,
                         0.5);
    }
  }
  PeriodEstimate est;
  est.frequency_hz = (static_cast<double>(best) + delta) * df;
  est.period_s = 1.0 / est.frequency_hz;
  const std::size_t pad_factor = padded / seg;
  const std::size_t half_width = 2 * pad_factor;
  double neighborhood = 0.0;
  const std::size_t lo = best > half_width ? best - half_width : 1;
  const std::size_t hi = std::min(best + half_width, avg.size() - 1);
  for (std::size_t k = lo; k <= hi; ++k) neighborhood += avg[k];
  est.significance = std::min(1.0, neighborhood / total);
  return est;
}

std::optional<PeriodEstimate> find_period_acf(std::vector<double> x,
                                              double dt_s) {
  // Same arithmetic as autocorrelation(), with `x` as the detrend scratch.
  remove_mean(x);
  const std::size_t nx = x.size();
  std::vector<double> acf(nx, 0.0);
  for (std::size_t lag = 0; lag < nx; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < nx; ++i) {
      acc += x[i] * x[i + lag];
    }
    acf[lag] = acc / static_cast<double>(nx - lag);
  }
  if (!acf.empty() && acf[0] > 0.0) {
    const double norm = acf[0];
    for (double& v : acf) v /= norm;
  }
  if (acf.size() < 4) return std::nullopt;

  // First local maximum after the zero-lag peak with positive correlation.
  std::size_t best = 0;
  double best_val = 0.0;
  for (std::size_t lag = 2; lag + 1 < acf.size(); ++lag) {
    if (acf[lag] > acf[lag - 1] && acf[lag] >= acf[lag + 1] &&
        acf[lag] > best_val && acf[lag] > 0.0) {
      best = lag;
      best_val = acf[lag];
      break;  // first peak = fundamental period
    }
  }
  if (best == 0) return std::nullopt;

  PeriodEstimate est;
  est.period_s = static_cast<double>(best) * dt_s;
  est.frequency_hz = 1.0 / est.period_s;
  est.significance = std::clamp(best_val, 0.0, 1.0);
  return est;
}

std::optional<PeriodEstimate> find_period_impl(std::vector<double> x,
                                               double dt_s,
                                               PeriodMethod method) {
  if (dt_s <= 0.0) throw std::invalid_argument("find_period: dt must be > 0");
  if (x.size() < 4) return std::nullopt;
  switch (method) {
    case PeriodMethod::HannPeriodogram:
      return find_period_periodogram(std::move(x), dt_s, /*windowed=*/true);
    case PeriodMethod::RawPeriodogram:
      return find_period_periodogram(std::move(x), dt_s, /*windowed=*/false);
    case PeriodMethod::Autocorrelation:
      return find_period_acf(std::move(x), dt_s);
    case PeriodMethod::WelchPeriodogram:
      return find_period_welch(std::move(x), dt_s);
  }
  return std::nullopt;
}

}  // namespace

std::optional<PeriodEstimate> find_period(std::span<const double> samples,
                                          double dt_s, PeriodMethod method) {
  return find_period_impl(std::vector<double>(samples.begin(), samples.end()),
                          dt_s, method);
}

std::optional<PeriodEstimate> find_period_consume(std::vector<double>& samples,
                                                  double dt_s,
                                                  PeriodMethod method) {
  return find_period_impl(std::move(samples), dt_s, method);
}

}  // namespace fluxpower::dsp
