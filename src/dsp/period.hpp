// period.hpp — dominant-period estimation from sampled power signals.
//
// Implements FINDPERIOD from the paper's Algorithm 1: the FFT-GET-PERIOD
// procedure accumulates power samples and, every 30 seconds, estimates the
// application's phase period from the buffer. GET-GPU-CAP then compares
// consecutive period estimates: a stable period under a lowered cap means
// the application is unaffected (keep saving power); a stretched period
// means the cap hurt it (give power back).
//
// Estimators provided (the second and third exist for the ablation bench):
//   * Periodogram (default): detrend → Hann window → zero-pad → FFT →
//     dominant non-DC bin with parabolic interpolation.
//   * Raw periodogram: no window (leakage-prone; ablation).
//   * Autocorrelation: first major peak of the unbiased ACF (ablation).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace fluxpower::dsp {

/// Result of a period estimate.
struct PeriodEstimate {
  double period_s = 0.0;      ///< Dominant period in seconds.
  double frequency_hz = 0.0;  ///< Corresponding frequency.
  /// Fraction of (detrended) signal power concentrated at the dominant
  /// frequency bin and its two neighbours, in [0,1]. Signals with no phase
  /// behaviour (GEMM, LAMMPS) have low significance.
  double significance = 0.0;
};

enum class PeriodMethod {
  HannPeriodogram,  ///< default used by FPP
  RawPeriodogram,
  Autocorrelation,
  /// Welch's method: averaged Hann-windowed periodograms over 50%-overlapped
  /// half-length segments. Lower estimator variance on noisy signals at the
  /// cost of frequency resolution — the classic trade-off, exposed for the
  /// FPP estimator ablation.
  WelchPeriodogram,
};

/// Subtract the mean in place. The DC component otherwise dominates every
/// power-signal spectrum.
void remove_mean(std::span<double> xs);

/// Remove a least-squares linear trend in place (power ramps during
/// strong-scaled runs otherwise masquerade as low-frequency content).
void remove_linear_trend(std::span<double> xs);

/// Multiply by a Hann window in place.
void hann_window(std::span<double> xs);

/// Estimate the dominant period of `samples` taken every `dt_s` seconds.
/// Returns nullopt when fewer than 4 samples are available (cannot resolve
/// any frequency), or when the signal is constant.
std::optional<PeriodEstimate> find_period(
    std::span<const double> samples, double dt_s,
    PeriodMethod method = PeriodMethod::HannPeriodogram);

/// Same estimator, but uses `samples` itself as the transform scratch
/// instead of copying into one: the signal is detrended/windowed/padded in
/// place and its contents are clobbered. Callers that discard the buffer
/// right after estimating (FPP resets its FFT buffer every control round)
/// and columnar-store consumers that already materialized a watt column
/// save the copy. Results are bit-identical to find_period on the same
/// input — the copy was the only difference.
std::optional<PeriodEstimate> find_period_consume(
    std::vector<double>& samples, double dt_s,
    PeriodMethod method = PeriodMethod::HannPeriodogram);

/// Unbiased autocorrelation of a detrended signal, lags 0..n-1.
std::vector<double> autocorrelation(std::span<const double> xs);

}  // namespace fluxpower::dsp
