#include "experiments/report.hpp"

#include <stdexcept>

#include "util/csv.hpp"

namespace fluxpower::experiments {

void write_jobs_csv(const ScenarioResult& result, std::ostream& out) {
  util::CsvWriter csv(out);
  csv.header({"id", "app", "nnodes", "t_submit_s", "t_start_s", "t_end_s",
              "runtime_s", "wait_s", "avg_node_power_w", "max_node_power_w",
              "max_job_power_w", "avg_node_energy_kj",
              "exact_avg_node_energy_kj", "telemetry"});
  for (const JobResult& j : result.jobs) {
    csv.row(std::to_string(j.id), j.app, j.nnodes, j.t_submit, j.t_start,
            j.t_end, j.runtime_s, j.t_start - j.t_submit, j.avg_node_power_w,
            j.max_node_power_w, j.max_aggregate_power_w,
            j.avg_node_energy_j / 1e3, j.exact_avg_node_energy_j / 1e3,
            j.telemetry_complete ? "complete" : "partial");
  }
}

void write_cluster_timeline_csv(const ScenarioResult& result,
                                std::ostream& out) {
  util::CsvWriter csv(out);
  csv.header({"t_s", "cluster_power_w"});
  for (const auto& [t, w] : result.cluster_timeline) {
    csv.row(t, w);
  }
}

void write_job_timeline_csv(const ScenarioResult& result, flux::JobId id,
                            std::ostream& out) {
  auto it = result.timelines.find(id);
  if (it == result.timelines.end()) {
    throw std::out_of_range("write_job_timeline_csv: no timeline for job " +
                            std::to_string(id));
  }
  const auto& timeline = it->second;
  std::size_t ncpu = 0, ngpu = 0;
  for (const TimelinePoint& p : timeline) {
    ncpu = std::max(ncpu, p.cpu_w.size());
    ngpu = std::max(ngpu, p.gpu_w.size());
  }
  util::CsvWriter csv(out);
  std::vector<std::string> header{"t_s", "node_w", "mem_w"};
  for (std::size_t i = 0; i < ncpu; ++i) {
    header.push_back("cpu" + std::to_string(i) + "_w");
  }
  for (std::size_t i = 0; i < ngpu; ++i) {
    header.push_back("gpu" + std::to_string(i) + "_w");
  }
  for (std::size_t i = 0; i < ngpu; ++i) {
    header.push_back("gpu" + std::to_string(i) + "_cap_w");
  }
  csv.row(header);
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  for (const TimelinePoint& p : timeline) {
    std::vector<std::string> row{fmt(p.t_s), fmt(p.node_w), fmt(p.mem_w)};
    for (std::size_t i = 0; i < ncpu; ++i) {
      row.push_back(i < p.cpu_w.size() ? fmt(p.cpu_w[i]) : "");
    }
    for (std::size_t i = 0; i < ngpu; ++i) {
      row.push_back(i < p.gpu_w.size() ? fmt(p.gpu_w[i]) : "");
    }
    for (std::size_t i = 0; i < ngpu; ++i) {
      row.push_back(i < p.gpu_cap_w.size() ? fmt(p.gpu_cap_w[i]) : "");
    }
    csv.row(row);
  }
}

util::Json to_json(const ScenarioResult& result, bool include_timelines) {
  util::Json doc = util::Json::object();
  doc["makespan_s"] = result.makespan_s;
  doc["total_energy_j"] = result.total_energy_j;
  doc["max_cluster_power_w"] = result.max_cluster_power_w;
  doc["avg_cluster_power_w"] = result.avg_cluster_power_w;

  util::Json jobs = util::Json::array();
  for (const JobResult& j : result.jobs) {
    util::Json job = util::Json::object();
    job["id"] = j.id;
    job["app"] = j.app;
    job["nnodes"] = j.nnodes;
    job["t_submit_s"] = j.t_submit;
    job["t_start_s"] = j.t_start;
    job["t_end_s"] = j.t_end;
    job["runtime_s"] = j.runtime_s;
    job["avg_node_power_w"] = j.avg_node_power_w;
    job["max_node_power_w"] = j.max_node_power_w;
    job["max_job_power_w"] = j.max_aggregate_power_w;
    job["avg_node_energy_j"] = j.avg_node_energy_j;
    job["exact_avg_node_energy_j"] = j.exact_avg_node_energy_j;
    job["telemetry_complete"] = j.telemetry_complete;
    jobs.push_back(std::move(job));
  }
  doc["jobs"] = std::move(jobs);

  if (include_timelines) {
    util::Json timelines = util::Json::object();
    for (const auto& [id, points] : result.timelines) {
      util::Json series = util::Json::array();
      for (const TimelinePoint& p : points) {
        util::Json point = util::Json::object();
        point["t_s"] = p.t_s;
        point["node_w"] = p.node_w;
        series.push_back(std::move(point));
      }
      timelines[std::to_string(id)] = std::move(series);
    }
    doc["timelines"] = std::move(timelines);
  }
  return doc;
}

}  // namespace fluxpower::experiments
