// report.hpp — structured export of scenario results.
//
// Benches print human tables; anything that needs machine-readable output
// (plotting scripts, the CLI's --csv mode, regression diffing) goes through
// these writers: per-job CSV, cluster/job power timelines as CSV, and a
// complete JSON document of a ScenarioResult.
#pragma once

#include <ostream>

#include "experiments/scenario.hpp"
#include "util/json.hpp"

namespace fluxpower::experiments {

/// One row per job: id, app, nodes, timing, power and energy statistics.
void write_jobs_csv(const ScenarioResult& result, std::ostream& out);

/// Cluster total-draw timeline: t_s, power_w.
void write_cluster_timeline_csv(const ScenarioResult& result,
                                std::ostream& out);

/// First-node timeline of one job: t_s, node_w, mem_w, gpu<i>_w,
/// gpu<i>_cap_w, cpu<i>_w columns. Throws std::out_of_range for an unknown
/// job id.
void write_job_timeline_csv(const ScenarioResult& result, flux::JobId id,
                            std::ostream& out);

/// Whole result as one JSON document (jobs + aggregates; timelines included
/// only when `include_timelines`).
util::Json to_json(const ScenarioResult& result, bool include_timelines = false);

}  // namespace fluxpower::experiments
