#include "experiments/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "manager/node_policies.hpp"

namespace fluxpower::experiments {

namespace {
/// Wraps a job execution with start/finish hooks that run in the same
/// context as the inner execution (the job's island under the sharded
/// profile) — the vehicle for island-local energy accounting.
class InstrumentedExec final : public flux::JobExecution {
 public:
  InstrumentedExec(std::unique_ptr<flux::JobExecution> inner,
                   std::function<void()> on_start,
                   std::function<void()> on_finish)
      : inner_(std::move(inner)),
        on_start_(std::move(on_start)),
        on_finish_(std::move(on_finish)) {}

  void start(std::function<void()> on_complete) override {
    on_start_();
    inner_->start([this, cb = std::move(on_complete)] {
      on_finish_();
      cb();
    });
  }
  void cancel() override { inner_->cancel(); }

 private:
  std::unique_ptr<flux::JobExecution> inner_;
  std::function<void()> on_start_;
  std::function<void()> on_finish_;
};
}  // namespace

const JobResult& ScenarioResult::job(flux::JobId id) const {
  for (const JobResult& j : jobs) {
    if (j.id == id) return j;
  }
  throw std::out_of_range("ScenarioResult::job: unknown id");
}

Scenario::Scenario(ScenarioConfig config) : config_(config) {
  flux::InstanceConfig icfg;
  icfg.tbon_fanout = config_.tbon_fanout;

  if (config_.shards > 0) {
    build_sharded_stack(icfg);
  } else {
    cluster_ = hwsim::make_cluster(sim_, config_.platform, config_.nodes);
    std::vector<hwsim::Node*> nodes;
    nodes.reserve(static_cast<std::size_t>(cluster_.size()));
    for (int i = 0; i < cluster_.size(); ++i) {
      nodes.push_back(&cluster_.node(i));
    }
    instance_ = std::make_unique<flux::Instance>(sim_, std::move(nodes), icfg);
  }
  cluster_.set_sensor_noise(config_.sensor_noise);
  for (int i = 0; i < cluster_.size(); ++i) {
    cluster_.node(i).reseed_sensor_noise(config_.seed * 1000003ULL +
                                         static_cast<std::uint64_t>(i));
  }

  apps::LauncherOptions lopts;
  lopts.platform = config_.platform;
  lopts.step_s = config_.app_step_s;
  lopts.runtime_variability = config_.runtime_variability;
  lopts.noise_seed = config_.seed;
  lopts.report_progress = config_.report_progress;
  flux::Launcher launcher = apps::make_launcher(lopts);
  if (engine_) launcher = wrap_launcher_sharded(std::move(launcher));
  instance_->jobs().set_launcher(std::move(launcher));

  if (config_.faults) {
    fault_plane_ = std::make_unique<faultsim::FaultPlane>(*config_.faults);
    fault_plane_->attach(*instance_);
  }

  if (config_.load_monitor) {
    // IBM OCC in-band reads are the slow path; every MSR-based platform
    // (AMD, Intel, ARM) samples at the cheap Tioga-like cost.
    monitor::PowerMonitorConfig mcfg = config_.monitor.value_or(
        config_.platform == hwsim::Platform::LassenIbmAc922
            ? monitor::PowerMonitorConfig::for_lassen()
            : monitor::PowerMonitorConfig::for_tioga());
    instance_->load_module_on_all<monitor::PowerMonitorModule>(mcfg);
  }
  if (config_.load_manager) {
    instance_->load_module_on_all<manager::PowerManagerModule>(config_.manager);
    // Expose the power budget to the scheduler so Policy::PowerAware can
    // admit against it (inert under FCFS/backfill).
    instance_->scheduler().set_power_budget(config_.manager.cluster_power_bound_w,
                                            config_.manager.node_peak_w);
  }
  // Name-based policy selection through the policy plane. The node-policy
  // names are registered here too so tools resolving names (trace_dump,
  // benches) work even when no manager module was constructed yet.
  manager::register_builtin_node_policies();
  if (!config_.sched_policy.empty()) {
    // The queue is empty at construction, so the policy-change kick is a
    // no-op and the event schedule stays byte-identical to the enum path.
    instance_->scheduler().set_policy_by_name(config_.sched_policy);
  }

  // Track job lifecycle for energy accounting and completion detection.
  // Sharded profile: the energy reads would cross islands mid-window, so
  // they move to the launcher wrapper (island-local slots); only the
  // completion bookkeeping — root-side state — stays here.
  if (!engine_) {
    instance_->root().subscribe_event(
        "job.state-run", [this](const flux::Message& m) {
          const auto id = static_cast<flux::JobId>(m.payload.int_or("id", 0));
          auto it = by_id_.find(id);
          if (it == by_id_.end()) return;
          Tracked& t = tracked_[it->second];
          double e = 0.0;
          for (const util::Json& r : m.payload.at("ranks").as_array()) {
            e += instance_->node(static_cast<flux::Rank>(r.as_int()))
                     ->energy_joules();
          }
          t.energy_at_start_j = e;
        });
  }
  instance_->root().subscribe_event(
      "job.state-inactive", [this](const flux::Message& m) {
        const auto id = static_cast<flux::JobId>(m.payload.int_or("id", 0));
        auto it = by_id_.find(id);
        if (it == by_id_.end()) return;
        Tracked& t = tracked_[it->second];
        if (t.done) return;
        t.done = true;
        if (!engine_) {
          double e = 0.0;
          for (const util::Json& r : m.payload.at("ranks").as_array()) {
            e += instance_->node(static_cast<flux::Rank>(r.as_int()))
                     ->energy_joules();
          }
          job_energy_j_[id] = e - t.energy_at_start_j;
        }
        ++completed_;
      });

  recorder_ = std::make_unique<sim::PeriodicTask>(
      sim(), config_.record_period_s, [this] {
        record_tick();
        return true;
      },
      /*initial_delay=*/0.0);
  if (engine_) {
    // One recorder per placement cell, on the cell's island — the cell
    // count is fixed by the fanout, so the engine-wide event population is
    // the same for every shard count.
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      sim::Simulation& cell_sim = engine_->island(
          island_of_rank_[static_cast<std::size_t>(cells_[c].front())]);
      cell_recorders_.push_back(std::make_unique<sim::PeriodicTask>(
          cell_sim, config_.record_period_s,
          [this, c] {
            record_cell_tick(c);
            return true;
          },
          /*initial_delay=*/0.0));
    }
  }
}

void Scenario::build_sharded_stack(const flux::InstanceConfig& icfg) {
  const int n = config_.nodes;
  if (n <= 0) throw std::invalid_argument("Scenario: nodes must be positive");
  flux::Tbon tbon(n, icfg.tbon_fanout);
  cell_of_rank_.assign(static_cast<std::size_t>(n), -1);
  for (flux::Rank child : tbon.children(0)) {
    const int cell = static_cast<int>(cells_.size());
    cells_.push_back(tbon.subtree(child));
    for (flux::Rank r : cells_.back()) {
      cell_of_rank_[static_cast<std::size_t>(r)] = cell;
    }
  }
  // More islands than cells would only add empty shards; clamp. The clamp
  // cannot affect output — island assignment never feeds back into any
  // simulated decision.
  const int islands = std::max(
      1, std::min(config_.shards, static_cast<int>(cells_.size())));
  engine_ = std::make_unique<sim::ShardedEngine>(
      islands, std::max(1, config_.workers), icfg.hop_latency_s);
  island_of_rank_.assign(static_cast<std::size_t>(n), 0);
  for (int r = 1; r < n; ++r) {
    island_of_rank_[static_cast<std::size_t>(r)] =
        cell_of_rank_[static_cast<std::size_t>(r)] % islands;
  }
  cluster_ = hwsim::make_cluster(
      [this](int r) -> sim::Simulation& {
        return engine_->island(island_of_rank_[static_cast<std::size_t>(r)]);
      },
      config_.platform, n);
  std::vector<hwsim::Node*> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) nodes.push_back(&cluster_.node(i));
  instance_ = std::make_unique<flux::Instance>(*engine_, island_of_rank_,
                                               std::move(nodes), icfg);
  instance_->scheduler().set_cell_confinement(cells_);
  instance_->scheduler().set_deferred_kick(engine_->island(0));
  cell_state_.reserve(cells_.size());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cell_state_.push_back(std::make_unique<CellState>());
  }
}

flux::Launcher Scenario::wrap_launcher_sharded(flux::Launcher inner) {
  // Runs on island 0 (root context, from start_job): resolve the tracked
  // index and cell here, where by_id_ is safe to read, and hand the
  // island-local bookkeeping to the execution via closures that run on
  // the job's island.
  return [this, inner = std::move(inner)](const flux::Job& job,
                                          flux::Instance& instance)
             -> std::unique_ptr<flux::JobExecution> {
    std::unique_ptr<flux::JobExecution> exec = inner(job, instance);
    if (!exec || job.ranks.empty()) return exec;
    const auto tracked_it = by_id_.find(job.id);
    if (tracked_it == by_id_.end()) return exec;
    const std::size_t index = tracked_it->second;
    const flux::JobId id = job.id;
    const flux::Rank first = job.ranks.front();
    const auto cell =
        static_cast<std::size_t>(cell_of_rank_[static_cast<std::size_t>(first)]);
    const std::vector<flux::Rank> ranks = job.ranks;
    auto on_start = [this, index, id, first, cell, ranks] {
      double e = 0.0;
      for (flux::Rank r : ranks) e += cluster_.node(r).energy_joules();
      EnergySlot& slot = energy_slots_[index];
      slot.at_start_j = e;
      slot.valid = true;
      cell_state_[cell]->running[id] = first;
    };
    auto on_finish = [this, index, id, cell, ranks] {
      double e = 0.0;
      for (flux::Rank r : ranks) e += cluster_.node(r).energy_joules();
      EnergySlot& slot = energy_slots_[index];
      slot.total_j = e - slot.at_start_j;
      cell_state_[cell]->running.erase(id);
    };
    return std::make_unique<InstrumentedExec>(std::move(exec),
                                              std::move(on_start),
                                              std::move(on_finish));
  };
}

Scenario::~Scenario() = default;

flux::JobId Scenario::submit(const JobRequest& request) {
  if (ran_ || started_) throw std::logic_error("Scenario::submit after run()");
  // JobIds are predicted from submission order; that only holds when
  // requests arrive in nondecreasing submit-time order (events at equal
  // times are FIFO).
  if (!tracked_.empty() &&
      request.submit_time_s < tracked_.back().request.submit_time_s) {
    throw std::invalid_argument(
        "Scenario::submit: submissions must be ordered by submit_time_s");
  }
  if (engine_ &&
      request.nnodes > instance_->scheduler().max_cell_size()) {
    // Cell-confined placement could never start it; fail loudly instead
    // of hanging the run. Raise tbon_fanout to widen the cells.
    throw std::invalid_argument(
        "Scenario::submit: job wider than the widest TBON cell under the "
        "sharded profile");
  }
  Tracked t;
  t.request = request;
  const std::size_t index = tracked_.size();
  tracked_.push_back(t);

  // Reserve the JobId up front by submitting through a deferred event; ids
  // are assigned in submission order, which equals event order because the
  // event queue is FIFO at equal timestamps.
  flux::JobSpec spec;
  spec.name = std::string(apps::app_kind_name(request.kind)) + "-" +
              std::to_string(request.nnodes) + "n";
  spec.app = apps::app_kind_name(request.kind);
  spec.nnodes = request.nnodes;
  spec.tasks_per_node = 4;
  spec.attributes = util::Json::object();
  spec.attributes["work_scale"] = request.work_scale;
  // Attach the model's peak-power estimate so the power-aware scheduling
  // policy can admit against it (ignored by FCFS/backfill).
  spec.attributes["power_estimate_w_per_node"] = apps::estimate_peak_node_power_w(
      apps::make_profile(request.kind, config_.platform,
                         std::max(1, request.nnodes), request.work_scale));
  if (request.eco_tolerance > 0.0) {
    // Eco-mode enrollment travels in the jobspec like any other user
    // attribute; absent for non-enrolled jobs so legacy specs are
    // byte-identical.
    spec.attributes["eco_tolerance"] = request.eco_tolerance;
  }

  // JobIds are sequential starting at 1 in submission order across the
  // whole instance; predict this job's id for result bookkeeping.
  const flux::JobId predicted = static_cast<flux::JobId>(index + 1);
  tracked_[index].id = predicted;
  by_id_[predicted] = index;

  sim().schedule_at(request.submit_time_s, [this, spec, index] {
    const flux::JobId actual = instance_->jobs().submit(spec);
    if (actual != tracked_[index].id) {
      // Submission order at identical timestamps is FIFO, so this can only
      // happen if user code submitted jobs outside the Scenario API.
      by_id_.erase(tracked_[index].id);
      tracked_[index].id = actual;
      by_id_[actual] = index;
    }
  });
  return predicted;
}

void Scenario::record_tick() {
  if (engine_) {
    // Island 0 owns only rank 0; the cells record their own draw and the
    // merge happens between windows (merge_cluster_timeline).
    node0_draw_.emplace_back(engine_->island(0).now(),
                             cluster_.node(0).node_draw_w());
    return;
  }
  const double t = sim_.now();
  const double total = cluster_.total_draw_w();
  cluster_timeline_.emplace_back(t, total);

  // Per-job first-node timeline (exact draw, not noisy sensor reads).
  for (const Tracked& tracked : tracked_) {
    if (tracked.id == 0 || tracked.done) continue;
    if (!instance_->jobs().has_job(tracked.id)) continue;
    const flux::Job& job = instance_->jobs().job(tracked.id);
    if (job.state != flux::JobState::Run || job.ranks.empty()) continue;
    hwsim::Node* node = instance_->node(job.ranks.front());
    TimelinePoint p;
    p.t_s = t;
    const hwsim::Grants& g = node->grants();
    p.node_w = g.total();
    p.gpu_w = g.gpu_w;
    p.cpu_w = g.cpu_w;
    p.mem_w = g.mem_w;
    for (int i = 0; i < node->gpu_count(); ++i) {
      p.gpu_cap_w.push_back(node->gpu_power_cap(i).value_or(0.0));
    }
    timelines_[tracked.id].push_back(std::move(p));
  }
}

void Scenario::record_cell_tick(std::size_t cell) {
  CellState& cs = *cell_state_[cell];
  const std::vector<flux::Rank>& ranks = cells_[cell];
  const double t =
      engine_->island(island_of_rank_[static_cast<std::size_t>(ranks.front())])
          .now();
  // Fold in subtree order: the fold depends only on the cell layout, so
  // the rounding is identical for every shard count.
  double draw = 0.0;
  for (flux::Rank r : ranks) draw += cluster_.node(r).node_draw_w();
  cs.draw.emplace_back(t, draw);
  for (const auto& [id, first] : cs.running) {
    hwsim::Node* node = instance_->node(first);
    TimelinePoint p;
    p.t_s = t;
    const hwsim::Grants& g = node->grants();
    p.node_w = g.total();
    p.gpu_w = g.gpu_w;
    p.cpu_w = g.cpu_w;
    p.mem_w = g.mem_w;
    for (int i = 0; i < node->gpu_count(); ++i) {
      p.gpu_cap_w.push_back(node->gpu_power_cap(i).value_or(0.0));
    }
    cs.timelines[id].push_back(std::move(p));
  }
}

void Scenario::merge_cluster_timeline() {
  if (!engine_) return;
  // All recorders tick on the same grid; at any barrier (the only place
  // this runs) every island has executed every event below the window
  // start, so the series lengths agree — min() is just belt and braces.
  std::size_t ticks = node0_draw_.size();
  for (const auto& cs : cell_state_) {
    ticks = std::min(ticks, cs->draw.size());
  }
  cluster_timeline_.resize(ticks);
  for (std::size_t k = 0; k < ticks; ++k) {
    double total = node0_draw_[k].second;
    for (const auto& cs : cell_state_) total += cs->draw[k].second;
    cluster_timeline_[k] = {node0_draw_[k].first, total};
  }
}

void Scenario::advance_until(double horizon_s, double max_time_s) {
  if (ran_) throw std::logic_error("Scenario::advance_until after run()");
  started_ = true;
  const int expected = static_cast<int>(tracked_.size());
  if (engine_) {
    if (energy_slots_.size() < tracked_.size()) {
      energy_slots_.resize(tracked_.size());
    }
    // The engine advances whole conservative windows; the stop condition
    // is evaluated at barriers. Windows depend only on event times, so
    // the stopping point is identical for every shard count.
    engine_->advance_until(std::min(horizon_s, max_time_s), [this, expected] {
      return completed_ >= expected;
    });
    return;
  }
  // Advance until all jobs are done, stepping the recorder-driven queue.
  // The stop conditions are evaluated before each event in the same order
  // as the pre-phased run() loop; the only addition is the horizon check,
  // which with horizon_s = +inf degenerates to step()'s own empty-queue
  // return — so run() == advance_until(+inf) + finish(), event for event.
  while (completed_ < expected && sim_.now() < max_time_s) {
    if (sim_.next_event_time() > horizon_s) break;
    if (!sim_.step()) break;
  }
  // Idle time still elapses up to the horizon (a snapshot taken in a lull
  // must record the lull's clock, not the last event's).
  if (std::isfinite(horizon_s) && sim_.now() < horizon_s &&
      completed_ < expected && horizon_s <= max_time_s) {
    sim_.run_until(horizon_s);
  }
}

ScenarioResult Scenario::run(double max_time_s) {
  if (ran_) throw std::logic_error("Scenario::run called twice");
  advance_until(std::numeric_limits<double>::infinity(), max_time_s);
  return finish(max_time_s);
}

ScenarioResult Scenario::finish(double max_time_s) {
  if (ran_) throw std::logic_error("Scenario::finish called twice");
  advance_until(std::numeric_limits<double>::infinity(), max_time_s);
  if (engine_) {
    // Align every island on one end-of-run clock before the single-threaded
    // result reads below touch cross-island node state.
    engine_->finalize_clocks();
    merge_cluster_timeline();
  }
  ran_ = true;

  ScenarioResult result;
  result.timelines = std::move(timelines_);
  for (const auto& cs : cell_state_) {
    for (auto& [id, tl] : cs->timelines) {
      result.timelines[id] = std::move(tl);
    }
  }
  result.cluster_timeline = std::move(cluster_timeline_);
  result.total_energy_j = cluster_.total_energy_joules();

  double first_submit = -1.0, last_end = 0.0;
  monitor::MonitorClient client(*instance_);
  for (const Tracked& t : tracked_) {
    if (t.id == 0 || !instance_->jobs().has_job(t.id)) continue;
    const flux::Job& job = instance_->jobs().job(t.id);
    JobResult jr;
    jr.id = t.id;
    jr.app = job.spec.app;
    jr.nnodes = job.spec.nnodes;
    jr.t_submit = job.t_submit;
    jr.t_start = job.t_start;
    jr.t_end = job.t_end;
    jr.runtime_s = job.done() ? job.runtime() : -1.0;
    if (engine_) {
      const std::size_t index = by_id_.at(t.id);
      if (index < energy_slots_.size() && energy_slots_[index].valid) {
        jr.exact_avg_node_energy_j =
            energy_slots_[index].total_j / std::max(1, jr.nnodes);
      }
    } else if (auto it = job_energy_j_.find(t.id); it != job_energy_j_.end()) {
      jr.exact_avg_node_energy_j = it->second / std::max(1, jr.nnodes);
    }
    if (config_.load_monitor && job.done()) {
      if (auto data = client.query_blocking(t.id)) {
        jr.avg_node_power_w = data->average_node_power_w();
        jr.max_node_power_w = data->max_node_power_w();
        jr.max_aggregate_power_w = data->max_aggregate_power_w();
        jr.avg_node_energy_j = data->average_node_energy_j();
        jr.telemetry_complete = std::all_of(
            data->nodes.begin(), data->nodes.end(),
            [](const monitor::NodePowerData& n) { return n.complete; });
      }
    }
    if (first_submit < 0.0 || jr.t_submit < first_submit) {
      first_submit = jr.t_submit;
    }
    last_end = std::max(last_end, jr.t_end);
    result.jobs.push_back(std::move(jr));
  }
  result.makespan_s = first_submit >= 0.0 ? last_end - first_submit : 0.0;

  double peak = 0.0, sum = 0.0;
  for (const auto& [t, w] : result.cluster_timeline) {
    peak = std::max(peak, w);
    sum += w;
  }
  result.max_cluster_power_w = peak;
  result.avg_cluster_power_w =
      result.cluster_timeline.empty()
          ? 0.0
          : sum / static_cast<double>(result.cluster_timeline.size());
  return result;
}

SingleJobOutcome run_single_job(hwsim::Platform platform, apps::AppKind kind,
                                int nnodes, double work_scale,
                                bool with_monitor, std::uint64_t seed,
                                bool runtime_variability) {
  ScenarioConfig cfg;
  cfg.platform = platform;
  cfg.nodes = nnodes;
  cfg.load_monitor = with_monitor;
  cfg.seed = seed;
  cfg.runtime_variability = runtime_variability;
  Scenario scenario(cfg);
  JobRequest req;
  req.kind = kind;
  req.nnodes = nnodes;
  req.work_scale = work_scale;
  const flux::JobId id = scenario.submit(req);
  ScenarioResult res = scenario.run();

  SingleJobOutcome out;
  out.result = res.job(id);
  if (auto it = res.timelines.find(id); it != res.timelines.end()) {
    out.timeline = it->second;
  }
  return out;
}

}  // namespace fluxpower::experiments
