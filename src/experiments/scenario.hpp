// scenario.hpp — end-to-end experiment runner.
//
// A Scenario assembles the full stack the paper deploys — simulated
// cluster, Flux instance, power-monitor module on every broker, optional
// power-manager with a chosen policy, application launcher — submits jobs,
// runs the simulation to completion, and reports per-job runtime/power/
// energy plus cluster-level aggregates and power timelines. Every bench
// and example builds on this runner so the measurement methodology is
// identical across tables and figures.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/launcher.hpp"
#include "apps/workload.hpp"
#include "faultsim/fault_plane.hpp"
#include "flux/instance.hpp"
#include "hwsim/cluster.hpp"
#include "manager/power_manager.hpp"
#include "monitor/client.hpp"
#include "monitor/power_monitor.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::experiments {

struct ScenarioConfig {
  hwsim::Platform platform = hwsim::Platform::LassenIbmAc922;
  int nodes = 8;
  int tbon_fanout = 2;

  bool load_monitor = true;
  std::optional<monitor::PowerMonitorConfig> monitor;  ///< platform default if unset

  bool load_manager = false;
  manager::PowerManagerConfig manager;

  /// Scheduler policy by registry name ("fcfs", "easy-backfill",
  /// "power-aware", "power-aware-easy", "eco-mode", or any policy
  /// registered with the process-wide PolicyEngine). Empty = keep the
  /// instance default (FCFS). Applied before any job is submitted, so the
  /// three built-in names are byte-identical to setting the legacy enum.
  std::string sched_policy;

  /// Publish job.progress events from running jobs (required by
  /// manager::NodePolicy::ProgressBased).
  bool report_progress = false;

  /// Deterministic fault injection for the whole stack (crashes, lossy
  /// TBON links, sensor dropouts, cap-write failures). Unset = no fault
  /// plane attached; the stack runs byte-identically to a build without
  /// fault injection.
  std::optional<faultsim::FaultPlaneConfig> faults;

  /// Relative sensor noise (reads only; exact meters are unaffected).
  double sensor_noise = 0.004;
  /// Enable the run-to-run variability model (Fig 3/4 studies).
  bool runtime_variability = false;
  std::uint64_t seed = 42;
  double app_step_s = 0.5;
  /// Cadence of the cluster power recorder (2 s, like the monitor).
  double record_period_s = 2.0;

  /// Sharded execution profile. 0 (default) runs the classic monolithic
  /// engine, byte-identical to earlier releases. >= 1 partitions the TBON
  /// into that many per-subtree simulation islands under the conservative
  /// window barrier, and switches on the profile's partition-independent
  /// semantics (cell-confined placement, deferred scheduler kicks,
  /// per-cell recorders, island-local fault streams) — so any shard count
  /// produces byte-identical output to shards=1. See DESIGN.md, "Sharded
  /// engine and conservative window barrier".
  int shards = 0;
  /// Worker threads advancing the islands (clamped to the shard count).
  int workers = 1;
};

struct JobRequest {
  apps::AppKind kind = apps::AppKind::Gemm;
  int nnodes = 1;
  double work_scale = 1.0;
  double submit_time_s = 0.0;
  /// Eco-mode opt-in: acceptable fractional slowdown (0 = not enrolled).
  /// Lands in the jobspec as the "eco_tolerance" attribute; under the
  /// eco-mode scheduler policy the job self-caps at
  /// power_estimate_w_per_node * (1 - eco_tolerance) per node.
  double eco_tolerance = 0.0;
};

struct JobResult {
  flux::JobId id = 0;
  std::string app;
  int nnodes = 0;
  double t_submit = 0.0;
  double t_start = 0.0;
  double t_end = 0.0;
  double runtime_s = 0.0;
  /// Telemetry-derived statistics (monitor client; absent if no monitor).
  double avg_node_power_w = 0.0;
  double max_node_power_w = 0.0;
  double max_aggregate_power_w = 0.0;
  double avg_node_energy_j = 0.0;
  bool telemetry_complete = false;
  /// Exact per-node energy over the job window from the hardware meters.
  double exact_avg_node_energy_j = 0.0;
};

struct TimelinePoint {
  double t_s = 0.0;
  double node_w = 0.0;
  std::vector<double> gpu_w;
  std::vector<double> cpu_w;
  double mem_w = 0.0;
  std::vector<double> gpu_cap_w;  ///< active per-GPU caps (0 = none)
};

struct ScenarioResult {
  std::vector<JobResult> jobs;
  double makespan_s = 0.0;  ///< last end − first submit
  double total_energy_j = 0.0;
  double max_cluster_power_w = 0.0;  ///< peak of 2 s-sampled total draw
  double avg_cluster_power_w = 0.0;
  /// Exact-draw timeline of the first node of each job (Figs 1, 5, 6, 7).
  std::map<flux::JobId, std::vector<TimelinePoint>> timelines;
  /// Cluster total-draw timeline.
  std::vector<std::pair<double, double>> cluster_timeline;

  const JobResult& job(flux::JobId id) const;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Queue a job for submission at its submit_time_s.
  flux::JobId submit(const JobRequest& request);

  /// Run until every submitted job completes (or max_time_s elapses) and
  /// collect results. May be called once. Equivalent to advance_until(+inf,
  /// max_time_s) followed by finish(max_time_s): the loop condition is
  /// checked before every event, so phased execution stops on exactly the
  /// same event as a straight run — the byte-identity the twin's
  /// snapshot-equivalence suite asserts.
  ScenarioResult run(double max_time_s = 86400.0);

  /// Phased execution (digital twin): execute events with time <= horizon_s,
  /// stopping early when all jobs completed or max_time_s is reached —
  /// exactly where run() would have stopped. May be called repeatedly with
  /// nondecreasing horizons; submissions are frozen after the first call.
  void advance_until(double horizon_s, double max_time_s = 86400.0);

  /// Complete the run (advance to job completion / max_time_s) and collect
  /// results. May be called once; terminal like run().
  ScenarioResult finish(double max_time_s = 86400.0);

  /// True once the run loop's stop condition held (all jobs done, queue
  /// empty, or max_time_s reached) during an advance/finish/run.
  bool all_jobs_done() const noexcept {
    return completed_ >= static_cast<int>(tracked_.size());
  }
  int completed_jobs() const noexcept { return completed_; }
  std::size_t submitted_jobs() const noexcept { return tracked_.size(); }
  const ScenarioConfig& config() const noexcept { return config_; }
  /// Recorder output so far (twin codec: derived-but-reported state — two
  /// runs must agree on every recorded point or stdout diverges). Sharded:
  /// merged on demand from the per-cell recorders; call only between
  /// windows (after an advance_until returned).
  const std::vector<std::pair<double, double>>& cluster_timeline_so_far() {
    merge_cluster_timeline();
    return cluster_timeline_;
  }

  /// The root engine: island 0 when sharded, the single engine otherwise.
  sim::Simulation& sim() noexcept {
    return engine_ ? engine_->island(0) : sim_;
  }
  /// The sharded engine, or null when config.shards == 0.
  sim::ShardedEngine* engine() noexcept { return engine_.get(); }
  hwsim::Cluster& cluster() noexcept { return cluster_; }
  flux::Instance& instance() noexcept { return *instance_; }
  /// The attached fault plane; null when config.faults is unset.
  faultsim::FaultPlane* fault_plane() noexcept { return fault_plane_.get(); }

 private:
  void record_tick();
  void record_cell_tick(std::size_t cell);
  void build_sharded_stack(const flux::InstanceConfig& icfg);
  void merge_cluster_timeline();
  flux::Launcher wrap_launcher_sharded(flux::Launcher inner);

  ScenarioConfig config_;
  sim::Simulation sim_;  ///< the monolithic engine (idle when sharded)
  std::unique_ptr<sim::ShardedEngine> engine_;  ///< set when shards >= 1
  hwsim::Cluster cluster_;
  std::unique_ptr<flux::Instance> instance_;
  /// Declared after instance_: the plane detaches from instance/nodes in
  /// its destructor, which must run before they are torn down.
  std::unique_ptr<faultsim::FaultPlane> fault_plane_;
  std::unique_ptr<sim::PeriodicTask> recorder_;

  struct Tracked {
    JobRequest request;
    flux::JobId id = 0;
    double energy_at_start_j = 0.0;
    bool done = false;
  };
  std::vector<Tracked> tracked_;
  std::map<flux::JobId, std::size_t> by_id_;
  std::map<flux::JobId, std::vector<TimelinePoint>> timelines_;
  std::vector<std::pair<double, double>> cluster_timeline_;
  std::map<flux::JobId, double> job_energy_j_;
  int completed_ = 0;
  bool ran_ = false;      ///< terminal collection happened (run/finish)
  bool started_ = false;  ///< first advance happened; submissions frozen

  // -- Sharded execution profile state -------------------------------------
  /// Root-child TBON subtrees in child order (the placement cells).
  std::vector<std::vector<flux::Rank>> cells_;
  std::vector<int> cell_of_rank_;  ///< -1 for rank 0
  std::vector<int> island_of_rank_;
  /// Everything one cell's recorder and job executions touch, cache-line
  /// padded: written only by the owning island's worker thread.
  struct alignas(64) CellState {
    /// Jobs whose allocation lives in this cell and whose application is
    /// currently running: job id -> first rank (timeline source).
    std::map<flux::JobId, flux::Rank> running;
    /// (t, cell draw): the cell's contribution to the cluster timeline,
    /// folded over the cell's ranks in subtree order (S-invariant).
    std::vector<std::pair<double, double>> draw;
    std::map<flux::JobId, std::vector<TimelinePoint>> timelines;
  };
  std::vector<std::unique_ptr<CellState>> cell_state_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> cell_recorders_;
  /// (t, node 0 draw): island 0's contribution to the cluster timeline.
  std::vector<std::pair<double, double>> node0_draw_;
  /// Per-tracked-job energy accounting, written only by the job's island
  /// (the launcher wrapper), read after the run.
  struct alignas(64) EnergySlot {
    double at_start_j = 0.0;
    double total_j = 0.0;
    bool valid = false;
  };
  std::vector<EnergySlot> energy_slots_;
};

/// Convenience: run one job alone on a fresh cluster and return its result
/// plus the first-node timeline (Fig 1 / Table II style measurements).
struct SingleJobOutcome {
  JobResult result;
  std::vector<TimelinePoint> timeline;
};
SingleJobOutcome run_single_job(hwsim::Platform platform, apps::AppKind kind,
                                int nnodes, double work_scale = 1.0,
                                bool with_monitor = true,
                                std::uint64_t seed = 42,
                                bool runtime_variability = false);

}  // namespace fluxpower::experiments
