#include "experiments/site_ops.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "apps/app_model.hpp"
#include "apps/launcher.hpp"
#include "flux/instance.hpp"
#include "manager/node_policies.hpp"
#include "manager/power_manager.hpp"
#include "manager/site_coordinator.hpp"
#include "sim/simulation.hpp"
#include "util/json.hpp"

namespace fluxpower::experiments {

std::vector<SiteMemberSpec> default_site_members() {
  std::vector<SiteMemberSpec> members(3);

  SiteMemberSpec& lassen = members[0];
  lassen.name = "lassen";
  lassen.platform = hwsim::Platform::LassenIbmAc922;
  lassen.nodes = 8;
  lassen.node_peak_w = 3050.0;
  lassen.floor_w = 4000.0;
  lassen.workload.kinds = {apps::AppKind::Gemm,        apps::AppKind::Laghos,
                           apps::AppKind::Quicksilver, apps::AppKind::Lammps,
                           apps::AppKind::Sw4lite,     apps::AppKind::Kripke};
  lassen.workload.arrival_weight = 0.45;
  lassen.workload.max_nodes = 4;

  SiteMemberSpec& tioga = members[1];
  tioga.name = "tioga";
  tioga.platform = hwsim::Platform::TiogaCrayEx235a;
  tioga.nodes = 6;
  tioga.node_peak_w = 2000.0;
  tioga.floor_w = 2500.0;
  // No Sw4lite (no HIP variant) and no Kripke (fails on Tioga), §V.
  tioga.workload.kinds = {apps::AppKind::Gemm, apps::AppKind::Laghos,
                          apps::AppKind::Quicksilver, apps::AppKind::Lammps};
  tioga.workload.arrival_weight = 0.30;
  tioga.workload.max_nodes = 3;

  SiteMemberSpec& grace = members[2];
  grace.name = "grace";
  grace.platform = hwsim::Platform::GenericArmGrace;
  grace.nodes = 8;
  grace.node_peak_w = 650.0;
  grace.floor_w = 1000.0;
  grace.workload.kinds = {apps::AppKind::Laghos, apps::AppKind::Quicksilver,
                          apps::AppKind::Lammps, apps::AppKind::NQueens};
  grace.workload.arrival_weight = 0.25;
  grace.workload.max_nodes = 4;

  return members;
}

namespace {

/// Everything one federation member owns at run time.
struct MemberRuntime {
  SiteMemberSpec spec;
  hwsim::Cluster cluster;
  std::unique_ptr<flux::Instance> instance;
  /// Instance-local job id -> index into the tracked-job table.
  std::map<flux::JobId, std::size_t> by_id;
};

struct TrackedJob {
  SiteJobSpec spec;
  double actual_submit_s = 0.0;  ///< after any demand-response deferral
  double t_start = -1.0;
  bool started = false;
  bool done = false;
};

}  // namespace

SiteOpsResult run_site_ops(const SiteOpsConfig& config) {
  SiteOpsConfig cfg = config;
  if (cfg.members.empty()) cfg.members = default_site_members();
  if (cfg.site_bound_w <= 0.0 || cfg.rebalance_period_s <= 0.0 ||
      cfg.record_period_s <= 0.0) {
    throw std::invalid_argument("run_site_ops: nonpositive bound or period");
  }

  // The site policy drives both the coordinator's apportionment and the
  // submission-side deferral decisions (one object, one tariff clock).
  std::unique_ptr<manager::SitePolicy> policy =
      manager::make_site_policy(cfg.site_policy, cfg.tariff);
  const manager::PriceSignal price{cfg.tariff};

  // Generate the arrival stream before any simulation state exists: the
  // workload is a pure function of (config, member shapes).
  std::vector<MemberWorkload> shapes;
  shapes.reserve(cfg.members.size());
  for (const SiteMemberSpec& m : cfg.members) {
    MemberWorkload shape = m.workload;
    shape.platform = m.platform;
    shape.max_nodes = std::min(shape.max_nodes, m.nodes);
    shapes.push_back(std::move(shape));
  }
  const std::vector<SiteJobSpec> arrivals =
      make_site_workload(cfg.workload, shapes);

  sim::Simulation sim;
  manager::register_builtin_node_policies();

  std::vector<std::unique_ptr<MemberRuntime>> members;
  members.reserve(cfg.members.size());
  for (const SiteMemberSpec& spec : cfg.members) {
    auto m = std::make_unique<MemberRuntime>();
    m->spec = spec;
    m->cluster = hwsim::make_cluster(sim, spec.platform, spec.nodes, spec.name);
    std::vector<hwsim::Node*> nodes;
    nodes.reserve(static_cast<std::size_t>(spec.nodes));
    for (int i = 0; i < spec.nodes; ++i) nodes.push_back(&m->cluster.node(i));
    m->instance = std::make_unique<flux::Instance>(sim, std::move(nodes));

    apps::LauncherOptions lopts;
    lopts.platform = spec.platform;
    lopts.step_s = cfg.app_step_s;
    m->instance->jobs().set_launcher(apps::make_launcher(lopts));

    manager::PowerManagerConfig pm;
    // The coordinator pushes real shares from the first rebalance; until
    // then the member runs against its floor (conservative, deterministic).
    pm.cluster_power_bound_w =
        spec.floor_w > 0.0 ? spec.floor_w : spec.node_peak_w * spec.nodes;
    pm.node_peak_w = spec.node_peak_w;
    pm.node_policy = manager::NodePolicy::DirectGpuBudget;
    m->instance->load_module_on_all<manager::PowerManagerModule>(pm);

    if (!cfg.sched_policy.empty()) {
      m->instance->scheduler().set_policy_by_name(cfg.sched_policy);
    }
    members.push_back(std::move(m));
  }

  // Track starts/completions through the same public job events any Flux
  // tool would consume.
  std::vector<TrackedJob> tracked;
  tracked.reserve(arrivals.size());
  int completed = 0;
  for (auto& m : members) {
    MemberRuntime* mp = m.get();
    mp->instance->root().subscribe_event(
        "job.state-run", [mp, &tracked, &sim](const flux::Message& msg) {
          const auto id = static_cast<flux::JobId>(msg.payload.int_or("id", 0));
          const auto it = mp->by_id.find(id);
          if (it == mp->by_id.end()) return;
          TrackedJob& t = tracked[it->second];
          t.started = true;
          t.t_start = sim.now();
        });
    mp->instance->root().subscribe_event(
        "job.state-inactive",
        [mp, &tracked, &completed](const flux::Message& msg) {
          const auto id = static_cast<flux::JobId>(msg.payload.int_or("id", 0));
          const auto it = mp->by_id.find(id);
          if (it == mp->by_id.end()) return;
          TrackedJob& t = tracked[it->second];
          if (t.done) return;
          t.done = true;
          ++completed;
        });
  }

  // Schedule every submission. Deferral is decided against the *original*
  // submit time (the moment the user would have submitted); SLO clocks keep
  // running from that moment too, so shifting is never free.
  int jobs_deferred = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const SiteJobSpec& j = arrivals[i];
    TrackedJob t;
    t.spec = j;
    t.actual_submit_s = j.submit_time_s;
    if (j.deferrable && policy->defer_submission(j.submit_time_s)) {
      t.actual_submit_s = policy->deferral_release_s(j.submit_time_s);
      if (t.actual_submit_s > j.submit_time_s) ++jobs_deferred;
    }
    MemberRuntime* mp = members[static_cast<std::size_t>(j.member)].get();
    tracked.push_back(t);
    sim.schedule_at(t.actual_submit_s, [mp, i, &arrivals] {
      const SiteJobSpec& job = arrivals[i];
      flux::JobSpec spec;
      spec.name = std::string(apps::app_kind_name(job.kind)) + "-" +
                  std::to_string(job.nnodes) + "n";
      spec.app = apps::app_kind_name(job.kind);
      spec.nnodes = job.nnodes;
      spec.tasks_per_node = 4;
      spec.attributes = util::Json::object();
      spec.attributes["work_scale"] = job.work_scale;
      spec.attributes["power_estimate_w_per_node"] =
          apps::estimate_peak_node_power_w(apps::make_profile(
              job.kind, mp->spec.platform, std::max(1, job.nnodes),
              job.work_scale));
      if (job.eco_tolerance > 0.0) {
        spec.attributes["eco_tolerance"] = job.eco_tolerance;
      }
      const flux::JobId id = mp->instance->jobs().submit(spec);
      mp->by_id[id] = i;
    });
  }

  manager::SiteCoordinator coord(sim, cfg.site_bound_w,
                                 cfg.rebalance_period_s);
  for (auto& m : members) {
    coord.add_member({m->spec.name, m->instance.get(), m->spec.node_peak_w,
                      m->spec.floor_w});
  }
  coord.set_policy(std::move(policy));

  // Operator scorecard: tariff-priced energy cost, facility-bound
  // violations, draw statistics.
  double cost_usd = 0.0;
  double violation_min = 0.0;
  double peak_draw = 0.0;
  double draw_sum = 0.0;
  std::size_t draw_ticks = 0;
  sim::PeriodicTask recorder(
      sim, cfg.record_period_s,
      [&] {
        double draw = 0.0;
        for (auto& m : members) draw += m->cluster.total_draw_w();
        cost_usd += draw * cfg.record_period_s *
                    price.price_usd_per_ws(sim.now());
        if (draw > cfg.site_bound_w) {
          violation_min += cfg.record_period_s / 60.0;
        }
        peak_draw = std::max(peak_draw, draw);
        draw_sum += draw;
        ++draw_ticks;
        return true;
      },
      /*initial_delay=*/0.0);

  const double max_time_s = cfg.max_time_s > 0.0
                                ? cfg.max_time_s
                                : cfg.workload.duration_s + 2.0 * 86400.0;
  const int expected = static_cast<int>(tracked.size());
  while (completed < expected && sim.now() < max_time_s) {
    if (!sim.step()) break;
  }

  SiteOpsResult result;
  result.site_policy = cfg.site_policy;
  result.jobs_total = expected;
  result.jobs_deferred = jobs_deferred;
  for (const TrackedJob& t : tracked) {
    if (t.started) ++result.jobs_started;
    if (t.done) ++result.jobs_completed;
    if (t.started &&
        t.t_start - t.spec.submit_time_s <= t.spec.start_deadline_s) {
      ++result.slo_met;
    }
  }
  result.slo_attainment =
      expected > 0 ? static_cast<double>(result.slo_met) / expected : 0.0;
  for (auto& m : members) {
    SiteMemberStats stats;
    stats.name = m->spec.name;
    stats.jobs = static_cast<int>(m->by_id.size());
    for (const auto& [id, index] : m->by_id) {
      if (tracked[index].done) ++stats.completed;
    }
    stats.energy_j = m->cluster.total_energy_joules();
    result.energy_j += stats.energy_j;
    result.members.push_back(std::move(stats));
  }
  result.energy_cost_usd = cost_usd;
  result.cap_violation_min = violation_min;
  result.peak_site_draw_w = peak_draw;
  result.avg_site_draw_w =
      draw_ticks > 0 ? draw_sum / static_cast<double>(draw_ticks) : 0.0;
  result.rebalances = coord.rebalances();
  result.rounds_completed = coord.rounds_completed();
  result.member_misses = coord.member_misses();
  result.end_s = sim.now();
  return result;
}

}  // namespace fluxpower::experiments
