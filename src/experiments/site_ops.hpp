// site_ops.hpp — multi-week federated site operations runner.
//
// The production-site scenario the roadmap's scenario pack targets: several
// heterogeneous clusters (a Lassen-like GPU machine, a Tioga-like MI250X
// machine, an ARM Grace CPU pool) federate under one facility power budget,
// coordinated by manager::SiteCoordinator through the same power-manager
// RPC surface production would use. A deterministic multi-week workload
// (experiments/site_workload.hpp) drives the federation while a site policy
// (manager/site_policy.hpp) apportions the budget — and, for the
// demand-response policy, shifts deferrable submissions out of the peak
// tariff window.
//
// The runner reports the operator-facing numbers the policies trade off:
// energy cost under the time-of-use tariff, SLO attainment (jobs starting
// within their requested deadline, measured against the *original* submit
// time so deferral pays its real price), and cap-violation minutes (site
// draw above the facility bound).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/site_workload.hpp"
#include "hwsim/cluster.hpp"
#include "manager/site_policy.hpp"

namespace fluxpower::experiments {

/// One federation member: a whole cluster with its own Flux instance and
/// power-manager, plus the workload shape its platform supports.
struct SiteMemberSpec {
  std::string name;
  hwsim::Platform platform = hwsim::Platform::LassenIbmAc922;
  int nodes = 8;
  double node_peak_w = 3050.0;
  /// Guaranteed share floor handed to the SiteCoordinator.
  double floor_w = 0.0;
  MemberWorkload workload;
};

/// The default heterogeneous trio (Lassen-like + Tioga-like + ARM Grace).
/// Application mixes are platform-safe: Sw4lite and Kripke only run on the
/// Lassen member (they fail on Tioga, §II-D).
std::vector<SiteMemberSpec> default_site_members();

struct SiteOpsConfig {
  /// default_site_members() when empty.
  std::vector<SiteMemberSpec> members;
  SiteWorkloadConfig workload;
  /// Site apportionment policy name (manager::make_site_policy).
  std::string site_policy = "demand-proportional";
  manager::TariffConfig tariff;
  /// Scheduler policy per member instance.
  std::string sched_policy = "eco-mode";
  /// Facility budget and rebalance cadence.
  double site_bound_w = 22000.0;
  double rebalance_period_s = 300.0;
  double app_step_s = 1.0;
  /// Cadence of the cost/violation recorder.
  double record_period_s = 60.0;
  /// Drain margin past the last arrival (0 = two extra days).
  double max_time_s = 0.0;
  std::uint64_t seed = 42;
};

struct SiteMemberStats {
  std::string name;
  int jobs = 0;       ///< routed to this member
  int completed = 0;
  double energy_j = 0.0;  ///< member cluster energy over the run
};

struct SiteOpsResult {
  std::string site_policy;
  int jobs_total = 0;
  int jobs_deferred = 0;   ///< submissions shifted by demand-response
  int jobs_started = 0;
  int jobs_completed = 0;
  int slo_met = 0;         ///< started within start_deadline_s of original submit
  double slo_attainment = 0.0;  ///< slo_met / jobs_total
  double energy_j = 0.0;
  double energy_cost_usd = 0.0;  ///< tariff-priced site energy
  double cap_violation_min = 0.0;  ///< minutes with site draw > site bound
  double peak_site_draw_w = 0.0;
  double avg_site_draw_w = 0.0;
  int rebalances = 0;
  int rounds_completed = 0;
  std::uint64_t member_misses = 0;
  double end_s = 0.0;  ///< sim time when the run stopped
  std::vector<SiteMemberStats> members;
};

/// Build the federation, replay the workload, and collect the scorecard.
SiteOpsResult run_site_ops(const SiteOpsConfig& config);

}  // namespace fluxpower::experiments
