#include "experiments/site_workload.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/app_model.hpp"
#include "util/rng.hpp"

namespace fluxpower::experiments {

std::vector<SiteJobSpec> make_site_workload(
    const SiteWorkloadConfig& config,
    const std::vector<MemberWorkload>& members) {
  if (members.empty()) {
    throw std::invalid_argument("make_site_workload: no members");
  }
  if (config.duration_s <= 0.0 || config.jobs_per_hour_peak <= 0.0) {
    throw std::invalid_argument(
        "make_site_workload: duration and peak rate must be positive");
  }
  double weight_total = 0.0;
  for (const MemberWorkload& m : members) {
    if (m.kinds.empty()) {
      throw std::invalid_argument("make_site_workload: member with no kinds");
    }
    if (m.max_nodes <= 0 || m.min_runtime_s <= 0.0 ||
        m.max_runtime_s < m.min_runtime_s) {
      throw std::invalid_argument("make_site_workload: bad member shape");
    }
    weight_total += std::max(0.0, m.arrival_weight);
  }
  if (weight_total <= 0.0) {
    throw std::invalid_argument("make_site_workload: all-zero arrival weights");
  }

  util::Rng rng(config.seed);
  const double peak_gap_s = 3600.0 / config.jobs_per_hour_peak;
  const double top = config.diurnal.day_level;

  std::vector<SiteJobSpec> jobs;
  double t = rng.exponential(peak_gap_s);
  while (t < config.duration_s) {
    // Thinning: a candidate at peak rate survives with probability
    // level(t)/day_level, yielding the exact diurnal-modulated process.
    // Draw the thinning variate unconditionally so the candidate stream is
    // independent of the diurnal parameters (same seed, same skeleton).
    const double keep = rng.uniform();
    if (keep * top < config.diurnal.level_at(t)) {
      // Route by arrival weight.
      double pick = rng.uniform(0.0, weight_total);
      int member = 0;
      for (std::size_t i = 0; i < members.size(); ++i) {
        pick -= std::max(0.0, members[i].arrival_weight);
        if (pick <= 0.0) {
          member = static_cast<int>(i);
          break;
        }
      }
      const MemberWorkload& shape = members[static_cast<std::size_t>(member)];
      SiteJobSpec job;
      job.member = member;
      job.kind = shape.kinds[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(shape.kinds.size()) - 1))];
      job.nnodes = static_cast<int>(rng.uniform_int(1, shape.max_nodes));
      // Size by target runtime; the application model converts it to the
      // kind's work scale (runtime_s is linear in work_scale everywhere).
      const double target_s =
          rng.uniform(shape.min_runtime_s, shape.max_runtime_s);
      const double base_s =
          apps::make_profile(job.kind, shape.platform, job.nnodes, 1.0)
              .runtime_s;
      job.work_scale = target_s / base_s;
      job.submit_time_s = t;
      job.deferrable = rng.chance(config.deferrable_frac);
      job.start_deadline_s = job.deferrable ? config.deferrable_deadline_s
                                            : config.start_deadline_s;
      if (rng.chance(config.eco_frac)) {
        job.eco_tolerance = config.eco_tolerance;
      }
      jobs.push_back(job);
    }
    t += rng.exponential(peak_gap_s);
  }
  return jobs;
}

}  // namespace fluxpower::experiments
