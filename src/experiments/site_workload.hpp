// site_workload.hpp — deterministic multi-week site workload generation.
//
// The production-site studies (bench/ext_site_ops) need weeks of arrivals,
// not the paper's single queue: job pressure follows the site's diurnal and
// weekly rhythm (apps::DiurnalModel), a fraction of jobs is deferrable
// (batch campaigns that tolerate shifting into cheap-power windows) and a
// fraction is eco-enrolled (PR 8's eco_tolerance self-cap). Arrivals are
// drawn by Poisson thinning — candidate arrivals at the peak rate, each
// kept with probability level(t)/day_level — so the process is an exact
// inhomogeneous Poisson stream yet replays byte-identically from its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/trace_replay.hpp"
#include "apps/workload.hpp"
#include "hwsim/cluster.hpp"

namespace fluxpower::experiments {

/// One generated job, routed to a federation member.
struct SiteJobSpec {
  int member = 0;  ///< index into the member list the generator was given
  apps::AppKind kind = apps::AppKind::Gemm;
  int nnodes = 1;
  double work_scale = 1.0;
  double submit_time_s = 0.0;
  /// Eco-mode enrollment (0 = not enrolled); see ScenarioConfig.
  double eco_tolerance = 0.0;
  /// Deferrable jobs may be shifted by a demand-response site policy.
  bool deferrable = false;
  /// SLO: the job should *start* within this many seconds of its original
  /// submit time (deferrable jobs get the looser deferrable deadline).
  double start_deadline_s = 1800.0;
};

/// Per-member workload shape: which applications the member's platform can
/// run and how much of the arrival stream it attracts. Job sizes are drawn
/// as *target runtimes* and converted to per-kind work scales through the
/// application model (a work-scale unit is ~12 s of Laghos but ~274 s of
/// GEMM — drawing scales directly would skew the mix by kind).
struct MemberWorkload {
  hwsim::Platform platform = hwsim::Platform::LassenIbmAc922;
  std::vector<apps::AppKind> kinds;
  double arrival_weight = 1.0;
  int max_nodes = 4;
  double min_runtime_s = 240.0;
  double max_runtime_s = 900.0;
};

struct SiteWorkloadConfig {
  /// Two simulated weeks by default.
  double duration_s = 14.0 * 86400.0;
  /// Arrival rate at the diurnal plateau (level == day_level).
  double jobs_per_hour_peak = 6.0;
  apps::DiurnalModel diurnal;
  double deferrable_frac = 0.35;
  double eco_frac = 0.5;
  double eco_tolerance = 0.2;
  double start_deadline_s = 1800.0;
  /// Deferrable jobs promise only a same-shift start.
  double deferrable_deadline_s = 6.0 * 3600.0;
  std::uint64_t seed = 42;
};

/// Generate the arrival stream, sorted by submit time. Throws
/// std::invalid_argument on an empty member list, a member with no kinds,
/// nonpositive duration/rate, or all-zero arrival weights.
std::vector<SiteJobSpec> make_site_workload(
    const SiteWorkloadConfig& config, const std::vector<MemberWorkload>& members);

}  // namespace fluxpower::experiments
