#include "faultsim/fault_plane.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace fluxpower::faultsim {

namespace {
/// Derive a per-component seed from the plane seed so each node (and the
/// link stream) draws from an independent deterministic stream. Without
/// this, one extra draw on node A would shift every later fault on node B.
std::uint64_t substream(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  return util::splitmix64(state);
}
}  // namespace

FaultPlane::FaultPlane(FaultPlaneConfig config)
    : config_(config), link_rng_(substream(config.seed, 0)) {}

FaultPlane::~FaultPlane() { detach(); }

void FaultPlane::attach(flux::Instance& instance) {
  if (instance_ != nullptr) {
    throw std::logic_error("FaultPlane::attach: already attached");
  }
  instance_ = &instance;
  sim_ = &instance.sim();
  instance.set_fault_injector(this);
  // Mirror the injected-fault tallies into the root broker's registry so
  // they surface in the cluster-wide `power.metrics` exposition. Reset on
  // attach: a fresh plane starts a fresh ledger, matching counters_.
  obs::MetricsRegistry& reg = instance.broker(0).metrics();
  mirror_.msgs_dropped = &reg.counter("fluxpower_faultsim_msgs_dropped_total",
                                      "Messages dropped by link faults");
  mirror_.msgs_blackholed =
      &reg.counter("fluxpower_faultsim_msgs_blackholed_total",
                   "Messages dropped because an endpoint was down");
  mirror_.msgs_duplicated = &reg.counter(
      "fluxpower_faultsim_msgs_duplicated_total", "Messages duplicated");
  mirror_.msgs_delayed = &reg.counter("fluxpower_faultsim_msgs_delayed_total",
                                      "Messages given extra delay");
  mirror_.node_crashes = &reg.counter("fluxpower_faultsim_node_crashes_total",
                                      "Injected node crashes");
  mirror_.node_reboots = &reg.counter("fluxpower_faultsim_node_reboots_total",
                                      "Node reboots after a crash");
  mirror_.sensor_dropouts =
      &reg.counter("fluxpower_faultsim_sensor_dropouts_total",
                   "Sensor sweeps errored outright");
  mirror_.sensor_stuck_sweeps =
      &reg.counter("fluxpower_faultsim_sensor_stuck_sweeps_total",
                   "Sensor sweeps returning frozen readings");
  mirror_.cap_write_failures =
      &reg.counter("fluxpower_faultsim_cap_write_failures_total",
                   "Cap writes failed with IoError");
  mirror_.msgs_dropped->reset();
  mirror_.msgs_blackholed->reset();
  mirror_.msgs_duplicated->reset();
  mirror_.msgs_delayed->reset();
  mirror_.node_crashes->reset();
  mirror_.node_reboots->reset();
  mirror_.sensor_dropouts->reset();
  mirror_.sensor_stuck_sweeps->reset();
  mirror_.cap_write_failures->reset();
  const int n = instance.size();
  sharded_ = instance.sharded();
  if (sharded_) {
    island_tallies_.assign(
        static_cast<std::size_t>(instance.engine()->islands()),
        IslandCounters{});
    // One link substream per sender rank: indices 0 (shared link stream)
    // and 1..n (node streams) are taken, so senders use n+1 .. 2n.
    link_rngs_.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      link_rngs_[static_cast<std::size_t>(r)].reseed(substream(
          config_.seed, static_cast<std::uint64_t>(n) + 1 +
                            static_cast<std::uint64_t>(r)));
    }
    // Refresh counters_ and the registry mirror at every barrier so the
    // cluster-wide `power.metrics` aggregation (which runs on island 0
    // during windows) sees tallies at most one window stale.
    barrier_hook_ =
        instance.engine()->add_barrier_hook([this] { fold_tallies(); });
  }
  nodes_.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    NodeState& st = nodes_[static_cast<std::size_t>(r)];
    st.rank = r;
    st.node = instance.node(r);
    st.sim = &instance.sim_for(r);
    st.rng.reseed(substream(config_.seed, static_cast<std::uint64_t>(r) + 1));
    if (st.node != nullptr) {
      st.node->set_fault_tap(this);
      by_node_[st.node] = static_cast<std::size_t>(r);
    }
    if (config_.node_mtbf_s > 0.0 && !(config_.protect_root && r == 0)) {
      schedule_crash(st);
    }
  }
}

void FaultPlane::detach() {
  if (instance_ == nullptr) return;
  fold_tallies();
  if (sharded_ && barrier_hook_ != 0) {
    instance_->engine()->remove_barrier_hook(barrier_hook_);
    barrier_hook_ = 0;
  }
  instance_->set_fault_injector(nullptr);
  for (NodeState& st : nodes_) {
    if (st.node != nullptr && st.node->fault_tap() == this) {
      st.node->set_fault_tap(nullptr);
    }
  }
  // Cancel in-flight crash/reboot events so no queued lambda can touch a
  // destroyed plane.
  for (NodeState& st : nodes_) {
    if (st.pending_event != sim::kInvalidEvent) {
      st.sim->cancel(st.pending_event);
      st.pending_event = sim::kInvalidEvent;
    }
  }
  // The registry outlives the plane only as long as the instance does;
  // null the mirror so post-detach folds cannot touch a dead registry.
  mirror_ = {};
  instance_ = nullptr;
  sim_ = nullptr;
}

FaultCounters& FaultPlane::tally(flux::Rank rank) {
  if (!sharded_) return counters_;
  return island_tallies_[static_cast<std::size_t>(instance_->island_of(rank))]
      .c;
}

void FaultPlane::bump(std::uint64_t FaultCounters::* field, flux::Rank rank,
                      obs::Counter* mirror) {
  ++(tally(rank).*field);
  if (!sharded_ && mirror != nullptr) mirror->inc();
}

void FaultPlane::fold_tallies() const noexcept {
  if (!sharded_) return;
  FaultCounters total{};
  for (const IslandCounters& t : island_tallies_) {
    total.msgs_dropped += t.c.msgs_dropped;
    total.msgs_blackholed += t.c.msgs_blackholed;
    total.msgs_duplicated += t.c.msgs_duplicated;
    total.msgs_delayed += t.c.msgs_delayed;
    total.node_crashes += t.c.node_crashes;
    total.node_reboots += t.c.node_reboots;
    total.sensor_dropouts += t.c.sensor_dropouts;
    total.sensor_stuck_sweeps += t.c.sensor_stuck_sweeps;
    total.cap_write_failures += t.c.cap_write_failures;
  }
  counters_ = total;
  if (mirror_.msgs_dropped == nullptr) return;
  const auto set = [](obs::Counter* c, std::uint64_t v) {
    c->reset();
    c->inc(v);
  };
  set(mirror_.msgs_dropped, total.msgs_dropped);
  set(mirror_.msgs_blackholed, total.msgs_blackholed);
  set(mirror_.msgs_duplicated, total.msgs_duplicated);
  set(mirror_.msgs_delayed, total.msgs_delayed);
  set(mirror_.node_crashes, total.node_crashes);
  set(mirror_.node_reboots, total.node_reboots);
  set(mirror_.sensor_dropouts, total.sensor_dropouts);
  set(mirror_.sensor_stuck_sweeps, total.sensor_stuck_sweeps);
  set(mirror_.cap_write_failures, total.cap_write_failures);
}

void FaultPlane::schedule_crash(NodeState& state) {
  // The whole crash/reboot chain for a rank runs on that rank's engine
  // (its island when sharded), so the down bit is written only by the
  // thread that also reads it on the send and delivery paths. The process
  // trace sink is not thread-safe; sharded runs skip the instants.
  const double dt = state.rng.exponential(config_.node_mtbf_s);
  const flux::Rank rank = state.rank;
  sim::Simulation* node_sim = state.sim;
  state.pending_event = node_sim->schedule_after(dt, [this, rank, node_sim] {
    NodeState& st = nodes_[static_cast<std::size_t>(rank)];
    st.down = true;
    bump(&FaultCounters::node_crashes, rank, mirror_.node_crashes);
    if (obs::TraceSink& tr = obs::process_trace();
        !sharded_ && tr.enabled()) {
      tr.instant(node_sim->now(), "node-crash", "faultsim", rank);
    }
    st.pending_event =
        node_sim->schedule_after(config_.node_reboot_s, [this, rank,
                                                         node_sim] {
          NodeState& st2 = nodes_[static_cast<std::size_t>(rank)];
          st2.down = false;
          // A reboot clears any stuck-sensor window: the sweep restarts
          // fresh.
          st2.stuck = false;
          st2.pending_event = sim::kInvalidEvent;
          bump(&FaultCounters::node_reboots, rank, mirror_.node_reboots);
          if (obs::TraceSink& tr = obs::process_trace();
              !sharded_ && tr.enabled()) {
            tr.instant(node_sim->now(), "node-reboot", "faultsim", rank);
          }
          schedule_crash(st2);
        });
  });
}

void FaultPlane::force_crash(flux::Rank rank, double down_s) {
  if (instance_ == nullptr) {
    throw std::logic_error("FaultPlane::force_crash: not attached");
  }
  if (rank < 0 || static_cast<std::size_t>(rank) >= nodes_.size()) {
    throw std::out_of_range("FaultPlane::force_crash: unknown rank");
  }
  NodeState& st = nodes_[static_cast<std::size_t>(rank)];
  sim::Simulation* node_sim = st.sim;
  if (st.pending_event != sim::kInvalidEvent) {
    node_sim->cancel(st.pending_event);
    st.pending_event = sim::kInvalidEvent;
  }
  const double reboot_s = down_s >= 0.0 ? down_s : config_.node_reboot_s;
  st.down = true;
  bump(&FaultCounters::node_crashes, rank, mirror_.node_crashes);
  if (obs::TraceSink& tr = obs::process_trace(); !sharded_ && tr.enabled()) {
    tr.instant(node_sim->now(), "node-crash", "faultsim", rank);
  }
  st.pending_event = node_sim->schedule_after(reboot_s, [this, rank,
                                                         node_sim] {
    NodeState& st2 = nodes_[static_cast<std::size_t>(rank)];
    st2.down = false;
    st2.stuck = false;
    st2.pending_event = sim::kInvalidEvent;
    bump(&FaultCounters::node_reboots, rank, mirror_.node_reboots);
    if (obs::TraceSink& tr = obs::process_trace(); !sharded_ && tr.enabled()) {
      tr.instant(node_sim->now(), "node-reboot", "faultsim", rank);
    }
    // Resume the seeded schedule only if the rank had one to begin with.
    if (config_.node_mtbf_s > 0.0 && !(config_.protect_root && rank == 0)) {
      schedule_crash(st2);
    }
  });
}

FaultPlane::NodeFaultStatus FaultPlane::node_status(flux::Rank rank) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= nodes_.size()) {
    throw std::out_of_range("FaultPlane::node_status: unknown rank");
  }
  const NodeState& st = nodes_[static_cast<std::size_t>(rank)];
  return NodeFaultStatus{st.down, st.stuck, st.stuck_until_s,
                         st.pending_event != sim::kInvalidEvent};
}

const util::Rng& FaultPlane::node_rng(flux::Rank rank) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= nodes_.size()) {
    throw std::out_of_range("FaultPlane::node_rng: unknown rank");
  }
  return nodes_[static_cast<std::size_t>(rank)].rng;
}

bool FaultPlane::node_is_down(flux::Rank rank) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= nodes_.size()) return false;
  return nodes_[static_cast<std::size_t>(rank)].down;
}

FaultPlane::Verdict FaultPlane::on_route(const flux::Message& msg,
                                         flux::Rank dest) {
  Verdict v;
  // Sharded profile: only the sender's down-state is ruled here — the
  // destination's belongs to its island and is checked at delivery time
  // (delivery_blocked), so the send path never reads across islands.
  if (node_is_down(msg.sender) || (!sharded_ && node_is_down(dest))) {
    bump(&FaultCounters::msgs_blackholed, msg.sender,
         mirror_.msgs_blackholed);
    v.drop = true;
    return v;
  }
  // Loopback delivery (a broker messaging itself, e.g. the client RPC to
  // the root it is attached to) never crosses a TBON link, so link faults
  // don't apply — and no RNG is drawn, keeping the link stream aligned
  // with the actual network traffic.
  if (msg.sender == dest) return v;
  // Fixed draw order (drop, dup, delay) keeps the link stream replayable
  // regardless of which rates are enabled... as long as all three are
  // consulted even when a draw already decided the verdict.
  util::Rng& rng =
      sharded_ ? link_rngs_[static_cast<std::size_t>(msg.sender)] : link_rng_;
  const bool drop =
      config_.msg_drop_rate > 0.0 && rng.chance(config_.msg_drop_rate);
  const bool dup =
      config_.msg_dup_rate > 0.0 && rng.chance(config_.msg_dup_rate);
  const bool delay =
      config_.msg_delay_rate > 0.0 && rng.chance(config_.msg_delay_rate);
  if (drop) {
    bump(&FaultCounters::msgs_dropped, msg.sender, mirror_.msgs_dropped);
    v.drop = true;
    return v;
  }
  if (dup) {
    bump(&FaultCounters::msgs_duplicated, msg.sender,
         mirror_.msgs_duplicated);
    v.duplicates = 1;
  }
  if (delay) {
    bump(&FaultCounters::msgs_delayed, msg.sender, mirror_.msgs_delayed);
    v.extra_delay_s = rng.uniform(0.0, config_.msg_delay_max_s);
  }
  return v;
}

bool FaultPlane::delivery_blocked(flux::Rank dest) {
  if (!node_is_down(dest)) return false;
  bump(&FaultCounters::msgs_blackholed, dest, mirror_.msgs_blackholed);
  return true;
}

FaultPlane::NodeState* FaultPlane::state_for(const hwsim::Node& node) {
  auto it = by_node_.find(&node);
  if (it == by_node_.end()) return nullptr;
  return &nodes_[it->second];
}

void FaultPlane::on_sample(hwsim::Node& node, hwsim::PowerSample& sample) {
  NodeState* st = state_for(node);
  if (st == nullptr) return;
  if (st->down) {
    bump(&FaultCounters::sensor_dropouts, st->rank, mirror_.sensor_dropouts);
    sample.sensor_fault = true;
    return;
  }
  const double now = st->sim != nullptr ? st->sim->now() : 0.0;
  if (st->stuck) {
    if (now < st->stuck_until_s) {
      // Stuck-at fault: the sweep "succeeds" but returns the frozen
      // readings. The explicit fault flag is what makes the freeze
      // detectable without value-comparison heuristics (which would
      // misfire on genuinely constant workloads).
      const double ts = sample.timestamp_s;
      sample = st->frozen;
      sample.timestamp_s = ts;
      sample.sensor_fault = true;
      bump(&FaultCounters::sensor_stuck_sweeps, st->rank,
           mirror_.sensor_stuck_sweeps);
      return;
    }
    st->stuck = false;
  }
  const bool dropout = config_.sensor_dropout_rate > 0.0 &&
                       st->rng.chance(config_.sensor_dropout_rate);
  const bool stick = config_.sensor_stuck_rate > 0.0 &&
                     st->rng.chance(config_.sensor_stuck_rate);
  if (dropout) {
    bump(&FaultCounters::sensor_dropouts, st->rank, mirror_.sensor_dropouts);
    sample.sensor_fault = true;
    return;
  }
  if (stick) {
    st->stuck = true;
    st->stuck_until_s = now + config_.sensor_stuck_duration_s;
    st->frozen = sample;
    sample.sensor_fault = true;
    bump(&FaultCounters::sensor_stuck_sweeps, st->rank,
         mirror_.sensor_stuck_sweeps);
  }
}

bool FaultPlane::fail_cap_write(hwsim::Node& node, hwsim::DomainType) {
  NodeState* st = state_for(node);
  if (st == nullptr) return false;
  if (st->down) {
    bump(&FaultCounters::cap_write_failures, st->rank,
         mirror_.cap_write_failures);
    return true;
  }
  if (config_.cap_write_failure_rate > 0.0 &&
      st->rng.chance(config_.cap_write_failure_rate)) {
    bump(&FaultCounters::cap_write_failures, st->rank,
         mirror_.cap_write_failures);
    return true;
  }
  return false;
}

}  // namespace fluxpower::faultsim
