// fault_plane.hpp — deterministic, seeded fault injection for the stack.
//
// The paper's production argument (§V) is that job power management must
// keep working when the machine misbehaves: node crashes mid-allocation,
// TBON links dropping or reordering messages, sensors going dark or
// freezing, and cap writes failing intermittently (the documented NVML
// class). The FaultPlane reproduces that weather deterministically: every
// fault is drawn from one seeded xoshiro stream per component, scheduled
// through the discrete-event engine, so a scenario replays byte-identically
// from its seed.
//
// It plugs into the two hook surfaces the lower layers expose —
// flux::RouteFaultInjector (per routed message / broadcast leg) and
// hwsim::NodeFaultTap (per sensor sweep and cap write) — and additionally
// drives a crash/reboot schedule per rank. With every rate at zero (or with
// no plane attached at all) the stack's behaviour is bit-for-bit identical
// to a build without fault injection: no RNG is consulted on any hot path.
//
// Crash model: a crashed rank's broker is network-dead (every message to or
// from it is dropped, including broadcast legs) and its sensors read as
// faulted. Power draw and application progress continue — the simplification
// models a node that lost its management plane, not its power feed, which is
// the §V failure class (the job keeps running; the *framework* goes blind).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "flux/instance.hpp"
#include "hwsim/node.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace fluxpower::faultsim {

struct FaultPlaneConfig {
  std::uint64_t seed = 1;

  // -- TBON link faults (per routed message; per broker leg for events) ----
  double msg_drop_rate = 0.0;
  double msg_dup_rate = 0.0;
  double msg_delay_rate = 0.0;
  double msg_delay_max_s = 0.050;  ///< extra delay ~ U[0, max)

  // -- Node crash/reboot schedule ------------------------------------------
  /// Mean time between failures per rank, seconds; 0 disables crashes.
  double node_mtbf_s = 0.0;
  /// Downtime per crash before the broker rejoins, seconds.
  double node_reboot_s = 30.0;
  /// Never crash rank 0 — the root holds the manager and the TBON apex; a
  /// dead root is a different (cluster-wide) failure study.
  bool protect_root = true;

  // -- Sensor faults (ruled once per sweep) --------------------------------
  /// Probability a sweep errors outright (reads marked faulted).
  double sensor_dropout_rate = 0.0;
  /// Probability a sweep freezes: subsequent sweeps return the frozen
  /// readings (marked faulted) until the stuck window elapses.
  double sensor_stuck_rate = 0.0;
  double sensor_stuck_duration_s = 60.0;

  // -- Cap-write faults ----------------------------------------------------
  /// Probability any cap write fails with CapStatus::IoError. Broader than
  /// the AC922's NVML mode: applies to every vendor and domain.
  double cap_write_failure_rate = 0.0;
};

/// Monotonic tallies of everything the plane injected — the denominators
/// for reliability tables (injected faults vs. surviving coverage).
struct FaultCounters {
  std::uint64_t msgs_dropped = 0;      ///< random link drops
  std::uint64_t msgs_blackholed = 0;   ///< drops because an endpoint is down
  std::uint64_t msgs_duplicated = 0;
  std::uint64_t msgs_delayed = 0;
  std::uint64_t node_crashes = 0;
  std::uint64_t node_reboots = 0;
  std::uint64_t sensor_dropouts = 0;
  std::uint64_t sensor_stuck_sweeps = 0;
  std::uint64_t cap_write_failures = 0;
};

class FaultPlane final : public flux::RouteFaultInjector,
                         public hwsim::NodeFaultTap {
 public:
  explicit FaultPlane(FaultPlaneConfig config);
  ~FaultPlane() override;  ///< detaches from the instance and all nodes

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Hook into an instance: installs the route injector, attaches the
  /// sensor/cap tap to every broker's node, and (when node_mtbf_s > 0)
  /// schedules the first crash per eligible rank. Call once.
  void attach(flux::Instance& instance);

  /// Detach all hooks early (the destructor also does this).
  void detach();

  bool node_is_down(flux::Rank rank) const;
  /// Sharded profile: folds the per-island tallies first — call it from a
  /// barrier or after the run, not concurrently with an open window.
  const FaultCounters& counters() const noexcept {
    fold_tallies();
    return counters_;
  }
  const FaultPlaneConfig& config() const noexcept { return config_; }

  /// Crash rank `rank` immediately (counted as a node crash), rebooting
  /// after `down_s` seconds (default: the configured reboot time). The
  /// what-if engine's "node X dies at t" perturbation; overrides any
  /// pending scheduled crash for the rank. No RNG is consulted, so the
  /// seeded fault schedule of every *other* rank is unshifted.
  void force_crash(flux::Rank rank, double down_s = -1.0);

  // -- Twin-codec introspection ---------------------------------------------
  /// Externally visible per-rank fault state (down/stuck flags and the
  /// stuck window) — serialized by the snapshot probe.
  struct NodeFaultStatus {
    bool down = false;
    bool stuck = false;
    double stuck_until_s = 0.0;
    bool crash_pending = false;  ///< a crash-or-reboot event is in flight
  };
  NodeFaultStatus node_status(flux::Rank rank) const;
  /// Substream positions: the link stream and each rank's private stream.
  const util::Rng& link_rng() const noexcept { return link_rng_; }
  const util::Rng& node_rng(flux::Rank rank) const;
  int attached_nodes() const noexcept { return static_cast<int>(nodes_.size()); }

  // -- flux::RouteFaultInjector --------------------------------------------
  Verdict on_route(const flux::Message& msg, flux::Rank dest) override;
  /// Sharded profile: the destination's down-state is ruled here, at
  /// delivery time on its own island (on_route then only checks the
  /// sender), so no island ever reads another's crash bits.
  bool delivery_blocked(flux::Rank dest) override;

  // -- hwsim::NodeFaultTap -------------------------------------------------
  void on_sample(hwsim::Node& node, hwsim::PowerSample& sample) override;
  bool fail_cap_write(hwsim::Node& node, hwsim::DomainType domain) override;

 private:
  struct NodeState {
    flux::Rank rank = -1;
    hwsim::Node* node = nullptr;
    /// The engine this rank's crash chain and stuck windows run on: its
    /// island's Simulation when sharded, the instance engine otherwise.
    sim::Simulation* sim = nullptr;
    util::Rng rng;  ///< private stream: faults on one node never shift another's
    bool down = false;
    bool stuck = false;
    double stuck_until_s = 0.0;
    hwsim::PowerSample frozen{};
    /// The one in-flight crash-or-reboot event; cancelled on detach so no
    /// queued lambda can outlive the plane.
    sim::EventId pending_event = sim::kInvalidEvent;
  };

  /// Per-island tally block, cache-line padded: written only by the
  /// island's worker thread, folded into counters_ at barriers.
  struct alignas(64) IslandCounters {
    FaultCounters c;
  };

  void schedule_crash(NodeState& state);
  NodeState* state_for(const hwsim::Node& node);
  /// The counter block an event on `rank` tallies into: the rank's island
  /// block when sharded, counters_ itself otherwise.
  FaultCounters& tally(flux::Rank rank);
  /// Increment `field` for `rank`; mirrors into the registry immediately
  /// when monolithic (the barrier fold does it when sharded).
  void bump(std::uint64_t FaultCounters::* field, flux::Rank rank,
            obs::Counter* mirror);
  /// Sharded profile: rebuild counters_ (and the registry mirror) from the
  /// island blocks. No-op when monolithic. Single-threaded context only.
  void fold_tallies() const noexcept;

  FaultPlaneConfig config_;
  flux::Instance* instance_ = nullptr;
  sim::Simulation* sim_ = nullptr;
  bool sharded_ = false;
  util::Rng link_rng_;
  /// Sharded profile: one link stream per *sender* rank, consulted only
  /// from that rank's island thread. Per-sender draw order depends only on
  /// that rank's own route sequence, so it is invariant across shard
  /// counts (the single shared stream would be ordered by thread timing).
  std::vector<util::Rng> link_rngs_;
  std::vector<NodeState> nodes_;  ///< indexed by rank
  std::map<const hwsim::Node*, std::size_t> by_node_;
  /// The authoritative tallies (benches read this struct directly).
  /// Sharded profile: a fold of island_tallies_, refreshed at barriers.
  mutable FaultCounters counters_;
  std::vector<IslandCounters> island_tallies_;
  std::uint64_t barrier_hook_ = 0;
  /// Registry mirror of counters_, registered in the root broker's registry
  /// at attach() so injected-fault denominators ride the `power.metrics`
  /// aggregation. Null until attached; increments are mirrored 1:1.
  struct {
    obs::Counter* msgs_dropped = nullptr;
    obs::Counter* msgs_blackholed = nullptr;
    obs::Counter* msgs_duplicated = nullptr;
    obs::Counter* msgs_delayed = nullptr;
    obs::Counter* node_crashes = nullptr;
    obs::Counter* node_reboots = nullptr;
    obs::Counter* sensor_dropouts = nullptr;
    obs::Counter* sensor_stuck_sweeps = nullptr;
    obs::Counter* cap_write_failures = nullptr;
  } mirror_;
};

}  // namespace fluxpower::faultsim
