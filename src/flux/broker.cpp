#include "flux/broker.hpp"

#include <array>
#include <stdexcept>

#include "flux/instance.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace fluxpower::flux {

namespace {
/// RPC latency buckets: from a single TBON hop (sub-millisecond) up to the
/// 10 s subtree-aggregation timeout. Exactly Histogram::kMaxBuckets bounds.
constexpr std::array<double, 16> kRpcLatencyBounds = {
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
}  // namespace

Broker::Broker(Instance& instance, Rank rank, hwsim::Node* node)
    : instance_(instance), rank_(rank), node_(node) {
  sent_ = &metrics_.counter("fluxpower_broker_messages_sent_total",
                            "Messages sent by this broker");
  received_ = &metrics_.counter("fluxpower_broker_messages_received_total",
                                "Messages delivered to this broker");
  rpc_timeouts_ =
      &metrics_.counter("fluxpower_broker_rpc_timeouts_total",
                        "RPCs that synthesized ETIMEDOUT before a response");
  late_responses_ = &metrics_.counter(
      "fluxpower_broker_rpc_late_responses_total",
      "Responses that arrived after their RPC already timed out");
  events_published_ = &metrics_.counter(
      "fluxpower_broker_events_published_total",
      "Events broadcast from this broker");
  rpc_latency_ = &metrics_.histogram(
      "fluxpower_broker_rpc_latency_seconds",
      "Round-trip latency of completed RPCs issued by this broker",
      kRpcLatencyBounds);
}

Broker::~Broker() {
  // Unload in reverse load order so dependent modules tear down first.
  while (!modules_.empty()) {
    modules_.back()->unload();
    modules_.pop_back();
  }
}

sim::Simulation& Broker::sim() { return instance_.sim_for(rank_); }

void Broker::register_service(const std::string& topic,
                              ServiceHandler handler) {
  if (!handler) {
    throw std::invalid_argument("Broker::register_service: null handler");
  }
  if (services_.contains(topic)) {
    throw std::invalid_argument("Broker::register_service: topic '" + topic +
                                "' already registered");
  }
  services_[topic] = std::move(handler);
}

void Broker::unregister_service(const std::string& topic) {
  services_.erase(topic);
}

bool Broker::has_service(const std::string& topic) const {
  return services_.contains(topic);
}

std::uint64_t Broker::rpc(Rank dest, const std::string& topic,
                          util::Json payload, ResponseHandler on_response,
                          double timeout_s) {
  Message msg;
  msg.type = Message::Type::Request;
  msg.topic = topic;
  msg.sender = rank_;
  msg.dest = dest;
  msg.matchtag = next_matchtag_++;
  msg.userid = userid_;
  msg.payload = std::move(payload);
  if (on_response) {
    PendingRpc pending;
    pending.handler = std::move(on_response);
    pending.sent_at = sim().now();
    if (obs::TraceSink& tr = obs::process_trace(); tr.enabled()) {
      pending.topic = tr.intern(topic);
    }
    if (timeout_s > 0.0) {
      const std::uint64_t tag = msg.matchtag;
      const std::string saved_topic = topic;
      pending.timeout_event =
          sim().schedule_after(timeout_s, [this, tag, dest, saved_topic] {
            auto it = pending_rpcs_.find(tag);
            if (it == pending_rpcs_.end()) return;  // answered in time
            ResponseHandler handler = std::move(it->second.handler);
            const char* span_topic = it->second.topic;
            pending_rpcs_.erase(it);
            timed_out_tags_.insert(tag);
            if (timed_out_tags_.size() > kTimedOutTagCap) {
              timed_out_tags_.erase(timed_out_tags_.begin());
            }
            rpc_timeouts_->inc();
            if (obs::TraceSink& tr = obs::process_trace();
                tr.enabled() && span_topic != nullptr) {
              tr.instant(sim().now(), span_topic, "rpc-timeout", rank_);
            }
            Message timeout;
            timeout.type = Message::Type::Response;
            timeout.topic = saved_topic;
            timeout.sender = dest;
            timeout.dest = rank_;
            timeout.matchtag = tag;
            timeout.errnum = kETimedout;
            timeout.error_text = "RPC timed out";
            handler(timeout);
          });
    }
    pending_rpcs_[msg.matchtag] = std::move(pending);
  }
  sent_->inc();
  instance_.route(std::move(msg));
  return msg.matchtag;
}

void Broker::send_request(Rank dest, const std::string& topic,
                          util::Json payload) {
  rpc(dest, topic, std::move(payload), nullptr);
}

void Broker::respond(const Message& request, util::Json payload) {
  Message msg;
  msg.type = Message::Type::Response;
  msg.topic = request.topic;
  msg.sender = rank_;
  msg.dest = request.sender;
  msg.matchtag = request.matchtag;
  msg.payload = std::move(payload);
  sent_->inc();
  instance_.route(std::move(msg));
}

void Broker::respond_telemetry(const Message& request, util::Json meta,
                               std::shared_ptr<const TelemetryBatch> batch) {
  Message msg;
  msg.type = Message::Type::Response;
  msg.topic = request.topic;
  msg.sender = rank_;
  msg.dest = request.sender;
  msg.matchtag = request.matchtag;
  msg.payload = std::move(meta);
  msg.telemetry = std::move(batch);
  sent_->inc();
  instance_.route(std::move(msg));
}

void Broker::respond_error(const Message& request, int errnum,
                           std::string text) {
  Message msg;
  msg.type = Message::Type::Response;
  msg.topic = request.topic;
  msg.sender = rank_;
  msg.dest = request.sender;
  msg.matchtag = request.matchtag;
  msg.errnum = errnum;
  msg.error_text = std::move(text);
  sent_->inc();
  instance_.route(std::move(msg));
}

void Broker::publish_event(const std::string& topic, util::Json payload) {
  Message msg;
  msg.type = Message::Type::Event;
  msg.topic = topic;
  msg.sender = rank_;
  msg.dest = -1;
  msg.payload = std::move(payload);
  sent_->inc();
  events_published_->inc();
  instance_.route(std::move(msg));
}

std::uint64_t Broker::subscribe_event(const std::string& topic,
                                      EventHandler handler) {
  if (!handler) {
    throw std::invalid_argument("Broker::subscribe_event: null handler");
  }
  const std::uint64_t id = next_subscription_++;
  subscriptions_[id] = Subscription{topic, std::move(handler)};
  return id;
}

void Broker::unsubscribe_event(std::uint64_t id) { subscriptions_.erase(id); }

void Broker::load_module(std::shared_ptr<Module> module) {
  if (!module) throw std::invalid_argument("Broker::load_module: null module");
  for (const auto& m : modules_) {
    if (std::string_view(m->name()) == module->name()) {
      throw std::invalid_argument(std::string("Broker::load_module: '") +
                                  module->name() + "' already loaded");
    }
  }
  modules_.push_back(module);
  module->load(*this);
}

void Broker::unload_module(const std::string& name) {
  for (auto it = modules_.begin(); it != modules_.end(); ++it) {
    if (name == (*it)->name()) {
      (*it)->unload();
      modules_.erase(it);
      return;
    }
  }
}

Module* Broker::find_module(const std::string& name) {
  for (const auto& m : modules_) {
    if (name == m->name()) return m.get();
  }
  return nullptr;
}

void Broker::deliver(const Message& msg) {
  received_->inc();
  switch (msg.type) {
    case Message::Type::Request: {
      auto it = services_.find(msg.topic);
      if (it == services_.end()) {
        respond_error(msg, kENosys, "no service registered for " + msg.topic);
        return;
      }
      it->second(msg);
      return;
    }
    case Message::Type::Response: {
      auto it = pending_rpcs_.find(msg.matchtag);
      if (it == pending_rpcs_.end()) {
        // A response arriving after its timeout already synthesized
        // ETIMEDOUT is expected under degraded links: count it silently.
        // The matchtag was erased from pending_rpcs_ when the timeout
        // fired, and tags are never reused, so it cannot be misdelivered
        // to a newer handler.
        if (auto late = timed_out_tags_.find(msg.matchtag);
            late != timed_out_tags_.end()) {
          late_responses_->inc();
          timed_out_tags_.erase(late);
          return;
        }
        // Fire-and-forget request or a caller without a handler. Error
        // responses still get logged so misrouted RPCs are visible.
        if (msg.is_error()) {
          util::log_warning("broker " + std::to_string(rank_) +
                            ": unmatched error response on " + msg.topic +
                            ": " + msg.error_text);
        }
        return;
      }
      PendingRpc pending = std::move(it->second);
      pending_rpcs_.erase(it);
      if (pending.timeout_event != sim::kInvalidEvent) {
        sim().cancel(pending.timeout_event);
      }
      const double latency = sim().now() - pending.sent_at;
      rpc_latency_->observe(latency);
      if (obs::TraceSink& tr = obs::process_trace();
          tr.enabled() && pending.topic != nullptr) {
        tr.complete(pending.sent_at, latency, pending.topic, "rpc", rank_);
      }
      pending.handler(msg);
      return;
    }
    case Message::Type::Event: {
      // Iterate over a copy: handlers may (un)subscribe during delivery.
      std::vector<EventHandler> matched;
      for (const auto& [id, sub] : subscriptions_) {
        const bool prefix_sub = !sub.topic.empty() && sub.topic.back() == '.';
        const bool match =
            prefix_sub ? msg.topic.compare(0, sub.topic.size(), sub.topic) == 0
                       : msg.topic == sub.topic;
        if (match) matched.push_back(sub.handler);
      }
      for (auto& handler : matched) handler(msg);
      return;
    }
  }
}

}  // namespace fluxpower::flux
