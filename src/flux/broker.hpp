// broker.hpp — the per-node flux-broker daemon.
//
// One broker runs on each node of an instance; brokers form the TBON and
// exchange messages with per-hop latency. A broker offers:
//   * a service registry: topic string -> request handler;
//   * RPC with matchtag correlation and response callbacks;
//   * event pub/sub broadcast across the instance;
//   * module load/unload.
// All communication goes through Instance::route(), never direct function
// calls between brokers, preserving the paper's "modules interact with Flux
// exclusively via messages" contract.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "flux/message.hpp"
#include "flux/module.hpp"
#include "hwsim/node.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::flux {

class Instance;

/// Handles an incoming request; must eventually respond via
/// Broker::respond or respond_error (fire-and-forget requests may skip it).
using ServiceHandler = std::function<void(const Message&)>;

/// Receives the response to an RPC.
using ResponseHandler = std::function<void(const Message&)>;

/// Receives a broadcast event.
using EventHandler = std::function<void(const Message&)>;

class Broker {
 public:
  Broker(Instance& instance, Rank rank, hwsim::Node* node);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  Rank rank() const noexcept { return rank_; }
  bool is_root() const noexcept { return rank_ == kRootRank; }
  Instance& instance() noexcept { return instance_; }
  sim::Simulation& sim();

  /// The local node's hardware; null only in broker-level unit tests.
  hwsim::Node* node() noexcept { return node_; }

  // -- Services -------------------------------------------------------------

  void register_service(const std::string& topic, ServiceHandler handler);
  void unregister_service(const std::string& topic);
  bool has_service(const std::string& topic) const;

  // -- RPC ------------------------------------------------------------------

  /// Send a request to `dest`; `on_response` fires when the (possibly error)
  /// response arrives. Returns the matchtag. `timeout_s` > 0 arms a
  /// deadline: if no response arrived by then, the handler fires once with
  /// a synthesized ETIMEDOUT error response and any late real response is
  /// dropped — so aggregations over many node-agents cannot hang on a dead
  /// broker.
  std::uint64_t rpc(Rank dest, const std::string& topic, util::Json payload,
                    ResponseHandler on_response, double timeout_s = 0.0);

  /// Credential attached to requests sent from this broker (default:
  /// instance owner). User-level clients set their own id; owner-only
  /// services check it via Broker::request_is_owner.
  void set_userid(UserId userid) noexcept { userid_ = userid; }
  UserId userid() const noexcept { return userid_; }
  static bool request_is_owner(const Message& req) {
    return req.userid == kOwnerUserid;
  }

  /// Fire-and-forget request (no response expected).
  void send_request(Rank dest, const std::string& topic, util::Json payload);

  void respond(const Message& request, util::Json payload);
  /// Respond with a typed telemetry batch plus JSON meta keys. The batch
  /// travels by pointer through the TBON; the codec renders it to the
  /// legacy JSON shape if the message ever hits the wire boundary.
  void respond_telemetry(const Message& request, util::Json meta,
                         std::shared_ptr<const TelemetryBatch> batch);
  void respond_error(const Message& request, int errnum, std::string text);

  // -- Events ---------------------------------------------------------------

  /// Broadcast an event to every broker in the instance (including self).
  void publish_event(const std::string& topic, util::Json payload);

  /// Subscribe to events matching `topic` exactly, or by prefix when the
  /// topic ends in '.' (Flux's subscription-glob convention). Returns an id
  /// for unsubscribe.
  std::uint64_t subscribe_event(const std::string& topic, EventHandler handler);
  void unsubscribe_event(std::uint64_t id);

  // -- Modules --------------------------------------------------------------

  void load_module(std::shared_ptr<Module> module);
  void unload_module(const std::string& name);
  Module* find_module(const std::string& name);

  /// Messages delivered by the instance router.
  void deliver(const Message& msg);

  /// Counters for overhead/traffic accounting (micro benches, tests).
  /// Backed by this broker's metrics registry — the same values surface in
  /// the `power.metrics` exposition as fluxpower_broker_*_total.
  std::uint64_t messages_sent() const noexcept { return sent_->value(); }
  std::uint64_t messages_received() const noexcept {
    return received_->value();
  }

  /// RPCs whose handler has not yet fired (neither response nor timeout).
  /// Chaos tests assert this drains to zero — no leaked pending state.
  std::size_t pending_rpc_count() const noexcept {
    return pending_rpcs_.size();
  }

  /// Responses that arrived after their RPC's timeout already synthesized
  /// ETIMEDOUT. Matchtags are never reused, so a late response can only be
  /// dropped — it must never reach a newer handler.
  std::uint64_t late_responses() const noexcept {
    return late_responses_->value();
  }

  /// Per-broker (= per-node) metrics registry. Modules loaded on this
  /// broker register their instruments here; the monitor's `power.metrics`
  /// service aggregates every broker's registry over the TBON.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

 private:
  friend class Instance;

  Instance& instance_;
  Rank rank_;
  hwsim::Node* node_;
  /// Declared before the Counter*/Histogram* members below: they point into
  /// this registry and are bound in the constructor.
  obs::MetricsRegistry metrics_;
  std::map<std::string, ServiceHandler> services_;
  struct PendingRpc {
    ResponseHandler handler;
    sim::EventId timeout_event = sim::kInvalidEvent;
    double sent_at = 0.0;
    /// Interned topic for the trace span; set only while tracing is on.
    const char* topic = nullptr;
  };
  std::map<std::uint64_t, PendingRpc> pending_rpcs_;
  /// Matchtags whose timeout fired before the real response arrived.
  /// Bounded: oldest entries are dropped past kTimedOutTagCap — tags are
  /// monotonically increasing, so the set's minimum is always the oldest.
  static constexpr std::size_t kTimedOutTagCap = 1024;
  std::set<std::uint64_t> timed_out_tags_;
  UserId userid_ = kOwnerUserid;
  struct Subscription {
    std::string topic;
    EventHandler handler;
  };
  std::map<std::uint64_t, Subscription> subscriptions_;
  std::vector<std::shared_ptr<Module>> modules_;
  std::uint64_t next_matchtag_ = 1;
  std::uint64_t next_subscription_ = 1;
  // Hot-path instrument handles into metrics_ (bound once, O(1) updates).
  obs::Counter* sent_ = nullptr;
  obs::Counter* received_ = nullptr;
  obs::Counter* rpc_timeouts_ = nullptr;
  obs::Counter* late_responses_ = nullptr;
  obs::Counter* events_published_ = nullptr;
  obs::Histogram* rpc_latency_ = nullptr;
};

}  // namespace fluxpower::flux
