#include "flux/codec.hpp"

#include <cctype>
#include <stdexcept>

#include "flux/telemetry.hpp"
#include "util/json.hpp"

namespace fluxpower::flux {

namespace {

const char* type_name(Message::Type type) {
  switch (type) {
    case Message::Type::Request: return "request";
    case Message::Type::Response: return "response";
    case Message::Type::Event: return "event";
  }
  return "unknown";
}

Message::Type type_from_name(const std::string& name) {
  if (name == "request") return Message::Type::Request;
  if (name == "response") return Message::Type::Response;
  if (name == "event") return Message::Type::Event;
  throw std::invalid_argument("codec: unknown message type '" + name + "'");
}

}  // namespace

std::string encode_message(const Message& msg) {
  util::Json envelope = util::Json::object();
  envelope["type"] = type_name(msg.type);
  envelope["topic"] = msg.topic;
  envelope["sender"] = msg.sender;
  envelope["dest"] = msg.dest;
  envelope["matchtag"] = static_cast<std::int64_t>(msg.matchtag);
  envelope["userid"] = msg.userid;
  if (msg.errnum != 0) {
    envelope["errnum"] = msg.errnum;
    envelope["error_text"] = msg.error_text;
  }
  // Typed telemetry never crosses the wire: render it into the payload so
  // the encoded form is byte-identical to the JSON-everywhere protocol.
  envelope["payload"] = msg.telemetry
                            ? render_telemetry_payload(msg.payload, *msg.telemetry)
                            : msg.payload;
  return envelope.dump();
}

Message decode_message(std::string_view encoded) {
  util::Json envelope;
  try {
    envelope = util::Json::parse(encoded);
  } catch (const util::JsonError& e) {
    throw std::invalid_argument(std::string("codec: bad envelope: ") + e.what());
  }
  if (!envelope.is_object()) {
    throw std::invalid_argument("codec: envelope must be an object");
  }
  Message msg;
  msg.type = type_from_name(envelope.string_or("type", ""));
  msg.topic = envelope.string_or("topic", "");
  msg.sender = static_cast<Rank>(envelope.int_or("sender", -1));
  msg.dest = static_cast<Rank>(envelope.int_or("dest", -1));
  msg.matchtag = static_cast<std::uint64_t>(envelope.int_or("matchtag", 0));
  msg.userid = static_cast<UserId>(envelope.int_or("userid", kOwnerUserid));
  msg.errnum = static_cast<int>(envelope.int_or("errnum", 0));
  msg.error_text = envelope.string_or("error_text", "");
  if (envelope.contains("payload")) msg.payload = envelope.at("payload");
  if (msg.type != Message::Type::Event && msg.dest < 0) {
    throw std::invalid_argument("codec: request/response needs a dest rank");
  }
  return msg;
}

std::string frame(std::string_view encoded) {
  std::string out = std::to_string(encoded.size());
  out.push_back(':');
  out.append(encoded);
  out.push_back(',');
  return out;
}

std::vector<std::string> FrameReader::feed(std::string_view chunk) {
  buffer_.append(chunk);
  std::vector<std::string> frames;
  std::size_t pos = 0;
  while (true) {
    // Parse "<len>:".
    std::size_t cursor = pos;
    std::size_t len = 0;
    bool have_digit = false;
    while (cursor < buffer_.size() &&
           std::isdigit(static_cast<unsigned char>(buffer_[cursor]))) {
      len = len * 10 + static_cast<std::size_t>(buffer_[cursor] - '0');
      if (len > 64 * 1024 * 1024) {
        throw std::invalid_argument("codec: frame too large");
      }
      have_digit = true;
      ++cursor;
    }
    if (cursor >= buffer_.size()) break;  // length still incomplete
    if (!have_digit || buffer_[cursor] != ':') {
      throw std::invalid_argument("codec: malformed frame header");
    }
    ++cursor;  // consume ':'
    if (cursor + len + 1 > buffer_.size()) break;  // body incomplete
    if (buffer_[cursor + len] != ',') {
      throw std::invalid_argument("codec: missing frame terminator");
    }
    frames.push_back(buffer_.substr(cursor, len));
    pos = cursor + len + 1;
  }
  buffer_.erase(0, pos);
  return frames;
}

}  // namespace fluxpower::flux
