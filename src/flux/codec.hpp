// codec.hpp — wire encoding for the Flux message protocol (RFC 3 flavor).
//
// Inside one simulation, messages travel as in-memory structs. Anything
// that leaves the process — a remote site coordinator, a dashboard, a
// recorded message log — needs a byte encoding. Messages serialize to a
// JSON envelope; streams use length-prefixed frames so a TCP-style byte
// sequence can be cut back into messages regardless of how it was
// fragmented or coalesced in transit.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flux/message.hpp"

namespace fluxpower::flux {

/// Serialize a message to its JSON envelope (compact, single line).
std::string encode_message(const Message& msg);

/// Parse a JSON envelope back into a message. Throws std::invalid_argument
/// on malformed envelopes (bad JSON, missing/unknown type, bad ranks).
Message decode_message(std::string_view encoded);

/// Wrap an encoded message in a length-prefixed frame: "<n>:<payload>,"
/// (netstring framing: human-readable, self-delimiting, binary-safe).
std::string frame(std::string_view encoded);

/// Incremental frame extractor for a byte stream. Feed arbitrary chunks;
/// complete frames come out in order. Throws std::invalid_argument on
/// malformed framing (non-digit length, missing terminator), after which
/// the reader must be discarded.
class FrameReader {
 public:
  /// Append a chunk and return every frame completed by it.
  std::vector<std::string> feed(std::string_view chunk);

  /// Bytes buffered waiting for more input.
  std::size_t pending_bytes() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace fluxpower::flux
