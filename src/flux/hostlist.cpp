#include "flux/hostlist.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>

namespace fluxpower::flux {

namespace {

struct Suffix {
  long long value;
  int width;  ///< digits including leading zeros
  bool operator<(const Suffix& other) const {
    if (value != other.value) return value < other.value;
    return width < other.width;
  }
  bool operator==(const Suffix& other) const = default;
};

/// Split "node007" -> {"node", {7, 3}}. Returns false when there is no
/// numeric suffix.
bool split_host(const std::string& host, std::string& prefix, Suffix& suffix) {
  std::size_t digits = 0;
  while (digits < host.size() &&
         std::isdigit(static_cast<unsigned char>(host[host.size() - 1 - digits]))) {
    ++digits;
  }
  if (digits == 0 || digits > 18) return false;
  prefix = host.substr(0, host.size() - digits);
  const std::string num = host.substr(host.size() - digits);
  suffix.value = std::stoll(num);
  suffix.width = static_cast<int>(digits);
  return true;
}

std::string format_number(long long value, int width) {
  std::string s = std::to_string(value);
  while (static_cast<int>(s.size()) < width) s.insert(s.begin(), '0');
  return s;
}

}  // namespace

std::string hostlist_encode(const std::vector<std::string>& hostnames) {
  // Group by prefix in first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<Suffix>> groups;
  std::vector<std::pair<std::size_t, std::string>> literals;  // position, name

  for (std::size_t i = 0; i < hostnames.size(); ++i) {
    std::string prefix;
    Suffix suffix{};
    if (split_host(hostnames[i], prefix, suffix)) {
      if (!groups.contains(prefix)) order.push_back(prefix);
      groups[prefix].push_back(suffix);
    } else {
      // Literals are deduplicated like numeric suffixes (first appearance
      // wins) so encode() canonicalises the whole list, not just ranges.
      const bool seen =
          std::any_of(literals.begin(), literals.end(),
                      [&](const auto& l) { return l.second == hostnames[i]; });
      if (!seen) literals.emplace_back(i, hostnames[i]);
    }
  }

  std::string out;
  auto append = [&out](const std::string& piece) {
    if (!out.empty()) out += ',';
    out += piece;
  };

  for (const std::string& prefix : order) {
    auto& suffixes = groups[prefix];
    std::sort(suffixes.begin(), suffixes.end());
    suffixes.erase(std::unique(suffixes.begin(), suffixes.end()),
                   suffixes.end());
    // Build maximal consecutive runs (same width so padding round-trips).
    std::string body;
    std::size_t i = 0;
    while (i < suffixes.size()) {
      std::size_t j = i;
      while (j + 1 < suffixes.size() &&
             suffixes[j + 1].value == suffixes[j].value + 1 &&
             suffixes[j + 1].width == suffixes[i].width) {
        ++j;
      }
      if (!body.empty()) body += ',';
      if (j == i) {
        body += format_number(suffixes[i].value, suffixes[i].width);
      } else {
        body += format_number(suffixes[i].value, suffixes[i].width) + "-" +
                format_number(suffixes[j].value, suffixes[i].width);
      }
      i = j + 1;
    }
    if (suffixes.size() == 1 && body.find('-') == std::string::npos) {
      append(prefix + body);  // single host: no brackets
    } else {
      append(prefix + "[" + body + "]");
    }
  }
  for (const auto& [pos, name] : literals) append(name);
  return out;
}

std::vector<std::string> hostlist_decode(const std::string& encoded) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const std::size_t n = encoded.size();

  while (i < n) {
    // One component: prefix [bracket-expr]? up to a top-level comma.
    std::string prefix;
    while (i < n && encoded[i] != ',' && encoded[i] != '[') {
      prefix.push_back(encoded[i++]);
    }
    if (i < n && encoded[i] == '[') {
      ++i;  // consume '['
      std::string body;
      while (i < n && encoded[i] != ']') body.push_back(encoded[i++]);
      if (i >= n) throw std::invalid_argument("hostlist: unbalanced '['");
      ++i;  // consume ']'
      if (body.empty()) throw std::invalid_argument("hostlist: empty range");
      // Parse comma-separated numbers / ranges.
      std::size_t p = 0;
      while (p <= body.size()) {
        const std::size_t comma = std::min(body.find(',', p), body.size());
        const std::string item = body.substr(p, comma - p);
        if (item.empty()) throw std::invalid_argument("hostlist: empty item");
        const std::size_t dash = item.find('-');
        auto parse_num = [](const std::string& s) -> std::pair<long long, int> {
          if (s.empty() ||
              !std::all_of(s.begin(), s.end(), [](unsigned char c) {
                return std::isdigit(c);
              })) {
            throw std::invalid_argument("hostlist: bad number '" + s + "'");
          }
          return {std::stoll(s), static_cast<int>(s.size())};
        };
        if (dash == std::string::npos) {
          const auto [v, w] = parse_num(item);
          out.push_back(prefix + format_number(v, w));
        } else {
          const auto [lo, wlo] = parse_num(item.substr(0, dash));
          const auto [hi, whi] = parse_num(item.substr(dash + 1));
          if (hi < lo) throw std::invalid_argument("hostlist: reversed range");
          (void)whi;
          for (long long v = lo; v <= hi; ++v) {
            out.push_back(prefix + format_number(v, wlo));
          }
        }
        if (comma >= body.size()) break;
        p = comma + 1;
      }
    } else if (!prefix.empty()) {
      out.push_back(prefix);
    } else if (i < n && encoded[i] == ',') {
      throw std::invalid_argument("hostlist: empty component");
    }
    if (i < n) {
      if (encoded[i] != ',') {
        throw std::invalid_argument("hostlist: expected ',' after component");
      }
      ++i;
      if (i == n) throw std::invalid_argument("hostlist: trailing comma");
    }
  }
  return out;
}

}  // namespace fluxpower::flux
