// hostlist.hpp — compact hostname-range encoding (RFC 29 subset).
//
// Flux tooling renders node sets as bracketed ranges ("lassen[0-7,12]")
// instead of exhaustive lists; the monitor client and the CLI use this for
// job node lists. Supports encoding a list of hostnames that share a
// common alphabetic prefix + numeric suffix, and decoding the bracketed
// form back into hostnames. Numeric suffixes preserve zero-padding when
// uniform ("node[001-003]" -> node001..node003).
#pragma once

#include <string>
#include <vector>

namespace fluxpower::flux {

/// Encode hostnames into the compact range form. Hostnames that do not fit
/// the prefix+number pattern are emitted verbatim, comma-separated.
/// Encoding preserves first-appearance order of prefixes; numeric ranges
/// within a prefix are sorted ascending and deduplicated.
std::string hostlist_encode(const std::vector<std::string>& hostnames);

/// Expand a compact hostlist ("a[0-2,5],b3,c[07-09]") into hostnames.
/// Throws std::invalid_argument on malformed input (unbalanced brackets,
/// reversed ranges, empty components).
std::vector<std::string> hostlist_decode(const std::string& encoded);

}  // namespace fluxpower::flux
