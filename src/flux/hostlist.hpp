// hostlist.hpp — compact hostname-range encoding (RFC 29 subset).
//
// Flux tooling renders node sets as bracketed ranges ("lassen[0-7,12]")
// instead of exhaustive lists; the monitor client and the CLI use this for
// job node lists. Supports encoding a list of hostnames that share a
// common alphabetic prefix + numeric suffix, and decoding the bracketed
// form back into hostnames. Numeric suffixes preserve zero-padding when
// uniform ("node[001-003]" -> node001..node003).
#pragma once

#include <string>
#include <vector>

namespace fluxpower::flux {

/// Encode hostnames into the compact range form. The output is *canonical*:
/// two inputs naming the same host set (as a set — order and duplicates
/// ignored within each prefix group) encode to the same string.
///
/// Canonicalisation rules:
///  - Prefix groups appear in first-appearance order; within a group,
///    suffixes are sorted ascending and deduplicated, and maximal
///    consecutive same-width runs become "lo-hi" ranges.
///  - Zero-padding is part of a host's identity: "node07" and "node007"
///    are distinct hosts and are never merged into one range
///    ("n[9,010]" stays split because the widths differ).
///  - Hostnames with no numeric suffix — or with a suffix longer than 18
///    digits, which would overflow 64-bit range arithmetic — are emitted
///    verbatim after the grouped ranges, deduplicated, in first-appearance
///    order.
///
/// Idempotence contract with decode: for any input `hosts`,
///   hostlist_encode(hostlist_decode(hostlist_encode(hosts)))
///     == hostlist_encode(hosts)
/// i.e. decode followed by encode is a fixed point on every encoder output.
std::string hostlist_encode(const std::vector<std::string>& hostnames);

/// Expand a compact hostlist ("a[0-2,5],b3,c[07-09]") into hostnames.
/// Range endpoints inherit the left endpoint's zero-padding width. Decoding
/// does not canonicalise: duplicates and ordering in `encoded` are
/// reproduced as-is (encode is the canonicalising direction).
/// Throws std::invalid_argument on malformed input (unbalanced brackets,
/// reversed ranges, empty components).
std::vector<std::string> hostlist_decode(const std::string& encoded);

}  // namespace fluxpower::flux
