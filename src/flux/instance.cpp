#include "flux/instance.hpp"

#include <stdexcept>

namespace fluxpower::flux {

Instance::Instance(sim::Simulation& sim, std::vector<hwsim::Node*> nodes,
                   InstanceConfig config)
    : sim_(&sim),
      config_(config),
      nodes_(std::move(nodes)),
      tbon_(static_cast<int>(nodes_.size()), config.tbon_fanout) {
  tallies_.resize(1);
  bootstrap();
}

Instance::Instance(sim::ShardedEngine& engine, std::vector<int> island_of_rank,
                   std::vector<hwsim::Node*> nodes, InstanceConfig config)
    : sim_(&engine.island(0)),
      engine_(&engine),
      island_(std::move(island_of_rank)),
      config_(config),
      nodes_(std::move(nodes)),
      tbon_(static_cast<int>(nodes_.size()), config.tbon_fanout) {
  if (island_.size() != nodes_.size()) {
    throw std::invalid_argument(
        "Instance: island map size must equal the node count");
  }
  if (!island_.empty() && island_[0] != 0) {
    throw std::invalid_argument("Instance: rank 0 must live on island 0");
  }
  for (int isl : island_) {
    if (isl < 0 || isl >= engine.islands()) {
      throw std::invalid_argument("Instance: island index out of range");
    }
  }
  tallies_.resize(static_cast<std::size_t>(engine.islands()));
  bootstrap();
}

void Instance::bootstrap() {
  if (nodes_.empty()) {
    throw std::invalid_argument("Instance: at least one node required");
  }
  brokers_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    brokers_.push_back(
        std::make_unique<Broker>(*this, static_cast<Rank>(i), nodes_[i]));
  }
  kvs_ = std::make_unique<Kvs>(*sim_);
  scheduler_ = std::make_unique<Scheduler>(*this);
  job_manager_ = std::make_unique<JobManager>(*this);
  job_manager_->register_services(root());
}

Instance::~Instance() = default;

Broker& Instance::broker(Rank rank) {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("Instance::broker: bad rank");
  }
  return *brokers_[static_cast<std::size_t>(rank)];
}

hwsim::Node* Instance::node(Rank rank) { return broker(rank).node(); }

bool Instance::pump_one() {
  return engine_ != nullptr ? engine_->pump_one() : sim_->step();
}

void Instance::deliver_leg(Broker* dest, double delay,
                           const std::shared_ptr<const Message>& shared,
                           int src_isl) {
  if (!sharded()) {
    sim_->schedule_after(delay, [dest, shared] { dest->deliver(*shared); });
    return;
  }
  // Sharded profile: the destination's down-state belongs to its island,
  // so the blackhole check runs at delivery time there — for local legs
  // too, keeping the semantics identical for every shard count.
  const int dest_isl = island_of(dest->rank());
  Instance* self = this;
  auto deliver = [self, dest, shared, dest_isl] {
    RouteFaultInjector* inj = self->fault_injector_;
    if (inj != nullptr && inj->delivery_blocked(dest->rank())) {
      ++self->tallies_[static_cast<std::size_t>(dest_isl)].dropped;
      return;
    }
    dest->deliver(*shared);
  };
  sim::Simulation& src_sim = engine_->island(src_isl);
  if (dest_isl == src_isl) {
    src_sim.schedule_after(delay, std::move(deliver));
  } else {
    engine_->post(src_isl, dest_isl, src_sim.now() + delay,
                  std::move(deliver));
  }
}

void Instance::route(Message msg) {
  const int src_isl = island_of(msg.sender);
  ++tallies_[static_cast<std::size_t>(src_isl)].routed;
  if (journal_ != nullptr) {
    if (sharded()) {
      std::lock_guard<std::mutex> lk(journal_mu_);
      journal_->record(engine_->island(src_isl).now(), msg);
    } else {
      journal_->record(sim_->now(), msg);
    }
  }
  const bool is_event = msg.type == Message::Type::Event;
  // One shared immutable copy per route call: delivery callbacks capture
  // {broker, pointer} — 16 bytes, inside the event pool's inline storage —
  // instead of a per-destination Message copy behind a heap-allocated
  // std::function. Broadcasts to N brokers share a single copy.
  const auto shared = std::make_shared<const Message>(std::move(msg));
  const Message& m = *shared;
  if (is_event) {
    // Events are broadcast over the tree from the publisher. Delivery
    // latency to a given broker is proportional to its hop distance. Each
    // broker leg is a distinct set of physical links, so the fault
    // injector rules on every leg independently.
    for (auto& b : brokers_) {
      const int hops = tbon_.hops(m.sender, b->rank());
      double delay = config_.hop_latency_s * hops;
      int copies = 1;
      if (fault_injector_ != nullptr) {
        const auto v = fault_injector_->on_route(m, b->rank());
        if (v.drop) {
          ++tallies_[static_cast<std::size_t>(src_isl)].dropped;
          continue;
        }
        delay += v.extra_delay_s;
        copies += v.duplicates;
      }
      Broker* dest = b.get();
      for (int c = 0; c < copies; ++c) {
        deliver_leg(dest, delay, shared, src_isl);
      }
    }
    return;
  }
  if (m.dest < 0 || m.dest >= size()) {
    throw std::invalid_argument("Instance::route: bad destination rank");
  }
  const int hops = tbon_.hops(m.sender, m.dest);
  double delay = config_.hop_latency_s * std::max(1, hops);
  int copies = 1;
  if (fault_injector_ != nullptr) {
    const auto v = fault_injector_->on_route(m, m.dest);
    if (v.drop) {
      ++tallies_[static_cast<std::size_t>(src_isl)].dropped;
      return;
    }
    delay += v.extra_delay_s;
    copies += v.duplicates;
  }
  Broker* dest = brokers_[static_cast<std::size_t>(m.dest)].get();
  for (int c = 0; c < copies; ++c) {
    deliver_leg(dest, delay, shared, src_isl);
  }
}

Instance& Instance::spawn_child(const std::vector<Rank>& ranks,
                                InstanceConfig config) {
  if (sharded()) {
    // A child instance's brokers would schedule on the parent's island
    // engines with a different TBON shape, breaking the cell partition
    // the conservative windows rely on.
    throw std::logic_error(
        "Instance::spawn_child: user-level instances are not supported on "
        "a sharded engine");
  }
  std::vector<hwsim::Node*> child_nodes;
  child_nodes.reserve(ranks.size());
  for (Rank r : ranks) {
    if (r < 0 || r >= size()) {
      throw std::out_of_range("Instance::spawn_child: bad rank");
    }
    child_nodes.push_back(nodes_[static_cast<std::size_t>(r)]);
  }
  children_.push_back(
      std::make_unique<Instance>(*sim_, std::move(child_nodes), config));
  return *children_.back();
}

}  // namespace fluxpower::flux
