#include "flux/instance.hpp"

#include <stdexcept>

namespace fluxpower::flux {

Instance::Instance(sim::Simulation& sim, std::vector<hwsim::Node*> nodes,
                   InstanceConfig config)
    : sim_(sim),
      config_(config),
      nodes_(std::move(nodes)),
      tbon_(static_cast<int>(nodes_.size()), config.tbon_fanout) {
  if (nodes_.empty()) {
    throw std::invalid_argument("Instance: at least one node required");
  }
  brokers_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    brokers_.push_back(
        std::make_unique<Broker>(*this, static_cast<Rank>(i), nodes_[i]));
  }
  kvs_ = std::make_unique<Kvs>(sim_);
  scheduler_ = std::make_unique<Scheduler>(*this);
  job_manager_ = std::make_unique<JobManager>(*this);
  job_manager_->register_services(root());
}

Instance::~Instance() = default;

Broker& Instance::broker(Rank rank) {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("Instance::broker: bad rank");
  }
  return *brokers_[static_cast<std::size_t>(rank)];
}

hwsim::Node* Instance::node(Rank rank) { return broker(rank).node(); }

void Instance::route(Message msg) {
  ++routed_;
  if (journal_ != nullptr) journal_->record(sim_.now(), msg);
  const bool is_event = msg.type == Message::Type::Event;
  // One shared immutable copy per route call: delivery callbacks capture
  // {broker, pointer} — 16 bytes, inside the event pool's inline storage —
  // instead of a per-destination Message copy behind a heap-allocated
  // std::function. Broadcasts to N brokers share a single copy.
  const auto shared = std::make_shared<const Message>(std::move(msg));
  const Message& m = *shared;
  if (is_event) {
    // Events are broadcast over the tree from the publisher. Delivery
    // latency to a given broker is proportional to its hop distance. Each
    // broker leg is a distinct set of physical links, so the fault
    // injector rules on every leg independently.
    for (auto& b : brokers_) {
      const int hops = tbon_.hops(m.sender, b->rank());
      double delay = config_.hop_latency_s * hops;
      int copies = 1;
      if (fault_injector_ != nullptr) {
        const auto v = fault_injector_->on_route(m, b->rank());
        if (v.drop) {
          ++dropped_;
          continue;
        }
        delay += v.extra_delay_s;
        copies += v.duplicates;
      }
      Broker* dest = b.get();
      for (int c = 0; c < copies; ++c) {
        sim_.schedule_after(delay, [dest, shared] { dest->deliver(*shared); });
      }
    }
    return;
  }
  if (m.dest < 0 || m.dest >= size()) {
    throw std::invalid_argument("Instance::route: bad destination rank");
  }
  const int hops = tbon_.hops(m.sender, m.dest);
  double delay = config_.hop_latency_s * std::max(1, hops);
  int copies = 1;
  if (fault_injector_ != nullptr) {
    const auto v = fault_injector_->on_route(m, m.dest);
    if (v.drop) {
      ++dropped_;
      return;
    }
    delay += v.extra_delay_s;
    copies += v.duplicates;
  }
  Broker* dest = brokers_[static_cast<std::size_t>(m.dest)].get();
  for (int c = 0; c < copies; ++c) {
    sim_.schedule_after(delay, [dest, shared] { dest->deliver(*shared); });
  }
}

Instance& Instance::spawn_child(const std::vector<Rank>& ranks,
                                InstanceConfig config) {
  std::vector<hwsim::Node*> child_nodes;
  child_nodes.reserve(ranks.size());
  for (Rank r : ranks) {
    if (r < 0 || r >= size()) {
      throw std::out_of_range("Instance::spawn_child: bad rank");
    }
    child_nodes.push_back(nodes_[static_cast<std::size_t>(r)]);
  }
  children_.push_back(
      std::make_unique<Instance>(sim_, std::move(child_nodes), config));
  return *children_.back();
}

}  // namespace fluxpower::flux
