// instance.hpp — a Flux instance: brokers + TBON + job management.
//
// A system-level instance manages all nodes of a cluster; user-level
// instances can be spawned on a subset of a parent's nodes, letting users
// run their own scheduling and power policies inside their allocation
// (§II-B). The instance owns the message router: all broker-to-broker
// traffic passes through route(), which charges per-hop TBON latency.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "flux/broker.hpp"
#include "flux/job_manager.hpp"
#include "flux/journal.hpp"
#include "flux/kvs.hpp"
#include "flux/message.hpp"
#include "flux/scheduler.hpp"
#include "flux/tbon.hpp"
#include "hwsim/node.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::flux {

struct InstanceConfig {
  int tbon_fanout = 2;
  /// One-way latency per TBON hop, seconds. Default 100 µs, typical for an
  /// EDR InfiniBand hop plus broker processing.
  double hop_latency_s = 100e-6;
};

/// Hook consulted for every routed message (and every per-broker leg of an
/// event broadcast). A fault plane implements this to model lossy TBON
/// links: drops, duplicates, and extra queueing delay. When no injector is
/// attached the router behaves exactly as before — no RNG is consulted.
class RouteFaultInjector {
 public:
  struct Verdict {
    bool drop = false;        ///< discard the message (leg) entirely
    int duplicates = 0;       ///< extra copies delivered after the original
    double extra_delay_s = 0; ///< added to the TBON hop latency
  };

  virtual ~RouteFaultInjector() = default;

  /// `dest` is the delivering broker's rank — for events it is the rank of
  /// each subscriber leg, for point-to-point traffic it equals msg.dest.
  virtual Verdict on_route(const Message& msg, Rank dest) = 0;

  /// Sharded execution profile only: ruled at *delivery* time, on the
  /// destination rank's island, after the message survived on_route. True
  /// discards the message (endpoint down). An injector that implements
  /// this must not also rule on the destination in on_route — under the
  /// profile the send side cannot read another island's down-state.
  virtual bool delivery_blocked(Rank /*dest*/) { return false; }
};

class Instance {
 public:
  /// Bootstrap an instance over the given nodes (element i becomes broker
  /// rank i). Nodes must outlive the instance.
  Instance(sim::Simulation& sim, std::vector<hwsim::Node*> nodes,
           InstanceConfig config = {});

  /// Sharded bootstrap: brokers are partitioned over the engine's islands
  /// by `island_of_rank` (size = node count; rank 0 must map to island 0,
  /// and the partition must follow TBON subtree cells so that no parent/
  /// child pair inside a cell is split). Each broker schedules on its
  /// island's Simulation; cross-island routes go through the engine's
  /// window-barrier mailboxes. The engine must outlive the instance.
  Instance(sim::ShardedEngine& engine, std::vector<int> island_of_rank,
           std::vector<hwsim::Node*> nodes, InstanceConfig config = {});
  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  /// The root (island 0) engine in sharded mode; the single engine else.
  sim::Simulation& sim() noexcept { return *sim_; }
  /// The engine `rank`'s broker and hardware node schedule on.
  sim::Simulation& sim_for(Rank rank) {
    return sharded() ? engine_->island(island_of(rank)) : *sim_;
  }
  bool sharded() const noexcept { return engine_ != nullptr; }
  sim::ShardedEngine* engine() noexcept { return engine_; }
  int island_of(Rank rank) const {
    return sharded() ? island_[static_cast<std::size_t>(rank)] : 0;
  }
  /// Execute one engine event (the globally earliest in sharded mode).
  /// Blocking client helpers pump through this instead of sim().step() so
  /// every island advances.
  bool pump_one();
  int size() const noexcept { return static_cast<int>(brokers_.size()); }
  const Tbon& tbon() const noexcept { return tbon_; }
  const InstanceConfig& config() const noexcept { return config_; }

  Broker& broker(Rank rank);
  Broker& root() { return broker(kRootRank); }
  hwsim::Node* node(Rank rank);

  JobManager& jobs() noexcept { return *job_manager_; }
  Scheduler& scheduler() noexcept { return *scheduler_; }
  Kvs& kvs() noexcept { return *kvs_; }

  /// Route a message to msg.dest (or broadcast an event to subscribers)
  /// with TBON hop latency. Called by brokers, not user code.
  void route(Message msg);

  /// Total messages routed (traffic accounting for overhead analysis).
  /// Sharded mode: summed over per-island tallies — read it only from a
  /// barrier or after the run, not concurrently with a window.
  std::uint64_t messages_routed() const noexcept {
    std::uint64_t n = 0;
    for (const RouteTally& t : tallies_) n += t.routed;
    return n;
  }

  /// Attach a traffic journal; every routed message is recorded with its
  /// send timestamp. Pass nullptr to detach. The journal must outlive the
  /// attachment.
  void attach_journal(MessageJournal* journal) noexcept { journal_ = journal; }

  /// Attach a fault injector consulted on every routed message; nullptr
  /// detaches. The injector must outlive the attachment.
  void set_fault_injector(RouteFaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }
  RouteFaultInjector* fault_injector() const noexcept {
    return fault_injector_;
  }

  /// Messages (or broadcast legs) discarded by the fault injector.
  std::uint64_t messages_dropped() const noexcept {
    std::uint64_t n = 0;
    for (const RouteTally& t : tallies_) n += t.dropped;
    return n;
  }

  /// Spawn a user-level child instance on a subset of this instance's
  /// ranks. The child gets its own brokers/scheduler/job-manager over the
  /// same physical nodes — the mechanism behind per-user policy
  /// customization. The parent keeps ownership.
  Instance& spawn_child(const std::vector<Rank>& ranks,
                        InstanceConfig config = {});
  const std::vector<std::unique_ptr<Instance>>& children() const {
    return children_;
  }

  /// Load a module on every broker (e.g. the power monitor's node agents).
  template <typename ModuleT, typename... Args>
  void load_module_on_all(Args&&... args) {
    for (auto& b : brokers_) {
      b->load_module(std::make_shared<ModuleT>(args...));
    }
  }

 private:
  /// Per-island routed/dropped counters, cache-line padded: each cell is
  /// written only by its island's worker thread.
  struct alignas(64) RouteTally {
    std::uint64_t routed = 0;
    std::uint64_t dropped = 0;
  };

  void bootstrap();
  void deliver_leg(Broker* dest, double delay,
                   const std::shared_ptr<const Message>& shared, int src_isl);

  sim::Simulation* sim_;  ///< island 0 in sharded mode
  sim::ShardedEngine* engine_ = nullptr;
  std::vector<int> island_;  ///< island of each rank (sharded mode only)
  InstanceConfig config_;
  std::vector<hwsim::Node*> nodes_;
  Tbon tbon_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::unique_ptr<Kvs> kvs_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<JobManager> job_manager_;
  std::vector<std::unique_ptr<Instance>> children_;
  MessageJournal* journal_ = nullptr;
  std::mutex journal_mu_;  ///< guards journal_ records in sharded mode
  RouteFaultInjector* fault_injector_ = nullptr;
  std::vector<RouteTally> tallies_;  ///< one per island (one when monolithic)
};

}  // namespace fluxpower::flux
