// instance.hpp — a Flux instance: brokers + TBON + job management.
//
// A system-level instance manages all nodes of a cluster; user-level
// instances can be spawned on a subset of a parent's nodes, letting users
// run their own scheduling and power policies inside their allocation
// (§II-B). The instance owns the message router: all broker-to-broker
// traffic passes through route(), which charges per-hop TBON latency.
#pragma once

#include <memory>
#include <vector>

#include "flux/broker.hpp"
#include "flux/job_manager.hpp"
#include "flux/journal.hpp"
#include "flux/kvs.hpp"
#include "flux/message.hpp"
#include "flux/scheduler.hpp"
#include "flux/tbon.hpp"
#include "hwsim/node.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::flux {

struct InstanceConfig {
  int tbon_fanout = 2;
  /// One-way latency per TBON hop, seconds. Default 100 µs, typical for an
  /// EDR InfiniBand hop plus broker processing.
  double hop_latency_s = 100e-6;
};

/// Hook consulted for every routed message (and every per-broker leg of an
/// event broadcast). A fault plane implements this to model lossy TBON
/// links: drops, duplicates, and extra queueing delay. When no injector is
/// attached the router behaves exactly as before — no RNG is consulted.
class RouteFaultInjector {
 public:
  struct Verdict {
    bool drop = false;        ///< discard the message (leg) entirely
    int duplicates = 0;       ///< extra copies delivered after the original
    double extra_delay_s = 0; ///< added to the TBON hop latency
  };

  virtual ~RouteFaultInjector() = default;

  /// `dest` is the delivering broker's rank — for events it is the rank of
  /// each subscriber leg, for point-to-point traffic it equals msg.dest.
  virtual Verdict on_route(const Message& msg, Rank dest) = 0;
};

class Instance {
 public:
  /// Bootstrap an instance over the given nodes (element i becomes broker
  /// rank i). Nodes must outlive the instance.
  Instance(sim::Simulation& sim, std::vector<hwsim::Node*> nodes,
           InstanceConfig config = {});
  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  sim::Simulation& sim() noexcept { return sim_; }
  int size() const noexcept { return static_cast<int>(brokers_.size()); }
  const Tbon& tbon() const noexcept { return tbon_; }
  const InstanceConfig& config() const noexcept { return config_; }

  Broker& broker(Rank rank);
  Broker& root() { return broker(kRootRank); }
  hwsim::Node* node(Rank rank);

  JobManager& jobs() noexcept { return *job_manager_; }
  Scheduler& scheduler() noexcept { return *scheduler_; }
  Kvs& kvs() noexcept { return *kvs_; }

  /// Route a message to msg.dest (or broadcast an event to subscribers)
  /// with TBON hop latency. Called by brokers, not user code.
  void route(Message msg);

  /// Total messages routed (traffic accounting for overhead analysis).
  std::uint64_t messages_routed() const noexcept { return routed_; }

  /// Attach a traffic journal; every routed message is recorded with its
  /// send timestamp. Pass nullptr to detach. The journal must outlive the
  /// attachment.
  void attach_journal(MessageJournal* journal) noexcept { journal_ = journal; }

  /// Attach a fault injector consulted on every routed message; nullptr
  /// detaches. The injector must outlive the attachment.
  void set_fault_injector(RouteFaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }
  RouteFaultInjector* fault_injector() const noexcept {
    return fault_injector_;
  }

  /// Messages (or broadcast legs) discarded by the fault injector.
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Spawn a user-level child instance on a subset of this instance's
  /// ranks. The child gets its own brokers/scheduler/job-manager over the
  /// same physical nodes — the mechanism behind per-user policy
  /// customization. The parent keeps ownership.
  Instance& spawn_child(const std::vector<Rank>& ranks,
                        InstanceConfig config = {});
  const std::vector<std::unique_ptr<Instance>>& children() const {
    return children_;
  }

  /// Load a module on every broker (e.g. the power monitor's node agents).
  template <typename ModuleT, typename... Args>
  void load_module_on_all(Args&&... args) {
    for (auto& b : brokers_) {
      b->load_module(std::make_shared<ModuleT>(args...));
    }
  }

 private:
  sim::Simulation& sim_;
  InstanceConfig config_;
  std::vector<hwsim::Node*> nodes_;
  Tbon tbon_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::unique_ptr<Kvs> kvs_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<JobManager> job_manager_;
  std::vector<std::unique_ptr<Instance>> children_;
  MessageJournal* journal_ = nullptr;
  RouteFaultInjector* fault_injector_ = nullptr;
  std::uint64_t routed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace fluxpower::flux
