#include "flux/job_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "flux/broker.hpp"
#include "flux/instance.hpp"
#include "util/log.hpp"

namespace fluxpower::flux {

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::Depend: return "DEPEND";
    case JobState::Sched: return "SCHED";
    case JobState::Run: return "RUN";
    case JobState::Cleanup: return "CLEANUP";
    case JobState::Inactive: return "INACTIVE";
  }
  return "UNKNOWN";
}

JobManager::JobManager(Instance& instance) : instance_(instance) {}

JobManager::~JobManager() = default;

JobId JobManager::submit(JobSpec spec) {
  if (spec.nnodes <= 0) {
    throw std::invalid_argument("JobManager::submit: nnodes must be positive");
  }
  if (spec.nnodes > instance_.size()) {
    throw std::invalid_argument(
        "JobManager::submit: job requests more nodes than the instance has");
  }
  const JobId id = next_id_++;
  Job job;
  job.id = id;
  job.spec = std::move(spec);
  job.state = JobState::Depend;
  job.t_submit = instance_.sim().now();
  jobs_[id] = job;

  instance_.kvs().eventlog_append("jobs." + std::to_string(id) + ".eventlog",
                                  "submit");
  publish_state_event(jobs_[id], "job.state-depend");

  // No dependency support in this subset: jobs move to SCHED immediately.
  jobs_[id].state = JobState::Sched;
  publish_state_event(jobs_[id], "job.state-sched");
  instance_.scheduler().enqueue(id);
  return id;
}

void JobManager::cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::out_of_range("JobManager::cancel: unknown job");
  }
  Job& job = it->second;
  switch (job.state) {
    case JobState::Depend:
    case JobState::Sched:
      instance_.scheduler().dequeue(id);
      job.state = JobState::Inactive;
      job.t_end = instance_.sim().now();
      publish_state_event(job, "job.state-inactive");
      return;
    case JobState::Run: {
      if (instance_.sharded()) {
        // The execution lives on the job's island; cancelling it from the
        // root would race with its worker thread mid-window.
        throw std::logic_error(
            "JobManager::cancel: cancelling a running job is not supported "
            "on a sharded engine");
      }
      auto exec = executions_.find(id);
      if (exec != executions_.end()) {
        exec->second->cancel();
        executions_.erase(exec);
      }
      finish_job(id);
      return;
    }
    case JobState::Cleanup:
    case JobState::Inactive:
      return;  // nothing to do
  }
}

const Job& JobManager::job(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::out_of_range("JobManager::job: unknown job");
  }
  return it->second;
}

std::vector<JobId> JobManager::jobs_in_state(JobState state) const {
  std::vector<JobId> out;
  for (const auto& [id, job] : jobs_) {
    if (job.state == state) out.push_back(id);
  }
  return out;
}

std::vector<JobId> JobManager::all_jobs() const {
  std::vector<JobId> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(id);
  return out;
}

int JobManager::running_count() const {
  int n = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::Run) ++n;
  }
  return n;
}

void JobManager::start_job(JobId id, std::vector<Rank> ranks) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::out_of_range("JobManager::start_job: unknown job");
  }
  Job& job = it->second;
  if (job.state != JobState::Sched) {
    throw std::logic_error("JobManager::start_job: job not in SCHED");
  }
  job.ranks = std::move(ranks);
  job.state = JobState::Run;
  job.t_start = instance_.sim().now();
  instance_.kvs().eventlog_append("jobs." + std::to_string(id) + ".eventlog",
                                  "start");
  publish_state_event(job, "job.state-run");

  if (!launcher_) {
    // Scheduler-only tests: complete immediately (zero-length job).
    finish_job(id);
    return;
  }
  auto execution = launcher_(job, instance_);
  if (!execution) {
    util::log_error("launcher returned no execution for job " +
                    std::to_string(id));
    finish_job(id);
    return;
  }
  JobExecution* raw = execution.get();
  executions_[id] = std::move(execution);
  if (!instance_.sharded()) {
    raw->start([this, id] {
      executions_.erase(id);
      finish_job(id);
    });
    return;
  }
  // Sharded profile: the execution runs on the job's island, so the
  // start command and the completion notification cross the island
  // boundary as engine posts charged the TBON hop latency (the exec
  // system's reliable channel — unlike routed messages these cannot be
  // dropped by a fault plane, so a faulty link can never hang a job).
  // Every post goes through the mailbox regardless of whether the two
  // islands coincide, keeping the schedule identical for every shard
  // count.
  sim::ShardedEngine& engine = *instance_.engine();
  const Rank first = job.ranks.front();
  const int job_isl = instance_.island_of(first);
  const double latency = instance_.config().hop_latency_s *
                         std::max(1, instance_.tbon().hops(kRootRank, first));
  Instance* inst = &instance_;
  engine.post(0, job_isl, instance_.sim().now() + latency,
              [this, inst, raw, id, job_isl, first] {
                raw->start([this, inst, id, job_isl, first] {
                  sim::ShardedEngine& eng = *inst->engine();
                  const double back =
                      inst->config().hop_latency_s *
                      std::max(1, inst->tbon().hops(first, kRootRank));
                  eng.post(job_isl, 0, eng.island(job_isl).now() + back,
                           [this, id] {
                             executions_.erase(id);
                             finish_job(id);
                           });
                });
              });
}

void JobManager::finish_job(JobId id) {
  Job& job = jobs_.at(id);
  job.state = JobState::Cleanup;
  publish_state_event(job, "job.state-cleanup");
  job.t_end = instance_.sim().now();
  job.state = JobState::Inactive;
  instance_.kvs().eventlog_append("jobs." + std::to_string(id) + ".eventlog",
                                  "finish");
  publish_state_event(job, "job.state-inactive");
  instance_.scheduler().release(job.id, job.ranks);
}

void JobManager::publish_state_event(const Job& job, const char* event) {
  util::Json payload = util::Json::object();
  payload["id"] = job.id;
  payload["name"] = job.spec.name;
  payload["app"] = job.spec.app;
  payload["nnodes"] = job.spec.nnodes;
  payload["userid"] = job.spec.userid;
  payload["state"] = job_state_name(job.state);
  util::Json ranks = util::Json::array();
  for (Rank r : job.ranks) ranks.push_back(r);
  payload["ranks"] = std::move(ranks);
  payload["t_submit"] = job.t_submit;
  if (job.t_start >= 0.0) payload["t_start"] = job.t_start;
  if (job.t_end >= 0.0) payload["t_end"] = job.t_end;
  // Surface the job's self-imposed power cap (if any) so state-aware
  // consumers (the power manager) can honor it without a KVS lookup. An
  // explicit jobspec cap wins; otherwise the installed scheduler policy may
  // derive one (eco-mode's tolerance-based self-cap) — legacy policies
  // return 0 and the payload is unchanged.
  double requested =
      job.spec.attributes.number_or("power_limit_w_per_node", 0.0);
  if (requested <= 0.0) {
    requested = instance_.scheduler().requested_node_power_w(job);
  }
  if (requested > 0.0) payload["power_limit_w_per_node"] = requested;
  instance_.root().publish_event(event, std::move(payload));
}

void JobManager::register_services(Broker& root) {
  root.register_service("job-info.lookup", [this, &root](const Message& req) {
    const JobId id =
        static_cast<JobId>(req.payload.int_or("id", static_cast<std::int64_t>(kInvalidJob)));
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      root.respond_error(req, kENoent, "unknown job id");
      return;
    }
    const Job& job = it->second;
    util::Json payload = util::Json::object();
    payload["id"] = job.id;
    payload["name"] = job.spec.name;
    payload["app"] = job.spec.app;
    payload["state"] = job_state_name(job.state);
    payload["nnodes"] = job.spec.nnodes;
    util::Json ranks = util::Json::array();
    for (Rank r : job.ranks) ranks.push_back(r);
    payload["ranks"] = std::move(ranks);
    payload["t_submit"] = job.t_submit;
    payload["t_start"] = job.t_start;
    payload["t_end"] = job.t_end;
    root.respond(req, std::move(payload));
  });

  // Resource administration: drain/undrain nodes from scheduling (owner
  // only) and a status readout. Drains let operators fence nodes whose
  // power capping misbehaves (§V) without killing running jobs.
  root.register_service("resource.drain", [this, &root](const Message& req) {
    if (!Broker::request_is_owner(req)) {
      root.respond_error(req, kEPerm, "drain requires owner credentials");
      return;
    }
    const auto rank = static_cast<Rank>(req.payload.int_or("rank", -1));
    if (rank < 0 || rank >= instance_.size()) {
      root.respond_error(req, kEInval, "bad rank");
      return;
    }
    instance_.scheduler().drain(rank);
    root.respond(req, util::Json::object());
  });
  root.register_service("resource.undrain", [this, &root](const Message& req) {
    if (!Broker::request_is_owner(req)) {
      root.respond_error(req, kEPerm, "undrain requires owner credentials");
      return;
    }
    const auto rank = static_cast<Rank>(req.payload.int_or("rank", -1));
    if (rank < 0 || rank >= instance_.size()) {
      root.respond_error(req, kEInval, "bad rank");
      return;
    }
    instance_.scheduler().undrain(rank);
    root.respond(req, util::Json::object());
  });
  root.register_service("resource.status", [this, &root](const Message& req) {
    util::Json payload = util::Json::object();
    payload["size"] = instance_.size();
    payload["free"] = instance_.scheduler().free_node_count();
    util::Json drained = util::Json::array();
    for (Rank r = 0; r < instance_.size(); ++r) {
      if (instance_.scheduler().drained(r)) drained.push_back(r);
    }
    payload["drained"] = std::move(drained);
    root.respond(req, std::move(payload));
  });

  root.register_service("job-manager.submit", [this, &root](const Message& req) {
    JobSpec spec;
    spec.name = req.payload.string_or("name", "job");
    spec.app = req.payload.string_or("app", "");
    spec.nnodes = static_cast<int>(req.payload.int_or("nnodes", 1));
    spec.tasks_per_node = static_cast<int>(req.payload.int_or("tasks_per_node", 1));
    try {
      const JobId id = submit(std::move(spec));
      util::Json payload = util::Json::object();
      payload["id"] = id;
      root.respond(req, std::move(payload));
    } catch (const std::exception& e) {
      root.respond_error(req, kEInval, e.what());
    }
  });
}

}  // namespace fluxpower::flux
