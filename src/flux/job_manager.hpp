// job_manager.hpp — job lifecycle management on the root broker.
//
// Tracks every job from submission to completion, drives the scheduler,
// launches executions through a pluggable launcher (the workload layer
// provides one that runs application models on the allocated nodes), and
// publishes `job.state-*` events that the power manager consumes to stay
// state-aware. Also answers `job-info.lookup` RPCs — the monitor client
// resolves a job id to its node list and time window through this service.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "flux/jobspec.hpp"
#include "flux/message.hpp"

namespace fluxpower::flux {

class Broker;
class Instance;
class Scheduler;

/// A running job's execution, provided by the launcher. start() begins the
/// run and must invoke `on_complete` exactly once when it finishes; cancel()
/// aborts early (on_complete is then not called).
class JobExecution {
 public:
  virtual ~JobExecution() = default;
  virtual void start(std::function<void()> on_complete) = 0;
  virtual void cancel() = 0;
};

using Launcher =
    std::function<std::unique_ptr<JobExecution>(const Job&, Instance&)>;

class JobManager {
 public:
  explicit JobManager(Instance& instance);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Install the execution launcher. Must be set before the first job
  /// reaches RUN; a null launcher makes jobs complete instantly (useful for
  /// scheduler-only tests).
  void set_launcher(Launcher launcher) { launcher_ = std::move(launcher); }

  JobId submit(JobSpec spec);

  /// Cancel a pending or running job.
  void cancel(JobId id);

  const Job& job(JobId id) const;
  bool has_job(JobId id) const noexcept { return jobs_.contains(id); }

  std::vector<JobId> jobs_in_state(JobState state) const;
  std::vector<JobId> all_jobs() const;
  int running_count() const;

  /// Next JobId to be assigned (twin codec: id allocation is sim state).
  JobId next_id() const noexcept { return next_id_; }

  /// Called by the scheduler when an allocation is granted.
  void start_job(JobId id, std::vector<Rank> ranks);

  /// Register the `job-info.lookup` and `job-manager.submit` services on the
  /// root broker (done automatically by Instance bootstrap).
  void register_services(Broker& root);

 private:
  void finish_job(JobId id);
  void publish_state_event(const Job& job, const char* event);

  Instance& instance_;
  Launcher launcher_;
  std::map<JobId, Job> jobs_;
  std::map<JobId, std::unique_ptr<JobExecution>> executions_;
  JobId next_id_ = 1;
};

}  // namespace fluxpower::flux
