// jobspec.hpp — job specification and job record.
//
// A jobspec names what to run and the resources wanted; the job record adds
// the lifecycle state the job-manager tracks (RFC 21 state machine subset:
// DEPEND → SCHED → RUN → CLEANUP → INACTIVE). The `app` field is an opaque
// string to this layer: anything launchable under a Flux job — MPI codes,
// Charm++ programs, Python workflows — is a valid payload (the paper's
// non-MPI support falls out of this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flux/message.hpp"
#include "sim/simulation.hpp"
#include "util/json.hpp"

namespace fluxpower::flux {

using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

struct JobSpec {
  std::string name;        ///< human-readable job name
  std::string app;         ///< application identifier (opaque to flux)
  int nnodes = 1;          ///< nodes requested
  int tasks_per_node = 1;  ///< MPI ranks / PEs per node
  UserId userid = kOwnerUserid;  ///< submitting user (energy accounting)
  util::Json attributes;   ///< free-form attributes (problem size, etc.)
};

enum class JobState { Depend, Sched, Run, Cleanup, Inactive };

const char* job_state_name(JobState state) noexcept;

struct Job {
  JobId id = kInvalidJob;
  JobSpec spec;
  JobState state = JobState::Depend;
  std::vector<Rank> ranks;  ///< allocated broker ranks (empty until RUN)
  sim::Time t_submit = 0.0;
  sim::Time t_start = -1.0;  ///< -1 until the job starts
  sim::Time t_end = -1.0;    ///< -1 until the job completes

  bool active() const noexcept { return state == JobState::Run; }
  bool done() const noexcept { return state == JobState::Inactive; }
  /// Wall-clock runtime; only valid once done().
  sim::Time runtime() const noexcept { return t_end - t_start; }
};

}  // namespace fluxpower::flux
