#include "flux/journal.hpp"

#include "flux/codec.hpp"
#include "util/json.hpp"

namespace fluxpower::flux {

void MessageJournal::record(double t_s, const Message& msg) {
  entries_.push(Entry{t_s, msg});
}

std::map<std::string, std::uint64_t> MessageJournal::topic_counts() const {
  std::map<std::string, std::uint64_t> counts;
  entries_.for_each([&](const Entry& e) { ++counts[e.msg.topic]; });
  return counts;
}

std::string MessageJournal::dump_wire() const {
  std::string out;
  entries_.for_each([&](const Entry& e) {
    // Augment the standard envelope with the capture timestamp.
    util::Json envelope = util::Json::parse(encode_message(e.msg));
    envelope["t"] = e.t_s;
    out += frame(envelope.dump());
  });
  return out;
}

}  // namespace fluxpower::flux
