// journal.hpp — message traffic capture.
//
// Debugging a distributed power-management framework means reading its
// message flow. A journal attached to an instance records every routed
// message with its timestamp into a bounded ring, offers per-topic traffic
// statistics (what the §IV-B overhead analysis needs to argue telemetry
// traffic is negligible), and dumps the capture as a codec-framed byte
// stream that tooling can parse offline.
#pragma once

#include <map>
#include <string>

#include "flux/message.hpp"
#include "sim/simulation.hpp"
#include "util/ring_buffer.hpp"

namespace fluxpower::flux {

class MessageJournal {
 public:
  struct Entry {
    double t_s = 0.0;
    Message msg;
  };

  explicit MessageJournal(std::size_t capacity = 100000)
      : entries_(capacity) {}

  void record(double t_s, const Message& msg);

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t total_recorded() const noexcept {
    return entries_.total_pushed();
  }
  const Entry& entry(std::size_t i) const { return entries_[i]; }

  /// Messages per topic over the retained window.
  std::map<std::string, std::uint64_t> topic_counts() const;

  /// Retained entries as a framed wire stream: each frame is the message
  /// envelope with an added "t" field. Parse with FrameReader +
  /// decode_message.
  std::string dump_wire() const;

  void clear() { entries_.clear(); }

 private:
  util::RingBuffer<Entry> entries_;
};

}  // namespace fluxpower::flux
