#include "flux/kvs.hpp"

namespace fluxpower::flux {

void Kvs::put(const std::string& key, util::Json value) {
  store_[key] = std::move(value);
}

std::optional<util::Json> Kvs::get(const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

bool Kvs::contains(const std::string& key) const {
  return store_.contains(key);
}

void Kvs::erase(const std::string& key) { store_.erase(key); }

void Kvs::eventlog_append(const std::string& key, const std::string& name,
                          util::Json context) {
  util::Json entry = util::Json::object();
  entry["timestamp"] = sim_.now();
  entry["name"] = name;
  entry["context"] = std::move(context);
  auto it = store_.find(key);
  if (it == store_.end()) {
    util::Json log = util::Json::array();
    log.push_back(std::move(entry));
    store_[key] = std::move(log);
  } else {
    it->second.push_back(std::move(entry));
  }
}

std::vector<util::Json> Kvs::eventlog(const std::string& key) const {
  auto it = store_.find(key);
  if (it == store_.end() || !it->second.is_array()) return {};
  return it->second.as_array();
}

std::vector<std::string> Kvs::keys_with_prefix(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace fluxpower::flux
