// kvs.hpp — key-value store with append-only eventlogs.
//
// Flux records job provenance in a KVS with per-job eventlogs; the monitor
// client and tests read job history from here. We model the root-held
// namespace with hierarchical dot-separated keys and RFC 18-style eventlog
// entries `{timestamp, name, context}`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "util/json.hpp"

namespace fluxpower::flux {

class Kvs {
 public:
  explicit Kvs(sim::Simulation& sim) : sim_(sim) {}

  void put(const std::string& key, util::Json value);
  std::optional<util::Json> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  void erase(const std::string& key);

  /// Append an entry to the eventlog at `key`. The entry is stamped with
  /// the current simulation time.
  void eventlog_append(const std::string& key, const std::string& name,
                       util::Json context = util::Json::object());

  /// All entries of an eventlog (empty if absent).
  std::vector<util::Json> eventlog(const std::string& key) const;

  /// Keys under a dot-separated prefix (e.g. "jobs.").
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  std::size_t size() const noexcept { return store_.size(); }

 private:
  sim::Simulation& sim_;
  std::map<std::string, util::Json> store_;
};

}  // namespace fluxpower::flux
