// message.hpp — the Flux message protocol (RFC 3 subset).
//
// Flux components communicate exclusively by exchanging messages over the
// tree-based overlay network. We model the three message classes the
// power-management modules use: request, response and event. Requests carry
// a matchtag that the response echoes so concurrent RPCs can be correlated,
// exactly as in the real protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/json.hpp"

namespace fluxpower::flux {

struct TelemetryBatch;

/// Broker rank within an instance; rank 0 is the TBON root.
using Rank = int;
inline constexpr Rank kRootRank = 0;

/// Error numbers carried by error responses (errno subset).
inline constexpr int kEProto = 71;     ///< malformed payload
inline constexpr int kENosys = 38;     ///< no such service
inline constexpr int kEPerm = 1;       ///< permission denied
inline constexpr int kEInval = 22;     ///< invalid argument
inline constexpr int kENoent = 2;      ///< no such object (job, key, ...)
inline constexpr int kETimedout = 110; ///< RPC deadline expired

/// Message credentials (RFC 3 userid/rolemask subset). The instance owner
/// holds kOwnerUserid; guest users get their own ids. Services that mutate
/// cluster state (power limits, config) are owner-only.
using UserId = int;
inline constexpr UserId kOwnerUserid = 0;
inline constexpr UserId kGuestUserid = 1000;

struct Message {
  enum class Type { Request, Response, Event };

  Type type = Type::Request;
  std::string topic;       ///< service topic, e.g. "power-monitor.get-data"
  Rank sender = -1;
  Rank dest = -1;          ///< events use -1 (broadcast)
  std::uint64_t matchtag = 0;
  int errnum = 0;          ///< responses only; 0 = success
  std::string error_text;  ///< human-readable error detail
  UserId userid = kOwnerUserid;  ///< credential of the requester
  util::Json payload;
  /// Typed-telemetry fast path: when set, the real payload is this batch
  /// plus the JSON `payload` as meta keys. Routing copies the pointer (one
  /// atomic increment per TBON hop, never the samples); the codec renders
  /// it into the JSON payload at the wire boundary so encoded messages are
  /// indistinguishable from the JSON-everywhere protocol. Only responses
  /// to requests that opted in (telemetry::wants_typed_telemetry) carry it.
  std::shared_ptr<const TelemetryBatch> telemetry;

  bool is_error() const noexcept { return errnum != 0; }
};

}  // namespace fluxpower::flux
