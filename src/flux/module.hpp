// module.hpp — broker module interface (RFC 5 subset).
//
// A module is a dynamically loaded broker plugin with its own thread of
// control that interacts with Flux exclusively via messages (§III). In the
// simulator a module's "thread" is the set of timers and message handlers
// it registers against its broker; load() installs them, unload() must tear
// them down. flux-power-monitor and flux-power-manager are both implemented
// as modules against this interface.
#pragma once

#include <string>

namespace fluxpower::flux {

class Broker;

class Module {
 public:
  virtual ~Module() = default;

  /// Stable module name used for lookup/unload (e.g. "power-monitor").
  virtual const char* name() const = 0;

  /// Called once when the broker loads the module. The broker reference
  /// stays valid until unload() returns.
  virtual void load(Broker& broker) = 0;

  /// Called when the module is removed; must cancel timers and services.
  virtual void unload() = 0;
};

}  // namespace fluxpower::flux
