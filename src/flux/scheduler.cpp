#include "flux/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "flux/instance.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::flux {

Scheduler::Scheduler(Instance& instance, Policy policy)
    : instance_(instance), policy_(policy) {
  busy_.assign(static_cast<std::size_t>(instance_.size()), false);
  drained_.assign(static_cast<std::size_t>(instance_.size()), false);
}

void Scheduler::drain(Rank rank) {
  if (rank >= 0 && static_cast<std::size_t>(rank) < drained_.size()) {
    drained_[static_cast<std::size_t>(rank)] = true;
  }
}

void Scheduler::undrain(Rank rank) {
  if (rank >= 0 && static_cast<std::size_t>(rank) < drained_.size()) {
    drained_[static_cast<std::size_t>(rank)] = false;
    kick();
  }
}

bool Scheduler::drained(Rank rank) const {
  return rank >= 0 && static_cast<std::size_t>(rank) < drained_.size() &&
         drained_[static_cast<std::size_t>(rank)];
}

int Scheduler::drained_count() const {
  return static_cast<int>(std::count(drained_.begin(), drained_.end(), true));
}

void Scheduler::enqueue(JobId id) {
  queue_.push_back(id);
  kick();
}

void Scheduler::dequeue(JobId id) {
  auto it = std::find(queue_.begin(), queue_.end(), id);
  if (it != queue_.end()) queue_.erase(it);
}

void Scheduler::release(JobId id, const std::vector<Rank>& ranks) {
  for (Rank r : ranks) {
    if (r >= 0 && static_cast<std::size_t>(r) < busy_.size()) {
      busy_[static_cast<std::size_t>(r)] = false;
    }
  }
  auto it = admitted_.find(id);
  if (it != admitted_.end()) {
    admitted_power_w_ -= it->second;
    admitted_.erase(it);
  }
  kick();
}

void Scheduler::set_power_budget(double cluster_bound_w, double node_peak_w) {
  cluster_bound_w_ = cluster_bound_w;
  node_peak_w_ = node_peak_w;
}

void Scheduler::set_cell_confinement(std::vector<std::vector<Rank>> cells) {
  for (const auto& cell : cells) {
    for (Rank r : cell) {
      if (r <= 0 || r >= instance_.size()) {
        throw std::invalid_argument(
            "Scheduler::set_cell_confinement: cell ranks must be in "
            "[1, size)");
      }
    }
  }
  cells_ = std::move(cells);
}

int Scheduler::max_cell_size() const noexcept {
  std::size_t widest = 0;
  for (const auto& cell : cells_) widest = std::max(widest, cell.size());
  return static_cast<int>(widest);
}

void Scheduler::set_deferred_kick(sim::Simulation& sim) { kick_sim_ = &sim; }

double Scheduler::job_power_estimate_w(const Job& job) const {
  const double per_node =
      job.spec.attributes.number_or("power_estimate_w_per_node", node_peak_w_);
  return per_node * job.spec.nnodes;
}

bool Scheduler::fits_power_budget(const Job& job) const {
  if (policy_ != Policy::PowerAware || cluster_bound_w_ <= 0.0) return true;
  const double estimate = job_power_estimate_w(job);
  // A job whose estimate alone exceeds the bound would wait forever;
  // admit it alone (it will be throttled by the power manager instead).
  if (estimate >= cluster_bound_w_) return admitted_.empty();
  return admitted_power_w_ + estimate <= cluster_bound_w_;
}

int Scheduler::free_node_count() const {
  int n = 0;
  for (std::size_t r = 0; r < busy_.size(); ++r) {
    if (!busy_[r] && !drained_[r]) ++n;
  }
  return n;
}

std::vector<Rank> Scheduler::try_allocate(int nnodes) {
  std::vector<Rank> ranks;
  if (!cells_.empty()) {
    // Cell-confined placement: first cell (in child order) with enough
    // free ranks wins; within the cell, take free ranks in subtree order.
    // Depends only on the cell layout and the busy/drain bits, never on
    // the island partition.
    for (const auto& cell : cells_) {
      ranks.clear();
      for (Rank r : cell) {
        if (static_cast<int>(ranks.size()) == nnodes) break;
        const auto i = static_cast<std::size_t>(r);
        if (!busy_[i] && !drained_[i]) ranks.push_back(r);
      }
      if (static_cast<int>(ranks.size()) == nnodes) {
        for (Rank r : ranks) busy_[static_cast<std::size_t>(r)] = true;
        return ranks;
      }
    }
    return {};
  }
  for (std::size_t r = 0;
       r < busy_.size() && static_cast<int>(ranks.size()) < nnodes; ++r) {
    if (!busy_[r] && !drained_[r]) ranks.push_back(static_cast<Rank>(r));
  }
  if (static_cast<int>(ranks.size()) < nnodes) return {};
  for (Rank r : ranks) busy_[static_cast<std::size_t>(r)] = true;
  return ranks;
}

bool Scheduler::start_one() {
  // FCFS / PowerAware: only the head job may start; a blocked head blocks
  // the queue (PowerAware adds the power-budget admission check).
  // EasyBackfill: jobs behind a blocked head may start when they fit in the
  // leftover nodes (conservative node-count backfill: without runtime
  // estimates a reservation-accurate EASY cannot be modelled).
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const JobId id = *it;
    const Job& job = instance_.jobs().job(id);
    if (!fits_power_budget(job)) {
      return false;  // head-of-line blocking on power, like on nodes
    }
    std::vector<Rank> ranks = try_allocate(job.spec.nnodes);
    if (ranks.empty()) {
      if (policy_ != Policy::EasyBackfill) return false;
      continue;  // backfill: consider later jobs
    }
    if (policy_ == Policy::PowerAware) {
      const double estimate = job_power_estimate_w(job);
      admitted_[id] = estimate;
      admitted_power_w_ += estimate;
    }
    queue_.erase(it);
    // start_job may re-enter enqueue()/release()/kick(); the guard in
    // kick() flattens that recursion and we return to restart the scan
    // with fresh iterators.
    instance_.jobs().start_job(id, std::move(ranks));
    return true;
  }
  return false;
}

void Scheduler::kick() {
  if (kicking_) {
    kick_requested_ = true;
    return;
  }
  if (kick_sim_ != nullptr) {
    // Deferred profile: coalesce every kick raised at this timestamp into
    // one zero-delay pass, so the placement decision sees all of them and
    // does not depend on which enqueue/release arrived first.
    if (!kick_scheduled_) {
      kick_scheduled_ = true;
      kick_sim_->schedule_after(0.0, [this] {
        kick_scheduled_ = false;
        kick_now();
      });
    }
    return;
  }
  kick_now();
}

void Scheduler::kick_now() {
  kicking_ = true;
  do {
    kick_requested_ = false;
    while (start_one()) {
    }
  } while (kick_requested_);
  kicking_ = false;
}

}  // namespace fluxpower::flux
