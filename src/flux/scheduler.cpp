#include "flux/scheduler.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "flux/instance.hpp"
#include "obs/metrics.hpp"
#include "policy/engine.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::flux {

namespace {
/// Queue-wait spans an immediate start (0) through long power-blocked waits.
constexpr std::array<double, 8> kQueueWaitBounds = {
    1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 1800.0, 7200.0};

const char* builtin_policy_name(Scheduler::Policy policy) noexcept {
  switch (policy) {
    case Scheduler::Policy::Fcfs: return "fcfs";
    case Scheduler::Policy::EasyBackfill: return "easy-backfill";
    case Scheduler::Policy::PowerAware: return "power-aware";
  }
  return "fcfs";
}
}  // namespace

Scheduler::Scheduler(Instance& instance, Policy policy)
    : instance_(instance), policy_(policy) {
  busy_.assign(static_cast<std::size_t>(instance_.size()), false);
  drained_.assign(static_cast<std::size_t>(instance_.size()), false);
  policy_obj_ =
      policy::PolicyEngine::global().make_sched(builtin_policy_name(policy));
}

Scheduler::~Scheduler() = default;

void Scheduler::set_policy(Policy policy) {
  policy_ = policy;
  policy_obj_ =
      policy::PolicyEngine::global().make_sched(builtin_policy_name(policy));
  kick_on_policy_change();
}

void Scheduler::set_policy_by_name(const std::string& name) {
  policy_obj_ = policy::PolicyEngine::global().make_sched(name);
  // Keep the legacy enum facade coherent for the built-ins; engine-only
  // policies leave it untouched (policy_name() is the authoritative view).
  if (name == "fcfs") {
    policy_ = Policy::Fcfs;
  } else if (name == "easy-backfill") {
    policy_ = Policy::EasyBackfill;
  } else if (name == "power-aware") {
    policy_ = Policy::PowerAware;
  }
  kick_on_policy_change();
}

void Scheduler::install_policy(std::unique_ptr<policy::SchedulerPolicy> p) {
  if (p == nullptr) {
    throw std::invalid_argument("Scheduler::install_policy: null policy");
  }
  policy_obj_ = std::move(p);
  kick_on_policy_change();
}

void Scheduler::kick_on_policy_change() {
  // A mid-run policy change must re-examine the queue: jobs inadmissible
  // under the old policy may start immediately under the new one. With an
  // empty queue this is a no-op (no event scheduled even under the
  // deferred-kick profile), so pre-run set_policy calls leave the event
  // sequence untouched.
  if (!queue_.empty()) kick();
}

void Scheduler::drain(Rank rank) {
  if (rank >= 0 && static_cast<std::size_t>(rank) < drained_.size()) {
    drained_[static_cast<std::size_t>(rank)] = true;
  }
}

void Scheduler::undrain(Rank rank) {
  if (rank >= 0 && static_cast<std::size_t>(rank) < drained_.size()) {
    drained_[static_cast<std::size_t>(rank)] = false;
    kick();
  }
}

bool Scheduler::drained(Rank rank) const {
  return rank >= 0 && static_cast<std::size_t>(rank) < drained_.size() &&
         drained_[static_cast<std::size_t>(rank)];
}

int Scheduler::drained_count() const {
  return static_cast<int>(std::count(drained_.begin(), drained_.end(), true));
}

void Scheduler::enqueue(JobId id) {
  queue_.push_back(id);
  kick();
}

void Scheduler::dequeue(JobId id) {
  auto it = std::find(queue_.begin(), queue_.end(), id);
  if (it != queue_.end()) queue_.erase(it);
}

void Scheduler::release(JobId id, const std::vector<Rank>& ranks) {
  for (Rank r : ranks) {
    if (r >= 0 && static_cast<std::size_t>(r) < busy_.size()) {
      busy_[static_cast<std::size_t>(r)] = false;
    }
  }
  auto it = admitted_.find(id);
  if (it != admitted_.end()) {
    admitted_power_w_ -= it->second;
    admitted_.erase(it);
  }
  kick();
}

void Scheduler::set_power_budget(double cluster_bound_w, double node_peak_w) {
  cluster_bound_w_ = cluster_bound_w;
  node_peak_w_ = node_peak_w;
}

void Scheduler::set_cell_confinement(std::vector<std::vector<Rank>> cells) {
  for (const auto& cell : cells) {
    for (Rank r : cell) {
      if (r <= 0 || r >= instance_.size()) {
        throw std::invalid_argument(
            "Scheduler::set_cell_confinement: cell ranks must be in "
            "[1, size)");
      }
    }
  }
  cells_ = std::move(cells);
}

int Scheduler::max_cell_size() const noexcept {
  std::size_t widest = 0;
  for (const auto& cell : cells_) widest = std::max(widest, cell.size());
  return static_cast<int>(widest);
}

void Scheduler::set_deferred_kick(sim::Simulation& sim) { kick_sim_ = &sim; }

policy::SchedView Scheduler::make_view() const {
  policy::SchedView view;
  view.now_s = instance_.sim().now();
  view.cluster_bound_w = cluster_bound_w_;
  view.node_peak_w = node_peak_w_;
  view.admitted_power_w = admitted_power_w_;
  view.admitted_jobs = admitted_.size();
  view.free_nodes = free_node_count();
  view.total_nodes = instance_.size();
  return view;
}

void Scheduler::bind_instruments() {
  if (decisions_total_ != nullptr) return;
  obs::MetricsRegistry& reg = instance_.root().metrics();
  decisions_total_ =
      &reg.counter("fluxpower_policy_sched_decisions_total",
                   "Admission verdicts issued during queue scans");
  starts_total_ = &reg.counter("fluxpower_policy_sched_starts_total",
                               "Queue-scan verdicts that started a job");
  holds_total_ =
      &reg.counter("fluxpower_policy_sched_holds_total",
                   "Queue-scan verdicts that head-of-line blocked the queue");
  skips_total_ =
      &reg.counter("fluxpower_policy_sched_skips_total",
                   "Queue-scan verdicts that passed over a job (backfill)");
  queue_wait_seconds_ =
      &reg.histogram("fluxpower_policy_sched_queue_wait_seconds",
                     "Sim-time wait from submission to start", kQueueWaitBounds);
}

int Scheduler::free_node_count() const {
  int n = 0;
  for (std::size_t r = 0; r < busy_.size(); ++r) {
    if (!busy_[r] && !drained_[r]) ++n;
  }
  return n;
}

std::vector<Rank> Scheduler::try_allocate(int nnodes) {
  std::vector<Rank> ranks;
  if (!cells_.empty()) {
    // Cell-confined placement: first cell (in child order) with enough
    // free ranks wins; within the cell, take free ranks in subtree order.
    // Depends only on the cell layout and the busy/drain bits, never on
    // the island partition.
    for (const auto& cell : cells_) {
      ranks.clear();
      for (Rank r : cell) {
        if (static_cast<int>(ranks.size()) == nnodes) break;
        const auto i = static_cast<std::size_t>(r);
        if (!busy_[i] && !drained_[i]) ranks.push_back(r);
      }
      if (static_cast<int>(ranks.size()) == nnodes) {
        for (Rank r : ranks) busy_[static_cast<std::size_t>(r)] = true;
        return ranks;
      }
    }
    return {};
  }
  for (std::size_t r = 0;
       r < busy_.size() && static_cast<int>(ranks.size()) < nnodes; ++r) {
    if (!busy_[r] && !drained_[r]) ranks.push_back(static_cast<Rank>(r));
  }
  if (static_cast<int>(ranks.size()) < nnodes) return {};
  for (Rank r : ranks) busy_[static_cast<std::size_t>(r)] = true;
  return ranks;
}

bool Scheduler::start_one() {
  // One policy verdict per queued job, in submission order. The installed
  // policy only sees the SchedView snapshot (the ledger cannot change
  // mid-scan: a started job ends the scan), and the scheduler commits the
  // admission charge — policies never touch the ledger directly.
  bind_instruments();
  const policy::SchedView view = make_view();
  const Job* blocked_head = nullptr;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const JobId id = *it;
    const Job& job = instance_.jobs().job(id);
    decisions_total_->inc();
    const policy::SchedHint hint = policy_obj_->admit(view, job, blocked_head);
    if (hint == policy::SchedHint::HoldQueue ||
        (hint == policy::SchedHint::SkipJob && !policy_obj_->backfill())) {
      holds_total_->inc();
      return false;  // head-of-line blocking on power, like on nodes
    }
    if (hint == policy::SchedHint::SkipJob) {
      skips_total_->inc();
      if (blocked_head == nullptr) blocked_head = &job;
      continue;  // backfill: consider later jobs
    }
    std::vector<Rank> ranks = try_allocate(job.spec.nnodes);
    if (ranks.empty()) {
      if (!policy_obj_->backfill()) {
        holds_total_->inc();
        return false;
      }
      skips_total_->inc();
      if (blocked_head == nullptr) blocked_head = &job;
      continue;  // backfill: consider later jobs
    }
    const double estimate = policy_obj_->admission_estimate_w(view, job);
    if (estimate > 0.0) {
      admitted_[id] = estimate;
      admitted_power_w_ += estimate;
    }
    starts_total_->inc();
    queue_wait_seconds_->observe(view.now_s - job.t_submit);
    queue_.erase(it);
    // start_job may re-enter enqueue()/release()/kick(); the guard in
    // kick() flattens that recursion and we return to restart the scan
    // with fresh iterators.
    instance_.jobs().start_job(id, std::move(ranks));
    return true;
  }
  return false;
}

void Scheduler::kick() {
  if (kicking_) {
    kick_requested_ = true;
    return;
  }
  if (kick_sim_ != nullptr) {
    // Deferred profile: coalesce every kick raised at this timestamp into
    // one zero-delay pass, so the placement decision sees all of them and
    // does not depend on which enqueue/release arrived first.
    if (!kick_scheduled_) {
      kick_scheduled_ = true;
      kick_sim_->schedule_after(0.0, [this] {
        kick_scheduled_ = false;
        kick_now();
      });
    }
    return;
  }
  kick_now();
}

void Scheduler::kick_now() {
  kicking_ = true;
  do {
    kick_requested_ = false;
    while (start_one()) {
    }
  } while (kick_requested_);
  kicking_ = false;
}

}  // namespace fluxpower::flux
