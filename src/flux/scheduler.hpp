// scheduler.hpp — node scheduler (FCFS, backfill, power-aware admission).
//
// First-come-first-served over whole nodes (the granularity every
// experiment in the paper uses). Jobs that cannot be placed wait in
// submission order; strict FCFS (no backfill) keeps makespan results easy
// to reason about, and matches "Flux schedules these jobs as any regular
// resource manager would" (§IV-E).
//
// Admission decisions are delegated to a pluggable policy::SchedulerPolicy
// (see src/policy/policy.hpp): one admit() verdict per queued job per scan,
// plus an optional charge against the admitted-power ledger. The legacy
// Policy enum (Fcfs, EasyBackfill, PowerAware) survives as a convenience
// facade over the built-in policies; set_policy_by_name() reaches every
// policy registered with the PolicyEngine, including:
//   * EasyBackfill — conservative node-count backfill (scheduling
//     ablation);
//   * PowerAware — hardware-overprovisioning admission control (the
//     paper's future-work direction, citing Patki et al. / Sakamoto et
//     al.): a job is only started when the cluster power bound can
//     accommodate its estimated peak draw on top of the already-admitted
//     jobs. Estimates come from the jobspec attribute
//     `power_estimate_w_per_node` (the node peak is assumed when absent).
//     Trades queueing delay for running every admitted job at full power
//     instead of throttling everyone proportionally;
//   * power-aware-easy / eco-mode — PAPERS.md additions, engine-only.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flux/jobspec.hpp"
#include "policy/policy.hpp"

namespace fluxpower::sim {
class Simulation;
}

namespace fluxpower::obs {
class Counter;
class Histogram;
}

namespace fluxpower::flux {

class Instance;

class Scheduler {
 public:
  enum class Policy { Fcfs, EasyBackfill, PowerAware };

  explicit Scheduler(Instance& instance, Policy policy = Policy::Fcfs);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  ~Scheduler();

  /// Install one of the legacy built-ins. A mid-run policy change kicks the
  /// queue (deferred-kick aware): queued jobs admissible under the new
  /// policy must not wait for the next enqueue/release.
  void set_policy(Policy policy);
  Policy policy() const noexcept { return policy_; }

  /// Install any policy registered with the PolicyEngine by name (e.g.
  /// "power-aware-easy", "eco-mode"). Throws std::invalid_argument on
  /// unknown names. Kicks the queue like set_policy.
  void set_policy_by_name(const std::string& name);
  /// Install a custom policy object (tests, out-of-tree policies).
  void install_policy(std::unique_ptr<policy::SchedulerPolicy> p);
  const char* policy_name() const noexcept { return policy_obj_->name(); }
  const policy::SchedulerPolicy& policy_object() const noexcept {
    return *policy_obj_;
  }

  /// Add a job to the wait queue and try to place it.
  void enqueue(JobId id);

  /// Remove a job from the wait queue (cancellation before start).
  void dequeue(JobId id);

  /// Release a finished job's nodes (and its power admission) and try to
  /// place waiting jobs.
  void release(JobId id, const std::vector<Rank>& ranks);

  /// Attempt to start queued jobs; called on submit and on release.
  void kick();

  int free_node_count() const;
  std::size_t queue_length() const noexcept { return queue_.size(); }

  /// Administratively remove a node from scheduling (e.g. §V: a node whose
  /// GPU power capping is unreliable). Running jobs are unaffected; the
  /// rank is skipped for new allocations until undrained.
  void drain(Rank rank);
  void undrain(Rank rank);
  bool drained(Rank rank) const;
  int drained_count() const;

  /// Power-aware admission parameters: the cluster power bound and the
  /// per-node peak assumed for jobs without an estimate. Only consulted
  /// by power-admission policies.
  void set_power_budget(double cluster_bound_w, double node_peak_w);
  /// Peak power currently admitted (sum of running-job estimates).
  double admitted_power_w() const noexcept { return admitted_power_w_; }
  /// Power-admission ledger: running job -> charged estimate (twin codec).
  const std::map<JobId, double>& admitted() const noexcept {
    return admitted_;
  }
  /// Wait-queue contents in scan order (twin codec).
  const std::deque<JobId>& queued_jobs() const noexcept { return queue_; }

  /// Self-cap the installed policy requests for `job` (eco-mode), 0 = none;
  /// consulted by the job manager when publishing job.state-run.
  double requested_node_power_w(const Job& job) const {
    return policy_obj_->requested_node_power_w(job);
  }

  /// Sharded execution profile: confine every allocation to one TBON cell
  /// (a root-child subtree, given in child order with ranks in BFS
  /// subtree order). A job is placed first-fit within the first cell that
  /// has enough free nodes; rank 0 belongs to no cell and is never
  /// allocated. Jobs wider than the widest cell are rejected at enqueue
  /// (they could never be placed). The rule only looks at cells — never
  /// at islands — so placement is identical for every shard count.
  void set_cell_confinement(std::vector<std::vector<Rank>> cells);
  bool cell_confined() const noexcept { return !cells_.empty(); }
  int max_cell_size() const noexcept;

  /// Sharded execution profile: coalesce kicks into one zero-delay event
  /// on `sim` instead of scheduling synchronously from enqueue/release.
  /// All same-timestamp releases then land before any placement decision,
  /// making the decision independent of their arrival order.
  void set_deferred_kick(sim::Simulation& sim);

 private:
  std::vector<Rank> try_allocate(int nnodes);
  bool start_one();
  void kick_now();
  policy::SchedView make_view() const;
  /// Kick the queue after a policy change; a no-op while the queue is
  /// empty so pre-run set_policy calls schedule no events (keeps the
  /// event sequence of every existing experiment byte-identical).
  void kick_on_policy_change();
  /// Lazily bind the per-policy decision instruments in the root broker's
  /// registry (root exists only after bootstrap; first scan is late
  /// enough, and the first-touch order is deterministic).
  void bind_instruments();

  Instance& instance_;
  Policy policy_;
  std::unique_ptr<policy::SchedulerPolicy> policy_obj_;
  std::deque<JobId> queue_;
  std::vector<bool> busy_;     ///< per-rank allocation bit
  std::vector<bool> drained_;  ///< per-rank admin drain bit
  bool kicking_ = false;
  bool kick_requested_ = false;
  std::vector<std::vector<Rank>> cells_;  ///< sharded profile placement cells
  sim::Simulation* kick_sim_ = nullptr;   ///< non-null: defer + coalesce kicks
  bool kick_scheduled_ = false;
  double cluster_bound_w_ = 0.0;  ///< 0 = no power admission control
  double node_peak_w_ = 3050.0;
  double admitted_power_w_ = 0.0;
  std::map<JobId, double> admitted_;  ///< running job -> power estimate
  // Decision instruments (root broker registry; null until first scan).
  obs::Counter* decisions_total_ = nullptr;
  obs::Counter* starts_total_ = nullptr;
  obs::Counter* holds_total_ = nullptr;
  obs::Counter* skips_total_ = nullptr;
  obs::Histogram* queue_wait_seconds_ = nullptr;
};

}  // namespace fluxpower::flux
