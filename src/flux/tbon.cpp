#include "flux/tbon.hpp"

#include <algorithm>
#include <stdexcept>

namespace fluxpower::flux {

Tbon::Tbon(int size, int fanout) : size_(size), fanout_(fanout) {
  if (size <= 0) throw std::invalid_argument("Tbon: size must be positive");
  if (fanout <= 0) throw std::invalid_argument("Tbon: fanout must be positive");
  parents_.resize(static_cast<std::size_t>(size));
  levels_.resize(static_cast<std::size_t>(size));
  parents_[0] = -1;
  levels_[0] = 0;
  for (Rank r = 1; r < size; ++r) {
    const Rank p = (r - 1) / fanout_;
    parents_[static_cast<std::size_t>(r)] = p;
    levels_[static_cast<std::size_t>(r)] = levels_[static_cast<std::size_t>(p)] + 1;
  }
}

void Tbon::check(Rank rank) const {
  if (rank < 0 || rank >= size_) {
    throw std::out_of_range("Tbon: rank out of range");
  }
}

Rank Tbon::parent(Rank rank) const {
  check(rank);
  return parents_[static_cast<std::size_t>(rank)];
}

std::vector<Rank> Tbon::children(Rank rank) const {
  check(rank);
  std::vector<Rank> out;
  for (int i = 1; i <= fanout_; ++i) {
    const Rank child = rank * fanout_ + i;
    if (child < size_) out.push_back(child);
  }
  return out;
}

int Tbon::level(Rank rank) const {
  check(rank);
  return levels_[static_cast<std::size_t>(rank)];
}

int Tbon::height() const {
  // Deepest rank is the last one in BFS order.
  return level(size_ - 1);
}

int Tbon::hops(Rank from, Rank to) const {
  check(from);
  check(to);
  // Walk both ranks up to their lowest common ancestor.
  int hops = 0;
  Rank a = from, b = to;
  int la = levels_[static_cast<std::size_t>(a)];
  int lb = levels_[static_cast<std::size_t>(b)];
  while (la > lb) {
    a = parents_[static_cast<std::size_t>(a)];
    --la;
    ++hops;
  }
  while (lb > la) {
    b = parents_[static_cast<std::size_t>(b)];
    --lb;
    ++hops;
  }
  while (a != b) {
    a = parents_[static_cast<std::size_t>(a)];
    b = parents_[static_cast<std::size_t>(b)];
    hops += 2;
  }
  return hops;
}

Rank Tbon::next_hop(Rank from, Rank to) const {
  check(from);
  check(to);
  if (from == to) return from;
  // If `to` lies in a child subtree of `from`, descend towards it,
  // otherwise go up.
  Rank cursor = to;
  while (cursor != kRootRank) {
    const Rank p = parent(cursor);
    if (p == from) return cursor;
    cursor = p;
  }
  // `to` is not below `from`; route upward.
  return parent(from);
}

std::vector<Rank> Tbon::subtree(Rank rank) const {
  check(rank);
  std::vector<Rank> out;
  std::vector<Rank> frontier{rank};
  while (!frontier.empty()) {
    const Rank r = frontier.back();
    frontier.pop_back();
    out.push_back(r);
    for (Rank c : children(r)) frontier.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fluxpower::flux
