#include "flux/tbon.hpp"

#include <algorithm>
#include <stdexcept>

namespace fluxpower::flux {

Tbon::Tbon(int size, int fanout) : size_(size), fanout_(fanout) {
  if (size <= 0) throw std::invalid_argument("Tbon: size must be positive");
  if (fanout <= 0) throw std::invalid_argument("Tbon: fanout must be positive");
}

void Tbon::check(Rank rank) const {
  if (rank < 0 || rank >= size_) {
    throw std::out_of_range("Tbon: rank out of range");
  }
}

Rank Tbon::parent(Rank rank) const {
  check(rank);
  if (rank == kRootRank) return -1;
  return (rank - 1) / fanout_;
}

std::vector<Rank> Tbon::children(Rank rank) const {
  check(rank);
  std::vector<Rank> out;
  for (int i = 1; i <= fanout_; ++i) {
    const Rank child = rank * fanout_ + i;
    if (child < size_) out.push_back(child);
  }
  return out;
}

int Tbon::level(Rank rank) const {
  check(rank);
  int depth = 0;
  while (rank != kRootRank) {
    rank = (rank - 1) / fanout_;
    ++depth;
  }
  return depth;
}

int Tbon::height() const {
  // Deepest rank is the last one in BFS order.
  return level(size_ - 1);
}

int Tbon::hops(Rank from, Rank to) const {
  check(from);
  check(to);
  // Walk both ranks up to their lowest common ancestor.
  int hops = 0;
  Rank a = from, b = to;
  int la = level(a), lb = level(b);
  while (la > lb) {
    a = parent(a);
    --la;
    ++hops;
  }
  while (lb > la) {
    b = parent(b);
    --lb;
    ++hops;
  }
  while (a != b) {
    a = parent(a);
    b = parent(b);
    hops += 2;
  }
  return hops;
}

Rank Tbon::next_hop(Rank from, Rank to) const {
  check(from);
  check(to);
  if (from == to) return from;
  // If `to` lies in a child subtree of `from`, descend towards it,
  // otherwise go up.
  Rank cursor = to;
  while (cursor != kRootRank) {
    const Rank p = parent(cursor);
    if (p == from) return cursor;
    cursor = p;
  }
  // `to` is not below `from`; route upward.
  return parent(from);
}

std::vector<Rank> Tbon::subtree(Rank rank) const {
  check(rank);
  std::vector<Rank> out;
  std::vector<Rank> frontier{rank};
  while (!frontier.empty()) {
    const Rank r = frontier.back();
    frontier.pop_back();
    out.push_back(r);
    for (Rank c : children(r)) frontier.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fluxpower::flux
