// tbon.hpp — tree-based overlay network topology.
//
// A Flux instance is a set of brokers forming a TBON with configurable
// fanout k. Messages between ranks are routed along tree edges; the
// simulator charges a fixed latency per hop, which makes telemetry
// aggregation latency scale with tree depth (O(log_k N)) exactly as the
// paper's scalability argument requires. Fanout is ablated in
// bench/micro_tbon.
#pragma once

#include <vector>

#include "flux/message.hpp"

namespace fluxpower::flux {

class Tbon {
 public:
  /// k-ary tree over ranks 0..size-1 in breadth-first order.
  Tbon(int size, int fanout = 2);

  int size() const noexcept { return size_; }
  int fanout() const noexcept { return fanout_; }

  /// Parent of `rank`; -1 for the root.
  Rank parent(Rank rank) const;

  std::vector<Rank> children(Rank rank) const;

  /// Depth of `rank` (root = 0).
  int level(Rank rank) const;

  /// Tree height: max level over all ranks.
  int height() const;

  /// Number of tree edges on the routing path between two ranks
  /// (up to the lowest common ancestor, then down).
  int hops(Rank from, Rank to) const;

  /// Next rank on the path from `from` towards `to`.
  Rank next_hop(Rank from, Rank to) const;

  /// All ranks in the subtree rooted at `rank` (including itself).
  std::vector<Rank> subtree(Rank rank) const;

 private:
  void check(Rank rank) const;
  int size_;
  int fanout_;
  // Per-rank parent/level tables, built once at construction: hops() sits
  // on the broadcast fan-out path (one call per destination broker per
  // event), where recomputing levels by repeated division dominated.
  std::vector<Rank> parents_;
  std::vector<int> levels_;
};

}  // namespace fluxpower::flux
