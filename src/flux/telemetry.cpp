#include "flux/telemetry.hpp"

#include "variorum/variorum.hpp"

namespace fluxpower::flux {

using util::Json;

Json render_telemetry_entry(const TelemetryNodeEntry& entry) {
  Json j = Json::object();
  j["hostname"] = entry.hostname;
  j["rank"] = entry.rank;
  j["complete"] = entry.complete;
  if (entry.errored) {
    j["samples"] = Json::array();
    j["error"] = entry.error;
    return j;
  }
  j["decimated"] = entry.decimated;
  Json samples = Json::array();
  for (const hwsim::PowerSample& s : entry.samples) {
    samples.push_back(variorum::render_node_power_json(s));
  }
  j["samples"] = std::move(samples);
  return j;
}

Json render_telemetry_payload(const Json& meta, const TelemetryBatch& batch) {
  if (batch.single_entry && batch.nodes.size() == 1) {
    return render_telemetry_entry(batch.nodes.front());
  }
  Json payload = meta.is_object() ? meta : Json::object();
  Json nodes = Json::array();
  for (const TelemetryNodeEntry& entry : batch.nodes) {
    nodes.push_back(render_telemetry_entry(entry));
  }
  payload["nodes"] = std::move(nodes);
  return payload;
}

TelemetryNodeEntry parse_telemetry_entry(const Json& entry) {
  TelemetryNodeEntry e;
  e.hostname = entry.string_or("hostname", "");
  e.rank = static_cast<Rank>(entry.int_or("rank", -1));
  e.complete = entry.bool_or("complete", false);
  e.decimated = entry.bool_or("decimated", false);
  if (entry.contains("error")) {
    e.errored = true;
    e.error = entry.string_or("error", "");
  }
  if (entry.contains("samples")) {
    for (const Json& s : entry.at("samples").as_array()) {
      e.samples.push_back(variorum::parse_node_power_json(s));
    }
  }
  return e;
}

bool wants_typed_telemetry(const Message& request) {
  return request.payload.string_or(kTypedProtoKey, "") == kTypedProtoValue;
}

void request_typed_telemetry(util::Json& payload) {
  payload[kTypedProtoKey] = kTypedProtoValue;
}

}  // namespace fluxpower::flux
