// telemetry.hpp — typed telemetry payloads for intra-instance messaging.
//
// The monitor's data plane carries hwsim::PowerSample structs end-to-end:
// node-agents store them raw in the ring buffer, brokers merge them through
// the TBON subtree reduction, and the root hands them to the client — all
// without serializing. JSON exists only at the edges: a response is rendered
// (a) when a requester did not opt into the typed protocol, or (b) when a
// message crosses the codec boundary (wire dumps, journal). Both renderings
// are byte-identical to the historical JSON-everywhere payloads, so wire
// formats and experiment outputs are unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flux/message.hpp"
#include "hwsim/types.hpp"
#include "util/json.hpp"

namespace fluxpower::flux {

/// One node's contribution to a telemetry query — the typed equivalent of
/// the per-node JSON entry ({hostname, rank, complete, decimated, samples}).
struct TelemetryNodeEntry {
  std::string hostname;
  Rank rank = -1;
  bool complete = true;
  bool decimated = false;
  /// Entry synthesized for a dead/unreachable subtree member; renders with
  /// the historical error shape (no `decimated` key, `error` text present).
  bool errored = false;
  std::string error;
  std::vector<hwsim::PowerSample> samples;

  // --- Incremental-aggregation meta (intra-tree hops only; never rendered
  // --- into the edge JSON, which stays byte-identical to the legacy shape).
  /// When true, `samples` holds only readings newer than the requester's
  /// watermark for this rank, and the source-buffer meta below lets the
  /// requester keep an exact mirror (replica) of the source ring: prune to
  /// front_ts_s, append the delta, carry the eviction ledger through.
  bool delta = false;
  bool source_empty = false;      ///< source buffer held no samples
  double front_ts_s = 0.0;        ///< oldest retained timestamp at source
  std::uint64_t source_evicted = 0;   ///< source lifetime eviction count
  std::uint32_t source_capacity = 0;  ///< source ring capacity
};

/// A merged set of per-node entries travelling up the TBON. Held by
/// shared_ptr on the Message so each routing hop copies a pointer, not the
/// samples.
struct TelemetryBatch {
  std::vector<TelemetryNodeEntry> nodes;
  /// When true the batch is a single node-agent's get-data reply and
  /// renders as the bare entry object instead of {..., "nodes": [...]}.
  bool single_entry = false;
};

/// Render one entry exactly as the JSON data plane produced it: normal
/// entries as {hostname, rank, complete, decimated, samples}, error entries
/// as {hostname, rank, complete, samples, error}.
util::Json render_telemetry_entry(const TelemetryNodeEntry& entry);

/// Render a message's payload with its telemetry batch folded in: the batch
/// nodes land under "nodes" after the meta keys (or as the bare entry for
/// single_entry batches). `meta` is the message's JSON payload.
util::Json render_telemetry_payload(const util::Json& meta,
                                    const TelemetryBatch& batch);

/// Decode a per-node JSON entry back to typed form (fallback for responses
/// from agents speaking the JSON protocol).
TelemetryNodeEntry parse_telemetry_entry(const util::Json& entry);

/// The payload key internal requesters set to receive typed responses.
/// Absent → the responder renders JSON, byte-identical to the legacy path.
inline constexpr const char* kTypedProtoKey = "proto";
inline constexpr const char* kTypedProtoValue = "typed";

/// Does this request opt into typed-telemetry responses?
bool wants_typed_telemetry(const Message& request);

/// Mark a request payload as typed-protocol.
void request_typed_telemetry(util::Json& payload);

}  // namespace fluxpower::flux
