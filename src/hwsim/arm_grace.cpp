#include "hwsim/arm_grace.hpp"

#include <algorithm>

namespace fluxpower::hwsim {

ArmGraceNode::ArmGraceNode(sim::Simulation& sim, std::string hostname,
                           ArmGraceConfig config)
    : Node(sim, std::move(hostname)), config_(config) {
  socket_caps_.assign(static_cast<std::size_t>(config_.sockets), std::nullopt);
  idle();
}

LoadDemand ArmGraceNode::idle_demand() const {
  LoadDemand d;
  d.cpu_w.assign(static_cast<std::size_t>(config_.sockets), config_.cpu_idle_w);
  d.mem_w = config_.mem_idle_w;
  return d;
}

CapResult ArmGraceNode::do_set_socket_power_cap(int socket, double watts) {
  if (socket < 0 || socket >= config_.sockets) {
    return {CapStatus::OutOfRange, std::nullopt};
  }
  CapStatus status = CapStatus::Ok;
  double applied = watts;
  if (watts < config_.cpu_min_cap_w) {
    applied = config_.cpu_min_cap_w;
    status = CapStatus::Clamped;
  } else if (watts > config_.cpu_max_w) {
    applied = config_.cpu_max_w;
    status = CapStatus::Clamped;
  }
  socket_caps_[static_cast<std::size_t>(socket)] = applied;
  refresh();
  return {status, applied};
}

Grants ArmGraceNode::compute_grants(const LoadDemand& demand) const {
  Grants g;
  g.base_w = config_.base_w;
  g.mem_w = std::min(demand.mem_w, config_.mem_max_w);
  g.cpu_w.resize(demand.cpu_w.size());
  for (std::size_t i = 0; i < demand.cpu_w.size(); ++i) {
    double limit = config_.cpu_max_w;
    if (i < socket_caps_.size() && socket_caps_[i]) {
      limit = std::min(limit, *socket_caps_[i]);
    }
    g.cpu_w[i] = std::min(demand.cpu_w[i], std::max(limit, config_.cpu_idle_w));
  }
  return g;
}

PowerSample ArmGraceNode::read_sensors() {
  PowerSample s;
  s.timestamp_s = sim_.now();
  s.hostname = hostname_;
  for (double w : grants_.cpu_w) s.cpu_w.push_back(noisy(w));
  s.mem_w = noisy(grants_.mem_w);
  // BMC board-power sensor: direct node reading including base power.
  s.node_w = noisy(grants_.total());
  s.node_estimate_w = std::nullopt;
  return s;
}

}  // namespace fluxpower::hwsim
