// arm_grace.hpp — generic ARM server node model (Grace-class).
//
// Variorum's vendor-neutrality spans ARM platforms (§II-C); this model
// provides the ARM surface: hwmon-style sensors exposing per-socket CPU
// power and a *direct node* sensor (ARM server BMCs typically expose total
// board power), plus per-socket capping through the firmware interface.
// No discrete GPUs. Used by vendor-neutrality tests and to demonstrate the
// monitor/manager running unmodified on a fourth platform.
#pragma once

#include "hwsim/node.hpp"

namespace fluxpower::hwsim {

struct ArmGraceConfig {
  int sockets = 1;  ///< one 72-core superchip socket
  double cpu_idle_w = 80.0;
  double cpu_max_w = 500.0;
  double cpu_min_cap_w = 150.0;
  double mem_idle_w = 30.0;   ///< LPDDR5X on-package
  double mem_max_w = 70.0;
  double base_w = 60.0;
};

class ArmGraceNode final : public Node {
 public:
  ArmGraceNode(sim::Simulation& sim, std::string hostname,
               ArmGraceConfig config = {});

  int socket_count() const override { return config_.sockets; }
  int gpu_count() const override { return 0; }
  const char* vendor_name() const override { return "arm_grace"; }

  LoadDemand idle_demand() const override;
  PowerSample read_sensors() override;

  CapResult do_set_socket_power_cap(int socket, double watts) override;

  const ArmGraceConfig& config() const noexcept { return config_; }

 protected:
  Grants compute_grants(const LoadDemand& demand) const override;

 private:
  ArmGraceConfig config_;
};

}  // namespace fluxpower::hwsim
