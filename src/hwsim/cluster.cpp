#include "hwsim/cluster.hpp"

namespace fluxpower::hwsim {

const char* platform_name(Platform platform) noexcept {
  switch (platform) {
    case Platform::LassenIbmAc922: return "lassen";
    case Platform::TiogaCrayEx235a: return "tioga";
    case Platform::GenericIntelXeon: return "intel";
    case Platform::GenericArmGrace: return "arm";
  }
  return "unknown";
}

Node& Cluster::node_by_hostname(const std::string& hostname) {
  const int rank = rank_by_hostname(hostname);
  if (rank < 0) throw std::out_of_range("Cluster: no node named " + hostname);
  return *nodes_[static_cast<std::size_t>(rank)];
}

int Cluster::rank_by_hostname(const std::string& hostname) const noexcept {
  const auto it = by_hostname_.find(hostname);
  return it == by_hostname_.end() ? -1 : it->second;
}

double Cluster::total_draw_w() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->node_draw_w();
  return total;
}

double Cluster::total_energy_joules() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n->energy_joules();
  return total;
}

void Cluster::set_sensor_noise(double sigma) {
  for (auto& n : nodes_) n->set_sensor_noise(sigma);
}

std::unique_ptr<Node> make_node(sim::Simulation& sim, Platform platform,
                                std::string hostname) {
  switch (platform) {
    case Platform::LassenIbmAc922:
      return std::make_unique<IbmAc922Node>(sim, std::move(hostname));
    case Platform::TiogaCrayEx235a:
      return std::make_unique<CrayEx235aNode>(sim, std::move(hostname));
    case Platform::GenericIntelXeon:
      return std::make_unique<IntelXeonNode>(sim, std::move(hostname));
    case Platform::GenericArmGrace:
      return std::make_unique<ArmGraceNode>(sim, std::move(hostname));
  }
  throw std::invalid_argument("make_node: unknown platform");
}

Cluster make_cluster(sim::Simulation& sim, Platform platform, int n,
                     const std::string& prefix) {
  return make_cluster([&sim](int) -> sim::Simulation& { return sim; },
                      platform, n, prefix);
}

Cluster make_cluster(const std::function<sim::Simulation&(int)>& sim_of_rank,
                     Platform platform, int n, const std::string& prefix) {
  if (n <= 0) throw std::invalid_argument("make_cluster: n must be positive");
  const std::string name_prefix =
      prefix.empty() ? std::string(platform_name(platform)) : prefix;
  Cluster cluster;
  for (int i = 0; i < n; ++i) {
    cluster.add_node(
        make_node(sim_of_rank(i), platform, name_prefix + std::to_string(i)));
  }
  return cluster;
}

}  // namespace fluxpower::hwsim
