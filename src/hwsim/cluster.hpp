// cluster.hpp — a collection of simulated nodes.
//
// Factory helpers build Lassen-like, Tioga-like and generic-Intel clusters
// with paper-faithful per-node shapes. The cluster owns the nodes; brokers
// and workload runtimes hold non-owning references.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "hwsim/arm_grace.hpp"
#include "hwsim/cray_ex235a.hpp"
#include "hwsim/ibm_ac922.hpp"
#include "hwsim/intel_xeon.hpp"
#include "hwsim/node.hpp"

namespace fluxpower::hwsim {

enum class Platform {
  LassenIbmAc922,
  TiogaCrayEx235a,
  GenericIntelXeon,
  GenericArmGrace,
};

const char* platform_name(Platform platform) noexcept;

class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;

  void add_node(std::unique_ptr<Node> node) {
    // Index maintained here so hostname lookups are O(1) on telemetry and
    // manager paths. First registration wins on duplicate hostnames,
    // matching the historical linear scan's behaviour.
    by_hostname_.emplace(node->hostname(), size());
    nodes_.push_back(std::move(node));
  }

  int size() const noexcept { return static_cast<int>(nodes_.size()); }

  Node& node(int rank) {
    if (rank < 0 || rank >= size()) {
      throw std::out_of_range("Cluster::node: bad rank");
    }
    return *nodes_[static_cast<std::size_t>(rank)];
  }
  const Node& node(int rank) const {
    return const_cast<Cluster*>(this)->node(rank);
  }

  /// Locate a node by hostname via the hash index; throws if absent.
  Node& node_by_hostname(const std::string& hostname);

  /// Rank of the node with the given hostname, or -1 if absent. O(1).
  int rank_by_hostname(const std::string& hostname) const noexcept;

  /// Sum of instantaneous draw over all nodes (exact, not sensor-based).
  double total_draw_w() const;

  /// Sum of exact energy over all nodes.
  double total_energy_joules() const;

  /// Enable multiplicative sensor noise on every node.
  void set_sensor_noise(double sigma);

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, int> by_hostname_;
};

/// Build a homogeneous cluster of `n` nodes of the given platform, named
/// `<prefix><index>` (e.g. lassen0..lassenN-1).
Cluster make_cluster(sim::Simulation& sim, Platform platform, int n,
                     const std::string& prefix = "");

/// Sharded variant: `sim_of_rank(i)` supplies the engine node i ticks on
/// (its TBON island's Simulation), so each node's timers and sensor state
/// stay confined to the worker thread that owns its island.
Cluster make_cluster(const std::function<sim::Simulation&(int)>& sim_of_rank,
                     Platform platform, int n, const std::string& prefix = "");

/// Per-platform node factories for heterogeneous setups / tests.
std::unique_ptr<Node> make_node(sim::Simulation& sim, Platform platform,
                                std::string hostname);

}  // namespace fluxpower::hwsim
