#include "hwsim/cray_ex235a.hpp"

#include <algorithm>

namespace fluxpower::hwsim {

CrayEx235aNode::CrayEx235aNode(sim::Simulation& sim, std::string hostname,
                               CrayEx235aConfig config)
    : Node(sim, std::move(hostname)), config_(config) {
  gpu_caps_.assign(static_cast<std::size_t>(config_.gcds), std::nullopt);
  socket_caps_.assign(static_cast<std::size_t>(config_.sockets), std::nullopt);
  idle();
}

LoadDemand CrayEx235aNode::idle_demand() const {
  LoadDemand d;
  d.cpu_w.assign(static_cast<std::size_t>(config_.sockets), config_.cpu_idle_w);
  d.gpu_w.assign(static_cast<std::size_t>(config_.gcds), config_.gcd_idle_w);
  d.mem_w = config_.mem_idle_w;
  return d;
}

CapResult CrayEx235aNode::do_set_gpu_power_cap(int gpu, double watts) {
  if (gpu < 0 || gpu >= config_.gcds) {
    return {CapStatus::OutOfRange, std::nullopt};
  }
  if (!config_.capping_enabled_for_users) {
    return {CapStatus::PermissionDenied, std::nullopt};
  }
  const double applied = std::clamp(watts, config_.gcd_idle_w, config_.gcd_max_w);
  gpu_caps_[static_cast<std::size_t>(gpu)] = applied;
  refresh();
  return {applied == watts ? CapStatus::Ok : CapStatus::Clamped, applied};
}

CapResult CrayEx235aNode::do_set_socket_power_cap(int socket, double watts) {
  if (socket < 0 || socket >= config_.sockets) {
    return {CapStatus::OutOfRange, std::nullopt};
  }
  if (!config_.capping_enabled_for_users) {
    return {CapStatus::PermissionDenied, std::nullopt};
  }
  const double applied = std::clamp(watts, config_.cpu_idle_w, config_.cpu_max_w);
  socket_caps_[static_cast<std::size_t>(socket)] = applied;
  refresh();
  return {applied == watts ? CapStatus::Ok : CapStatus::Clamped, applied};
}

Grants CrayEx235aNode::compute_grants(const LoadDemand& demand) const {
  Grants g;
  g.base_w = config_.base_w;
  g.mem_w = std::min(demand.mem_w, config_.mem_max_w);

  g.gpu_w.resize(demand.gpu_w.size());
  for (std::size_t i = 0; i < demand.gpu_w.size(); ++i) {
    double limit = config_.gcd_max_w;
    if (i < gpu_caps_.size() && gpu_caps_[i]) limit = std::min(limit, *gpu_caps_[i]);
    g.gpu_w[i] = std::min(demand.gpu_w[i], std::max(limit, config_.gcd_idle_w));
  }
  g.cpu_w.resize(demand.cpu_w.size());
  for (std::size_t i = 0; i < demand.cpu_w.size(); ++i) {
    double limit = config_.cpu_max_w;
    if (i < socket_caps_.size() && socket_caps_[i]) {
      limit = std::min(limit, *socket_caps_[i]);
    }
    g.cpu_w[i] = std::min(demand.cpu_w[i], std::max(limit, config_.cpu_idle_w));
  }
  return g;
}

PowerSample CrayEx235aNode::read_sensors() {
  PowerSample s;
  s.timestamp_s = sim_.now();
  s.hostname = hostname_;
  for (double w : grants_.cpu_w) s.cpu_w.push_back(noisy(w));

  // Telemetry is per OAM: the two GCDs behind each module share a sensor.
  for (int oam = 0; oam < oam_count(); ++oam) {
    const std::size_t a = static_cast<std::size_t>(2 * oam);
    const std::size_t b = a + 1;
    double w = 0.0;
    if (a < grants_.gpu_w.size()) w += grants_.gpu_w[a];
    if (b < grants_.gpu_w.size()) w += grants_.gpu_w[b];
    s.gpu_w.push_back(noisy(w));
  }
  s.gpu_is_oam = true;

  // No node or memory sensor exists. The node figure is a conservative
  // estimate: measured CPU + measured OAMs. Memory and base power are
  // physically drawn (grants include them) but invisible here — exactly
  // the gap the paper describes for Tioga.
  s.mem_w = std::nullopt;
  s.node_w = std::nullopt;
  double est = 0.0;
  for (double w : s.cpu_w) est += w;
  for (double w : s.gpu_w) est += w;
  s.node_estimate_w = est;
  return s;
}

}  // namespace fluxpower::hwsim
