// cray_ex235a.hpp — Tioga-style HPE Cray EX235a node model.
//
// Reproduces Tioga's telemetry/capping surface from §II-A:
//   * single-socket AMD Trento CPU, telemetry via E-SMI / HSMP /
//     amd-energy MSRs;
//   * four MI250X OAM packages, each holding two Graphics Compute Dies
//     (GCDs); the workload sees 8 GPUs but power telemetry is *per OAM*
//     (560 W max across the two GCDs), via ROCm interfaces;
//   * no memory or node sensor — node power is the conservative sum of the
//     CPU socket and the four OAMs (uncore excluded, exactly what the
//     paper reports for Tioga);
//   * power capping supported by the hardware but not enabled for users on
//     the early-access system: every cap call returns PermissionDenied.
#pragma once

#include "hwsim/node.hpp"

namespace fluxpower::hwsim {

struct CrayEx235aConfig {
  int sockets = 1;
  int gcds = 8;  ///< 4 OAMs x 2 GCDs; telemetry aggregates pairs

  double cpu_idle_w = 45.0;
  double gcd_idle_w = 45.0;  ///< ~90 W idle per OAM
  double base_w = 90.0;      ///< exists physically but is *not measurable*

  double cpu_max_w = 280.0;
  double gcd_max_w = 280.0;  ///< 560 W OAM max across 2 GCDs
  double mem_idle_w = 40.0;  ///< drawn but invisible to telemetry
  double mem_max_w = 90.0;

  /// Firmware switch: capping is fused off for users on the early-access
  /// system. Flipping this simulates a post-GA firmware that enables it.
  bool capping_enabled_for_users = false;
};

class CrayEx235aNode final : public Node {
 public:
  CrayEx235aNode(sim::Simulation& sim, std::string hostname,
                 CrayEx235aConfig config = {});

  int socket_count() const override { return config_.sockets; }
  int gpu_count() const override { return config_.gcds; }
  int oam_count() const { return config_.gcds / 2; }
  const char* vendor_name() const override { return "amd_trento_mi250x"; }

  LoadDemand idle_demand() const override;
  PowerSample read_sensors() override;

  CapResult do_set_gpu_power_cap(int gpu, double watts) override;
  CapResult do_set_socket_power_cap(int socket, double watts) override;

  const CrayEx235aConfig& config() const noexcept { return config_; }

 protected:
  Grants compute_grants(const LoadDemand& demand) const override;

 private:
  CrayEx235aConfig config_;
};

}  // namespace fluxpower::hwsim
