#include "hwsim/energy_meter.hpp"

#include <stdexcept>

namespace fluxpower::hwsim {

void EnergyMeter::update(sim::Time now, double watts) {
  if (now < last_) {
    throw std::logic_error("EnergyMeter::update: time went backwards");
  }
  joules_ += watts_ * (now - last_);
  watts_ = watts;
  last_ = now;
}

double EnergyMeter::joules(sim::Time now) const {
  if (now < last_) {
    throw std::logic_error("EnergyMeter::joules: time went backwards");
  }
  return joules_ + watts_ * (now - last_);
}

void EnergyMeter::reset(sim::Time now) {
  if (now < last_) {
    throw std::logic_error("EnergyMeter::reset: time went backwards");
  }
  joules_ = 0.0;
  last_ = now;
}

}  // namespace fluxpower::hwsim
