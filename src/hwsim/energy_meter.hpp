// energy_meter.hpp — exact power-over-time integration.
//
// Tables II–IV report per-node energy. Sampling-based integration (what the
// monitor client does) is subject to the 2 s sampling grid; the simulator
// additionally keeps an exact piecewise-constant integral so benches can
// report both and tests can bound the sampling error.
#pragma once

#include "sim/simulation.hpp"

namespace fluxpower::hwsim {

class EnergyMeter {
 public:
  /// Record that power changed to `watts` at time `now`. Energy accumulates
  /// the previous power level over the elapsed interval first.
  void update(sim::Time now, double watts);

  /// Total energy in joules through time `now` (integrates the current power
  /// level up to `now` without mutating state).
  double joules(sim::Time now) const;

  double current_watts() const noexcept { return watts_; }

  /// Reset the accumulator (job-scoped metering). Like update()/joules(),
  /// throws std::logic_error if `now` precedes the last recorded time — a
  /// backwards reset would silently re-bill the rewound interval at the
  /// current power level on the next update.
  void reset(sim::Time now);

 private:
  double joules_ = 0.0;
  double watts_ = 0.0;
  sim::Time last_ = 0.0;
};

}  // namespace fluxpower::hwsim
