#include "hwsim/ibm_ac922.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace fluxpower::hwsim {

IbmAc922Node::IbmAc922Node(sim::Simulation& sim, std::string hostname,
                           IbmAc922Config config)
    : Node(sim, std::move(hostname)), config_(config) {
  gpu_caps_.assign(static_cast<std::size_t>(config_.gpus), std::nullopt);
  socket_caps_.assign(static_cast<std::size_t>(config_.sockets), std::nullopt);
  wedged_.assign(static_cast<std::size_t>(config_.gpus), false);
  gpu_cap_epochs_.assign(static_cast<std::size_t>(config_.gpus), 0);
  idle();
}

LoadDemand IbmAc922Node::idle_demand() const {
  LoadDemand d;
  d.cpu_w.assign(static_cast<std::size_t>(config_.sockets), config_.cpu_idle_w);
  d.gpu_w.assign(static_cast<std::size_t>(config_.gpus), config_.gpu_idle_w);
  d.mem_w = config_.mem_idle_w;
  return d;
}

double IbmAc922Node::derived_gpu_cap(double node_cap_w) const {
  // Calibration anchors from Table III (PSR = 100). The OCC's real algorithm
  // is proprietary; a piecewise-linear fit through the published
  // measurements reproduces exactly the behaviour the paper observed,
  // including the conservatism at low node caps.
  struct Anchor {
    double node_cap;
    double gpu_cap;
  };
  static constexpr std::array<Anchor, 4> kAnchors{{
      {1200.0, 100.0},
      {1800.0, 216.0},
      {1950.0, 253.0},
      {3050.0, 300.0},
  }};

  if (node_cap_w <= kAnchors.front().node_cap) {
    // Extrapolate below 1200 W with the 1200–1800 slope; clamp at zero.
    const double slope = (kAnchors[1].gpu_cap - kAnchors[0].gpu_cap) /
                         (kAnchors[1].node_cap - kAnchors[0].node_cap);
    return std::max(0.0, kAnchors[0].gpu_cap +
                             slope * (node_cap_w - kAnchors[0].node_cap));
  }
  if (node_cap_w >= kAnchors.back().node_cap) return kAnchors.back().gpu_cap;
  for (std::size_t i = 1; i < kAnchors.size(); ++i) {
    if (node_cap_w <= kAnchors[i].node_cap) {
      const double t = (node_cap_w - kAnchors[i - 1].node_cap) /
                       (kAnchors[i].node_cap - kAnchors[i - 1].node_cap);
      const double cap = kAnchors[i - 1].gpu_cap +
                         t * (kAnchors[i].gpu_cap - kAnchors[i - 1].gpu_cap);
      // PSR < 100 shifts headroom away from the GPUs proportionally.
      return cap * (config_.psr / 100.0) +
             config_.gpu_min_cap_w * (1.0 - config_.psr / 100.0) *
                 (cap > config_.gpu_min_cap_w ? 1.0 : 0.0);
    }
  }
  return kAnchors.back().gpu_cap;
}

CapResult IbmAc922Node::do_set_node_power_cap(double watts) {
  CapStatus status = CapStatus::Ok;
  double applied = watts;
  if (watts < config_.node_soft_min_cap_w) {
    applied = config_.node_soft_min_cap_w;
    status = CapStatus::Clamped;
  } else if (watts > config_.node_max_cap_w) {
    applied = config_.node_max_cap_w;
    status = CapStatus::Clamped;
  }
  if (config_.node_cap_latency_s > 0.0) {
    // OPAL settles the cap asynchronously: the write is acknowledged now,
    // enforcement changes once the firmware converges (last writer wins).
    const std::uint64_t epoch = ++node_cap_epoch_;
    sim_.schedule_after(config_.node_cap_latency_s, [this, applied, epoch] {
      if (epoch != node_cap_epoch_) return;  // superseded by a newer write
      node_cap_ = applied;
      refresh();
    });
    return {status, applied};
  }
  node_cap_ = applied;
  refresh();
  return {status, applied};
}

CapResult IbmAc922Node::do_clear_node_power_cap() {
  node_cap_.reset();
  refresh();
  return {CapStatus::Ok, config_.node_max_cap_w};
}

CapResult IbmAc922Node::do_set_gpu_power_cap(int gpu, double watts) {
  if (gpu < 0 || gpu >= config_.gpus) {
    return {CapStatus::OutOfRange, std::nullopt};
  }
  const auto idx = static_cast<std::size_t>(gpu);

  // §V failure injection: at low node caps the NVML write intermittently
  // has no effect — it either keeps the last set cap or resets to maximum.
  if (config_.nvml_failure_rate > 0.0 && node_cap_ &&
      *node_cap_ <= config_.nvml_failure_below_node_cap_w &&
      rng_.chance(config_.nvml_failure_rate)) {
    ++nvml_failures_;
    if (rng_.chance(0.5)) {
      // Reset-to-max variant: the GPU is wedged at its maximum. The OCC's
      // derived cap is enforced through the same NVML path, so it no
      // longer holds for this GPU either (this is how the paper could
      // observe GPUs "defaulting to the maximum power cap" despite the
      // node-level cap's conservative derivation).
      gpu_caps_[idx] = config_.gpu_max_w;
      wedged_[idx] = true;
      refresh();
    }
    // Keep-last variant: state untouched. Either way NVML reports success.
    return {CapStatus::Ok, gpu_caps_[idx]};
  }

  CapStatus status = CapStatus::Ok;
  double applied = watts;
  if (watts < config_.gpu_min_cap_w) {
    applied = config_.gpu_min_cap_w;
    status = CapStatus::Clamped;
  } else if (watts > config_.gpu_max_w) {
    applied = config_.gpu_max_w;
    status = CapStatus::Clamped;
  }
  if (config_.gpu_cap_latency_s > 0.0) {
    const std::uint64_t epoch = ++gpu_cap_epochs_[idx];
    sim_.schedule_after(config_.gpu_cap_latency_s, [this, idx, applied, epoch] {
      if (epoch != gpu_cap_epochs_[idx]) return;
      gpu_caps_[idx] = applied;
      wedged_[idx] = false;
      refresh();
    });
    return {status, applied};
  }
  gpu_caps_[idx] = applied;
  wedged_[idx] = false;  // a successful write un-wedges the GPU
  refresh();
  return {status, applied};
}

bool IbmAc922Node::gpu_cap_wedged(int gpu) const {
  if (gpu < 0 || static_cast<std::size_t>(gpu) >= wedged_.size()) return false;
  return wedged_[static_cast<std::size_t>(gpu)];
}

Grants IbmAc922Node::compute_grants(const LoadDemand& demand) const {
  Grants g;
  g.base_w = config_.base_w;
  g.mem_w = std::min(demand.mem_w, config_.mem_max_w);

  // Per-GPU effective limit: NVML cap intersected with the OCC's derived
  // maximum when a node cap is active.
  const double derived =
      node_cap_ ? derived_gpu_cap(*node_cap_) : config_.gpu_max_w;
  g.gpu_w.resize(demand.gpu_w.size());
  for (std::size_t i = 0; i < demand.gpu_w.size(); ++i) {
    // A wedged GPU (failed NVML reset-to-max) escapes the derived cap:
    // both limits travel over the same NVML path.
    const bool wedged = i < wedged_.size() && wedged_[i];
    double limit = wedged ? config_.gpu_max_w
                          : std::min(config_.gpu_max_w, derived);
    if (!wedged && i < gpu_caps_.size() && gpu_caps_[i]) {
      limit = std::min(limit, *gpu_caps_[i]);
    }
    // A cap below the idle floor cannot reduce draw below idle.
    limit = std::max(limit, config_.gpu_idle_w);
    g.gpu_w[i] = std::min(demand.gpu_w[i], limit);
  }

  g.cpu_w.resize(demand.cpu_w.size());
  for (std::size_t i = 0; i < demand.cpu_w.size(); ++i) {
    g.cpu_w[i] = std::min(demand.cpu_w[i], config_.cpu_max_w);
  }

  if (!node_cap_) return g;

  // OCC enforcement: if the node total still exceeds the cap after the
  // derived GPU limits, throttle CPU DVFS toward idle, then squeeze the
  // GPUs further. The hard guarantee only holds down to 1000 W with GPU
  // activity; below the aggregate idle floor nothing shrinks further.
  const double cap = *node_cap_;
  auto shrink = [&](std::vector<double>& grants, double floor_each) {
    double excess = g.total() - cap;
    if (excess <= 0.0) return;
    double reducible = 0.0;
    for (double w : grants) reducible += std::max(0.0, w - floor_each);
    if (reducible <= 0.0) return;
    const double scale = std::min(1.0, excess / reducible);
    for (double& w : grants) {
      w -= std::max(0.0, w - floor_each) * scale;
    }
  };
  shrink(g.cpu_w, config_.cpu_idle_w);
  shrink(g.gpu_w, config_.gpu_idle_w);
  if (g.total() > cap && g.mem_w > config_.mem_idle_w) {
    g.mem_w = std::max(config_.mem_idle_w, g.mem_w - (g.total() - cap));
  }
  return g;
}

PowerSample IbmAc922Node::read_sensors() {
  PowerSample s;
  s.timestamp_s = sim_.now();
  s.hostname = hostname_;
  s.cpu_w.reserve(grants_.cpu_w.size());
  for (double w : grants_.cpu_w) s.cpu_w.push_back(noisy(w));
  s.gpu_w.reserve(grants_.gpu_w.size());
  for (double w : grants_.gpu_w) s.gpu_w.push_back(noisy(w));
  s.mem_w = noisy(grants_.mem_w);
  // The OCC node sensor is direct and includes uncore/base power.
  s.node_w = noisy(grants_.total());
  s.node_estimate_w = std::nullopt;
  s.gpu_is_oam = false;
  return s;
}

}  // namespace fluxpower::hwsim
