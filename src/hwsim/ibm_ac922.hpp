// ibm_ac922.hpp — Lassen-style IBM Power AC922 node model.
//
// Reproduces the power-management behaviour the paper documents for Lassen
// (§II-A, §IV-C, §V):
//   * In-band OCC sensors at node / socket / memory / GPU level; the node
//     sensor is direct and includes uncore components.
//   * OPAL node-level power capping: 3050 W max, 500 W minimum *soft* cap
//     (not guaranteed), 1000 W minimum *hard* cap with GPU activity.
//   * IBM's default algorithm derives a conservative per-GPU maximum from
//     the node cap (PSR = 100%). The derivation is calibrated to the
//     paper's measured pairs in Table III: 1200→100 W, 1800→216 W,
//     1950→253 W, 3050→300 W.
//   * NVML per-GPU capping, 100–300 W, with the intermittent failure mode
//     reported in §V (at low node caps a cap write silently keeps the last
//     value or resets to the maximum).
#pragma once

#include "hwsim/node.hpp"

namespace fluxpower::hwsim {

struct IbmAc922Config {
  int sockets = 2;
  int gpus = 4;

  // Idle floors chosen to reproduce the paper's measured 400 W idle node.
  double cpu_idle_w = 55.0;
  double gpu_idle_w = 35.0;
  double mem_idle_w = 50.0;
  double base_w = 100.0;  ///< fans/board/uncore; constant

  double cpu_max_w = 190.0;
  double gpu_max_w = 300.0;
  double gpu_min_cap_w = 100.0;  ///< NVML floor
  double mem_max_w = 110.0;

  double node_max_cap_w = 3050.0;
  double node_soft_min_cap_w = 500.0;
  double node_hard_min_cap_w = 1000.0;

  /// Power Shifting Ratio, 0–100: fraction of cap headroom preferentially
  /// given to GPUs. The paper always runs PSR = 100 (default).
  double psr = 100.0;

  /// Probability that an NVML cap write silently fails when the node cap is
  /// at or below `nvml_failure_below_node_cap_w`. Defaults keep the failure
  /// mode off so headline tables are exact; §V experiments enable it.
  double nvml_failure_rate = 0.0;
  double nvml_failure_below_node_cap_w = 1200.0;

  /// Cap-application latency: real firmware takes time to settle a new
  /// limit ("documentation on ... steady state convergence is sparse", §V).
  /// When > 0, a cap write returns immediately but only takes effect after
  /// the latency elapses (last writer wins). Defaults 0 keep the headline
  /// tables exact; the convergence ablation turns these on.
  double node_cap_latency_s = 0.0;
  double gpu_cap_latency_s = 0.0;
};

class IbmAc922Node final : public Node {
 public:
  IbmAc922Node(sim::Simulation& sim, std::string hostname,
               IbmAc922Config config = {});

  int socket_count() const override { return config_.sockets; }
  int gpu_count() const override { return config_.gpus; }
  const char* vendor_name() const override { return "ibm_power9"; }

  LoadDemand idle_demand() const override;
  PowerSample read_sensors() override;

  CapResult do_set_node_power_cap(double watts) override;
  CapResult do_clear_node_power_cap() override;
  CapResult do_set_gpu_power_cap(int gpu, double watts) override;

  /// IBM's conservative node-cap → per-GPU-cap derivation at PSR=100,
  /// piecewise linear through the paper's measured points. Exposed for the
  /// Table III bench and for tests.
  double derived_gpu_cap(double node_cap_w) const;

  const IbmAc922Config& config() const noexcept { return config_; }

  /// Count of NVML cap writes that silently failed (§V reproduction).
  int nvml_silent_failures() const noexcept { return nvml_failures_; }

  /// True if the GPU is currently wedged at its maximum because a failed
  /// NVML write reset it (the OCC's derived cap is applied through the
  /// same NVML path, so a wedged GPU escapes it until a write succeeds).
  bool gpu_cap_wedged(int gpu) const;

 protected:
  Grants compute_grants(const LoadDemand& demand) const override;

 private:
  IbmAc922Config config_;
  int nvml_failures_ = 0;
  std::vector<bool> wedged_;
  // Latency bookkeeping: a newer write supersedes any in-flight one.
  std::uint64_t node_cap_epoch_ = 0;
  std::vector<std::uint64_t> gpu_cap_epochs_;
};

}  // namespace fluxpower::hwsim
