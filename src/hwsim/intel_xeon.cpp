#include "hwsim/intel_xeon.hpp"

#include <algorithm>

namespace fluxpower::hwsim {

IntelXeonNode::IntelXeonNode(sim::Simulation& sim, std::string hostname,
                             IntelXeonConfig config)
    : Node(sim, std::move(hostname)), config_(config) {
  gpu_caps_.assign(static_cast<std::size_t>(config_.gpus), std::nullopt);
  socket_caps_.assign(static_cast<std::size_t>(config_.sockets), std::nullopt);
  idle();
}

LoadDemand IntelXeonNode::idle_demand() const {
  LoadDemand d;
  d.cpu_w.assign(static_cast<std::size_t>(config_.sockets), config_.cpu_idle_w);
  d.gpu_w.assign(static_cast<std::size_t>(config_.gpus), config_.gpu_idle_w);
  d.mem_w = config_.mem_idle_w;
  return d;
}

CapResult IntelXeonNode::do_set_socket_power_cap(int socket, double watts) {
  if (socket < 0 || socket >= config_.sockets) {
    return {CapStatus::OutOfRange, std::nullopt};
  }
  CapStatus status = CapStatus::Ok;
  double applied = watts;
  if (watts < config_.cpu_min_cap_w) {
    applied = config_.cpu_min_cap_w;
    status = CapStatus::Clamped;
  } else if (watts > config_.cpu_max_w) {
    applied = config_.cpu_max_w;
    status = CapStatus::Clamped;
  }
  socket_caps_[static_cast<std::size_t>(socket)] = applied;
  refresh();
  return {status, applied};
}

CapResult IntelXeonNode::do_set_gpu_power_cap(int gpu, double watts) {
  if (gpu < 0 || gpu >= config_.gpus) {
    return {CapStatus::OutOfRange, std::nullopt};
  }
  CapStatus status = CapStatus::Ok;
  double applied = watts;
  if (watts < config_.gpu_min_cap_w) {
    applied = config_.gpu_min_cap_w;
    status = CapStatus::Clamped;
  } else if (watts > config_.gpu_max_w) {
    applied = config_.gpu_max_w;
    status = CapStatus::Clamped;
  }
  gpu_caps_[static_cast<std::size_t>(gpu)] = applied;
  refresh();
  return {status, applied};
}

Grants IntelXeonNode::compute_grants(const LoadDemand& demand) const {
  Grants g;
  g.base_w = config_.base_w;
  g.mem_w = std::min(demand.mem_w, config_.mem_max_w);
  g.cpu_w.resize(demand.cpu_w.size());
  for (std::size_t i = 0; i < demand.cpu_w.size(); ++i) {
    double limit = config_.cpu_max_w;
    if (i < socket_caps_.size() && socket_caps_[i]) {
      limit = std::min(limit, *socket_caps_[i]);
    }
    g.cpu_w[i] = std::min(demand.cpu_w[i], std::max(limit, config_.cpu_idle_w));
  }
  g.gpu_w.resize(demand.gpu_w.size());
  for (std::size_t i = 0; i < demand.gpu_w.size(); ++i) {
    double limit = config_.gpu_max_w;
    if (i < gpu_caps_.size() && gpu_caps_[i]) limit = std::min(limit, *gpu_caps_[i]);
    g.gpu_w[i] = std::min(demand.gpu_w[i], std::max(limit, config_.gpu_idle_w));
  }
  return g;
}

PowerSample IntelXeonNode::read_sensors() {
  PowerSample s;
  s.timestamp_s = sim_.now();
  s.hostname = hostname_;
  for (double w : grants_.cpu_w) s.cpu_w.push_back(noisy(w));
  for (double w : grants_.gpu_w) s.gpu_w.push_back(noisy(w));
  s.mem_w = noisy(grants_.mem_w);  // DRAM RAPL domain
  s.node_w = std::nullopt;         // no node sensor on this platform
  double est = *s.mem_w;
  for (double w : s.cpu_w) est += w;
  for (double w : s.gpu_w) est += w;
  s.node_estimate_w = est;
  return s;
}

}  // namespace fluxpower::hwsim
