// intel_xeon.hpp — generic Intel Xeon node model.
//
// Variorum's vendor-neutrality claim covers Intel (and ARM) platforms where
// *no node-level power dial exists*: "best effort power capping at the node
// level distributes power uniformly across available sockets" (§II-C). This
// model provides that platform shape — RAPL per-socket capping, per-socket
// and DRAM sensors, no node sensor — so the best-effort path in the
// Variorum layer has real coverage beyond IBM/AMD.
#pragma once

#include "hwsim/node.hpp"

namespace fluxpower::hwsim {

struct IntelXeonConfig {
  int sockets = 2;
  int gpus = 0;  ///< optional PCIe accelerators with NVML-style capping

  double cpu_idle_w = 60.0;
  double gpu_idle_w = 30.0;
  double mem_idle_w = 35.0;
  double base_w = 80.0;

  double cpu_max_w = 350.0;
  double cpu_min_cap_w = 75.0;  ///< RAPL PL1 floor
  double gpu_max_w = 300.0;
  double gpu_min_cap_w = 100.0;
  double mem_max_w = 120.0;
};

class IntelXeonNode final : public Node {
 public:
  IntelXeonNode(sim::Simulation& sim, std::string hostname,
                IntelXeonConfig config = {});

  int socket_count() const override { return config_.sockets; }
  int gpu_count() const override { return config_.gpus; }
  const char* vendor_name() const override { return "intel_xeon"; }

  LoadDemand idle_demand() const override;
  PowerSample read_sensors() override;

  CapResult do_set_socket_power_cap(int socket, double watts) override;
  CapResult do_set_gpu_power_cap(int gpu, double watts) override;
  // set_node_power_cap intentionally not overridden: no node dial exists
  // in the hardware; node capping must go through Variorum's best-effort
  // socket distribution.

  const IntelXeonConfig& config() const noexcept { return config_; }

 protected:
  Grants compute_grants(const LoadDemand& demand) const override;

 private:
  IntelXeonConfig config_;
};

}  // namespace fluxpower::hwsim
