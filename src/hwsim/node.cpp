#include "hwsim/node.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fluxpower::hwsim {

const char* domain_type_name(DomainType type) noexcept {
  switch (type) {
    case DomainType::Node: return "node";
    case DomainType::CpuSocket: return "cpu";
    case DomainType::Memory: return "mem";
    case DomainType::Gpu: return "gpu";
    case DomainType::Oam: return "oam";
  }
  return "unknown";
}

const char* cap_status_name(CapStatus status) noexcept {
  switch (status) {
    case CapStatus::Ok: return "ok";
    case CapStatus::Clamped: return "clamped";
    case CapStatus::OutOfRange: return "out-of-range";
    case CapStatus::Unsupported: return "unsupported";
    case CapStatus::PermissionDenied: return "permission-denied";
    case CapStatus::IoError: return "io-error";
  }
  return "unknown";
}

double Grants::gpu_total() const {
  return std::accumulate(gpu_w.begin(), gpu_w.end(), 0.0);
}

double Grants::cpu_total() const {
  return std::accumulate(cpu_w.begin(), cpu_w.end(), 0.0);
}

double Grants::total() const {
  return cpu_total() + gpu_total() + mem_w + base_w;
}

Node::Node(sim::Simulation& sim, std::string hostname)
    : sim_(sim), hostname_(std::move(hostname)),
      rng_(std::hash<std::string>{}(hostname_)) {}

namespace {
LoadDemand scaled(LoadDemand d, double factor) {
  for (double& w : d.cpu_w) w *= factor;
  for (double& w : d.gpu_w) w *= factor;
  d.mem_w *= factor;
  return d;
}
}  // namespace

void Node::set_demand(const LoadDemand& demand) {
  requested_ = demand;
  refresh();
}

void Node::idle() { set_demand(LoadDemand{}); }

void Node::refresh() {
  // Re-floor the raw request against the current idle floor (which depends
  // on the low-power state), then recompute grants under the active caps.
  LoadDemand d = requested_;
  const LoadDemand floor =
      low_power_ ? scaled(idle_demand(), low_power_factor()) : idle_demand();
  d.cpu_w.resize(floor.cpu_w.size(), 0.0);
  d.gpu_w.resize(floor.gpu_w.size(), 0.0);
  for (std::size_t i = 0; i < d.cpu_w.size(); ++i) {
    d.cpu_w[i] = std::max(d.cpu_w[i], floor.cpu_w[i]);
  }
  for (std::size_t i = 0; i < d.gpu_w.size(); ++i) {
    d.gpu_w[i] = std::max(d.gpu_w[i], floor.gpu_w[i]);
  }
  d.mem_w = std::max(d.mem_w, floor.mem_w);
  demand_ = std::move(d);
  grants_ = compute_grants(demand_);
  meter_.update(sim_.now(), grants_.total());
}

double Node::noisy(double w) {
  if (sensor_noise_ <= 0.0) return w;
  return std::max(0.0, w * (1.0 + rng_.normal(0.0, sensor_noise_)));
}

PowerSample Node::sample() {
  PowerSample s = read_sensors();
  if (fault_tap_ != nullptr) fault_tap_->on_sample(*this, s);
  return s;
}

CapResult Node::set_node_power_cap(double watts) {
  if (fault_tap_ != nullptr &&
      fault_tap_->fail_cap_write(*this, DomainType::Node)) {
    ++cap_write_faults_;
    return {CapStatus::IoError, std::nullopt};
  }
  return do_set_node_power_cap(watts);
}

CapResult Node::clear_node_power_cap() {
  if (fault_tap_ != nullptr &&
      fault_tap_->fail_cap_write(*this, DomainType::Node)) {
    ++cap_write_faults_;
    return {CapStatus::IoError, std::nullopt};
  }
  return do_clear_node_power_cap();
}

CapResult Node::set_gpu_power_cap(int gpu, double watts) {
  if (fault_tap_ != nullptr &&
      fault_tap_->fail_cap_write(*this, DomainType::Gpu)) {
    ++cap_write_faults_;
    return {CapStatus::IoError, std::nullopt};
  }
  return do_set_gpu_power_cap(gpu, watts);
}

CapResult Node::set_socket_power_cap(int socket, double watts) {
  if (fault_tap_ != nullptr &&
      fault_tap_->fail_cap_write(*this, DomainType::CpuSocket)) {
    ++cap_write_faults_;
    return {CapStatus::IoError, std::nullopt};
  }
  return do_set_socket_power_cap(socket, watts);
}

CapResult Node::do_set_node_power_cap(double /*watts*/) {
  return {CapStatus::Unsupported, std::nullopt};
}

CapResult Node::do_clear_node_power_cap() {
  return {CapStatus::Unsupported, std::nullopt};
}

CapResult Node::do_set_gpu_power_cap(int /*gpu*/, double /*watts*/) {
  return {CapStatus::Unsupported, std::nullopt};
}

std::optional<double> Node::gpu_power_cap(int gpu) const {
  if (gpu < 0 || static_cast<std::size_t>(gpu) >= gpu_caps_.size()) {
    return std::nullopt;
  }
  return gpu_caps_[static_cast<std::size_t>(gpu)];
}

CapResult Node::do_set_socket_power_cap(int /*socket*/, double /*watts*/) {
  return {CapStatus::Unsupported, std::nullopt};
}

std::optional<double> Node::socket_power_cap(int socket) const {
  if (socket < 0 || static_cast<std::size_t>(socket) >= socket_caps_.size()) {
    return std::nullopt;
  }
  return socket_caps_[static_cast<std::size_t>(socket)];
}

}  // namespace fluxpower::hwsim
