// node.hpp — abstract compute-node model.
//
// A Node owns the vendor-neutral state every platform shares (hostname,
// workload demand, energy meter, sensor noise) and defers two things to the
// vendor subclass: how demand + caps become *granted* power
// (compute_grants) and which sensors exist (sample). All power-management
// software in this repository — Variorum, the monitor, the manager — touches
// hardware exclusively through this interface.
#pragma once

#include <memory>
#include <string>

#include "hwsim/energy_meter.hpp"
#include "hwsim/types.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace fluxpower::hwsim {

class Node;

/// Fault-injection hook installed on a node (see src/faultsim). The tap sits
/// between the public telemetry/capping API and the vendor implementation:
/// every sensor sweep passes through on_sample (dropouts, stuck-at readings,
/// dead sensors) and every cap write may be failed transiently. A null tap —
/// the default — is a perfect machine and costs one pointer compare.
class NodeFaultTap {
 public:
  virtual ~NodeFaultTap() = default;

  /// Mutate a freshly read sample in place (clear domains, freeze values)
  /// and set sample.sensor_fault when the sweep should read as failed.
  virtual void on_sample(Node& node, PowerSample& sample) = 0;

  /// Return true to fail the pending cap write with CapStatus::IoError.
  virtual bool fail_cap_write(Node& node, DomainType domain) = 0;
};

class Node {
 public:
  Node(sim::Simulation& sim, std::string hostname);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& hostname() const noexcept { return hostname_; }
  sim::Simulation& simulation() noexcept { return sim_; }

  virtual int socket_count() const = 0;
  virtual int gpu_count() const = 0;
  virtual const char* vendor_name() const = 0;

  /// Idle power floors (absolute watts at zero load).
  virtual LoadDemand idle_demand() const = 0;

  // -- Workload interface ---------------------------------------------------

  /// Set the instantaneous demand. Recomputes grants and advances the energy
  /// integral. Demands below the idle floor are raised to it.
  void set_demand(const LoadDemand& demand);

  /// Return the node to idle draw.
  void idle();

  const LoadDemand& demand() const noexcept { return demand_; }

  /// Power granted per domain under the active caps — the workload model
  /// reads this to derive its progress rate.
  const Grants& grants() const noexcept { return grants_; }

  /// Instantaneous total node draw (watts), including base power.
  double node_draw_w() const noexcept { return grants_.total(); }

  /// Exact energy consumed since construction (or last reset_energy).
  double energy_joules() const { return meter_.joules(sim_.now()); }
  void reset_energy() { meter_.reset(sim_.now()); }

  // -- Low-power (idle) state -------------------------------------------------
  // Real clusters park unallocated nodes in deeper C-states with fans
  // spun down; the power manager's idle-node policy drives this. In the
  // low-power state the node's idle floors are scaled by
  // `low_power_factor()`; load demands still raise draw normally (waking
  // the node is instantaneous in the model).
  void set_low_power_state(bool enabled) {
    if (low_power_ == enabled) return;
    low_power_ = enabled;
    refresh();
  }
  bool low_power_state() const noexcept { return low_power_; }
  static constexpr double low_power_factor() { return 0.62; }

  // -- Host-side interference accounting -------------------------------------
  // Telemetry agents and OS daemons steal CPU time from the application on
  // this node. Producers (e.g. the monitor's node-agent) deposit stolen
  // seconds here; the workload runtime drains them and loses that much
  // progress. This is how the monitor's measurable overhead (§IV-B) arises.
  void add_stolen_time(double seconds) { stolen_s_ += seconds; }
  double drain_stolen_time() {
    const double s = stolen_s_;
    stolen_s_ = 0.0;
    return s;
  }
  /// Undrained stolen seconds (read-only; the twin codec digests this —
  /// pending interference is sim state the runtime has not yet consumed).
  double stolen_time() const noexcept { return stolen_s_; }

  // -- Telemetry ------------------------------------------------------------

  /// Read the node's power sensors. Which fields are populated is
  /// vendor-specific. Sensor readings include multiplicative noise of
  /// `sensor_noise` (relative sigma) when enabled. The installed fault tap
  /// (if any) is applied to the vendor's reading before it is returned.
  PowerSample sample();

  /// Relative sensor noise sigma (0 disables). Sensors on real machines
  /// jitter at the ~0.5% level; tables integrate the exact meter instead.
  void set_sensor_noise(double sigma) { sensor_noise_ = sigma; }
  void reseed_sensor_noise(std::uint64_t seed) { rng_.reseed(seed); }
  /// Sensor-noise substream position (twin codec: the next noisy read of a
  /// restored replica must draw the same deviate as the original run).
  const util::Rng& sensor_rng() const noexcept { return rng_; }

  // -- Fault injection -------------------------------------------------------

  /// Install (or, with nullptr, remove) the fault tap. The tap must outlive
  /// the attachment; src/faultsim's FaultPlane detaches itself on
  /// destruction.
  void set_fault_tap(NodeFaultTap* tap) noexcept { fault_tap_ = tap; }
  NodeFaultTap* fault_tap() const noexcept { return fault_tap_; }

  /// Lifetime count of cap writes failed by the tap with IoError.
  std::uint64_t cap_write_faults() const noexcept { return cap_write_faults_; }

  // -- Capping --------------------------------------------------------------
  // Public entry points are non-virtual: they consult the fault tap (a
  // faulted write returns CapStatus::IoError without reaching the firmware)
  // and then defer to the protected vendor virtuals below.

  /// Node-level power cap (direct hardware support on IBM AC922 only).
  CapResult set_node_power_cap(double watts);
  CapResult clear_node_power_cap();
  virtual std::optional<double> node_power_cap() const { return node_cap_; }

  /// Per-GPU power cap (NVML on Lassen; ROCm-SMI on Tioga, fused off).
  CapResult set_gpu_power_cap(int gpu, double watts);
  virtual std::optional<double> gpu_power_cap(int gpu) const;

  /// Per-socket cap (RAPL-style; used by best-effort node capping on
  /// platforms without a node dial).
  CapResult set_socket_power_cap(int socket, double watts);
  virtual std::optional<double> socket_power_cap(int socket) const;

 protected:
  /// Vendor rule: demand + caps -> granted watts per domain.
  virtual Grants compute_grants(const LoadDemand& demand) const = 0;

  /// Vendor sensor sweep (see sample() for the public contract).
  virtual PowerSample read_sensors() = 0;

  /// Vendor cap implementations. Defaults report Unsupported.
  virtual CapResult do_set_node_power_cap(double watts);
  virtual CapResult do_clear_node_power_cap();
  virtual CapResult do_set_gpu_power_cap(int gpu, double watts);
  virtual CapResult do_set_socket_power_cap(int socket, double watts);

  /// Recompute grants from the current demand and update the energy meter.
  /// Must be called by subclasses after any cap change.
  void refresh();

  double noisy(double w);

  sim::Simulation& sim_;
  std::string hostname_;
  LoadDemand requested_;  ///< raw workload request (pre-flooring)
  LoadDemand demand_;     ///< request floored at the active idle floor
  Grants grants_;
  EnergyMeter meter_;
  util::Rng rng_;
  double sensor_noise_ = 0.0;
  std::optional<double> node_cap_;
  std::vector<std::optional<double>> gpu_caps_;
  std::vector<std::optional<double>> socket_caps_;
  double stolen_s_ = 0.0;
  bool low_power_ = false;
  NodeFaultTap* fault_tap_ = nullptr;
  std::uint64_t cap_write_faults_ = 0;
};

}  // namespace fluxpower::hwsim
