// types.hpp — shared hardware-simulation value types.
//
// The simulator reproduces the *interfaces* the paper's framework sees:
// per-domain instantaneous power sensors and per-domain cap controls, with
// each vendor exposing a different subset (see DESIGN.md). Applications
// express load as absolute per-device power demand; vendor node models turn
// demand + active caps into granted power.
//
// `PowerSample` is the telemetry currency of the whole stack: it is stored
// verbatim in the monitor's ring buffer, merged through the TBON, and only
// rendered to Variorum JSON at the system's edges. That is why it is a flat
// trivially-copyable struct with fixed-capacity arrays instead of a bag of
// strings/vectors/optionals — one sample costs `sizeof(PowerSample)` bytes
// and zero heap allocations, wherever it travels.
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fluxpower::hwsim {

/// Power domains a vendor may expose. `Oam` is AMD's accelerator module
/// (two GPU dies behind one sensor) — Tioga reports OAM power, not per-GPU.
enum class DomainType { Node, CpuSocket, Memory, Gpu, Oam };

const char* domain_type_name(DomainType type) noexcept;

/// Result of a cap-setting operation. `Unsupported` models hardware without
/// the control (e.g. node-level capping on Intel/AMD); `PermissionDenied`
/// models controls fused off for users (Tioga's early-access firmware);
/// `Clamped` means the request was applied after clamping into the valid
/// range, mirroring OPAL's behaviour for out-of-range soft caps; `IoError`
/// is a *transient* driver/firmware communication failure (the §V
/// intermittent-cap-failure class) — retrying the same write may succeed.
enum class CapStatus {
  Ok,
  Clamped,
  OutOfRange,
  Unsupported,
  PermissionDenied,
  IoError
};

struct CapResult {
  CapStatus status = CapStatus::Ok;
  /// Cap actually in effect after the call (absent when unsupported/denied).
  std::optional<double> applied_watts;

  bool ok() const noexcept {
    return status == CapStatus::Ok || status == CapStatus::Clamped;
  }
};

const char* cap_status_name(CapStatus status) noexcept;

/// Absolute instantaneous power demand of the workload on one node.
/// Values are watts *including* each device's idle floor; an idle node is
/// represented by demands equal to the idle floors (see Node::idle()).
struct LoadDemand {
  std::vector<double> cpu_w;  ///< per socket
  std::vector<double> gpu_w;  ///< per GPU (per GCD on AMD)
  double mem_w = 0.0;
  bool operator==(const LoadDemand&) const = default;
};

/// Power actually granted to each domain after applying the active caps.
struct Grants {
  std::vector<double> cpu_w;
  std::vector<double> gpu_w;
  double mem_w = 0.0;
  double base_w = 0.0;  ///< uncore/fans/board: constant, never capped

  double gpu_total() const;
  double cpu_total() const;
  double total() const;
};

/// Sensor-count ceilings across every supported platform. AC922 has 2
/// sockets + 4 GPUs, EX235a 1 socket + 4 OAM sensors, Grace 1 socket, and
/// Xeon 2 sockets + a configurable PCIe accelerator set. The headroom makes
/// these safe for hypothetical denser nodes without growing the sample.
inline constexpr std::size_t kMaxSockets = 4;
inline constexpr std::size_t kMaxGpuSensors = 8;
inline constexpr std::size_t kMaxHostnameLen = 31;

/// Fixed-capacity inline vector of doubles — the per-domain telemetry array.
/// Deliberately a small subset of std::vector's interface so the vendor
/// sampling code and every consumer read identically against either type.
/// push_back beyond capacity drops the value: a sensor sweep can never
/// overrun the sample, it can only under-report (and no shipped platform
/// comes close to the ceiling).
template <std::size_t Capacity>
struct FixedWattsVec {
  double data[Capacity] = {};
  std::size_t count = 0;

  static constexpr std::size_t capacity() noexcept { return Capacity; }
  std::size_t size() const noexcept { return count; }
  bool empty() const noexcept { return count == 0; }
  void clear() noexcept { count = 0; }
  void reserve(std::size_t) noexcept {}  // layout is fixed; parity with vector
  void push_back(double w) noexcept {
    if (count < Capacity) data[count++] = w;
  }
  double& operator[](std::size_t i) noexcept { return data[i]; }
  const double& operator[](std::size_t i) const noexcept { return data[i]; }
  double* begin() noexcept { return data; }
  double* end() noexcept { return data + count; }
  const double* begin() const noexcept { return data; }
  const double* end() const noexcept { return data + count; }
  bool operator==(const FixedWattsVec& other) const noexcept {
    if (count != other.count) return false;
    for (std::size_t i = 0; i < count; ++i) {
      if (data[i] != other.data[i]) return false;
    }
    return true;
  }
};

/// Optional watts reading without std::optional (which is not guaranteed
/// trivially copyable and doubles the storage granularity). Mirrors the
/// slice of the optional interface the stack uses.
struct OptWatts {
  double watts = 0.0;
  bool present = false;

  OptWatts() = default;
  OptWatts(std::nullopt_t) {}
  OptWatts(double w) : watts(w), present(true) {}
  OptWatts& operator=(std::nullopt_t) {
    watts = 0.0;
    present = false;
    return *this;
  }
  OptWatts& operator=(double w) {
    watts = w;
    present = true;
    return *this;
  }
  bool has_value() const noexcept { return present; }
  explicit operator bool() const noexcept { return present; }
  double operator*() const noexcept { return watts; }
  double value_or(double fallback) const noexcept {
    return present ? watts : fallback;
  }
  void reset() noexcept {
    watts = 0.0;
    present = false;
  }
  bool operator==(const OptWatts&) const = default;
};

/// Fixed-capacity hostname. Hostnames in the simulator are short rank-derived
/// strings ("lassen1023"); anything longer is truncated.
struct FixedHostname {
  char data[kMaxHostnameLen + 1] = {};
  unsigned char len = 0;

  FixedHostname() = default;
  FixedHostname(std::string_view s) { assign(s); }
  FixedHostname& operator=(std::string_view s) {
    assign(s);
    return *this;
  }
  void assign(std::string_view s) {
    len = static_cast<unsigned char>(
        s.size() < kMaxHostnameLen ? s.size() : kMaxHostnameLen);
    for (unsigned char i = 0; i < len; ++i) data[i] = s[i];
    data[len] = '\0';
  }
  bool empty() const noexcept { return len == 0; }
  std::size_t size() const noexcept { return len; }
  const char* c_str() const noexcept { return data; }
  std::string_view view() const noexcept { return {data, len}; }
  operator std::string_view() const noexcept { return view(); }
  std::string str() const { return std::string(view()); }
  bool operator==(const FixedHostname& other) const noexcept {
    return view() == other.view();
  }
  bool operator==(std::string_view other) const noexcept {
    return view() == other;
  }
  friend std::ostream& operator<<(std::ostream& os, const FixedHostname& h) {
    return os << h.view();
  }
};

/// One telemetry sample, the vendor-neutral superset. Vendors that lack a
/// sensor leave the corresponding optional empty — exactly how Variorum
/// surfaces missing domains (§II-A: Tioga has no node or memory sensor).
///
/// Flat POD by design: the monitor stores these raw in its circular buffer
/// and ships them through the TBON untouched; JSON is rendered only at the
/// edges (variorum::render_node_power_json).
struct PowerSample {
  double timestamp_s = 0.0;
  FixedHostname hostname;
  OptWatts node_w;           ///< direct node sensor (IBM only)
  OptWatts node_estimate_w;  ///< conservative CPU+GPU sum
  FixedWattsVec<kMaxSockets> cpu_w;     ///< per socket
  OptWatts mem_w;
  FixedWattsVec<kMaxGpuSensors> gpu_w;  ///< per GPU, or per OAM when gpu_is_oam
  bool gpu_is_oam = false;
  /// The sensor sweep returned an error (dead node, dropped-out or stuck
  /// domain). Consumers must treat the power fields as unreliable; the
  /// monitor counts and discards such sweeps instead of buffering them.
  /// Occupies tail padding: sizeof(PowerSample) is unchanged by this flag.
  bool sensor_fault = false;

  /// Best available node power: the direct sensor when present, else the
  /// conservative estimate.
  double best_node_w() const {
    if (node_w) return *node_w;
    return node_estimate_w.value_or(0.0);
  }
};

static_assert(std::is_trivially_copyable_v<PowerSample>,
              "PowerSample is the wire/storage telemetry format and must "
              "stay trivially copyable");

}  // namespace fluxpower::hwsim
