// types.hpp — shared hardware-simulation value types.
//
// The simulator reproduces the *interfaces* the paper's framework sees:
// per-domain instantaneous power sensors and per-domain cap controls, with
// each vendor exposing a different subset (see DESIGN.md). Applications
// express load as absolute per-device power demand; vendor node models turn
// demand + active caps into granted power.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fluxpower::hwsim {

/// Power domains a vendor may expose. `Oam` is AMD's accelerator module
/// (two GPU dies behind one sensor) — Tioga reports OAM power, not per-GPU.
enum class DomainType { Node, CpuSocket, Memory, Gpu, Oam };

const char* domain_type_name(DomainType type) noexcept;

/// Result of a cap-setting operation. `Unsupported` models hardware without
/// the control (e.g. node-level capping on Intel/AMD); `PermissionDenied`
/// models controls fused off for users (Tioga's early-access firmware);
/// `Clamped` means the request was applied after clamping into the valid
/// range, mirroring OPAL's behaviour for out-of-range soft caps.
enum class CapStatus { Ok, Clamped, OutOfRange, Unsupported, PermissionDenied };

struct CapResult {
  CapStatus status = CapStatus::Ok;
  /// Cap actually in effect after the call (absent when unsupported/denied).
  std::optional<double> applied_watts;

  bool ok() const noexcept {
    return status == CapStatus::Ok || status == CapStatus::Clamped;
  }
};

const char* cap_status_name(CapStatus status) noexcept;

/// Absolute instantaneous power demand of the workload on one node.
/// Values are watts *including* each device's idle floor; an idle node is
/// represented by demands equal to the idle floors (see Node::idle()).
struct LoadDemand {
  std::vector<double> cpu_w;  ///< per socket
  std::vector<double> gpu_w;  ///< per GPU (per GCD on AMD)
  double mem_w = 0.0;
  bool operator==(const LoadDemand&) const = default;
};

/// Power actually granted to each domain after applying the active caps.
struct Grants {
  std::vector<double> cpu_w;
  std::vector<double> gpu_w;
  double mem_w = 0.0;
  double base_w = 0.0;  ///< uncore/fans/board: constant, never capped

  double gpu_total() const;
  double cpu_total() const;
  double total() const;
};

/// One telemetry sample, the vendor-neutral superset. Vendors that lack a
/// sensor leave the corresponding optional empty — exactly how Variorum
/// surfaces missing domains (§II-A: Tioga has no node or memory sensor).
struct PowerSample {
  double timestamp_s = 0.0;
  std::string hostname;
  std::optional<double> node_w;           ///< direct node sensor (IBM only)
  std::optional<double> node_estimate_w;  ///< conservative CPU+GPU sum
  std::vector<double> cpu_w;              ///< per socket
  std::optional<double> mem_w;
  std::vector<double> gpu_w;  ///< per GPU, or per OAM when gpu_is_oam
  bool gpu_is_oam = false;

  /// Best available node power: the direct sensor when present, else the
  /// conservative estimate.
  double best_node_w() const {
    if (node_w) return *node_w;
    return node_estimate_w.value_or(0.0);
  }
};

}  // namespace fluxpower::hwsim
