#include "manager/fpp.hpp"

#include <algorithm>
#include <cmath>

namespace fluxpower::manager {

FppController::FppController(FppConfig config, double initial_cap_w)
    : config_(config), cap_cur_(initial_cap_w) {}

void FppController::add_power_sample(double watts) {
  buffer_.push_back(watts);
}

void FppController::update_period() {
  const auto est =
      dsp::find_period(buffer_, config_.sample_period_s, config_.period_method);
  if (est) period_ = est->period_s;
}

double FppController::get_gpu_cap(double t_cur,
                                  std::optional<double> p_cap_prev,
                                  double p_cap_cur, double t_prev) {
  const double delta = t_cur - t_prev;
  const double delta_abs = std::abs(delta);

  // Lines 19–21: first invocation (no previous cap) or already converged.
  if (!p_cap_prev.has_value() || converged_) return p_cap_cur;

  if (delta_abs <= config_.converge_th_s) {
    // Reproduction note (see FppConfig): probe downward once before
    // latching convergence, mirroring the paper's observed behaviour.
    if (config_.exploratory_first_reduce && !probed_) {
      probed_ = true;
      pre_probe_cap_ = p_cap_cur;
      ++reductions_;
      return p_cap_cur - config_.p_reduce_w;
    }
    converged_ = true;
    return p_cap_cur;
  }
  if (delta < 0.0 && delta_abs > config_.converge_th_s &&
      delta_abs < config_.change_th_s && !probed_) {
    // Period shrank mildly: the application is not limited by the current
    // cap — reclaim power. At most one downward probe per convergence
    // cycle: without this gate the reduce branch re-fires on the period
    // shrink that follows every give-back step, and the controller spirals
    // downward on compute-bound applications (reproduction note; the
    // paper's runs converge quickly for both applications, Fig 6).
    probed_ = true;
    pre_probe_cap_ = p_cap_cur;
    ++reductions_;
    return p_cap_cur - config_.p_reduce_w;
  }
  // Period moved substantially (stretched or jumped): give power back.
  // When a probe caused the stretch, restore the pre-probe cap in one move
  // — the paper's "FPP first tries to reduce power but sees that the
  // period doubles and instantly gives back the power" (§IV-D). Otherwise
  // step up by the level matching the magnitude of the move.
  ++increases_;
  if (pre_probe_cap_ && p_cap_cur < *pre_probe_cap_) {
    const double restored = *pre_probe_cap_;
    pre_probe_cap_.reset();
    return restored;
  }
  const auto idx = static_cast<std::size_t>(std::min(delta_abs / 5.0, 2.0));
  return p_cap_cur + config_.powercap_levels_w[idx];
}

double FppController::control(double gpu_power_lim_w) {
  // Final estimate over the full window. The buffer is reset right below
  // (Algorithm 1 line 42), so the estimator may consume it as scratch
  // instead of copying — bit-identical to the periodic update_period()
  // path on the same signal.
  const auto est = dsp::find_period_consume(buffer_, config_.sample_period_s,
                                            config_.period_method);
  if (est) period_ = est->period_s;
  const double ceiling = std::min(config_.max_gpu_cap_w, gpu_power_lim_w);
  const double t_cur = period_.value_or(t_prev_);

  double next = get_gpu_cap(t_cur, cap_prev_, cap_cur_, t_prev_);
  next = std::clamp(next, config_.min_gpu_cap_w, ceiling);

  t_prev_ = t_cur;
  cap_prev_ = cap_cur_;
  cap_cur_ = next;
  buffer_.clear();  // Algorithm 1 line 42: reset FFT buffer
  return next;
}

}  // namespace fluxpower::manager
