// fpp.hpp — the FFT-based dynamic power policy (Algorithm 1), per GPU.
//
// One controller instance runs per GPU, allowing non-uniform power
// distribution among the GPUs of a node. The controller is fed power
// samples (every 2 s); FFT-GET-PERIOD refreshes the period estimate every
// 30 s; the MAIN loop calls control() every 90 s, which runs GET-GPU-CAP,
// returns the next cap, and resets the FFT buffer.
//
// While used on GPUs here, nothing in the controller is GPU-specific — it
// consumes a power signal and emits a cap, so it applies unchanged to
// socket- or memory-level capping (§III-B2).
#pragma once

#include <optional>
#include <vector>

#include "manager/policy.hpp"

namespace fluxpower::manager {

class FppController {
 public:
  /// `initial_cap_w` is P_cap_cur at start: min(Max_GPU_Cap, GPU_Power_Lim).
  FppController(FppConfig config, double initial_cap_w);

  /// STOREPOWERDATA: append one sample of this GPU's power.
  void add_power_sample(double watts);

  /// FFT-GET-PERIOD body: re-estimate the period from the current buffer.
  /// Call every fft_update_s. No-op when fewer than 4 samples accumulated.
  void update_period();

  /// MAIN loop body: run GET-GPU-CAP against the latest period estimate and
  /// the ceiling `gpu_power_lim_w` (derived from the node-level limit),
  /// reset the FFT buffer, and return the cap to apply.
  double control(double gpu_power_lim_w);

  // Introspection for tests and timeline benches.
  double current_cap_w() const noexcept { return cap_cur_; }
  bool converged() const noexcept { return converged_; }
  std::optional<double> last_period_s() const noexcept { return period_; }
  int reductions() const noexcept { return reductions_; }
  int increases() const noexcept { return increases_; }
  const FppConfig& config() const noexcept { return config_; }

  /// GET-GPU-CAP as a pure function of the controller state (exposed for
  /// property tests over the threshold lattice).
  double get_gpu_cap(double t_cur, std::optional<double> p_cap_prev,
                     double p_cap_cur, double t_prev);

 private:
  FppConfig config_;
  std::vector<double> buffer_;
  std::optional<double> period_;  ///< latest T from FFT-GET-PERIOD
  double t_prev_ = 0.0;           ///< T_prev (initialized to 0, Algorithm 1)
  std::optional<double> cap_prev_;
  double cap_cur_;
  bool converged_ = false;  ///< F_converge latch
  bool probed_ = false;     ///< exploratory reduction performed
  std::optional<double> pre_probe_cap_;  ///< cap to restore if probe hurt
  int reductions_ = 0;
  int increases_ = 0;
};

}  // namespace fluxpower::manager
