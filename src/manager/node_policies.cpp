#include "manager/node_policies.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "manager/power_manager.hpp"
#include "policy/engine.hpp"
#include "policy/state_codec.hpp"
#include "util/log.hpp"
#include "variorum/variorum.hpp"

namespace fluxpower::manager {

namespace {
// Only a transient driver/firmware failure warrants a retry; permanent
// refusals (Unsupported, PermissionDenied) are the platform's answer.
bool transient(const hwsim::CapResult& r) {
  return r.status == hwsim::CapStatus::IoError;
}
}  // namespace

/// NodePolicy::None — the node applies nothing; the static cap (if any)
/// was installed at load and stands.
class NonePolicyPlugin final : public policy::NodePolicyPlugin {
 public:
  explicit NonePolicyPlugin(PowerManagerModule& mod) : mod_(mod) {}
  const char* name() const noexcept override { return "none"; }
  bool enforce() override { return true; }

 private:
  [[maybe_unused]] PowerManagerModule& mod_;
};

/// IbmDefaultNodeCap — hand the limit to the platform's node dial (OPAL on
/// AC922); firmware derives conservative device caps.
class IbmNodeCapPlugin final : public policy::NodePolicyPlugin {
 public:
  explicit IbmNodeCapPlugin(PowerManagerModule& mod) : mod_(mod) {}
  const char* name() const noexcept override { return "ibm-default"; }
  bool enforce() override {
    hwsim::Node* node = mod_.broker_->node();
    const double cap = mod_.node_limit_w_ > 0.0 ? mod_.node_limit_w_
                                                : mod_.config_.node_peak_w;
    const auto result = variorum::cap_best_effort_node_power_limit(*node, cap);
    if (!result.ok()) {
      util::log_warning(std::string("power-manager: node cap failed: ") +
                        hwsim::cap_status_name(result.status));
    }
    return !transient(result);
  }

 private:
  PowerManagerModule& mod_;
};

/// DirectGpuBudget — measure the node's non-managed draw and cap each
/// device uniformly at the derived budget.
class GpuBudgetPlugin final : public policy::NodePolicyPlugin {
 public:
  explicit GpuBudgetPlugin(PowerManagerModule& mod) : mod_(mod) {}
  const char* name() const noexcept override { return "gpu-budget"; }
  bool wants_control_tick() const noexcept override { return true; }
  bool enforce() override {
    const double budget = mod_.derive_gpu_budget_w();
    if (budget <= 0.0) return true;
    return mod_.apply_uniform_cap(budget);
  }

 private:
  PowerManagerModule& mod_;
};

/// Fpp — the budget gives each controller its ceiling; the module-owned
/// FFT engine (typed PowerSample windows) does the dynamic adjustment.
class FppNodePlugin final : public policy::NodePolicyPlugin {
 public:
  explicit FppNodePlugin(PowerManagerModule& mod) : mod_(mod) {}
  const char* name() const noexcept override { return "fpp"; }
  bool wants_control_tick() const noexcept override { return true; }
  bool wants_fpp_engine() const noexcept override { return true; }
  void on_limit_refresh() override {
    // A raised limit starts a new FPP epoch: rebuild the controllers so
    // Algorithm 1's MAIN re-derives P_cap_cur and the convergence latch
    // resets; a job inheriting freed power rides the higher ceiling.
    const FppConfig dcfg = mod_.domain_fpp_config();
    for (auto& c : mod_.fpp_) {
      c = std::make_unique<FppController>(dcfg, dcfg.max_gpu_cap_w);
    }
    mod_.time_since_fpp_control_s_ = 0.0;
  }
  bool enforce() override {
    // Clamp each controller's cap to the fresh budget; the 90 s control
    // loop does the dynamic adjustment.
    hwsim::Node* node = mod_.broker_->node();
    const double budget = mod_.derive_gpu_budget_w();
    bool ok = true;
    for (std::size_t i = 0; i < mod_.fpp_.size(); ++i) {
      const double cap = std::min(mod_.fpp_[i]->current_cap_w(), budget);
      if (mod_.manages_gpus()) {
        ok = ok && !transient(variorum::cap_gpu_power_limit(
                       *node, static_cast<int>(i), cap));
      } else {
        ok = ok &&
             !transient(node->set_socket_power_cap(static_cast<int>(i), cap));
      }
    }
    return ok;
  }

 private:
  PowerManagerModule& mod_;
};

/// ProgressBased — probe-and-hold capping guarded by the measured progress
/// rate (state machine identical to the pre-plane module logic).
class ProgressNodePlugin final : public policy::NodePolicyPlugin {
 public:
  explicit ProgressNodePlugin(PowerManagerModule& mod) : mod_(mod) {}
  const char* name() const noexcept override { return "progress"; }
  bool wants_progress() const noexcept override { return true; }
  bool wants_control_tick() const noexcept override { return true; }
  double progress_tick_period_s() const noexcept override {
    return mod_.config_.progress.control_period_s;
  }

  void on_progress(double work_done, double now_s) override {
    if (work_done < 0.0) return;
    if (last_work_ >= 0.0 && work_done >= last_work_ && now_s > last_t_) {
      rate_ = (work_done - last_work_) / (now_s - last_t_);
    } else if (work_done < last_work_) {
      // A new job started on this node: forget the previous one's state.
      reset();
    }
    last_work_ = work_done;
    last_t_ = now_s;
  }

  void on_limit_refresh() override {
    // New headroom: re-baseline and probe again from the fresh budget.
    reset();
  }

  void on_progress_tick() override {
    hwsim::Node* node = mod_.broker_->node();
    if (node == nullptr) return;
    const FppConfig dcfg = mod_.domain_fpp_config();  // reuses the cap ranges
    const double budget = mod_.derive_gpu_budget_w();
    if (rate_ < 0.0) {
      // No progress signal (idle node, or a job without reporting): behave
      // like plain budget enforcement.
      state_ = State::Baseline;
      cap_w_ = 0.0;
    } else {
      switch (state_) {
        case State::Baseline:
          // One full control window at the budget establishes the baseline.
          baseline_ = rate_;
          last_good_w_ = budget;
          cap_w_ = std::max(dcfg.min_gpu_cap_w,
                            budget - mod_.config_.progress.step_w);
          state_ = State::Probing;
          break;
        case State::Probing:
          if (rate_ >=
              (1.0 - mod_.config_.progress.tolerance) * baseline_) {
            // Progress unharmed: keep the saving and probe further down.
            last_good_w_ = cap_w_;
            const double next = std::max(
                dcfg.min_gpu_cap_w, cap_w_ - mod_.config_.progress.step_w);
            if (next == cap_w_) {
              state_ = State::Hold;  // at the floor
            }
            cap_w_ = next;
          } else {
            // Progress degraded: restore the last good cap and hold.
            cap_w_ = last_good_w_;
            state_ = State::Hold;
          }
          break;
        case State::Hold:
          break;
      }
    }

    const double cap = cap_w_ > 0.0 ? std::min(cap_w_, budget) : budget;
    mod_.apply_uniform_cap(cap);
  }

  bool enforce() override {
    // Budget refresh must respect the probing loop's active cap.
    const double budget = mod_.derive_gpu_budget_w();
    if (budget <= 0.0) return true;
    const double cap = cap_w_ > 0.0 ? std::min(cap_w_, budget) : budget;
    return mod_.apply_uniform_cap(cap);
  }

  double progress_rate() const noexcept override { return rate_; }
  double progress_cap_w() const noexcept override { return cap_w_; }
  bool progress_holding() const noexcept override {
    return state_ == State::Hold;
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    policy::state_put_u32(out, static_cast<std::uint32_t>(state_));
    policy::state_put_f64(out, last_work_);
    policy::state_put_f64(out, last_t_);
    policy::state_put_f64(out, rate_);
    policy::state_put_f64(out, baseline_);
    policy::state_put_f64(out, cap_w_);
    policy::state_put_f64(out, last_good_w_);
  }

 private:
  enum class State : std::uint32_t { Baseline, Probing, Hold };
  void reset() {
    state_ = State::Baseline;
    last_work_ = -1.0;
    rate_ = -1.0;
    baseline_ = -1.0;
    cap_w_ = 0.0;
    last_good_w_ = 0.0;
  }

  PowerManagerModule& mod_;
  State state_ = State::Baseline;
  double last_work_ = -1.0;
  double last_t_ = 0.0;
  double rate_ = -1.0;      ///< latest measured work/s
  double baseline_ = -1.0;  ///< rate at the uncapped budget
  double cap_w_ = 0.0;      ///< active probe cap (0 = follow budget)
  double last_good_w_ = 0.0;
};

/// PiBound — PI controller converging the uniform cap to the deepest value
/// whose measured progress degradation stays at the configured bound.
class PiBoundNodePlugin final : public policy::NodePolicyPlugin {
 public:
  explicit PiBoundNodePlugin(PowerManagerModule& mod) : mod_(mod) {}
  const char* name() const noexcept override { return "pi-bound"; }
  bool wants_progress() const noexcept override { return true; }
  bool wants_control_tick() const noexcept override { return true; }
  double progress_tick_period_s() const noexcept override {
    return mod_.config_.pi.control_period_s;
  }

  void on_progress(double work_done, double now_s) override {
    if (work_done < 0.0) return;
    if (last_work_ >= 0.0 && work_done >= last_work_ && now_s > last_t_) {
      rate_ = (work_done - last_work_) / (now_s - last_t_);
    } else if (work_done < last_work_) {
      reset();  // a new job started on this node
    }
    last_work_ = work_done;
    last_t_ = now_s;
  }

  void on_limit_refresh() override {
    // New headroom invalidates the baseline (it was measured under the old
    // budget): re-measure and restart the controller from rest.
    reset();
  }

  void on_progress_tick() override {
    hwsim::Node* node = mod_.broker_->node();
    if (node == nullptr) return;
    const double budget = mod_.derive_gpu_budget_w();
    const double floor_w = mod_.domain_fpp_config().min_gpu_cap_w;
    const PiPolicyConfig& pc = mod_.config_.pi;
    if (rate_ < 0.0) {
      // No progress signal: plain budget enforcement, controller at rest.
      baseline_ = -1.0;
      integral_ = 0.0;
      cap_w_ = 0.0;
    } else if (baseline_ < 0.0) {
      // First full window ran at the budget: that rate is the 100% mark.
      baseline_ = rate_;
      cap_w_ = 0.0;
    } else {
      const double degradation = std::max(0.0, 1.0 - rate_ / baseline_);
      const double error = pc.degradation_bound - degradation;
      const double span = std::max(0.0, budget - floor_w);
      integral_ += error;
      // Anti-windup: keep the integral term within the actuator range so a
      // long under-bound stretch cannot wind up a huge latent saving.
      if (pc.ki > 0.0) {
        integral_ = std::clamp(integral_, 0.0, span / pc.ki);
      } else {
        integral_ = 0.0;
      }
      const double saving =
          std::clamp(pc.kp * error + pc.ki * integral_, 0.0, span);
      cap_w_ = span > 0.0 ? budget - saving : 0.0;
    }
    const double cap = cap_w_ > 0.0 ? std::min(cap_w_, budget) : budget;
    mod_.apply_uniform_cap(cap);
  }

  bool enforce() override {
    const double budget = mod_.derive_gpu_budget_w();
    if (budget <= 0.0) return true;
    const double cap = cap_w_ > 0.0 ? std::min(cap_w_, budget) : budget;
    return mod_.apply_uniform_cap(cap);
  }

  double progress_rate() const noexcept override { return rate_; }
  double progress_cap_w() const noexcept override { return cap_w_; }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    policy::state_put_f64(out, last_work_);
    policy::state_put_f64(out, last_t_);
    policy::state_put_f64(out, rate_);
    policy::state_put_f64(out, baseline_);
    policy::state_put_f64(out, integral_);
    policy::state_put_f64(out, cap_w_);
  }

 private:
  void reset() {
    last_work_ = -1.0;
    rate_ = -1.0;
    baseline_ = -1.0;
    integral_ = 0.0;
    cap_w_ = 0.0;
  }

  PowerManagerModule& mod_;
  double last_work_ = -1.0;
  double last_t_ = 0.0;
  double rate_ = -1.0;
  double baseline_ = -1.0;  ///< rate measured at the full budget
  double integral_ = 0.0;   ///< accumulated error (one sample per tick)
  double cap_w_ = 0.0;      ///< controller output (0 = follow budget)
};

std::unique_ptr<policy::NodePolicyPlugin> make_node_policy_plugin(
    PowerManagerModule& mod, NodePolicy policy) {
  switch (policy) {
    case NodePolicy::None:
      return std::make_unique<NonePolicyPlugin>(mod);
    case NodePolicy::IbmDefaultNodeCap:
      return std::make_unique<IbmNodeCapPlugin>(mod);
    case NodePolicy::DirectGpuBudget:
      return std::make_unique<GpuBudgetPlugin>(mod);
    case NodePolicy::Fpp:
      return std::make_unique<FppNodePlugin>(mod);
    case NodePolicy::ProgressBased:
      return std::make_unique<ProgressNodePlugin>(mod);
    case NodePolicy::PiBound:
      return std::make_unique<PiBoundNodePlugin>(mod);
  }
  return std::make_unique<NonePolicyPlugin>(mod);
}

void register_builtin_node_policies() {
  policy::PolicyEngine& engine = policy::PolicyEngine::global();
  engine.register_node("none", "no node-level enforcement",
                       static_cast<int>(NodePolicy::None));
  engine.register_node("ibm-default", "platform node dial (OPAL)",
                       static_cast<int>(NodePolicy::IbmDefaultNodeCap));
  engine.register_node("gpu-budget", "derived uniform device budget",
                       static_cast<int>(NodePolicy::DirectGpuBudget));
  engine.register_node("fpp", "FFT-based per-device controllers",
                       static_cast<int>(NodePolicy::Fpp));
  engine.register_node("progress", "progress-guarded probe-and-hold capping",
                       static_cast<int>(NodePolicy::ProgressBased));
  engine.register_node("pi-bound",
                       "PI-controlled performance-degradation bound",
                       static_cast<int>(NodePolicy::PiBound));
}

}  // namespace fluxpower::manager
