// node_policies.hpp — built-in node-policy plugins for the policy plane.
//
// Each NodePolicy enumerator maps to a policy::NodePolicyPlugin that acts
// exclusively through the power-manager module's cap primitives (uniform
// caps, the derived device budget, the FPP controller bank), so every watt
// still flows through the existing push/batch/retry/quarantine machinery.
// The plugins observe pushed limits, job.progress events and the typed
// PowerSample windows the module feeds the FPP engine.
#pragma once

#include <memory>

#include "manager/policy.hpp"
#include "policy/policy.hpp"

namespace fluxpower::manager {

class PowerManagerModule;

/// Construct the plugin for `policy`, bound to `mod`. Never null: None maps
/// to a no-op plugin.
std::unique_ptr<policy::NodePolicyPlugin> make_node_policy_plugin(
    PowerManagerModule& mod, NodePolicy policy);

/// Register the built-in node policies (name -> NodePolicy code) with the
/// process-wide PolicyEngine. Idempotent; called from module construction
/// and scenario setup so name resolution works wherever fp_manager is
/// linked.
void register_builtin_node_policies();

}  // namespace fluxpower::manager
