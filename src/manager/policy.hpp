// policy.hpp — power-management policy configuration (§III-B).
//
// The cluster-level policy decides how much power each job (and hence each
// node) may draw; the node-level policy decides how a node enforces its
// limit on the local hardware:
//   * IbmDefaultNodeCap — hand the limit to the platform's node dial
//     (OPAL on AC922). IBM's firmware then derives conservative GPU caps;
//     this is the paper's static baseline (Table III) and what it shows to
//     be wasteful.
//   * DirectGpuBudget — measure the node's non-GPU draw and cap each GPU at
//     (limit − non-GPU)/n_gpus via NVML; the enforcement used under the
//     proportional-sharing evaluation.
//   * Fpp — DirectGpuBudget to obtain the per-GPU ceiling, then the
//     FFT-based controller (Algorithm 1) adjusts each GPU's cap
//     independently below that ceiling.
#pragma once

#include <array>

#include "dsp/period.hpp"

namespace fluxpower::manager {

enum class NodePolicy {
  None,
  IbmDefaultNodeCap,
  DirectGpuBudget,
  Fpp,
  /// Progress-guarded capping: the other §III-B hook ("policies based on
  /// ... measured performance counters, or other progress metrics").
  /// Consumes `job.progress` events, lowers the per-GPU cap in steps while
  /// the measured progress rate stays within tolerance of the baseline,
  /// and restores the last good cap when progress degrades. Unlike FPP it
  /// needs application cooperation (progress reporting) but works on
  /// aperiodic applications where an FFT sees nothing.
  ProgressBased,
  /// PI-controlled degradation bound (PAPERS.md "Sustaining Performance
  /// While Reducing Energy Consumption: A Control Theory Approach"): a
  /// proportional-integral loop steers the uniform device cap so the
  /// measured progress-rate degradation converges to a configured bound —
  /// the deepest cap that still honors the performance contract. Needs
  /// progress reporting, like ProgressBased, but replaces its
  /// probe-and-hold walk with a closed-loop controller that tracks phase
  /// changes instead of latching the first good cap.
  PiBound,
};

const char* node_policy_name(NodePolicy policy) noexcept;

/// ProgressBased parameters.
struct ProgressPolicyConfig {
  double control_period_s = 30.0;
  double step_w = 25.0;      ///< cap reduction per accepted probe
  double tolerance = 0.03;   ///< acceptable relative progress-rate loss
};

/// PiBound parameters. Gains are in watts per unit of relative-degradation
/// error; the integral accumulates one error sample per control tick and is
/// clamped to the actuator range (anti-windup), so the steady-state cap
/// settles where measured degradation equals the bound.
struct PiPolicyConfig {
  double control_period_s = 30.0;
  double degradation_bound = 0.05;  ///< acceptable relative slowdown
  double kp = 400.0;                ///< proportional gain (W per unit error)
  double ki = 8.0;                  ///< integral gain (W per unit error-tick)
};

/// Algorithm 1 parameters (paper defaults; "these values are customizable").
struct FppConfig {
  double converge_th_s = 2.0;
  double change_th_s = 5.0;
  double p_reduce_w = 50.0;
  std::array<double, 3> powercap_levels_w{10.0, 15.0, 25.0};
  double powercap_time_s = 90.0;  ///< control interval (MAIN loop)
  double fft_update_s = 30.0;     ///< FFT-GET-PERIOD refresh interval
  double sample_period_s = 2.0;   ///< power-sample spacing in the FFT buffer
  double max_gpu_cap_w = 300.0;   ///< vendor-specified maximum (V100)
  double min_gpu_cap_w = 100.0;   ///< NVML floor
  /// Cap range used when FPP operates on CPU sockets instead of GPUs
  /// (CPU-only platforms; §III-B2: the policy is device-agnostic).
  double max_socket_cap_w = 350.0;
  double min_socket_cap_w = 75.0;
  dsp::PeriodMethod period_method = dsp::PeriodMethod::HannPeriodogram;

  /// Reproduction note: Algorithm 1 as printed only *reduces* power when a
  /// period estimate shrinks by 2–5 s between control rounds, which on
  /// real hardware is triggered by estimator noise. The simulator's
  /// estimates are too stable for that, so by default FPP performs one
  /// deterministic exploratory reduction before it may latch convergence —
  /// the paper's own narrative ("FPP first tries to reduce power ...").
  /// Disable to run the strictly literal algorithm.
  bool exploratory_first_reduce = true;

  /// Ablation: run at most one controller's decision per 90 s round,
  /// rotating across the node's GPUs, instead of all simultaneously. This
  /// divides each controller's decision rate by the GPU count, so typical
  /// jobs end before most controllers probe — the policy collapses toward
  /// plain proportional sharing (measured in bench/ablation_fpp_stagger).
  bool stagger_probes = false;
};

struct PowerManagerConfig {
  /// Global cluster power bound P_G in watts; <= 0 means unconstrained
  /// (every node may draw its theoretical peak and no caps are set).
  double cluster_power_bound_w = 0.0;

  /// Theoretical per-node peak used by the proportional-sharing arithmetic
  /// (3050 W for AC922).
  double node_peak_w = 3050.0;

  /// Static IBM node cap installed on every node at module load (Table III
  /// baselines use 1200/1800/1950 W; 0 = none). Acts as a safety cap under
  /// the dynamic policies, as in Table IV where the dynamic rows keep the
  /// 1950 W node cap.
  double static_node_cap_w = 0.0;

  NodePolicy node_policy = NodePolicy::None;

  /// Node-level enforcement loop period (budget re-derivation).
  double control_period_s = 10.0;

  /// CPU time stolen per manager telemetry sweep. Default 0: in production
  /// the manager shares the monitor's samples; the monitor carries the
  /// overhead accounting.
  double sample_cost_s = 0.0;

  /// Park unallocated nodes in the platform low-power state (deeper
  /// C-states, fans down) and wake them on allocation. Off by default to
  /// match the paper's experiments; the queue bench quantifies the saving.
  bool idle_low_power = false;

  /// Allocation-history recording on the root (0 disables). Served via
  /// `power-manager.history` for dashboards and post-mortems.
  double history_period_s = 30.0;
  std::size_t history_capacity = 4096;

  /// Emergency power response (§V closing-the-loop): vendor capping can
  /// fail silently, so allocation arithmetic alone cannot guarantee the
  /// bound. When enabled, the cluster-level-manager measures the actual
  /// cluster draw every `emergency_check_period_s`; if it exceeds
  /// `cluster_power_bound_w x emergency_threshold` for
  /// `emergency_consecutive` consecutive checks, deep uniform node limits
  /// (bound / cluster size, scaled by `emergency_margin`) are pushed to
  /// every node and a `power-manager.emergency` event is published.
  /// Normal proportional limits are restored once the draw falls back
  /// under the bound.
  bool emergency_response = false;
  double emergency_check_period_s = 15.0;
  double emergency_threshold = 1.05;
  int emergency_consecutive = 2;
  double emergency_margin = 0.9;

  /// Graceful degradation under transient cap-write failures (§V: capping
  /// interfaces fail intermittently in production). The node-level-manager
  /// retries a failed enforcement with capped exponential backoff
  /// (initial, doubling, ceiling); only CapStatus::IoError counts as a
  /// failure — Unsupported/PermissionDenied are permanent platform answers
  /// and retrying them would be noise.
  double cap_retry_initial_s = 1.0;
  double cap_retry_max_s = 30.0;

  /// Root-level quarantine: after this many *consecutive* failed limit
  /// pushes to a rank (RPC error, timeout, or an ack with applied=false),
  /// the rank is quarantined — its budget is reserved at node_peak_w (it
  /// can no longer be trusted to enforce a cap) and the remainder is
  /// redistributed. Pushes continue as probes; the first applied ack
  /// lifts the quarantine. 0 disables quarantine.
  int quarantine_threshold = 3;
  /// Timeout for each limit-push RPC before it counts as a strike.
  double push_timeout_s = 5.0;
  /// While a rank is quarantined, re-push its limit at this period so
  /// recovery (an applied ack) is detected without waiting for the next
  /// allocation event.
  double quarantine_probe_s = 30.0;
  /// Root-level reconciliation: periodically re-assert every allocated
  /// rank's current limit even when nothing changed, so a crashed rank is
  /// *detected* (its pushes time out and accrue strikes) rather than only
  /// noticed at the next allocation event. 0 (default) disables — the
  /// event-driven push traffic stays exactly as before.
  double limit_refresh_s = 0.0;
  /// Coalesce cap-write fan-outs through the TBON: instead of one
  /// set-node-limit RPC per rank from the root, each wave becomes one
  /// set-limits-batch RPC per child carrying that subtree's {rank: watts}
  /// map; brokers split it recursively and aggregate the per-rank acks on
  /// the way back up, so the root's message count per wave drops from
  /// O(nodes) to O(fanout). Off by default: batching changes the routed
  /// message sequence, which shifts deterministic fault-injection
  /// schedules — experiments that replay seeded fault weather must opt in
  /// deliberately. Single-rank pushes (retry probes, quarantine probes)
  /// stay unbatched either way.
  bool batch_limit_pushes = false;

  FppConfig fpp;
  ProgressPolicyConfig progress;
  PiPolicyConfig pi;
};

}  // namespace fluxpower::manager
