#include "manager/power_manager.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "flux/instance.hpp"
#include "manager/node_policies.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "variorum/variorum.hpp"

namespace fluxpower::manager {

using flux::Message;
using util::Json;

namespace {
/// Backoff ladder delays double from cap_retry_initial_s (default 0.5 s) to
/// cap_retry_max_s (default 30 s); cap-write latency spans one immediate
/// success (0) up to a full ladder walk.
constexpr std::array<double, 12> kCapLatencyBounds = {
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0};
constexpr std::array<double, 8> kBackoffBounds = {0.25, 0.5, 1.0,  2.0,
                                                 4.0,  8.0, 16.0, 32.0};
}  // namespace

const char* node_policy_name(NodePolicy policy) noexcept {
  switch (policy) {
    case NodePolicy::None: return "none";
    case NodePolicy::IbmDefaultNodeCap: return "ibm-default";
    case NodePolicy::DirectGpuBudget: return "gpu-budget";
    case NodePolicy::Fpp: return "fpp";
    case NodePolicy::ProgressBased: return "progress";
    case NodePolicy::PiBound: return "pi-bound";
  }
  return "unknown";
}

PowerManagerModule::PowerManagerModule(PowerManagerConfig config)
    : config_(config) {
  register_builtin_node_policies();
  plugin_ = make_node_policy_plugin(*this, config_.node_policy);
}

PowerManagerModule::~PowerManagerModule() = default;

void PowerManagerModule::load(flux::Broker& broker) {
  broker_ = &broker;

  // Bind instruments in the broker registry; counters reset so a reloaded
  // module starts a fresh ledger like the plain members it replaced.
  obs::MetricsRegistry& reg = broker.metrics();
  cap_retries_total_ =
      &reg.counter("fluxpower_manager_cap_retries_total",
                   "Transient cap-write failures rescheduled with backoff");
  quarantine_events_total_ =
      &reg.counter("fluxpower_manager_quarantine_events_total",
                   "Ranks quarantined after repeated failed limit pushes");
  push_strikes_total_ =
      &reg.counter("fluxpower_manager_push_strikes_total",
                   "Failed limit-push acknowledgements counted as strikes");
  limit_pushes_total_ = &reg.counter("fluxpower_manager_limit_pushes_total",
                                     "Per-node limit pushes issued");
  cap_backoff_seconds_ =
      &reg.histogram("fluxpower_manager_cap_backoff_seconds",
                     "Armed backoff delays on the cap-retry ladder",
                     kBackoffBounds);
  cap_write_latency_ = &reg.histogram(
      "fluxpower_manager_cap_write_latency_seconds",
      "Time from limit arrival to successful enforcement", kCapLatencyBounds);
  quarantined_nodes_ = &reg.gauge("fluxpower_manager_quarantined_nodes",
                                  "Ranks currently quarantined");
  cap_retries_total_->reset();
  quarantine_events_total_->reset();
  push_strikes_total_->reset();
  limit_pushes_total_->reset();
  cap_backoff_seconds_->reset();
  cap_write_latency_->reset();
  quarantined_nodes_->set(0.0);

  // ---- node-level-manager: every rank ----
  broker.register_service(kSetNodeLimitTopic, [this](const Message& m) {
    handle_set_node_limit(m);
  });
  broker.register_service(kSetNodeLimitBatchTopic, [this](const Message& m) {
    handle_set_limits_batch(m);
  });
  broker.register_service(kSetLowPowerTopic, [this](const Message& req) {
    if (!flux::Broker::request_is_owner(req)) {
      broker_->respond_error(req, flux::kEPerm,
                             "set-low-power requires owner credentials");
      return;
    }
    hwsim::Node* n = broker_->node();
    if (n != nullptr) {
      n->set_low_power_state(req.payload.bool_or("low_power", false));
    }
    broker_->respond(req, Json::object());
  });
  broker.register_service(kNodeStatusTopic, [this](const Message& req) {
    Json payload = Json::object();
    payload["rank"] = broker_->rank();
    payload["node_limit_w"] = node_limit_w_;
    payload["gpu_budget_w"] = last_gpu_budget_w_;
    payload["policy"] = node_policy_name(config_.node_policy);
    payload["cap_retries"] = cap_retries();
    if (hwsim::Node* n = broker_->node()) {
      payload["node_draw_w"] = n->node_draw_w();
      payload["cap_write_failures"] = n->cap_write_faults();
    }
    broker_->respond(req, std::move(payload));
  });

  hwsim::Node* node = broker.node();
  if (node != nullptr && config_.static_node_cap_w > 0.0) {
    variorum::cap_best_effort_node_power_limit(*node, config_.static_node_cap_w);
  }

  if (node != nullptr && plugin_->wants_progress() &&
      managed_domain_count() > 0) {
    progress_subscription_ = broker.subscribe_event(
        "job.progress", [this](const Message& m) { on_progress_event(m); });
    progress_task_ = std::make_unique<sim::PeriodicTask>(
        broker.sim(), plugin_->progress_tick_period_s(), [this] {
          plugin_->on_progress_tick();
          return true;
        });
  }
  if (node != nullptr && plugin_->wants_control_tick()) {
    control_task_ = std::make_unique<sim::PeriodicTask>(
        broker.sim(), config_.control_period_s, [this] {
          control_tick();
          return true;
        });
  }
  if (node != nullptr && plugin_->wants_fpp_engine() &&
      managed_domain_count() > 0) {
    // One controller per managed domain — GPUs when the node has them,
    // CPU sockets otherwise (the policy is device-agnostic, §III-B2).
    // Ceilings are refined once a limit arrives.
    const FppConfig dcfg = domain_fpp_config();
    fpp_.clear();
    for (int i = 0; i < managed_domain_count(); ++i) {
      fpp_.push_back(
          std::make_unique<FppController>(dcfg, dcfg.max_gpu_cap_w));
    }
    sample_task_ = std::make_unique<sim::PeriodicTask>(
        broker.sim(), config_.fpp.sample_period_s, [this] {
          hwsim::Node* n = broker_->node();
          if (n == nullptr) return true;
          // Typed sample straight off the sensors: the FPP window feed
          // never touches JSON.
          const hwsim::PowerSample s = variorum::get_node_power_sample(*n);
          const std::span<const double> per_domain =
              manages_gpus()
                  ? std::span<const double>(s.gpu_w.begin(), s.gpu_w.size())
                  : std::span<const double>(s.cpu_w.begin(), s.cpu_w.size());
          for (std::size_t i = 0; i < fpp_.size() && i < per_domain.size();
               ++i) {
            fpp_[i]->add_power_sample(per_domain[i]);
          }
          if (config_.sample_cost_s > 0.0) {
            n->add_stolen_time(config_.sample_cost_s);
          }
          return true;
        });
    fft_task_ = std::make_unique<sim::PeriodicTask>(
        broker.sim(), config_.fpp.fft_update_s, [this] {
          time_since_fpp_control_s_ += config_.fpp.fft_update_s;
          for (auto& c : fpp_) c->update_period();
          if (time_since_fpp_control_s_ + 1e-9 >= config_.fpp.powercap_time_s) {
            time_since_fpp_control_s_ = 0.0;
            hwsim::Node* n = broker_->node();
            if (n != nullptr) {
              const double budget = derive_gpu_budget_w();
              const std::size_t active =
                  fpp_.empty() ? 0
                               : fpp_control_round_++ % fpp_.size();
              for (std::size_t i = 0; i < fpp_.size(); ++i) {
                if (config_.fpp.stagger_probes && i != active) continue;
                const double cap = fpp_[i]->control(budget);
                if (manages_gpus()) {
                  variorum::cap_gpu_power_limit(*n, static_cast<int>(i), cap);
                } else {
                  n->set_socket_power_cap(static_cast<int>(i), cap);
                }
              }
            }
          }
          return true;
        });
  }

  // ---- cluster-level-manager + job-level-manager: root rank ----
  if (broker.is_root()) {
    if (config_.idle_low_power) update_idle_states();  // park everything
    subscriptions_.push_back(broker.subscribe_event(
        "job.state-run", [this](const Message& m) { on_job_event(m); }));
    subscriptions_.push_back(broker.subscribe_event(
        "job.state-inactive", [this](const Message& m) { on_job_event(m); }));
    broker.register_service(kSetClusterBoundTopic, [this](const Message& req) {
      // Site-level coordination: an external coordinator (or operator)
      // re-apportions the global budget at runtime. Owner-only.
      if (!flux::Broker::request_is_owner(req)) {
        broker_->respond_error(req, flux::kEPerm,
                               "set-cluster-bound requires owner credentials");
        return;
      }
      const double bound = req.payload.number_or("bound_w", -1.0);
      if (bound < 0.0) {
        broker_->respond_error(req, flux::kEInval, "bound_w must be >= 0");
        return;
      }
      config_.cluster_power_bound_w = bound;
      // Force a fresh push of per-node limits under the new bound.
      for (auto& [id, alloc] : allocations_) alloc.node_power_w = -1.0;
      reallocate();
      Json ack = Json::object();
      ack["bound_w"] = bound;
      broker_->respond(req, std::move(ack));
    });
    if (config_.limit_refresh_s > 0.0) {
      // Reconciliation loop: re-assert the current limits so a rank that
      // went dark is detected by its timeouts, not by luck of the next
      // allocation event.
      refresh_task_ = std::make_unique<sim::PeriodicTask>(
          broker.sim(), config_.limit_refresh_s, [this] {
            std::map<flux::Rank, double> wave;
            for (const auto& [id, alloc] : allocations_) {
              if (alloc.node_power_w <= 0.0) continue;
              for (flux::Rank r : alloc.ranks) {
                if (quarantined_.contains(r)) continue;  // probe loop owns it
                if (config_.batch_limit_pushes) {
                  wave[r] = alloc.node_power_w;
                } else {
                  push_node_limit(r, alloc.node_power_w);
                }
              }
            }
            push_node_limits_batch(wave);
            return true;
          });
    }
    if (config_.emergency_response && config_.cluster_power_bound_w > 0.0) {
      emergency_task_ = std::make_unique<sim::PeriodicTask>(
          broker.sim(), config_.emergency_check_period_s, [this] {
            emergency_check();
            return true;
          });
    }
    if (config_.history_period_s > 0.0 && config_.history_capacity > 0) {
      history_ =
          std::make_unique<util::RingBuffer<HistoryPoint>>(config_.history_capacity);
      history_task_ = std::make_unique<sim::PeriodicTask>(
          broker.sim(), config_.history_period_s, [this] {
            HistoryPoint p;
            p.t_s = broker_->sim().now();
            p.bound_w = config_.cluster_power_bound_w;
            p.allocated_w = allocated_power_w();
            for (const auto& [id, alloc] : allocations_) {
              p.allocated_nodes += static_cast<int>(alloc.ranks.size());
            }
            p.jobs = static_cast<int>(allocations_.size());
            history_->push(p);
            return true;
          });
      broker.register_service(kHistoryTopic, [this](const Message& req) {
        const auto max_points = static_cast<std::size_t>(
            req.payload.int_or("max_points", 512));
        Json points = Json::array();
        const std::size_t n = history_->size();
        const std::size_t start = n > max_points ? n - max_points : 0;
        for (std::size_t i = start; i < n; ++i) {
          const HistoryPoint& p = (*history_)[i];
          Json point = Json::object();
          point["t_s"] = p.t_s;
          point["bound_w"] = p.bound_w;
          point["allocated_w"] = p.allocated_w;
          point["allocated_nodes"] = p.allocated_nodes;
          point["jobs"] = p.jobs;
          points.push_back(std::move(point));
        }
        Json payload = Json::object();
        payload["points"] = std::move(points);
        payload["dropped"] =
            static_cast<std::int64_t>(history_->evicted() + start);
        broker_->respond(req, std::move(payload));
      });
    }
    broker.register_service(kClusterStatusTopic, [this](const Message& req) {
      Json payload = Json::object();
      payload["cluster_power_bound_w"] = config_.cluster_power_bound_w;
      payload["allocated_power_w"] = allocated_power_w();
      payload["total_allocated_nodes"] = [this] {
        int n = 0;
        for (const auto& [id, alloc] : allocations_) {
          n += static_cast<int>(alloc.ranks.size());
        }
        return n;
      }();
      payload["cluster_size"] = broker_->instance().size();
      Json jobs = Json::array();
      for (const auto& [id, alloc] : allocations_) {
        Json j = Json::object();
        j["id"] = id;
        j["nnodes"] = static_cast<std::int64_t>(alloc.ranks.size());
        j["job_power_w"] = alloc.job_power_w;
        j["node_power_w"] = alloc.node_power_w;
        jobs.push_back(std::move(j));
      }
      payload["jobs"] = std::move(jobs);
      broker_->respond(req, std::move(payload));
    });
  }
}

void PowerManagerModule::unload() {
  if (cap_retry_event_ != sim::kInvalidEvent && broker_ != nullptr) {
    broker_->sim().cancel(cap_retry_event_);
    cap_retry_event_ = sim::kInvalidEvent;
  }
  if (forced_reallocate_event_ != sim::kInvalidEvent && broker_ != nullptr) {
    broker_->sim().cancel(forced_reallocate_event_);
    forced_reallocate_event_ = sim::kInvalidEvent;
  }
  refresh_task_.reset();
  control_task_.reset();
  sample_task_.reset();
  fft_task_.reset();
  progress_task_.reset();
  emergency_task_.reset();
  fpp_.clear();
  if (broker_ != nullptr) {
    if (progress_subscription_ != 0) {
      broker_->unsubscribe_event(progress_subscription_);
      progress_subscription_ = 0;
    }
    broker_->unregister_service(kSetNodeLimitTopic);
    broker_->unregister_service(kSetNodeLimitBatchTopic);
    broker_->unregister_service(kSetLowPowerTopic);
    broker_->unregister_service(kNodeStatusTopic);
    if (broker_->is_root()) {
      broker_->unregister_service(kClusterStatusTopic);
      broker_->unregister_service(kSetClusterBoundTopic);
      if (history_task_) {
        history_task_.reset();
        broker_->unregister_service(kHistoryTopic);
      }
      for (std::uint64_t id : subscriptions_) broker_->unsubscribe_event(id);
      subscriptions_.clear();
    }
    broker_ = nullptr;
  }
}

double PowerManagerModule::allocated_power_w() const {
  double total = 0.0;
  for (const auto& [id, alloc] : allocations_) total += alloc.job_power_w;
  return total;
}

void PowerManagerModule::on_job_event(const Message& event) {
  const auto id =
      static_cast<flux::JobId>(event.payload.int_or("id", 0));
  const std::string state = event.payload.string_or("state", "");
  if (state == "RUN") {
    JobAllocation alloc;
    for (const Json& r : event.payload.at("ranks").as_array()) {
      alloc.ranks.push_back(static_cast<flux::Rank>(r.as_int()));
    }
    // A job may voluntarily cap its own per-node power ("green" jobs, EAR
    // style); the surplus is redistributed to the other jobs.
    alloc.requested_node_power_w =
        event.payload.number_or("power_limit_w_per_node", 0.0);
    allocations_[id] = std::move(alloc);
    reallocate();
  } else if (state == "INACTIVE") {
    if (allocations_.erase(id) > 0) reallocate();
  }
}

void PowerManagerModule::reallocate() {
  // Proportional sharing (§III-B1). In the unconstrained case, or when the
  // bound covers peak power on every allocated node, each node gets peak.
  // Otherwise all jobs share P_G proportionally to their node counts,
  // which is uniform power per allocated node: P_n = P_G / N_total.
  //
  // Jobs with a self-imposed per-node cap are water-filled: each such job
  // takes min(request, fair share) and the freed power raises the share of
  // the remaining jobs, iterating until stable.
  int total_nodes = 0;
  int quarantined_nodes = 0;
  for (const auto& [id, alloc] : allocations_) {
    total_nodes += static_cast<int>(alloc.ranks.size());
    for (flux::Rank r : alloc.ranks) {
      if (quarantined_.contains(r)) ++quarantined_nodes;
    }
  }

  // A quarantined rank stopped acknowledging limit pushes, so the ledger
  // cannot assume it enforces anything: reserve its theoretical peak out of
  // the pool and let the healthy nodes share the remainder. (Limits keep
  // being pushed to it as probes; recovery lifts the reservation.)
  const double reserve = config_.node_peak_w * quarantined_nodes;
  const double effective_bound =
      std::max(0.0, config_.cluster_power_bound_w - reserve);
  const int sharing_nodes = total_nodes - quarantined_nodes;

  std::map<flux::JobId, double> shares;
  const bool constrained =
      config_.cluster_power_bound_w > 0.0 && sharing_nodes > 0 &&
      config_.node_peak_w * sharing_nodes > effective_bound;
  if (!constrained) {
    for (const auto& [id, alloc] : allocations_) {
      shares[id] = alloc.requested_node_power_w > 0.0
                       ? std::min(config_.node_peak_w,
                                  alloc.requested_node_power_w)
                       : config_.node_peak_w;
    }
  } else {
    double pool = effective_bound;
    int pool_nodes = sharing_nodes;
    std::map<flux::JobId, bool> pinned;
    // Water-filling: pin jobs whose request is below the current uniform
    // share, remove them from the pool, repeat until no new pins.
    bool changed = true;
    while (changed && pool_nodes > 0) {
      changed = false;
      const double share = pool / pool_nodes;
      for (const auto& [id, alloc] : allocations_) {
        if (pinned[id] || alloc.requested_node_power_w <= 0.0) continue;
        if (alloc.requested_node_power_w < share) {
          pinned[id] = true;
          changed = true;
          shares[id] = alloc.requested_node_power_w;
          pool -= alloc.requested_node_power_w *
                  static_cast<double>(alloc.ranks.size());
          pool_nodes -= static_cast<int>(alloc.ranks.size());
        }
      }
    }
    const double share =
        pool_nodes > 0 ? std::min(pool / pool_nodes, config_.node_peak_w)
                       : config_.node_peak_w;
    for (const auto& [id, alloc] : allocations_) {
      if (!pinned[id]) shares[id] = share;
    }
  }

  std::map<flux::Rank, double> wave;
  for (auto& [id, alloc] : allocations_) {
    const double node_power = shares.at(id);
    if (alloc.node_power_w == node_power) continue;  // unchanged
    alloc.node_power_w = node_power;
    alloc.job_power_w = node_power * static_cast<double>(alloc.ranks.size());
    // job-level-manager: equal split over the job's nodes, pushed via RPC —
    // per rank, or coalesced into one subtree wave when batching is on.
    if (config_.batch_limit_pushes) {
      for (flux::Rank r : alloc.ranks) wave[r] = node_power;
    } else {
      for (flux::Rank r : alloc.ranks) push_node_limit(r, node_power);
    }
  }
  push_node_limits_batch(wave);

  if (config_.idle_low_power) update_idle_states();
}

void PowerManagerModule::update_idle_states() {
  // Park unallocated nodes, wake allocated ones. State changes ride the
  // same message path as limits (a request handled by each rank's
  // node-level-manager).
  std::vector<bool> allocated(
      static_cast<std::size_t>(broker_->instance().size()), false);
  for (const auto& [id, alloc] : allocations_) {
    for (flux::Rank r : alloc.ranks) {
      if (r >= 0 && static_cast<std::size_t>(r) < allocated.size()) {
        allocated[static_cast<std::size_t>(r)] = true;
      }
    }
  }
  for (flux::Rank r = 0; r < broker_->instance().size(); ++r) {
    Json payload = Json::object();
    payload["low_power"] = !allocated[static_cast<std::size_t>(r)];
    broker_->send_request(r, kSetLowPowerTopic, std::move(payload));
  }
}

void PowerManagerModule::push_node_limit(flux::Rank rank, double limit_w) {
  limit_pushes_total_->inc();
  Json payload = Json::object();
  payload["limit_w"] = limit_w;
  if (config_.quarantine_threshold <= 0) {
    // Legacy fire-and-forget push (quarantine disabled).
    broker_->send_request(rank, kSetNodeLimitTopic, std::move(payload));
    return;
  }
  // Acknowledged push: the response (or its absence) feeds the strike
  // counter. An RPC error, a timeout, and an ack with applied=false all
  // mean the rank is not enforcing the limit we accounted for.
  broker_->rpc(
      rank, kSetNodeLimitTopic, std::move(payload),
      [this, rank](const Message& resp) {
        const bool applied =
            !resp.is_error() && resp.payload.bool_or("applied", true);
        const bool retrying =
            !resp.is_error() && resp.payload.bool_or("retrying", false);
        record_push_result(rank, applied, retrying);
      },
      config_.push_timeout_s);
}

void PowerManagerModule::record_push_result(flux::Rank rank, bool applied,
                                            bool retrying) {
  if (applied) {
    push_strikes_.erase(rank);
    if (quarantined_.erase(rank) > 0) {
      quarantined_nodes_->set(static_cast<double>(quarantined_.size()));
      if (obs::TraceSink& tr = obs::process_trace(); tr.enabled()) {
        tr.instant(broker_->sim().now(), "quarantine-lift", "manager",
                   broker_->rank(), "rank", static_cast<double>(rank));
      }
      util::log_info("power-manager: rank " + std::to_string(rank) +
                     " recovered; lifting quarantine");
      Json payload = Json::object();
      payload["rank"] = rank;
      payload["quarantined"] = false;
      broker_->publish_event("power-manager.quarantine", std::move(payload));
      // Return the reserved peak to the pool.
      request_forced_reallocate();
    }
    return;
  }
  if (retrying) {
    // The rank answered and its local backoff ladder owns the transient
    // cap-write fault. Responsive ≠ recovered: neither a strike nor a
    // clear, so a flaky-but-alive rank hovers without quarantine churn.
    return;
  }
  if (quarantined_.contains(rank)) return;  // already reserved
  push_strikes_total_->inc();
  if (++push_strikes_[rank] >= config_.quarantine_threshold) {
    push_strikes_.erase(rank);
    push_retry_pending_.erase(rank);
    quarantined_.insert(rank);
    quarantine_events_total_->inc();
    quarantined_nodes_->set(static_cast<double>(quarantined_.size()));
    if (obs::TraceSink& tr = obs::process_trace(); tr.enabled()) {
      tr.instant(broker_->sim().now(), "quarantine", "manager",
                 broker_->rank(), "rank", static_cast<double>(rank));
    }
    util::log_warning("power-manager: quarantining rank " +
                      std::to_string(rank) +
                      " after repeated failed limit pushes");
    Json payload = Json::object();
    payload["rank"] = rank;
    payload["quarantined"] = true;
    broker_->publish_event("power-manager.quarantine", std::move(payload));
    // Redistribute with the rank's peak reserved out of the pool.
    request_forced_reallocate();
    schedule_quarantine_probe(rank);
    return;
  }
  // Below threshold: re-push soon so a dead rank accrues its remaining
  // strikes instead of waiting for the next allocation event.
  schedule_push_retry(rank);
}

void PowerManagerModule::schedule_push_retry(flux::Rank rank) {
  if (!push_retry_pending_.insert(rank).second) return;  // one in flight
  broker_->sim().schedule_after(config_.push_timeout_s, [this, rank] {
    if (broker_ == nullptr) return;
    push_retry_pending_.erase(rank);
    if (quarantined_.contains(rank)) return;  // probe loop owns it now
    for (const auto& [id, alloc] : allocations_) {
      for (flux::Rank r : alloc.ranks) {
        if (r == rank) {
          push_node_limit(rank, alloc.node_power_w);
          return;
        }
      }
    }
  });
}

void PowerManagerModule::request_forced_reallocate() {
  // Coalesce: a burst of quarantine flips (e.g. every ack of one push
  // wave) must cause one redistribution, not a wave per ack — the
  // uncoalesced feedback loop amplifies into an event storm.
  if (forced_reallocate_event_ != sim::kInvalidEvent) return;
  forced_reallocate_event_ = broker_->sim().schedule_after(0.1, [this] {
    forced_reallocate_event_ = sim::kInvalidEvent;
    if (broker_ == nullptr) return;
    for (auto& [id, alloc] : allocations_) alloc.node_power_w = -1.0;
    reallocate();
  });
}

void PowerManagerModule::schedule_quarantine_probe(flux::Rank rank) {
  if (config_.quarantine_probe_s <= 0.0) return;
  broker_->sim().schedule_after(config_.quarantine_probe_s, [this, rank] {
    if (broker_ == nullptr || !quarantined_.contains(rank)) return;
    double share = 0.0;
    for (const auto& [id, alloc] : allocations_) {
      for (flux::Rank r : alloc.ranks) {
        if (r == rank) share = alloc.node_power_w;
      }
    }
    push_node_limit(rank, share);
    schedule_quarantine_probe(rank);
  });
}

void PowerManagerModule::handle_set_node_limit(const Message& req) {
  // Power limits mutate shared cluster state: owner-only (guests manage
  // power inside their own user-level instances instead).
  if (!flux::Broker::request_is_owner(req)) {
    broker_->respond_error(req, flux::kEPerm,
                           "set-node-limit requires instance-owner credentials");
    return;
  }
  const double limit = req.payload.number_or("limit_w", 0.0);
  if (limit < 0.0) {
    broker_->respond_error(req, flux::kEInval, "negative node limit");
    return;
  }
  const auto [applied, retrying] = apply_node_limit(limit);
  Json ack = Json::object();
  ack["limit_w"] = node_limit_w_;
  // applied=false with retrying=true means the caps did not land yet but
  // the local backoff ladder is converging on them: the broker is alive
  // and enforcing, so the root must not treat it like a dead rank. Only
  // applied=false with no retry armed (never happens today) or an RPC
  // timeout counts as a quarantine strike.
  ack["applied"] = applied;
  ack["retrying"] = retrying;
  broker_->respond(req, std::move(ack));
}

std::pair<bool, bool> PowerManagerModule::apply_node_limit(double limit_w) {
  const double limit = limit_w;
  const bool raised = limit > node_limit_w_ && node_limit_w_ > 0.0;
  const bool fresh = node_limit_w_ == 0.0;
  node_limit_w_ = limit;
  if (raised || fresh) {
    // New-headroom epoch: the plugin re-baselines (ProgressBased/PiBound
    // re-probe from the fresh budget; FPP rebuilds its controllers so
    // Algorithm 1's MAIN re-derives P_cap_cur and the convergence latch
    // resets). A lowered limit does NOT reset: the tighter budget simply
    // clamps the active caps, and the existing state remains valid.
    plugin_->on_limit_refresh();
  }
  // A fresh limit supersedes any in-flight retry: restart the ladder. The
  // latency clock restarts with it — it measures this limit, not the
  // superseded one.
  if (cap_retry_event_ != sim::kInvalidEvent) {
    broker_->sim().cancel(cap_retry_event_);
    cap_retry_event_ = sim::kInvalidEvent;
  }
  cap_retry_delay_s_ = 0.0;
  cap_attempt_start_s_ = -1.0;
  const bool applied = enforce_with_retry();
  return {applied, cap_retry_pending()};
}

void PowerManagerModule::handle_set_limits_batch(const Message& req) {
  if (!flux::Broker::request_is_owner(req)) {
    broker_->respond_error(req, flux::kEPerm,
                           "set-limits-batch requires instance-owner "
                           "credentials");
    return;
  }
  const Json limits = req.payload.contains("limits") ? req.payload.at("limits")
                                                     : Json::object();

  struct Pending {
    Json acks = Json::object();
    std::size_t outstanding = 0;
    Message original;
  };
  auto pending = std::make_shared<Pending>();
  pending->original = req;

  // Own rank first: apply locally, exactly as a direct set-node-limit would
  // (including the backoff-ladder restart), and self-ack.
  if (const std::string own = std::to_string(broker_->rank());
      limits.contains(own)) {
    const double limit = limits.at(own).as_double();
    Json ack = Json::object();
    if (limit < 0.0) {
      ack["applied"] = false;
      ack["retrying"] = false;
    } else {
      const auto [applied, retrying] = apply_node_limit(limit);
      ack["applied"] = applied;
      ack["retrying"] = retrying;
    }
    pending->acks[own] = std::move(ack);
  }

  // Split the remaining ranks among child subtrees — the same partition the
  // telemetry subtree merge uses, in the opposite direction.
  const flux::Tbon& tbon = broker_->instance().tbon();
  struct ChildRequest {
    flux::Rank child;
    Json sub = Json::object();
    std::vector<flux::Rank> subset;
    double timeout_s = 0.0;
  };
  std::vector<ChildRequest> child_requests;
  for (flux::Rank child : tbon.children(broker_->rank())) {
    ChildRequest cr;
    cr.child = child;
    int height = 0;
    const int base = tbon.level(child);
    for (flux::Rank r : tbon.subtree(child)) {
      height = std::max(height, tbon.level(r) - base);
      if (const std::string key = std::to_string(r); limits.contains(key)) {
        cr.sub[key] = limits.at(key).as_double();
        cr.subset.push_back(r);
      }
    }
    // Deeper subtrees get proportionally longer: every level below adds a
    // child round trip before this hop can aggregate its acks.
    cr.timeout_s = config_.push_timeout_s * static_cast<double>(height + 1);
    if (!cr.subset.empty()) child_requests.push_back(std::move(cr));
  }

  flux::Broker* broker = broker_;
  auto respond_all = [broker](Pending& p) {
    Json payload = Json::object();
    payload["acks"] = std::move(p.acks);
    broker->respond(p.original, std::move(payload));
  };

  if (child_requests.empty()) {
    respond_all(*pending);
    return;
  }
  pending->outstanding = child_requests.size();
  for (ChildRequest& cr : child_requests) {
    Json sub = Json::object();
    sub["limits"] = std::move(cr.sub);
    const std::vector<flux::Rank> subset = cr.subset;
    broker->rpc(
        cr.child, kSetNodeLimitBatchTopic, std::move(sub),
        [pending, subset, respond_all](const Message& resp) {
          // A missing ack — child RPC error, timeout, or a rank the child
          // could not account for — reads as a failed push for that rank,
          // matching the per-rank RPC's strike semantics.
          for (flux::Rank r : subset) {
            const std::string key = std::to_string(r);
            if (!resp.is_error() && resp.payload.contains("acks") &&
                resp.payload.at("acks").contains(key)) {
              pending->acks[key] = resp.payload.at("acks").at(key);
            } else {
              Json ack = Json::object();
              ack["applied"] = false;
              ack["retrying"] = false;
              pending->acks[key] = std::move(ack);
            }
          }
          if (--pending->outstanding == 0) respond_all(*pending);
        },
        cr.timeout_s);
  }
}

void PowerManagerModule::push_node_limits_batch(
    const std::map<flux::Rank, double>& limits) {
  if (limits.empty()) return;
  limit_pushes_total_->inc(limits.size());
  Json payload = Json::object();
  Json jl = Json::object();
  for (const auto& [rank, watts] : limits) {
    jl[std::to_string(rank)] = watts;
  }
  payload["limits"] = std::move(jl);
  // The whole wave is one self-RPC: the root's own handler applies the
  // local share and fans the rest down the tree, so the push path is the
  // same code at every level. Timeout covers a full tree descent.
  const double timeout_s =
      config_.push_timeout_s *
      static_cast<double>(broker_->instance().tbon().height() + 2);
  if (config_.quarantine_threshold <= 0) {
    // Legacy fire-and-forget semantics: nobody reads the acks.
    broker_->rpc(
        broker_->rank(), kSetNodeLimitBatchTopic, std::move(payload),
        [](const Message&) {}, timeout_s);
    return;
  }
  std::vector<flux::Rank> ranks;
  ranks.reserve(limits.size());
  for (const auto& [rank, watts] : limits) ranks.push_back(rank);
  broker_->rpc(
      broker_->rank(), kSetNodeLimitBatchTopic, std::move(payload),
      [this, ranks](const Message& resp) {
        for (flux::Rank r : ranks) {
          const std::string key = std::to_string(r);
          bool applied = false;
          bool retrying = false;
          if (!resp.is_error() && resp.payload.contains("acks") &&
              resp.payload.at("acks").contains(key)) {
            const Json& ack = resp.payload.at("acks").at(key);
            applied = ack.bool_or("applied", true);
            retrying = ack.bool_or("retrying", false);
          }
          record_push_result(r, applied, retrying);
        }
      },
      timeout_s);
}

bool PowerManagerModule::manages_gpus() const {
  hwsim::Node* node = broker_->node();
  return node != nullptr && node->gpu_count() > 0;
}

int PowerManagerModule::managed_domain_count() const {
  hwsim::Node* node = broker_->node();
  if (node == nullptr) return 0;
  return manages_gpus() ? node->gpu_count() : node->socket_count();
}

FppConfig PowerManagerModule::domain_fpp_config() const {
  FppConfig cfg = config_.fpp;
  if (!manages_gpus()) {
    cfg.max_gpu_cap_w = config_.fpp.max_socket_cap_w;
    cfg.min_gpu_cap_w = config_.fpp.min_socket_cap_w;
  }
  return cfg;
}

double PowerManagerModule::derive_gpu_budget_w() {
  hwsim::Node* node = broker_->node();
  const int domains = managed_domain_count();
  if (node == nullptr || domains == 0) return 0.0;
  const FppConfig dcfg = domain_fpp_config();
  const double ceiling = dcfg.max_gpu_cap_w;
  if (node_limit_w_ <= 0.0 || node_limit_w_ >= config_.node_peak_w) {
    last_gpu_budget_w_ = ceiling;
    return ceiling;
  }
  // Measure the node's draw outside the managed domains and hand the
  // remainder to them — the "derived max cap from node-level limit" of
  // Algorithm 1 line 36.
  const hwsim::PowerSample s = variorum::get_node_power_sample(*node);
  double managed_total = 0.0;
  const std::span<const double> managed =
      manages_gpus()
          ? std::span<const double>(s.gpu_w.begin(), s.gpu_w.size())
          : std::span<const double>(s.cpu_w.begin(), s.cpu_w.size());
  for (double w : managed) managed_total += w;
  const double unmanaged = std::max(0.0, s.best_node_w() - managed_total);
  double budget = (node_limit_w_ - unmanaged) / static_cast<double>(domains);
  budget = std::clamp(budget, dcfg.min_gpu_cap_w, ceiling);
  last_gpu_budget_w_ = budget;
  return budget;
}

bool PowerManagerModule::enforce_node_limit() {
  if (broker_->node() == nullptr) return true;
  return plugin_->enforce();
}

bool PowerManagerModule::enforce_with_retry() {
  // Latency accounting covers the whole attempt: from the first write of a
  // fresh limit through every backoff rung until the caps finally land.
  if (cap_attempt_start_s_ < 0.0) {
    cap_attempt_start_s_ = broker_->sim().now();
  }
  const bool ok = enforce_node_limit();
  if (ok) {
    cap_retry_delay_s_ = 0.0;  // ladder back to rest
    cap_write_latency_->observe(broker_->sim().now() - cap_attempt_start_s_);
    cap_attempt_start_s_ = -1.0;
    return true;
  }
  if (cap_retry_event_ != sim::kInvalidEvent) return false;  // already armed
  cap_retry_delay_s_ = cap_retry_delay_s_ <= 0.0
                           ? config_.cap_retry_initial_s
                           : std::min(config_.cap_retry_max_s,
                                      cap_retry_delay_s_ * 2.0);
  cap_retries_total_->inc();
  cap_backoff_seconds_->observe(cap_retry_delay_s_);
  cap_retry_event_ =
      broker_->sim().schedule_after(cap_retry_delay_s_, [this] {
        cap_retry_event_ = sim::kInvalidEvent;
        enforce_with_retry();
      });
  return false;
}

void PowerManagerModule::control_tick() {
  // Periodic budget refresh: non-GPU draw moves with application phases,
  // so the derived GPU budget is re-measured continuously. A transient
  // write failure arms the backoff ladder rather than waiting a full
  // control period.
  enforce_with_retry();
}

// ---------------------------------------------------------------------------
// Emergency power response (root)
// ---------------------------------------------------------------------------

void PowerManagerModule::emergency_check() {
  // Measure the actual cluster draw through the node-status service — not
  // the allocation ledger, which is exactly what silent capping failures
  // invalidate (§V).
  struct Pending {
    double total_w = 0.0;
    std::size_t outstanding = 0;
  };
  auto pending = std::make_shared<Pending>();
  pending->outstanding = static_cast<std::size_t>(broker_->instance().size());
  for (flux::Rank r = 0; r < broker_->instance().size(); ++r) {
    broker_->rpc(
        r, kNodeStatusTopic, Json::object(),
        [this, pending](const Message& resp) {
          if (!resp.is_error()) {
            pending->total_w += resp.payload.number_or("node_draw_w", 0.0);
          }
          if (--pending->outstanding > 0) return;

          const double bound = config_.cluster_power_bound_w;
          if (pending->total_w > bound * config_.emergency_threshold) {
            if (++emergency_strikes_ >= config_.emergency_consecutive &&
                !emergency_active_) {
              engage_emergency();
            }
          } else {
            emergency_strikes_ = 0;
            if (emergency_active_ && pending->total_w < bound * 0.95) {
              release_emergency();
            }
          }
        },
        /*timeout_s=*/5.0);
  }
}

void PowerManagerModule::engage_emergency() {
  emergency_active_ = true;
  if (obs::TraceSink& tr = obs::process_trace(); tr.enabled()) {
    tr.instant(broker_->sim().now(), "emergency-engage", "manager",
               broker_->rank());
  }
  util::log_warning("power-manager: EMERGENCY — measured draw exceeds the "
                    "cluster bound; pushing deep uniform limits");
  const double deep = config_.cluster_power_bound_w /
                      static_cast<double>(broker_->instance().size()) *
                      config_.emergency_margin;
  if (config_.batch_limit_pushes) {
    std::map<flux::Rank, double> wave;
    for (flux::Rank r = 0; r < broker_->instance().size(); ++r) {
      wave[r] = deep;
    }
    push_node_limits_batch(wave);
  } else {
    for (flux::Rank r = 0; r < broker_->instance().size(); ++r) {
      push_node_limit(r, deep);
    }
  }
  Json payload = Json::object();
  payload["engaged"] = true;
  payload["deep_limit_w"] = deep;
  broker_->publish_event("power-manager.emergency", std::move(payload));
}

void PowerManagerModule::release_emergency() {
  emergency_active_ = false;
  emergency_strikes_ = 0;
  if (obs::TraceSink& tr = obs::process_trace(); tr.enabled()) {
    tr.instant(broker_->sim().now(), "emergency-release", "manager",
               broker_->rank());
  }
  util::log_info("power-manager: emergency cleared; restoring shares");
  // Force a fresh proportional push.
  for (auto& [id, alloc] : allocations_) alloc.node_power_w = -1.0;
  reallocate();
  Json payload = Json::object();
  payload["engaged"] = false;
  broker_->publish_event("power-manager.emergency", std::move(payload));
}

// ---------------------------------------------------------------------------
// Progress-observing policies (ProgressBased, PiBound)
// ---------------------------------------------------------------------------

void PowerManagerModule::on_progress_event(const Message& event) {
  // Only progress of the job running on *this* node matters; the rate
  // derivation and control reaction belong to the installed plugin.
  bool local = false;
  if (event.payload.contains("ranks")) {
    for (const Json& r : event.payload.at("ranks").as_array()) {
      if (static_cast<flux::Rank>(r.as_int()) == broker_->rank()) {
        local = true;
        break;
      }
    }
  }
  if (!local) return;
  plugin_->on_progress(event.payload.number_or("work_done", -1.0),
                       broker_->sim().now());
}

bool PowerManagerModule::apply_uniform_cap(double cap_w) {
  hwsim::Node* node = broker_->node();
  if (node == nullptr) return true;
  bool ok = true;
  if (manages_gpus()) {
    for (const hwsim::CapResult& r :
         variorum::cap_each_gpu_power_limit(*node, cap_w)) {
      ok = ok && r.status != hwsim::CapStatus::IoError;
    }
  } else {
    for (int i = 0; i < node->socket_count(); ++i) {
      const auto r = node->set_socket_power_cap(i, cap_w);
      ok = ok && r.status != hwsim::CapStatus::IoError;
    }
  }
  return ok;
}

}  // namespace fluxpower::manager
