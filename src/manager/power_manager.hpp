// power_manager.hpp — the flux-power-manager broker module (§III-B).
//
// Hierarchical and state-aware:
//   * cluster-level-manager (root rank): knows every running job; ensures
//     total cluster draw never exceeds the global bound P_G. Implements the
//     proportional-sharing policy of §III-B1: a new job gets peak power per
//     node when P_avail suffices, otherwise power is redistributed across
//     *all* jobs at P_n = P_G / total allocated nodes.
//   * job-level-manager (root rank): splits a job's power limit equally
//     over its nodes and pushes per-node limits over the TBON.
//   * node-level-manager (every rank): enforces the node limit through
//     Variorum according to the configured NodePolicy, tracks local power
//     in its own control loop, and runs the per-GPU FPP controllers.
// All three communicate exclusively via RPC messages.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "flux/broker.hpp"
#include "flux/jobspec.hpp"
#include "flux/module.hpp"
#include "manager/fpp.hpp"
#include "manager/policy.hpp"
#include "policy/policy.hpp"
#include "sim/simulation.hpp"
#include "util/ring_buffer.hpp"

namespace fluxpower::manager {

inline constexpr const char* kSetNodeLimitTopic = "power-manager.set-node-limit";
/// Coalesced cap fan-out: one request per TBON child carrying the whole
/// subtree's {rank: watts} map under "limits"; the response aggregates the
/// per-rank {applied, retrying} acks under "acks".
inline constexpr const char* kSetNodeLimitBatchTopic =
    "power-manager.set-limits-batch";
inline constexpr const char* kClusterStatusTopic = "power-manager.cluster-status";
inline constexpr const char* kNodeStatusTopic = "power-manager.node-status";
inline constexpr const char* kSetClusterBoundTopic =
    "power-manager.set-cluster-bound";
inline constexpr const char* kSetLowPowerTopic = "power-manager.set-low-power";
inline constexpr const char* kHistoryTopic = "power-manager.history";

class PowerManagerModule final : public flux::Module {
 public:
  explicit PowerManagerModule(PowerManagerConfig config = {});
  ~PowerManagerModule() override;

  const char* name() const override { return "power-manager"; }
  void load(flux::Broker& broker) override;
  void unload() override;

  const PowerManagerConfig& config() const noexcept { return config_; }

  /// The node-policy plugin enforcing this node's limit (policy plane).
  /// Never null: NodePolicy::None maps to a no-op plugin.
  const policy::NodePolicyPlugin& node_plugin() const noexcept {
    return *plugin_;
  }

  // -- Node-level introspection (tests / timeline benches) -------------------
  double node_limit_w() const noexcept { return node_limit_w_; }
  double last_gpu_budget_w() const noexcept { return last_gpu_budget_w_; }
  /// Enforcement attempts that hit a transient IoError and were rescheduled
  /// with backoff. Backed by the broker registry
  /// (fluxpower_manager_cap_retries_total) once loaded.
  std::uint64_t cap_retries() const noexcept {
    return cap_retries_total_ != nullptr ? cap_retries_total_->value() : 0;
  }
  /// True while a backoff retry is queued.
  bool cap_retry_pending() const noexcept {
    return cap_retry_event_ != sim::kInvalidEvent;
  }
  const std::vector<std::unique_ptr<FppController>>& fpp_controllers() const {
    return fpp_;
  }

  // -- Cluster-level introspection (root only) --------------------------------
  struct JobAllocation {
    std::vector<flux::Rank> ranks;
    double job_power_w = 0.0;   ///< job-level power limit P_i
    double node_power_w = 0.0;  ///< per-node limit
    /// Self-imposed per-node cap from the jobspec (0 = none). The job never
    /// receives more than this; its unused share flows to other jobs.
    double requested_node_power_w = 0.0;
  };
  const std::map<flux::JobId, JobAllocation>& allocations() const {
    return allocations_;
  }
  /// Sum of job power limits P_k (root only).
  double allocated_power_w() const;

  /// Quarantined ranks (root only): nodes whose limit pushes kept failing.
  /// Their budget is reserved at node_peak_w until a push succeeds again.
  const std::set<flux::Rank>& quarantined() const noexcept {
    return quarantined_;
  }
  /// Lifetime count of quarantine entries (a rank entering twice counts
  /// twice) — the flap-rate denominator for reliability tables. Backed by
  /// the broker registry (fluxpower_manager_quarantine_events_total).
  std::uint64_t quarantine_events() const noexcept {
    return quarantine_events_total_ != nullptr
               ? quarantine_events_total_->value()
               : 0;
  }

  // -- Twin-codec introspection ----------------------------------------------
  /// Consecutive failed limit pushes per rank (root only).
  const std::map<flux::Rank, int>& push_strikes() const noexcept {
    return push_strikes_;
  }
  /// Node-level backoff-ladder position (0 = at rest).
  double cap_retry_delay_s() const noexcept { return cap_retry_delay_s_; }
  int emergency_strike_count() const noexcept { return emergency_strikes_; }
  /// FPP control-loop phase (twin codec: the rotation position decides
  /// which controller probes next under stagger_probes).
  std::size_t fpp_control_round() const noexcept { return fpp_control_round_; }
  double time_since_fpp_control_s() const noexcept {
    return time_since_fpp_control_s_;
  }

 private:
  // Cluster-level-manager (root).
  void on_job_event(const flux::Message& event);
  void reallocate();
  void update_idle_states();
  void push_node_limit(flux::Rank rank, double limit_w);
  /// Coalesced wave push: one set-limits-batch RPC per TBON child covering
  /// its whole subtree, acks fed rank-by-rank into the same strike/clear
  /// bookkeeping as the per-rank path. Root only; used by reallocate,
  /// limit refresh and emergency when `batch_limit_pushes` is on.
  void push_node_limits_batch(const std::map<flux::Rank, double>& limits);
  /// Strike/clear bookkeeping for a limit-push outcome; drives quarantine.
  /// `retrying` means the rank answered but its local backoff ladder is
  /// still converging — responsive, so neither a strike nor a clear.
  void record_push_result(flux::Rank rank, bool applied, bool retrying);
  /// Arm the next recovery probe for a quarantined rank.
  void schedule_quarantine_probe(flux::Rank rank);
  /// Re-push a striking (but not yet quarantined) rank's share after
  /// push_timeout_s, so an unresponsive rank accrues its strikes without
  /// waiting for the next allocation event. One in flight per rank.
  void schedule_push_retry(flux::Rank rank);
  /// Coalesce forced redistributions: any burst of quarantine flips within
  /// the damping window causes one reallocate, not one per push ack.
  void request_forced_reallocate();

  // Node-level-manager (all ranks).
  void handle_set_node_limit(const flux::Message& req);
  /// Recursive half of the coalesced fan-out: apply the own-rank limit,
  /// split the remainder among child subtrees, merge the ack maps upward.
  void handle_set_limits_batch(const flux::Message& req);
  /// Accept a pushed limit and start enforcement; returns {applied,
  /// retrying} exactly as the set-node-limit ack reports them.
  std::pair<bool, bool> apply_node_limit(double limit_w);
  /// Apply the active limit through the node-policy plugin; false when any
  /// cap write failed transiently (CapStatus::IoError) — permanent
  /// refusals are not failures.
  bool enforce_node_limit();
  /// enforce_node_limit plus the backoff ladder: on transient failure,
  /// schedule a re-enforcement after the current backoff delay (doubling
  /// up to cap_retry_max_s); on success, reset the ladder.
  bool enforce_with_retry();
  void control_tick();
  double derive_gpu_budget_w();
  bool apply_uniform_cap(double cap_w);

  /// Which device class FPP / budget enforcement manages on this node:
  /// GPUs when present, CPU sockets otherwise (device-agnostic FPP).
  bool manages_gpus() const;
  FppConfig domain_fpp_config() const;
  int managed_domain_count() const;

  // Built-in node-policy plugins act through this module's cap primitives
  // and (FPP) its controller bank; friendship keeps that state physically
  // here so the twin's MGR section stays byte-compatible.
  friend class NonePolicyPlugin;
  friend class IbmNodeCapPlugin;
  friend class GpuBudgetPlugin;
  friend class FppNodePlugin;
  friend class ProgressNodePlugin;
  friend class PiBoundNodePlugin;

  PowerManagerConfig config_;
  flux::Broker* broker_ = nullptr;
  std::unique_ptr<policy::NodePolicyPlugin> plugin_;

  // Node-level state.
  double node_limit_w_ = 0.0;  ///< 0 = unconstrained
  double last_gpu_budget_w_ = 0.0;
  double cap_retry_delay_s_ = 0.0;  ///< 0 = ladder at rest
  sim::EventId cap_retry_event_ = sim::kInvalidEvent;
  /// Sim time when the current enforcement attempt (possibly a whole
  /// backoff ladder) started; < 0 when no attempt is in flight. Feeds the
  /// cap-write latency histogram on success.
  double cap_attempt_start_s_ = -1.0;
  // Instruments in the owning broker's registry (bound and reset in
  // load(); the registry outlives the module).
  obs::Counter* cap_retries_total_ = nullptr;
  obs::Counter* quarantine_events_total_ = nullptr;
  obs::Counter* push_strikes_total_ = nullptr;
  obs::Counter* limit_pushes_total_ = nullptr;
  obs::Histogram* cap_backoff_seconds_ = nullptr;
  obs::Histogram* cap_write_latency_ = nullptr;
  obs::Gauge* quarantined_nodes_ = nullptr;
  std::vector<std::unique_ptr<FppController>> fpp_;
  std::unique_ptr<sim::PeriodicTask> control_task_;
  std::unique_ptr<sim::PeriodicTask> sample_task_;
  std::unique_ptr<sim::PeriodicTask> fft_task_;
  double time_since_fpp_control_s_ = 0.0;
  std::size_t fpp_control_round_ = 0;

  // Progress-observing policies (ProgressBased, PiBound): the module owns
  // the subscription and the control task; the rate/cap state lives in the
  // plugin (locality filtering stays here — it needs the broker rank).
  void on_progress_event(const flux::Message& event);
  std::uint64_t progress_subscription_ = 0;
  std::unique_ptr<sim::PeriodicTask> progress_task_;

 public:
  // Progress introspection for tests/benches (delegates to the plugin; the
  // plugin defaults equal the former members' initial values, keeping the
  // twin MGR section byte-compatible for non-progress policies).
  double progress_rate() const noexcept { return plugin_->progress_rate(); }
  double progress_cap_w() const noexcept { return plugin_->progress_cap_w(); }
  bool progress_holding() const noexcept {
    return plugin_->progress_holding();
  }

  // Cluster-level state (root only).
  std::map<flux::JobId, JobAllocation> allocations_;
  std::vector<std::uint64_t> subscriptions_;
  /// Consecutive failed limit pushes per rank; reset by any applied ack.
  std::map<flux::Rank, int> push_strikes_;
  std::set<flux::Rank> quarantined_;
  /// Ranks with a queued strike re-push (bounds retries to one in flight).
  std::set<flux::Rank> push_retry_pending_;
  sim::EventId forced_reallocate_event_ = sim::kInvalidEvent;
  std::unique_ptr<sim::PeriodicTask> refresh_task_;
  /// Allocation history ring: {t, bound, allocated_w, nodes, jobs} sampled
  /// every history_period_s, served via kHistoryTopic for dashboards.
  struct HistoryPoint {
    double t_s = 0.0;
    double bound_w = 0.0;
    double allocated_w = 0.0;
    int allocated_nodes = 0;
    int jobs = 0;
  };
  std::unique_ptr<util::RingBuffer<HistoryPoint>> history_;
  std::unique_ptr<sim::PeriodicTask> history_task_;

  // Emergency power response (root only).
  void emergency_check();
  void engage_emergency();
  void release_emergency();
  std::unique_ptr<sim::PeriodicTask> emergency_task_;
  int emergency_strikes_ = 0;
  bool emergency_active_ = false;

 public:
  bool emergency_active() const noexcept { return emergency_active_; }
};

}  // namespace fluxpower::manager
