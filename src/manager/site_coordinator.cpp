#include "manager/site_coordinator.hpp"

#include <algorithm>
#include <stdexcept>

#include "manager/power_manager.hpp"
#include "util/json.hpp"

namespace fluxpower::manager {

SiteCoordinator::SiteCoordinator(sim::Simulation& sim, double site_bound_w,
                                 double period_s)
    : sim_(sim), site_bound_w_(site_bound_w) {
  if (site_bound_w <= 0.0) {
    throw std::invalid_argument("SiteCoordinator: bound must be positive");
  }
  if (period_s <= 0.0) {
    throw std::invalid_argument("SiteCoordinator: period must be positive");
  }
  ticker_ = std::make_unique<sim::PeriodicTask>(sim_, period_s, [this] {
    rebalance();
    return true;
  });
}

SiteCoordinator::~SiteCoordinator() = default;

void SiteCoordinator::add_member(MemberConfig member) {
  if (member.instance == nullptr) {
    throw std::invalid_argument("SiteCoordinator: null instance");
  }
  Member m;
  m.config = std::move(member);
  // Until the first rebalance, the member keeps at least its floor.
  m.share_w = m.config.floor_w;
  members_.push_back(std::move(m));
}

void SiteCoordinator::rebalance() {
  if (members_.empty()) return;
  ++rebalances_;
  // Phase 1: read each member's demand via its cluster-status service.
  for (Member& m : members_) {
    m.demand_fresh = false;
    flux::Broker& root = m.config.instance->root();
    Member* target = &m;
    root.rpc(
        flux::kRootRank, kClusterStatusTopic, util::Json::object(),
        [this, target](const flux::Message& resp) {
          if (resp.is_error()) return;  // keep stale demand
          const double nodes =
              static_cast<double>(resp.payload.int_or("total_allocated_nodes", 0));
          target->demand_w = nodes * target->config.node_peak_w;
          target->demand_fresh = true;
          // Apportion once every member answered (or timed out).
          if (std::all_of(members_.begin(), members_.end(),
                          [](const Member& mm) { return mm.demand_fresh; })) {
            apportion_and_push();
          }
        },
        /*timeout_s=*/5.0);
  }
}

void SiteCoordinator::apportion_and_push() {
  // Floors first, then split the remainder proportionally to unmet demand.
  double floors = 0.0;
  for (const Member& m : members_) floors += m.config.floor_w;
  double spare = std::max(0.0, site_bound_w_ - floors);

  double unmet_total = 0.0;
  for (const Member& m : members_) {
    unmet_total += std::max(0.0, m.demand_w - m.config.floor_w);
  }
  for (Member& m : members_) {
    const double unmet = std::max(0.0, m.demand_w - m.config.floor_w);
    double share = m.config.floor_w;
    if (unmet_total > 0.0) {
      share += spare * (unmet / unmet_total);
    } else {
      // Nobody demands anything: split spare evenly so arrivals are fast.
      share += spare / static_cast<double>(members_.size());
    }
    m.share_w = share;
    util::Json payload = util::Json::object();
    payload["bound_w"] = share;
    m.config.instance->root().rpc(flux::kRootRank, kSetClusterBoundTopic,
                                  std::move(payload), nullptr);
  }

  state_.clear();
  for (const Member& m : members_) {
    state_.push_back({m.config.name, m.demand_w, m.share_w});
  }
}

}  // namespace fluxpower::manager
