#include "manager/site_coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "manager/power_manager.hpp"
#include "util/json.hpp"

namespace fluxpower::manager {

SiteCoordinator::SiteCoordinator(sim::Simulation& sim, double site_bound_w,
                                 double period_s)
    : sim_(sim),
      site_bound_w_(site_bound_w),
      effective_bound_w_(site_bound_w),
      policy_(make_demand_proportional_policy()) {
  if (site_bound_w <= 0.0) {
    throw std::invalid_argument("SiteCoordinator: bound must be positive");
  }
  if (period_s <= 0.0) {
    throw std::invalid_argument("SiteCoordinator: period must be positive");
  }
  ticker_ = std::make_unique<sim::PeriodicTask>(sim_, period_s, [this] {
    rebalance();
    return true;
  });
}

SiteCoordinator::~SiteCoordinator() = default;

void SiteCoordinator::add_member(MemberConfig member) {
  if (member.instance == nullptr) {
    throw std::invalid_argument("SiteCoordinator: null instance");
  }
  Member m;
  m.config = std::move(member);
  // Until the first rebalance, the member keeps at least its floor.
  m.share_w = m.config.floor_w;
  members_.push_back(std::move(m));
}

void SiteCoordinator::set_policy(std::unique_ptr<SitePolicy> policy) {
  if (policy == nullptr) {
    throw std::invalid_argument("SiteCoordinator: null policy");
  }
  policy_ = std::move(policy);
}

void SiteCoordinator::set_policy_by_name(const std::string& name) {
  set_policy(make_site_policy(name));
}

double SiteCoordinator::health_of(int strikes) noexcept {
  return std::pow(0.5, std::min(strikes, kMaxHealthStrikes));
}

void SiteCoordinator::rebalance() {
  if (members_.empty()) return;
  ++rebalances_;
  const std::uint64_t round = ++round_;
  // Phase 1: read each member's demand via its cluster-status service. The
  // round completes — and apportionment runs — once every member RPC
  // *resolved*: a fresh answer, an error, or the 5 s timeout. Errored and
  // timed-out members resolve with their stale demand and accrue a strike;
  // they must never leave the round incomplete (the stalled-round bug).
  for (Member& m : members_) {
    m.resolved = false;
    flux::Broker& root = m.config.instance->root();
    Member* target = &m;
    root.rpc(
        flux::kRootRank, kClusterStatusTopic, util::Json::object(),
        [this, target, round](const flux::Message& resp) {
          if (resp.is_error()) {
            // Dead or unreachable member: keep the stale demand, count the
            // miss, and shrink its future shares via the strike weight.
            ++member_misses_;
            target->strikes = std::min(target->strikes + 1,
                                       kMaxHealthStrikes);
          } else {
            const double nodes = static_cast<double>(
                resp.payload.int_or("total_allocated_nodes", 0));
            target->demand_w = nodes * target->config.node_peak_w;
            target->strikes = 0;
          }
          // A response from a superseded round (RPC timeout longer than the
          // rebalance period) may update demand/strikes above but must not
          // complete the newer round's barrier.
          if (round != round_) return;
          target->resolved = true;
          // Apportion once every member resolved (answered or timed out).
          if (std::all_of(members_.begin(), members_.end(),
                          [](const Member& mm) { return mm.resolved; })) {
            apportion_and_push();
          }
        },
        /*timeout_s=*/5.0);
  }
}

void SiteCoordinator::apportion_and_push() {
  ++rounds_completed_;

  SiteView view;
  view.now_s = sim_.now();
  view.site_bound_w = site_bound_w_;
  view.effective_bound_w = policy_->effective_bound_w(view.now_s,
                                                      site_bound_w_);
  effective_bound_w_ = view.effective_bound_w;

  std::vector<SiteMemberView> mview(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const Member& m = members_[i];
    mview[i].name = m.config.name;
    mview[i].demand_w = m.demand_w;
    mview[i].floor_w = m.config.floor_w;
    mview[i].node_peak_w = m.config.node_peak_w;
    mview[i].strikes = m.strikes;
    mview[i].health = health_of(m.strikes);
  }

  std::vector<double> shares(members_.size(), 0.0);
  policy_->apportion(view, mview, shares);

  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    m.share_w = shares[i];
    util::Json payload = util::Json::object();
    payload["bound_w"] = m.share_w;
    m.config.instance->root().rpc(flux::kRootRank, kSetClusterBoundTopic,
                                  std::move(payload), nullptr);
  }

  state_.clear();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const Member& m = members_[i];
    state_.push_back({m.config.name, m.demand_w, m.share_w, m.strikes,
                      mview[i].health});
  }
  if (round_callback_) round_callback_(state_);
}

}  // namespace fluxpower::manager
