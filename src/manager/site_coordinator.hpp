// site_coordinator.hpp — multi-instance (converged computing) power
// coordination.
//
// The paper's future work targets "diverse job queues in converged
// computing setups" (§VI): sites increasingly run an HPC cluster and a
// cloud/Kubernetes pool behind one facility power budget. The coordinator
// sits above multiple Flux instances (each running its own
// flux-power-manager) and periodically re-apportions the site budget:
//
//   share_i  ∝  demand_i = min(nodes_allocated_i x node_peak_i, bound need)
//
// with a guaranteed floor per member so an idle instance can still accept
// work instantly. Communication is exclusively through each instance's
// power-manager RPC surface (`cluster-status` to read demand,
// `set-cluster-bound` to write shares) — the coordinator needs no private
// hooks, so it would work equally against remote instances.
#pragma once

#include <string>
#include <vector>

#include "flux/instance.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::manager {

class SiteCoordinator {
 public:
  struct MemberConfig {
    std::string name;
    flux::Instance* instance = nullptr;
    double node_peak_w = 3050.0;
    /// Minimum budget this member always keeps (headroom for arrivals).
    double floor_w = 0.0;
  };

  /// `site_bound_w` is the facility-level budget split across members;
  /// shares are recomputed every `period_s` seconds.
  SiteCoordinator(sim::Simulation& sim, double site_bound_w,
                  double period_s = 30.0);
  ~SiteCoordinator();

  SiteCoordinator(const SiteCoordinator&) = delete;
  SiteCoordinator& operator=(const SiteCoordinator&) = delete;

  void add_member(MemberConfig member);

  /// Trigger one rebalance immediately (also runs periodically).
  void rebalance();

  double site_bound_w() const noexcept { return site_bound_w_; }

  struct MemberState {
    std::string name;
    double demand_w = 0.0;  ///< last observed demand
    double share_w = 0.0;   ///< last pushed bound
  };
  const std::vector<MemberState>& members() const noexcept { return state_; }
  int rebalances() const noexcept { return rebalances_; }

 private:
  struct Member {
    MemberConfig config;
    double demand_w = 0.0;
    double share_w = 0.0;
    bool demand_fresh = false;
  };

  void apportion_and_push();

  sim::Simulation& sim_;
  double site_bound_w_;
  std::vector<Member> members_;
  std::vector<MemberState> state_;
  std::unique_ptr<sim::PeriodicTask> ticker_;
  int rebalances_ = 0;
};

}  // namespace fluxpower::manager
