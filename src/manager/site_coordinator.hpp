// site_coordinator.hpp — multi-instance (converged computing) power
// coordination.
//
// The paper's future work targets "diverse job queues in converged
// computing setups" (§VI): sites increasingly run an HPC cluster and a
// cloud/Kubernetes pool behind one facility power budget. The coordinator
// sits above multiple Flux instances (each running its own
// flux-power-manager) and periodically re-apportions the site budget
// through a pluggable SitePolicy (demand-proportional by default):
//
//   share_i  ∝  demand_i = min(nodes_allocated_i x node_peak_i, bound need)
//
// with a guaranteed floor per member so an idle instance can still accept
// work instantly. Communication is exclusively through each instance's
// power-manager RPC surface (`cluster-status` to read demand,
// `set-cluster-bound` to write shares) — the coordinator needs no private
// hooks, so it would work equally against remote instances.
//
// Fault semantics (the production-hardening this type grew out of): a
// rebalance round completes once every member RPC *resolved* — answered,
// errored, or timed out. An unreachable member keeps its last observed
// (stale) demand and accrues a consecutive-miss strike; strikes halve the
// member's health weight (2^-strikes, floored), which every site policy
// uses to shrink the silent member's share toward its floor. The first
// fresh answer clears the strikes. A dead member can therefore never stall
// the round — the historical bug where one errored RPC left the round
// forever incomplete is regression-tested in tests/site/.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "flux/instance.hpp"
#include "manager/site_policy.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::manager {

class SiteCoordinator {
 public:
  struct MemberConfig {
    std::string name;
    flux::Instance* instance = nullptr;
    double node_peak_w = 3050.0;
    /// Minimum budget this member always keeps (headroom for arrivals).
    double floor_w = 0.0;
  };

  /// `site_bound_w` is the facility-level budget split across members;
  /// shares are recomputed every `period_s` seconds. The default policy is
  /// demand-proportional (the historical arithmetic, byte-identical while
  /// every member stays healthy).
  SiteCoordinator(sim::Simulation& sim, double site_bound_w,
                  double period_s = 30.0);
  ~SiteCoordinator();

  SiteCoordinator(const SiteCoordinator&) = delete;
  SiteCoordinator& operator=(const SiteCoordinator&) = delete;

  void add_member(MemberConfig member);

  /// Install an apportionment policy (never null). Takes effect from the
  /// next round; does not touch shares already pushed.
  void set_policy(std::unique_ptr<SitePolicy> policy);
  /// Factory-name convenience ("demand-proportional", "tariff-aware-dr",
  /// "fair-share"); throws std::invalid_argument on unknown names.
  void set_policy_by_name(const std::string& name);
  const SitePolicy& policy() const noexcept { return *policy_; }

  /// Trigger one rebalance immediately (also runs periodically).
  void rebalance();

  double site_bound_w() const noexcept { return site_bound_w_; }
  /// The bound the last completed round apportioned (demand-response may
  /// tighten it below site_bound_w at peak tariff). site_bound_w before
  /// any round completed.
  double effective_bound_w() const noexcept { return effective_bound_w_; }

  struct MemberState {
    std::string name;
    double demand_w = 0.0;  ///< last observed demand
    double share_w = 0.0;   ///< last pushed bound
    int strikes = 0;        ///< consecutive missed rounds (0 = healthy)
    double health = 1.0;    ///< 2^-strikes weight applied by policies
  };
  const std::vector<MemberState>& members() const noexcept { return state_; }
  int rebalances() const noexcept { return rebalances_; }
  /// Rounds whose apportionment actually ran (== rebalances() unless a
  /// round is still collecting demand).
  int rounds_completed() const noexcept { return rounds_completed_; }
  /// Member RPCs that resolved by error or timeout (stale demand kept).
  std::uint64_t member_misses() const noexcept { return member_misses_; }

  /// Test/bench hook: called after each completed round with the fresh
  /// member states (after shares were pushed).
  void set_round_callback(std::function<void(const std::vector<MemberState>&)>
                              callback) {
    round_callback_ = std::move(callback);
  }

  /// Health floor: strikes are capped here so one fresh answer always
  /// recovers a finite weight (2^-6 by default).
  static constexpr int kMaxHealthStrikes = 6;

 private:
  struct Member {
    MemberConfig config;
    double demand_w = 0.0;
    double share_w = 0.0;
    bool resolved = false;  ///< this round's RPC answered, errored, or timed out
    int strikes = 0;
  };

  void apportion_and_push();
  static double health_of(int strikes) noexcept;

  sim::Simulation& sim_;
  double site_bound_w_;
  double effective_bound_w_;
  std::unique_ptr<SitePolicy> policy_;
  std::vector<Member> members_;
  std::vector<MemberState> state_;
  std::unique_ptr<sim::PeriodicTask> ticker_;
  std::function<void(const std::vector<MemberState>&)> round_callback_;
  int rebalances_ = 0;
  int rounds_completed_ = 0;
  std::uint64_t member_misses_ = 0;
  /// Round generation: responses carry the round they belong to, so a
  /// response outliving its round (possible only if the RPC timeout
  /// exceeds the rebalance period) can never complete a newer round.
  std::uint64_t round_ = 0;
};

}  // namespace fluxpower::manager
