#include "manager/site_policy.hpp"

#include <cmath>
#include <stdexcept>

namespace fluxpower::manager {

namespace {

constexpr double kDayS = 86400.0;
constexpr double kWeekS = 7.0 * kDayS;

/// Hour-of-day in [0, 24) and day-of-week in [0, 7) for site time t.
double hour_of_day(double t_s) {
  const double day = std::fmod(t_s, kDayS);
  return (day < 0.0 ? day + kDayS : day) / 3600.0;
}

int day_of_week(double t_s) {
  double week = std::fmod(t_s, kWeekS);
  if (week < 0.0) week += kWeekS;
  return static_cast<int>(week / kDayS);
}

}  // namespace

PriceSignal::Tier PriceSignal::tier_at(double t_s) const noexcept {
  if (config_.weekend_offpeak && day_of_week(t_s) >= 5) return Tier::OffPeak;
  const double h = hour_of_day(t_s);
  if (h >= config_.peak_start_h && h < config_.peak_end_h) return Tier::Peak;
  if (h >= config_.shoulder_start_h && h < config_.shoulder_end_h) {
    return Tier::Shoulder;
  }
  return Tier::OffPeak;
}

double PriceSignal::price_usd_per_mwh(double t_s) const noexcept {
  switch (tier_at(t_s)) {
    case Tier::Peak:
      return config_.peak_usd_mwh;
    case Tier::Shoulder:
      return config_.shoulder_usd_mwh;
    case Tier::OffPeak:
      break;
  }
  return config_.offpeak_usd_mwh;
}

double PriceSignal::next_offpeak_s(double t_s) const noexcept {
  if (tier_at(t_s) != Tier::Peak) return t_s;
  // The peak window is a daily [start, end) interval on weekdays, so the
  // first non-peak instant is the end of today's window.
  const double day_start = std::floor(t_s / kDayS) * kDayS;
  return day_start + config_.peak_end_h * 3600.0;
}

const char* PriceSignal::tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::OffPeak:
      return "off-peak";
    case Tier::Shoulder:
      return "shoulder";
    case Tier::Peak:
      return "peak";
  }
  return "?";
}

namespace {

/// Floors first, spare proportional to health-weighted unmet demand. The
/// expression order reproduces the pre-policy coordinator bit-for-bit when
/// every health weight is 1.0 (multiplying by 1.0 is exact), which the
/// byte-identity of ext_converged_site depends on.
void proportional_apportion(const SiteView& view,
                            const std::vector<SiteMemberView>& members,
                            std::vector<double>& shares_w) {
  double floors = 0.0;
  for (const SiteMemberView& m : members) floors += m.floor_w;
  const double spare = std::max(0.0, view.effective_bound_w - floors);

  double unmet_total = 0.0;
  for (const SiteMemberView& m : members) {
    unmet_total += std::max(0.0, m.demand_w - m.floor_w) * m.health;
  }
  double health_total = 0.0;
  for (const SiteMemberView& m : members) health_total += m.health;

  for (std::size_t i = 0; i < members.size(); ++i) {
    const SiteMemberView& m = members[i];
    const double unmet = std::max(0.0, m.demand_w - m.floor_w) * m.health;
    double share = m.floor_w;
    if (unmet_total > 0.0) {
      share += spare * (unmet / unmet_total);
    } else if (health_total > 0.0) {
      // Nobody demands anything: split spare evenly (health-weighted) so
      // arrivals are fast. (spare * 1.0) / N == spare / N exactly, keeping
      // the all-healthy case byte-identical to the historical `spare / N`.
      share += (spare * m.health) / health_total;
    }
    shares_w[i] = share;
  }
}

class DemandProportionalPolicy final : public SitePolicy {
 public:
  const char* name() const noexcept override { return "demand-proportional"; }

  void apportion(const SiteView& view,
                 const std::vector<SiteMemberView>& members,
                 std::vector<double>& shares_w) const override {
    proportional_apportion(view, members, shares_w);
  }
};

class TariffAwarePolicy final : public SitePolicy {
 public:
  TariffAwarePolicy(PriceSignal signal, double peak_bound_factor)
      : signal_(signal), peak_bound_factor_(peak_bound_factor) {
    if (peak_bound_factor <= 0.0 || peak_bound_factor > 1.0) {
      throw std::invalid_argument(
          "tariff-aware-dr: peak_bound_factor must be in (0, 1]");
    }
  }

  const char* name() const noexcept override { return "tariff-aware-dr"; }

  double effective_bound_w(double now_s,
                           double site_bound_w) const noexcept override {
    return signal_.tier_at(now_s) == PriceSignal::Tier::Peak
               ? site_bound_w * peak_bound_factor_
               : site_bound_w;
  }

  void apportion(const SiteView& view,
                 const std::vector<SiteMemberView>& members,
                 std::vector<double>& shares_w) const override {
    proportional_apportion(view, members, shares_w);
  }

  bool defer_submission(double now_s) const noexcept override {
    return signal_.tier_at(now_s) == PriceSignal::Tier::Peak;
  }

  double deferral_release_s(double now_s) const noexcept override {
    return signal_.next_offpeak_s(now_s);
  }

  const PriceSignal& signal() const noexcept { return signal_; }

 private:
  PriceSignal signal_;
  double peak_bound_factor_;
};

class FairSharePolicy final : public SitePolicy {
 public:
  const char* name() const noexcept override { return "fair-share"; }

  void apportion(const SiteView& view,
                 const std::vector<SiteMemberView>& members,
                 std::vector<double>& shares_w) const override {
    double floors = 0.0;
    for (const SiteMemberView& m : members) floors += m.floor_w;
    const double spare = std::max(0.0, view.effective_bound_w - floors);
    double health_total = 0.0;
    for (const SiteMemberView& m : members) health_total += m.health;
    for (std::size_t i = 0; i < members.size(); ++i) {
      double share = members[i].floor_w;
      if (health_total > 0.0) {
        share += (spare * members[i].health) / health_total;
      }
      shares_w[i] = share;
    }
  }
};

}  // namespace

std::unique_ptr<SitePolicy> make_demand_proportional_policy() {
  return std::make_unique<DemandProportionalPolicy>();
}

std::unique_ptr<SitePolicy> make_tariff_aware_policy(PriceSignal signal,
                                                     double peak_bound_factor) {
  return std::make_unique<TariffAwarePolicy>(signal, peak_bound_factor);
}

std::unique_ptr<SitePolicy> make_fair_share_policy() {
  return std::make_unique<FairSharePolicy>();
}

std::unique_ptr<SitePolicy> make_site_policy(const std::string& name) {
  return make_site_policy(name, TariffConfig{});
}

std::unique_ptr<SitePolicy> make_site_policy(const std::string& name,
                                             const TariffConfig& tariff) {
  if (name == "demand-proportional") return make_demand_proportional_policy();
  if (name == "tariff-aware-dr") {
    return make_tariff_aware_policy(PriceSignal(tariff));
  }
  if (name == "fair-share") return make_fair_share_policy();
  throw std::invalid_argument(
      "make_site_policy: unknown policy '" + name +
      "' (known: demand-proportional, tariff-aware-dr, fair-share)");
}

std::vector<policy::PolicyInfo> site_policies() {
  return {
      {"demand-proportional",
       "floors first, spare proportional to health-weighted unmet demand"},
      {"tariff-aware-dr",
       "demand-proportional over a peak-tariff-tightened bound; defers "
       "deferrable submissions to the next off-peak window"},
      {"fair-share", "floors first, spare split evenly across members"},
  };
}

}  // namespace fluxpower::manager
