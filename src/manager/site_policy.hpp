// site_policy.hpp — pluggable site-level apportionment policies.
//
// The SiteCoordinator splits one facility budget across federated cluster
// instances. *How* it splits is a policy decision, and the related work
// motivates at least three distinct answers ("Run your HPC jobs in
// Eco-Mode": tariff-aware, user-assisted capping; "Design of an energy
// aware petaflops class high performance cluster": site-level energy
// budgeting):
//
//   * demand-proportional — floors first, spare split proportionally to
//     unmet demand (the coordinator's historical behaviour, byte-identical
//     when every member is healthy);
//   * tariff-aware-dr    — demand-response: the apportioned budget tightens
//     to a fraction of the facility bound while the power price is at its
//     peak tier, and deferrable job submissions are shifted to the next
//     off-peak window;
//   * fair-share         — floors first, spare split evenly across members
//     regardless of demand (predictable headroom per tenant).
//
// All policies receive each member's *health weight* (2^-strikes from the
// coordinator's consecutive-miss tracking) and must shrink an unhealthy
// member's share toward its floor: stale demand from a silent member must
// not keep pinning budget that live members could use.
//
// Determinism contract (same as the scheduler/node policy planes): a policy
// is a pure function of (view, members) — no wall clock, no RNG — so a
// federation run replays byte-identically from its seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/engine.hpp"

namespace fluxpower::manager {

/// Time-of-use electricity tariff: a deterministic step function of sim
/// time with three tiers. Hours are in local "site time" where t=0 is
/// midnight Monday; weekends (day 5, 6) are off-peak throughout when
/// `weekend_offpeak` is set.
struct TariffConfig {
  double offpeak_usd_mwh = 42.0;
  double shoulder_usd_mwh = 68.0;
  double peak_usd_mwh = 145.0;
  /// Weekday peak window [start, end) in hours-of-day.
  double peak_start_h = 17.0;
  double peak_end_h = 21.0;
  /// Weekday shoulder window [start, end) in hours-of-day; the peak window
  /// is carved out of it. Outside both windows is off-peak.
  double shoulder_start_h = 7.0;
  double shoulder_end_h = 23.0;
  bool weekend_offpeak = true;
};

/// Deterministic price lookup over a TariffConfig.
class PriceSignal {
 public:
  enum class Tier { OffPeak, Shoulder, Peak };

  PriceSignal() = default;
  explicit PriceSignal(TariffConfig config) : config_(config) {}

  Tier tier_at(double t_s) const noexcept;
  double price_usd_per_mwh(double t_s) const noexcept;
  /// $ per watt-second (joule): price / (1e6 W * 3600 s).
  double price_usd_per_ws(double t_s) const noexcept {
    return price_usd_per_mwh(t_s) / 3.6e9;
  }
  /// Earliest time >= t_s whose tier is not Peak (t_s itself if off-peak
  /// already). Used to shift deferrable submissions out of the peak window.
  double next_offpeak_s(double t_s) const noexcept;

  const TariffConfig& config() const noexcept { return config_; }

  static const char* tier_name(Tier tier) noexcept;

 private:
  TariffConfig config_;
};

/// Read-only per-member snapshot a policy apportions from.
struct SiteMemberView {
  std::string name;
  double demand_w = 0.0;     ///< last resolved demand (stale if unhealthy)
  double floor_w = 0.0;      ///< guaranteed minimum share
  double node_peak_w = 0.0;
  int strikes = 0;           ///< consecutive missed rebalance rounds
  double health = 1.0;       ///< 2^-strikes weight (1 = fully healthy)
};

/// Site-wide snapshot for one apportionment round.
struct SiteView {
  double now_s = 0.0;
  double site_bound_w = 0.0;       ///< the facility budget
  double effective_bound_w = 0.0;  ///< what this round may apportion
};

/// Site-level apportionment policy. Implementations must honour floors
/// (share_i >= floor_i) and never hand out more than view.effective_bound_w
/// in total (unless the floors alone already exceed it — floors win).
class SitePolicy {
 public:
  virtual ~SitePolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Budget this round may apportion; the demand-response hook. Must be in
  /// (0, site_bound_w]. Default: the full facility bound.
  virtual double effective_bound_w(double now_s,
                                   double site_bound_w) const noexcept {
    (void)now_s;
    return site_bound_w;
  }

  /// Fill `shares_w[i]` (pre-sized to members.size()) for every member.
  virtual void apportion(const SiteView& view,
                         const std::vector<SiteMemberView>& members,
                         std::vector<double>& shares_w) const = 0;

  /// Demand-response: should a deferrable job submitted at `now_s` be
  /// shifted? Default: never.
  virtual bool defer_submission(double now_s) const noexcept {
    (void)now_s;
    return false;
  }
  /// When a deferred submission should be released (only consulted after
  /// defer_submission returned true).
  virtual double deferral_release_s(double now_s) const noexcept {
    return now_s;
  }
};

/// Floors first, spare proportional to health-weighted unmet demand; the
/// historical coordinator arithmetic (bit-identical when all health == 1).
std::unique_ptr<SitePolicy> make_demand_proportional_policy();
/// Demand-proportional apportionment over a tariff-tightened bound, with
/// peak-window submission deferral. `peak_bound_factor` scales the site
/// bound while the price tier is Peak (clamped to floors-compatible use by
/// callers choosing sane floors).
std::unique_ptr<SitePolicy> make_tariff_aware_policy(
    PriceSignal signal, double peak_bound_factor = 0.65);
/// Floors first, spare split evenly (health-weighted) across members.
std::unique_ptr<SitePolicy> make_fair_share_policy();

/// Factory by name: "demand-proportional", "tariff-aware-dr" (default
/// tariff), or "fair-share". Throws std::invalid_argument on unknown names,
/// listing the known ones.
std::unique_ptr<SitePolicy> make_site_policy(const std::string& name);
std::unique_ptr<SitePolicy> make_site_policy(const std::string& name,
                                             const TariffConfig& tariff);
/// Catalog for list surfaces (benches, docs, error messages).
std::vector<policy::PolicyInfo> site_policies();

}  // namespace fluxpower::manager
