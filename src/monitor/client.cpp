#include "monitor/client.hpp"

#include <algorithm>
#include <map>

#include "flux/telemetry.hpp"
#include "monitor/power_monitor.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "variorum/variorum.hpp"

namespace fluxpower::monitor {

double JobPowerData::average_node_power_w() const {
  util::RunningStats stats;
  for (const NodePowerData& node : nodes) {
    for (const hwsim::PowerSample& s : node.samples) {
      stats.add(s.best_node_w());
    }
  }
  return stats.mean();
}

double JobPowerData::max_node_power_w() const {
  double m = 0.0;
  for (const NodePowerData& node : nodes) {
    for (const hwsim::PowerSample& s : node.samples) {
      m = std::max(m, s.best_node_w());
    }
  }
  return m;
}

double JobPowerData::max_aggregate_power_w() const {
  // Group samples by (quantized) timestamp across nodes; samples are taken
  // on a common 2 s grid so exact timestamps align.
  std::map<long long, double> by_time;
  for (const NodePowerData& node : nodes) {
    for (const hwsim::PowerSample& s : node.samples) {
      const long long key = static_cast<long long>(s.timestamp_s * 1000.0 + 0.5);
      by_time[key] += s.best_node_w();
    }
  }
  double m = 0.0;
  for (const auto& [t, w] : by_time) m = std::max(m, w);
  return m;
}

double JobPowerData::average_node_energy_j() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (const NodePowerData& node : nodes) {
    std::vector<double> ts, ws;
    ts.reserve(node.samples.size());
    ws.reserve(node.samples.size());
    for (const hwsim::PowerSample& s : node.samples) {
      ts.push_back(s.timestamp_s);
      ws.push_back(s.best_node_w());
    }
    total += util::trapezoid(ts, ws);
  }
  return total / static_cast<double>(nodes.size());
}

std::size_t JobPowerData::responding_nodes() const noexcept {
  std::size_t n = 0;
  for (const NodePowerData& node : nodes) {
    if (!node.errored) ++n;
  }
  return n;
}

JobPowerData parse_job_power_payload(const util::Json& payload) {
  JobPowerData data;
  data.job_id = static_cast<flux::JobId>(payload.int_or("id", 0));
  data.app = payload.string_or("app", "");
  data.t_start = payload.number_or("t_start", 0.0);
  data.t_end = payload.number_or("t_end", 0.0);
  for (const util::Json& n : payload.at("nodes").as_array()) {
    NodePowerData node;
    node.hostname = n.string_or("hostname", "");
    node.rank = static_cast<flux::Rank>(n.int_or("rank", -1));
    node.complete = n.bool_or("complete", false);
    if (n.contains("error")) {
      node.errored = true;
      node.error = n.string_or("error", "");
    }
    for (const util::Json& s : n.at("samples").as_array()) {
      node.samples.push_back(variorum::parse_node_power_json(s));
    }
    data.nodes.push_back(std::move(node));
  }
  // Stable presentation order regardless of RPC completion order.
  std::sort(data.nodes.begin(), data.nodes.end(),
            [](const NodePowerData& a, const NodePowerData& b) {
              return a.rank < b.rank;
            });
  return data;
}

JobPowerData parse_job_power_message(const flux::Message& resp) {
  if (!resp.telemetry) return parse_job_power_payload(resp.payload);
  // Typed fast path: the batch already holds PowerSample structs; the JSON
  // payload carries only the meta keys.
  JobPowerData data;
  data.job_id = static_cast<flux::JobId>(resp.payload.int_or("id", 0));
  data.app = resp.payload.string_or("app", "");
  data.t_start = resp.payload.number_or("t_start", 0.0);
  data.t_end = resp.payload.number_or("t_end", 0.0);
  data.nodes.reserve(resp.telemetry->nodes.size());
  for (const flux::TelemetryNodeEntry& entry : resp.telemetry->nodes) {
    NodePowerData node;
    node.hostname = entry.hostname;
    node.rank = entry.rank;
    node.complete = entry.complete;
    node.errored = entry.errored;
    node.error = entry.error;
    node.samples = entry.samples;
    data.nodes.push_back(std::move(node));
  }
  std::sort(data.nodes.begin(), data.nodes.end(),
            [](const NodePowerData& a, const NodePowerData& b) {
              return a.rank < b.rank;
            });
  return data;
}

void MonitorClient::query(flux::JobId job_id, Callback cb) {
  util::Json payload = util::Json::object();
  payload["id"] = job_id;
  if (typed_protocol_) flux::request_typed_telemetry(payload);
  instance_.root().rpc(flux::kRootRank, kQueryJobTopic, std::move(payload),
                       [cb = std::move(cb)](const flux::Message& resp) {
                         if (resp.is_error()) {
                           cb(std::nullopt, resp.error_text);
                           return;
                         }
                         cb(parse_job_power_message(resp), "");
                       });
}

std::optional<JobPowerData> MonitorClient::query_blocking(flux::JobId job_id) {
  std::optional<JobPowerData> result;
  bool done = false;
  query(job_id, [&](std::optional<JobPowerData> data, std::string) {
    result = std::move(data);
    done = true;
  });
  // Drive the simulator until the aggregation completes. RPC traffic is
  // the only pending work this can execute besides already-scheduled
  // module timers, which is acceptable for client-side tooling. pump_one
  // advances the globally earliest island on a sharded engine.
  while (!done && instance_.pump_one()) {
  }
  return result;
}

std::optional<JobPowerData> MonitorClient::query_window_blocking(
    const std::vector<flux::Rank>& ranks, double start_s, double end_s,
    int max_samples) {
  util::Json req = util::Json::object();
  req["start"] = start_s;
  req["end"] = end_s;
  if (max_samples > 0) req["max_samples"] = max_samples;
  util::Json ranks_json = util::Json::array();
  for (flux::Rank r : ranks) ranks_json.push_back(r);
  req["ranks"] = std::move(ranks_json);
  if (typed_protocol_) flux::request_typed_telemetry(req);

  std::optional<JobPowerData> result;
  bool done = false;
  instance_.root().rpc(flux::kRootRank, kGetSubtreeTopic, std::move(req),
                       [&](const flux::Message& resp) {
                         done = true;
                         if (resp.is_error()) return;
                         flux::Message shaped = resp;
                         shaped.payload = util::Json::object();
                         shaped.payload["id"] = 0;
                         shaped.payload["app"] = "window-query";
                         shaped.payload["t_start"] = start_s;
                         shaped.payload["t_end"] = end_s;
                         if (!resp.telemetry) {
                           shaped.payload["nodes"] = resp.payload.at("nodes");
                         }
                         result = parse_job_power_message(shaped);
                       });
  while (!done && instance_.pump_one()) {
  }
  return result;
}

std::string MonitorClient::to_csv(const JobPowerData& data) {
  util::CsvWriter csv;
  // Determine the widest socket/GPU layout across nodes for the header.
  std::size_t max_cpu = 0, max_gpu = 0;
  bool oam = false;
  for (const NodePowerData& node : data.nodes) {
    for (const hwsim::PowerSample& s : node.samples) {
      max_cpu = std::max(max_cpu, s.cpu_w.size());
      max_gpu = std::max(max_gpu, s.gpu_w.size());
      oam = oam || s.gpu_is_oam;
    }
  }
  std::vector<std::string> header{"jobid", "hostname", "timestamp_s",
                                  "node_power_w"};
  for (std::size_t i = 0; i < max_cpu; ++i) {
    header.push_back("cpu" + std::to_string(i) + "_w");
  }
  header.push_back("mem_w");
  for (std::size_t i = 0; i < max_gpu; ++i) {
    header.push_back((oam ? "oam" : "gpu") + std::to_string(i) + "_w");
  }
  header.push_back("dataset");
  csv.row(header);

  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return std::string(buf);
  };

  for (const NodePowerData& node : data.nodes) {
    for (const hwsim::PowerSample& s : node.samples) {
      std::vector<std::string> row;
      row.push_back(std::to_string(data.job_id));
      row.push_back(node.hostname);
      row.push_back(fmt(s.timestamp_s));
      row.push_back(fmt(s.best_node_w()));
      for (std::size_t i = 0; i < max_cpu; ++i) {
        row.push_back(i < s.cpu_w.size() ? fmt(s.cpu_w[i]) : "");
      }
      row.push_back(s.mem_w ? fmt(*s.mem_w) : "");
      for (std::size_t i = 0; i < max_gpu; ++i) {
        row.push_back(i < s.gpu_w.size() ? fmt(s.gpu_w[i]) : "");
      }
      row.push_back(node.complete ? "complete" : "partial");
      csv.row(row);
    }
  }
  return csv.str();
}

}  // namespace fluxpower::monitor
