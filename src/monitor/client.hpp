// client.hpp — the external monitor client (the paper's Python script).
//
// Takes a job identifier, asks the root-agent for the job's aggregated
// power data, and renders it as CSV with one row per (node, sample) plus a
// column marking whether the node's dataset was complete or partial
// (§III-A). Also computes the summary statistics the paper's tables use
// (average node power, per-node energy via trapezoidal integration of the
// 2 s samples).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "flux/instance.hpp"
#include "hwsim/types.hpp"

namespace fluxpower::monitor {

/// Telemetry for one node of a job.
struct NodePowerData {
  std::string hostname;
  flux::Rank rank = -1;
  bool complete = true;
  /// The node never answered (dead broker, dropped RPC): the entry is a
  /// placeholder with no samples and `error` holds the reason.
  bool errored = false;
  std::string error;
  std::vector<hwsim::PowerSample> samples;
};

struct JobPowerData {
  flux::JobId job_id = 0;
  std::string app;
  double t_start = 0.0;
  double t_end = 0.0;
  std::vector<NodePowerData> nodes;

  /// Telemetry coverage: nodes that answered / nodes requested. Under
  /// faults the aggregation degrades to a partial dataset with an honest
  /// denominator rather than erroring out.
  std::size_t requested_nodes() const noexcept { return nodes.size(); }
  std::size_t responding_nodes() const noexcept;

  /// Average of best-available node power over all samples of all nodes.
  double average_node_power_w() const;
  /// Peak single-node power across all samples.
  double max_node_power_w() const;
  /// Peak *aggregate* power: at each sample index, sum over nodes (the
  /// "maximum power usage" columns of Tables III/IV).
  double max_aggregate_power_w() const;
  /// Per-node energy (J) via trapezoidal integration, averaged over nodes.
  double average_node_energy_j() const;
};

/// Decode a `power-monitor.query-job` response payload. Shared by the
/// client and the root-agent's job archive.
JobPowerData parse_job_power_payload(const util::Json& payload);

/// Decode a `power-monitor.query-job` response message, preferring the
/// typed-telemetry fast path (no JSON parse at all) when the response
/// carries a batch, and falling back to the JSON payload otherwise.
JobPowerData parse_job_power_message(const flux::Message& resp);

class MonitorClient {
 public:
  /// The client attaches to the instance's root broker, like the paper's
  /// script connecting to the root flux-broker.
  explicit MonitorClient(flux::Instance& instance) : instance_(instance) {}

  /// Asynchronous query; the callback fires when aggregation completes.
  /// On error the optional is empty and `error` carries the reason.
  using Callback =
      std::function<void(std::optional<JobPowerData>, std::string error)>;
  void query(flux::JobId job_id, Callback cb);

  /// Convenience: issue the query and run the simulation until the
  /// response arrives (only for use outside other event-driven code).
  std::optional<JobPowerData> query_blocking(flux::JobId job_id);

  /// Ad-hoc window query over explicit ranks, without a job id — what an
  /// operator runs to inspect arbitrary nodes over an arbitrary interval.
  /// Aggregates through the TBON tree reduction. `max_samples` > 0 asks
  /// the node-agents to decimate.
  std::optional<JobPowerData> query_window_blocking(
      const std::vector<flux::Rank>& ranks, double start_s, double end_s,
      int max_samples = 0);

  /// Render the CSV the paper's client produces.
  static std::string to_csv(const JobPowerData& data);

  /// When true (default) the client opts into typed-telemetry responses:
  /// samples arrive as structs and never round-trip through JSON. Off
  /// forces the legacy JSON protocol — kept for the data-plane ablation.
  void set_typed_protocol(bool on) noexcept { typed_protocol_ = on; }

 private:
  flux::Instance& instance_;
  bool typed_protocol_ = true;
};

}  // namespace fluxpower::monitor
