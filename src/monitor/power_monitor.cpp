#include "monitor/power_monitor.hpp"

#include <array>
#include <limits>

#include "flux/hostlist.hpp"
#include "flux/instance.hpp"
#include "monitor/client.hpp"
#include "obs/trace.hpp"
#include "variorum/variorum.hpp"

namespace fluxpower::monitor {

using flux::Message;
using flux::TelemetryBatch;
using flux::TelemetryNodeEntry;
using util::Json;

namespace {
/// Sweep cost is platform-bound (OCC in-band ~8 ms, MSR ~0.8 ms); the
/// buckets straddle both defaults.
constexpr std::array<double, 8> kSweepDurationBounds = {
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025};
/// Nodes contributed per subtree merge: bounded by the cluster size.
constexpr std::array<double, 11> kBatchNodesBounds = {
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
/// Samples per upward delta batch: a steady-state delta is a handful of
/// samples per node; a resync re-ships whole buffers.
constexpr std::array<double, 9> kDeltaBatchBounds = {
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536};

/// Copy the in-window samples of a columnar store into `entry`, decimating
/// uniformly when the requester bounded the transfer. Shared between the
/// node-agent's own entry and the delta root's replica materialization so
/// the two paths are arithmetic-identical — the byte-for-byte equivalence
/// of delta and full aggregation rests on it.
void fill_windowed_samples(const ColumnarSampleStore& store, double start,
                           double end, std::size_t max_samples,
                           TelemetryNodeEntry& entry) {
  // Columnar store: the in-window samples are a contiguous logical range
  // found by binary search over the timestamp column — no full-buffer scan.
  const auto [lo, hi] = store.window_range(start, end);
  const std::size_t in_window = hi - lo;
  if (max_samples > 1 && in_window > max_samples) {
    entry.decimated = true;
    const double stride = static_cast<double>(in_window - 1) /
                          static_cast<double>(max_samples - 1);
    std::size_t previous = static_cast<std::size_t>(-1);
    for (std::size_t k = 0; k < max_samples; ++k) {
      const auto idx = static_cast<std::size_t>(k * stride + 0.5);
      if (idx == previous) continue;
      previous = idx;
      entry.samples.push_back(store.get(lo + std::min(idx, in_window - 1)));
    }
  } else {
    entry.samples.reserve(in_window);
    for (std::size_t i = lo; i < hi; ++i) {
      entry.samples.push_back(store.get(i));
    }
  }
}

using ReplicaMap = std::map<flux::Rank, TelemetryReplica>;

/// Fold one delta entry into the requester's replica of the source ring:
/// recreate on capacity change (the source was reconfigured — a resync),
/// prune to the source's retained front, append strictly-newer samples.
/// The timestamp filter makes the apply idempotent under duplicated or
/// reordered responses.
void apply_delta_entry(ReplicaMap& replicas, const TelemetryNodeEntry& e,
                       obs::Counter* resyncs) {
  TelemetryReplica& rep = replicas[e.rank];
  const std::size_t cap = e.source_capacity > 0 ? e.source_capacity : 1;
  if (rep.store == nullptr || rep.store->capacity() != cap) {
    if (rep.store != nullptr) resyncs->inc();
    rep.store = std::make_unique<ColumnarSampleStore>(cap);
    rep.watermark_ts = kNoWatermark;
  }
  rep.hostname = e.hostname;
  rep.source_empty = e.source_empty;
  rep.front_ts_s = e.front_ts_s;
  rep.source_evicted = e.source_evicted;
  if (e.source_empty) {
    // Source holds nothing (fresh buffer after a capacity change, or a
    // rebooted node): mirror that exactly and restart the watermark.
    rep.store->clear();
    rep.watermark_ts = kNoWatermark;
    return;
  }
  rep.store->prune_front(e.front_ts_s);
  for (const hwsim::PowerSample& s : e.samples) {
    if (s.timestamp_s > rep.watermark_ts) {
      rep.store->push(s);
      rep.watermark_ts = s.timestamp_s;
    }
  }
}

/// Materialize the final windowed per-node entry from a replica — the exact
/// entry the source node-agent would have produced at its handle time, with
/// completeness judged from the *source's* ledger (the replica's own
/// eviction count says nothing about what the source flushed).
TelemetryNodeEntry entry_from_replica(const TelemetryReplica& rep,
                                      flux::Rank rank, double start,
                                      double end, std::size_t max_samples) {
  TelemetryNodeEntry entry;
  fill_windowed_samples(*rep.store, start, end, max_samples, entry);
  entry.complete = true;
  if (rep.source_empty) {
    entry.complete = false;
  } else if (rep.source_evicted > 0 && rep.front_ts_s > start) {
    entry.complete = false;
  }
  entry.hostname = rep.hostname;
  entry.rank = rank;
  return entry;
}
}  // namespace

PowerMonitorModule::PowerMonitorModule(PowerMonitorConfig config)
    : config_(config) {}

PowerMonitorModule::~PowerMonitorModule() = default;

void PowerMonitorModule::load(flux::Broker& broker) {
  broker_ = &broker;
  buffer_ = std::make_unique<ColumnarSampleStore>(config_.buffer_capacity);
  // Fresh replica map: a module (re)load forgets every mirror, so the first
  // delta query after a reload re-ships full buffers — a natural resync.
  replicas_ = std::make_shared<ReplicaMap>();

  // Bind instruments in the broker registry. Counters are reset so a
  // reloaded module starts a fresh ledger — the semantics the plain
  // per-module counters had — keeping the ledger identity
  // samples == evicted + size + failures intact across a reload.
  obs::MetricsRegistry& reg = broker.metrics();
  samples_total_ = &reg.counter("fluxpower_monitor_samples_total",
                                "Sensor sweeps attempted by the node-agent");
  sensor_failures_total_ =
      &reg.counter("fluxpower_monitor_sensor_failures_total",
                   "Sweeps discarded because the sensors faulted");
  subtree_merges_total_ =
      &reg.counter("fluxpower_monitor_subtree_merges_total",
                   "TBON subtree merges performed at this broker");
  merge_bytes_total_ = &reg.counter(
      "fluxpower_monitor_merge_bytes_total",
      "Telemetry sample bytes shipped upward in subtree responses");
  delta_resyncs_total_ = &reg.counter(
      "fluxpower_monitor_delta_resyncs_total",
      "Replica mirrors dropped or rebuilt, forcing a full re-ship");
  sweep_duration_ = &reg.histogram("fluxpower_monitor_sweep_duration_seconds",
                                   "CPU time stolen per sensor sweep",
                                   kSweepDurationBounds);
  subtree_batch_nodes_ = &reg.histogram(
      "fluxpower_monitor_subtree_batch_nodes",
      "Per-node entries in each merged subtree batch", kBatchNodesBounds);
  delta_batch_samples_ = &reg.histogram(
      "fluxpower_monitor_delta_batch_samples",
      "Samples per upward delta batch (steady state: a handful per node)",
      kDeltaBatchBounds);
  delta_watermark_lag_ =
      &reg.gauge("fluxpower_monitor_delta_watermark_lag_seconds",
                 "Age of the oldest replica watermark at the last delta apply");
  tbon_level_ = &reg.gauge("fluxpower_monitor_tbon_level",
                           "This broker's depth in the TBON (root = 0)");
  buffer_fill_ratio_ = &reg.gauge("fluxpower_monitor_buffer_fill_ratio",
                                  "Retained samples / buffer capacity");
  buffer_size_ =
      &reg.gauge("fluxpower_monitor_buffer_size", "Retained samples");
  buffer_evicted_ = &reg.gauge("fluxpower_monitor_buffer_evicted_total",
                               "Samples flushed from the circular buffer");
  samples_total_->reset();
  sensor_failures_total_->reset();
  subtree_merges_total_->reset();
  merge_bytes_total_->reset();
  delta_resyncs_total_->reset();
  sweep_duration_->reset();
  subtree_batch_nodes_->reset();
  delta_batch_samples_->reset();
  tbon_level_->set(
      static_cast<double>(broker.instance().tbon().level(broker.rank())));
  refresh_gauges();

  // Node-agent: stateless periodic sampling on every broker.
  broker.register_service(kGetDataTopic,
                          [this](const Message& m) { handle_get_data(m); });
  broker.register_service(kGetSubtreeTopic,
                          [this](const Message& m) { handle_get_subtree(m); });
  broker.register_service(kStatusTopic,
                          [this](const Message& m) { handle_status(m); });
  broker.register_service(kSetConfigTopic,
                          [this](const Message& m) { handle_set_config(m); });
  broker.register_service(kMetricsTopic,
                          [this](const Message& m) { handle_metrics(m); });
  sampler_ = std::make_unique<sim::PeriodicTask>(
      broker.sim(), config_.sample_period_s, [this] {
        take_sample();
        return true;
      });

  // Root-agent: external-client entry point, root rank only.
  if (broker.is_root()) {
    broker.register_service(kQueryJobTopic,
                            [this](const Message& m) { handle_query_job(m); });
    if (config_.archive_jobs) {
      archive_subscription_ = broker.subscribe_event(
          "job.state-inactive", [this](const Message& event) {
            archive_job(
                static_cast<flux::JobId>(event.payload.int_or("id", 0)),
                static_cast<flux::UserId>(
                    event.payload.int_or("userid", flux::kOwnerUserid)));
          });
    }
  }
}

void PowerMonitorModule::unload() {
  sampler_.reset();
  if (broker_ != nullptr) {
    broker_->unregister_service(kGetDataTopic);
    broker_->unregister_service(kGetSubtreeTopic);
    broker_->unregister_service(kStatusTopic);
    broker_->unregister_service(kSetConfigTopic);
    broker_->unregister_service(kMetricsTopic);
    if (broker_->is_root()) {
      broker_->unregister_service(kQueryJobTopic);
      if (archive_subscription_ != 0) {
        broker_->unsubscribe_event(archive_subscription_);
        archive_subscription_ = 0;
      }
    }
    broker_ = nullptr;
  }
  // The instruments live in the broker registry, which outlives the module;
  // only the handles are dropped here.
  samples_total_ = nullptr;
  sensor_failures_total_ = nullptr;
  subtree_merges_total_ = nullptr;
  merge_bytes_total_ = nullptr;
  delta_resyncs_total_ = nullptr;
  sweep_duration_ = nullptr;
  subtree_batch_nodes_ = nullptr;
  delta_batch_samples_ = nullptr;
  delta_watermark_lag_ = nullptr;
  tbon_level_ = nullptr;
  buffer_fill_ratio_ = nullptr;
  buffer_size_ = nullptr;
  buffer_evicted_ = nullptr;
  buffer_.reset();
  // In-flight merge callbacks hold their own shared_ptr to the map; this
  // only drops the module's reference.
  replicas_.reset();
}

void PowerMonitorModule::refresh_gauges() {
  if (buffer_ == nullptr || buffer_fill_ratio_ == nullptr) return;
  buffer_fill_ratio_->set(static_cast<double>(buffer_->size()) /
                          static_cast<double>(buffer_->capacity()));
  buffer_size_->set(static_cast<double>(buffer_->size()));
  buffer_evicted_->set(static_cast<double>(buffer_->evicted()));
}

void PowerMonitorModule::take_sample() {
  hwsim::Node* node = broker_->node();
  if (node == nullptr) return;  // broker-only test instance
  // One typed sensor sweep, stored raw: sizeof(PowerSample) bytes, no JSON,
  // no heap allocation on the 2 s hot path.
  const hwsim::PowerSample s = variorum::get_node_power_sample(*node);
  samples_total_->inc();
  // The sweep burned CPU whether or not the sensors answered.
  node->add_stolen_time(config_.sample_cost_s);
  sweep_duration_->observe(config_.sample_cost_s);
  if (obs::TraceSink& tr = obs::process_trace(); tr.enabled()) {
    tr.complete(broker_->sim().now(), config_.sample_cost_s, "sensor-sweep",
                "monitor", broker_->rank(), "fault",
                s.sensor_fault ? 1.0 : 0.0);
  }
  if (s.sensor_fault) {
    // Faulted sweeps never enter the buffer: a dead/stuck reading in the
    // telemetry would silently corrupt every downstream energy integral.
    // The failure is counted instead and surfaces in status and metrics.
    sensor_failures_total_->inc();
    return;
  }
  if (config_.stream_samples) {
    // Streaming is an edge: dashboards consume the rendered JSON.
    Json event = Json::object();
    event["rank"] = broker_->rank();
    event["sample"] = variorum::render_node_power_json(s);
    broker_->publish_event("power-monitor.sample", std::move(event));
  }
  buffer_->push(s);
}

TelemetryNodeEntry PowerMonitorModule::local_entry(const Json& window) {
  const double start = window.number_or("start", 0.0);
  const double end = window.number_or("end", broker_->sim().now());
  // Optional decimation: long-running jobs accumulate days of samples;
  // clients can bound the transfer and the node-agent thins uniformly
  // (first and last retained samples always survive).
  const auto max_samples =
      static_cast<std::size_t>(window.int_or("max_samples", 0));

  TelemetryNodeEntry entry;
  fill_windowed_samples(*buffer_, start, end, max_samples, entry);

  // The dataset is partial if the buffer has already flushed samples that
  // fell inside the requested window: detectable when the oldest retained
  // sample is newer than the window start and evictions have occurred.
  entry.complete = true;
  if (buffer_->empty()) {
    entry.complete = false;
  } else if (buffer_->evicted() > 0 && buffer_->timestamp_at(0) > start) {
    entry.complete = false;
  }

  entry.hostname =
      broker_->node() != nullptr ? broker_->node()->hostname() : "";
  entry.rank = broker_->rank();
  return entry;
}

TelemetryNodeEntry PowerMonitorModule::local_delta_entry(double since_ts) {
  TelemetryNodeEntry entry;
  entry.delta = true;
  entry.rank = broker_->rank();
  entry.hostname =
      broker_->node() != nullptr ? broker_->node()->hostname() : "";
  entry.source_empty = buffer_->empty();
  entry.front_ts_s = buffer_->empty() ? 0.0 : buffer_->timestamp_at(0);
  entry.source_evicted = buffer_->evicted();
  entry.source_capacity = static_cast<std::uint32_t>(buffer_->capacity());
  if (!buffer_->empty()) {
    // Every retained sample strictly newer than the watermark — not
    // window-filtered: the delta keeps the requester's mirror exact so the
    // window (and any decimation) can be applied there.
    auto [lo, hi] = buffer_->window_range(
        since_ts, std::numeric_limits<double>::infinity());
    while (lo < hi && buffer_->timestamp_at(lo) <= since_ts) ++lo;
    entry.samples.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      entry.samples.push_back(buffer_->get(i));
    }
  }
  return entry;
}

void PowerMonitorModule::handle_get_data(const Message& req) {
  auto batch = std::make_shared<TelemetryBatch>();
  batch->single_entry = true;
  batch->nodes.push_back(local_entry(req.payload));
  if (flux::wants_typed_telemetry(req)) {
    broker_->respond_telemetry(req, Json::object(), std::move(batch));
  } else {
    // JSON edge: requester speaks the legacy protocol.
    broker_->respond(req, flux::render_telemetry_entry(batch->nodes.front()));
  }
}

std::string PowerMonitorModule::metrics_text() const {
  const std::string host =
      broker_ != nullptr && broker_->node() != nullptr
          ? broker_->node()->hostname()
          : "unknown";
  char line[256];
  std::string out;
  auto gauge = [&](const char* name, const std::string& labels, double value) {
    std::snprintf(line, sizeof line, "%s{host=\"%s\"%s%s} %.3f\n", name,
                  host.c_str(), labels.empty() ? "" : ",", labels.c_str(),
                  value);
    out += line;
  };
  // Thin view over the broker registry: same counters the `power.metrics`
  // aggregation exposes, rendered in the module's legacy byte format.
  gauge("fluxpower_monitor_samples_total", "",
        static_cast<double>(samples_taken()));
  gauge("fluxpower_monitor_sensor_failures_total", "",
        static_cast<double>(sensor_failures()));
  if (buffer_) {
    gauge("fluxpower_monitor_buffer_fill_ratio", "",
          static_cast<double>(buffer_->size()) /
              static_cast<double>(buffer_->capacity()));
    gauge("fluxpower_monitor_buffer_evicted_total", "",
          static_cast<double>(buffer_->evicted()));
    if (!buffer_->empty()) {
      // Per-domain gauges in the Variorum key order (node, sockets, mem,
      // accelerators) so the exposition is byte-stable with the old
      // JSON-backed implementation.
      const hwsim::PowerSample s = buffer_->back();
      if (s.node_w) {
        gauge("fluxpower_node_power_watts", "domain=\"node\"", *s.node_w);
      } else if (s.node_estimate_w) {
        gauge("fluxpower_node_power_watts", "domain=\"node_estimate\"",
              *s.node_estimate_w);
      }
      for (std::size_t i = 0; i < s.cpu_w.size(); ++i) {
        gauge("fluxpower_domain_power_watts",
              "domain=\"cpu_watts_socket_" + std::to_string(i) + "\"",
              s.cpu_w[i]);
      }
      if (s.mem_w) {
        gauge("fluxpower_domain_power_watts", "domain=\"mem_watts\"",
              *s.mem_w);
      }
      const char* gpu_label = s.gpu_is_oam ? "gpu_watts_oam_" : "gpu_watts_gpu_";
      for (std::size_t i = 0; i < s.gpu_w.size(); ++i) {
        gauge("fluxpower_domain_power_watts",
              "domain=\"" + std::string(gpu_label) + std::to_string(i) + "\"",
              s.gpu_w[i]);
      }
    }
  }
  return out;
}

void PowerMonitorModule::handle_get_subtree(const Message& req) {
  // TBON tree reduction: contribute the local window, recurse into the
  // children whose subtrees hold requested ranks, and answer upward with
  // the merged per-node entries. Every broker's fan-in is bounded by the
  // tree fanout regardless of job size. Hop-to-hop the merge is typed:
  // child batches arrive by pointer and entries are concatenated without
  // touching JSON; only the reply to a legacy (non-typed) requester is
  // rendered.
  //
  // Aggregation protocol is request-driven on interior hops and
  // config-driven at the query root:
  //  * a request carrying "since" (rank -> watermark timestamp) is a delta
  //    hop: contribute a handle-time delta snapshot of the local buffer,
  //    forward each child its subset of the watermarks, and pass child
  //    entries through untouched;
  //  * a request without "since" at a broker with delta aggregation on
  //    makes this broker the *delta root*: it issues watermarks from its
  //    replica mirrors, folds the returning deltas into them, and
  //    materializes the final windowed entries — byte-identical to the
  //    full re-merge because a replica equals the source buffer at its
  //    handle time;
  //  * otherwise: classic full re-merge (the ablation and the fallback).
  // The RPC pattern (one request + one response per child per query) is the
  // same in all three shapes, so fault-injection schedules do not shift.
  const flux::Tbon& tbon = broker_->instance().tbon();
  std::vector<flux::Rank> wanted;
  if (req.payload.contains("ranks")) {
    for (const Json& r : req.payload.at("ranks").as_array()) {
      wanted.push_back(static_cast<flux::Rank>(r.as_int()));
    }
  }
  auto wants = [&wanted](flux::Rank r) {
    return std::find(wanted.begin(), wanted.end(), r) != wanted.end();
  };
  const bool delta_hop = req.payload.contains("since");
  const bool delta_root = !delta_hop && config_.delta_aggregation;

  struct Pending {
    TelemetryBatch batch;
    std::size_t outstanding = 0;
    Message original;
  };
  auto pending = std::make_shared<Pending>();
  pending->original = req;
  if (wants(broker_->rank())) {
    if (delta_hop) {
      double since = kNoWatermark;
      const Json& in = req.payload.at("since");
      if (const std::string key = std::to_string(broker_->rank());
          in.contains(key)) {
        since = in.at(key).as_double();
      }
      pending->batch.nodes.push_back(local_delta_entry(since));
    } else {
      // Full mode and delta root alike: the local entry is built in final
      // form at handle time — there is no upward hop to save bytes on.
      pending->batch.nodes.push_back(local_entry(req.payload));
    }
  }

  // Partition the remaining wanted ranks among child subtrees.
  struct ChildRequest {
    flux::Rank child;
    std::vector<flux::Rank> subset;
  };
  std::vector<ChildRequest> child_requests;
  for (flux::Rank child : tbon.children(broker_->rank())) {
    ChildRequest cr;
    cr.child = child;
    for (flux::Rank r : tbon.subtree(child)) {
      if (wants(r)) cr.subset.push_back(r);
    }
    if (!cr.subset.empty()) child_requests.push_back(std::move(cr));
  }

  flux::Broker* broker = broker_;
  const std::size_t requested = wanted.size();
  // Instrument handles are captured by value: they point into the broker
  // registry, which outlives the module, so a merge completing after an
  // unload still records safely.
  obs::Counter* merges = subtree_merges_total_;
  obs::Histogram* batch_nodes = subtree_batch_nodes_;
  obs::Counter* merge_bytes = merge_bytes_total_;
  obs::Histogram* delta_batch = delta_batch_samples_;
  auto respond_merged = [broker, requested, merges, batch_nodes, merge_bytes,
                         delta_batch, delta_hop](Pending& p) {
    merges->inc();
    batch_nodes->observe(static_cast<double>(p.batch.nodes.size()));
    // Payload accounting: samples shipped in this upward response. Counted
    // in every mode so full-vs-delta byte savings read directly off the
    // registry (the typed batch travels by pointer; this is the hop's
    // logical wire weight).
    std::size_t shipped = 0;
    for (const TelemetryNodeEntry& n : p.batch.nodes) {
      shipped += n.samples.size();
    }
    merge_bytes->inc(shipped * sizeof(hwsim::PowerSample));
    if (delta_hop) delta_batch->observe(static_cast<double>(shipped));
    if (obs::TraceSink& tr = obs::process_trace(); tr.enabled()) {
      tr.instant(broker->sim().now(), "subtree-merge", "monitor",
                 broker->rank(), "nodes",
                 static_cast<double>(p.batch.nodes.size()));
    }
    // Coverage annotation: how many of the requested ranks actually
    // answered. Downed subtrees yield errored placeholder entries, so the
    // aggregate degrades with an honest denominator instead of hanging.
    std::size_t responding = 0;
    for (const TelemetryNodeEntry& n : p.batch.nodes) {
      if (!n.errored) ++responding;
    }
    Json meta = Json::object();
    meta["requested"] = static_cast<std::int64_t>(requested);
    meta["responding"] = static_cast<std::int64_t>(responding);
    auto batch = std::make_shared<TelemetryBatch>(std::move(p.batch));
    if (flux::wants_typed_telemetry(p.original)) {
      broker->respond_telemetry(p.original, std::move(meta), std::move(batch));
    } else {
      broker->respond(p.original,
                      flux::render_telemetry_payload(meta, *batch));
    }
  };

  if (child_requests.empty()) {
    respond_merged(*pending);
    return;
  }

  // Window parameters as the children will see them — the delta root
  // materializes replica entries against these exact values, matching what
  // each node-agent would have windowed itself in full mode.
  const double win_start = req.payload.number_or("start", 0.0);
  const double win_end = req.payload.number_or("end", broker->sim().now());
  const auto win_max =
      static_cast<std::size_t>(req.payload.int_or("max_samples", 0));

  pending->outstanding = child_requests.size();
  for (ChildRequest& cr : child_requests) {
    Json sub = Json::object();
    sub["start"] = win_start;
    sub["end"] = win_end;
    if (req.payload.contains("max_samples")) {
      sub["max_samples"] = req.payload.int_or("max_samples", 0);
    }
    Json ranks = Json::array();
    for (flux::Rank r : cr.subset) ranks.push_back(r);
    sub["ranks"] = std::move(ranks);
    if (delta_hop || delta_root) {
      // Per-rank watermarks for this child's subset. An interior hop
      // forwards the root's values verbatim (so returning deltas are
      // already relative to the root's mirrors and pass through unmerged);
      // the root issues them from its replicas. A rank with no mirror has
      // no key — the source ships everything it retains.
      Json since = Json::object();
      if (delta_hop) {
        const Json& in = req.payload.at("since");
        for (flux::Rank r : cr.subset) {
          if (const std::string key = std::to_string(r); in.contains(key)) {
            since[key] = in.at(key).as_double();
          }
        }
      } else {
        for (flux::Rank r : cr.subset) {
          const auto it = replicas_->find(r);
          if (it != replicas_->end() && it->second.store != nullptr &&
              it->second.watermark_ts > kNoWatermark) {
            since[std::to_string(r)] = it->second.watermark_ts;
          }
        }
      }
      sub["since"] = std::move(since);
    }
    // Internal hop: always ask the child for the typed batch.
    flux::request_typed_telemetry(sub);

    const std::vector<flux::Rank> subset = cr.subset;
    if (!delta_root) {
      // Full re-merge and interior delta hops share one shape: child
      // entries are concatenated verbatim (full entries are final; delta
      // entries are relative to the root's watermarks already).
      broker->rpc(
          cr.child, kGetSubtreeTopic, std::move(sub),
          [pending, subset, respond_merged](const Message& resp) {
            if (resp.is_error()) {
              // A whole subtree went dark: emit partial entries for each of
              // its requested ranks so aggregation degrades, not fails.
              for (flux::Rank r : subset) {
                TelemetryNodeEntry entry;
                entry.rank = r;
                entry.complete = false;
                entry.errored = true;
                entry.error = resp.error_text;
                pending->batch.nodes.push_back(std::move(entry));
              }
            } else if (resp.telemetry) {
              for (const TelemetryNodeEntry& n : resp.telemetry->nodes) {
                pending->batch.nodes.push_back(n);
              }
            } else {
              // Legacy child speaking JSON: parse back to typed here.
              for (const Json& n : resp.payload.at("nodes").as_array()) {
                pending->batch.nodes.push_back(flux::parse_telemetry_entry(n));
              }
            }
            if (--pending->outstanding == 0) respond_merged(*pending);
          },
          /*timeout_s=*/10.0);
      continue;
    }

    // Delta root: fold returning deltas into the replica mirrors and
    // materialize final entries. The replica shared_ptr and registry
    // instruments outlive the module, so a late response stays safe.
    std::shared_ptr<ReplicaMap> replicas = replicas_;
    obs::Counter* resyncs = delta_resyncs_total_;
    obs::Gauge* lag = delta_watermark_lag_;
    broker->rpc(
        cr.child, kGetSubtreeTopic, std::move(sub),
        [pending, subset, respond_merged, replicas, resyncs, lag, broker,
         win_start, win_end, win_max](const Message& resp) {
          auto fold = [&](const TelemetryNodeEntry& n) {
            if (n.errored || !n.delta) {
              // Errored placeholder from a dark subtree, or a legacy child
              // speaking the full protocol: pass the entry through verbatim
              // and drop the mirror — the next query resyncs from scratch.
              if (replicas->erase(n.rank) > 0) resyncs->inc();
              pending->batch.nodes.push_back(n);
              return;
            }
            apply_delta_entry(*replicas, n, resyncs);
            const TelemetryReplica& rep = replicas->at(n.rank);
            if (rep.watermark_ts > kNoWatermark) {
              lag->set(broker->sim().now() - rep.watermark_ts);
            }
            // Materialize immediately: the replica mirrors the source at
            // *this* query's handle time right now; deferring to the final
            // serve would let an overlapping (duplicated) query advance the
            // mirror underneath this one.
            pending->batch.nodes.push_back(
                entry_from_replica(rep, n.rank, win_start, win_end, win_max));
          };
          if (resp.is_error()) {
            for (flux::Rank r : subset) {
              if (replicas->erase(r) > 0) resyncs->inc();
              TelemetryNodeEntry entry;
              entry.rank = r;
              entry.complete = false;
              entry.errored = true;
              entry.error = resp.error_text;
              pending->batch.nodes.push_back(std::move(entry));
            }
          } else if (resp.telemetry) {
            for (const TelemetryNodeEntry& n : resp.telemetry->nodes) fold(n);
          } else {
            for (const Json& n : resp.payload.at("nodes").as_array()) {
              fold(flux::parse_telemetry_entry(n));
            }
          }
          if (--pending->outstanding == 0) respond_merged(*pending);
        },
        /*timeout_s=*/10.0);
  }
}

void PowerMonitorModule::handle_metrics(const Message& req) {
  // Cluster-wide metrics reduction, same TBON shape as the telemetry
  // subtree merge: contribute the local broker registry, recurse into every
  // child, sum counters/gauges/histogram buckets hop by hop. The aggregate
  // therefore equals the per-node registry sums exactly — nothing is
  // averaged, dropped or double-counted. A dark subtree degrades the
  // `nodes` denominator instead of failing the query.
  refresh_gauges();
  const flux::Tbon& tbon = broker_->instance().tbon();
  const std::vector<flux::Rank> children = tbon.children(broker_->rank());

  struct Pending {
    obs::MetricsRegistry aggregate;
    std::int64_t nodes = 1;
    std::size_t outstanding = 0;
    Message original;
  };
  auto pending = std::make_shared<Pending>();
  pending->original = req;
  pending->aggregate.merge_json(broker_->metrics().to_json());

  flux::Broker* broker = broker_;
  auto respond_merged = [broker](Pending& p) {
    Json payload = Json::object();
    payload["nodes"] = p.nodes;
    payload["metrics"] = p.aggregate.to_json();
    broker->respond(p.original, std::move(payload));
  };

  if (children.empty()) {
    respond_merged(*pending);
    return;
  }
  pending->outstanding = children.size();
  for (flux::Rank child : children) {
    broker->rpc(
        child, kMetricsTopic, Json::object(),
        [pending, respond_merged](const Message& resp) {
          if (!resp.is_error()) {
            pending->aggregate.merge_json(resp.payload.at("metrics"));
            pending->nodes += resp.payload.int_or("nodes", 0);
          }
          if (--pending->outstanding == 0) respond_merged(*pending);
        },
        /*timeout_s=*/10.0);
  }
}

void PowerMonitorModule::handle_status(const Message& req) {
  Json payload = Json::object();
  payload["rank"] = broker_->rank();
  payload["samples_taken"] = samples_taken();
  payload["buffer_size"] = buffer_->size();
  payload["buffer_capacity"] = buffer_->capacity();
  payload["evicted"] = buffer_->evicted();
  payload["sensor_failures"] = sensor_failures();
  payload["sample_period_s"] = config_.sample_period_s;
  // Byte accounting is exact now that the buffer stores flat structs.
  payload["sample_bytes"] = sizeof(hwsim::PowerSample);
  payload["buffer_bytes"] = buffer_->size() * sizeof(hwsim::PowerSample);
  broker_->respond(req, std::move(payload));
}

void PowerMonitorModule::handle_set_config(const Message& req) {
  // Runtime reconfiguration of the node-agent — the sampling rate and
  // buffer size "are configurable by the user" (§III-A). Changing the
  // buffer capacity discards retained samples (allocation is fixed-size);
  // changing the period re-arms the control loop.
  const double period =
      req.payload.number_or("sample_period_s", config_.sample_period_s);
  const auto capacity = static_cast<std::size_t>(req.payload.int_or(
      "buffer_capacity", static_cast<std::int64_t>(config_.buffer_capacity)));
  if (period <= 0.0 || capacity == 0) {
    broker_->respond_error(req, flux::kEInval,
                           "period and capacity must be positive");
    return;
  }
  config_.stream_samples =
      req.payload.bool_or("stream_samples", config_.stream_samples);
  if (capacity != config_.buffer_capacity) {
    config_.buffer_capacity = capacity;
    auto replacement = std::make_unique<ColumnarSampleStore>(capacity);
    // The retained samples are discarded by the reallocation, so the new
    // buffer must account them (and the old buffer's own evictions) as
    // evicted — otherwise completeness reporting resets and a job window
    // that straddles the reconfiguration reads as complete when samples
    // were in fact lost.
    replacement->inherit_lifetime(buffer_->total_pushed());
    buffer_ = std::move(replacement);
  }
  if (period != config_.sample_period_s) {
    config_.sample_period_s = period;
    sampler_ = std::make_unique<sim::PeriodicTask>(
        broker_->sim(), period, [this] {
          take_sample();
          return true;
        });
  }
  Json ack = Json::object();
  ack["sample_period_s"] = config_.sample_period_s;
  ack["buffer_capacity"] = static_cast<std::int64_t>(config_.buffer_capacity);
  broker_->respond(req, std::move(ack));
}

void PowerMonitorModule::archive_job(flux::JobId id, flux::UserId userid) {
  // Fire the normal query path against ourselves and persist the summary.
  // The archive must not race the job's final samples: schedule one sample
  // period out so node-agents have sampled past t_end.
  flux::Broker* broker = broker_;
  broker->sim().schedule_after(config_.sample_period_s, [broker, id, userid] {
    util::Json payload = util::Json::object();
    payload["id"] = id;
    flux::request_typed_telemetry(payload);
    broker->rpc(
        flux::kRootRank, kQueryJobTopic, std::move(payload),
        [broker, id, userid](const Message& resp) {
          if (resp.is_error()) return;  // nothing to archive
          const JobPowerData data = parse_job_power_message(resp);
          util::Json summary = util::Json::object();
          summary["app"] = data.app;
          summary["t_start"] = data.t_start;
          summary["t_end"] = data.t_end;
          std::vector<std::string> hostnames;
          bool complete = true;
          for (const NodePowerData& n : data.nodes) {
            if (!n.hostname.empty()) hostnames.push_back(n.hostname);
            complete = complete && n.complete;
          }
          summary["nodes"] = flux::hostlist_encode(hostnames);
          summary["nnodes"] = static_cast<std::int64_t>(data.nodes.size());
          summary["avg_node_power_w"] = data.average_node_power_w();
          summary["max_node_power_w"] = data.max_node_power_w();
          summary["max_job_power_w"] = data.max_aggregate_power_w();
          summary["avg_node_energy_j"] = data.average_node_energy_j();
          summary["complete"] = complete;
          const double job_energy_j =
              data.average_node_energy_j() * static_cast<double>(data.nodes.size());
          broker->instance().kvs().put("jobs." + std::to_string(id) + ".power",
                                       std::move(summary));

          // Per-user energy accounting: accumulate under
          // accounting.users.<uid> so chargeback survives job records.
          flux::Kvs& kvs = broker->instance().kvs();
          const std::string key =
              "accounting.users." + std::to_string(userid);
          util::Json account =
              kvs.get(key).value_or(util::Json::object());
          account["jobs"] = account.int_or("jobs", 0) + 1;
          account["energy_j"] =
              account.number_or("energy_j", 0.0) + job_energy_j;
          account["node_seconds"] =
              account.number_or("node_seconds", 0.0) +
              (data.t_end - data.t_start) * static_cast<double>(data.nodes.size());
          kvs.put(key, std::move(account));
        });
  });
}

void PowerMonitorModule::handle_query_job(const Message& req) {
  // Resolve the job, then gather from the node-agents of its ranks —
  // through the TBON tree reduction by default, or by direct root fan-out
  // when tree aggregation is disabled. All communication is message-based,
  // even root-local lookups. The gather itself is always typed; the final
  // response is rendered to JSON only for legacy requesters.
  flux::Broker* broker = broker_;
  const bool tree_aggregation = config_.tree_aggregation;
  const Message original = req;
  broker->rpc(
      flux::kRootRank, "job-info.lookup", req.payload,
      [broker, original, tree_aggregation](const Message& info) {
        if (info.is_error()) {
          broker->respond_error(original, info.errnum, info.error_text);
          return;
        }
        const double t_start = info.payload.number_or("t_start", -1.0);
        double t_end = info.payload.number_or("t_end", -1.0);
        if (t_end < 0.0) t_end = broker->sim().now();  // job still running
        if (t_start < 0.0) {
          broker->respond_error(original, flux::kEInval,
                                "job has not started; no telemetry window");
          return;
        }
        const auto& ranks = info.payload.at("ranks").as_array();
        if (ranks.empty()) {
          broker->respond_error(original, flux::kEInval,
                                "job has no allocated ranks");
          return;
        }

        Json meta = Json::object();
        meta["id"] = info.payload.int_or("id", 0);
        meta["app"] = info.payload.string_or("app", "");
        meta["t_start"] = t_start;
        meta["t_end"] = t_end;

        auto respond_with = [broker](const Message& request, Json request_meta,
                                     std::shared_ptr<const TelemetryBatch> b) {
          if (flux::wants_typed_telemetry(request)) {
            broker->respond_telemetry(request, std::move(request_meta),
                                      std::move(b));
          } else {
            broker->respond(request,
                            flux::render_telemetry_payload(request_meta, *b));
          }
        };

        Json window = Json::object();
        window["start"] = t_start;
        window["end"] = t_end;

        if (tree_aggregation) {
          // One request into the tree; brokers merge their subtrees.
          window["ranks"] = ranks;
          flux::request_typed_telemetry(window);
          broker->rpc(
              flux::kRootRank, kGetSubtreeTopic, std::move(window),
              [broker, original, meta = std::move(meta),
               respond_with](const Message& resp) {
                if (resp.is_error()) {
                  broker->respond_error(original, resp.errnum,
                                        resp.error_text);
                  return;
                }
                if (resp.telemetry) {
                  // Re-share the merged batch: zero copies at the root.
                  respond_with(original, meta, resp.telemetry);
                  return;
                }
                auto batch = std::make_shared<TelemetryBatch>();
                for (const Json& n : resp.payload.at("nodes").as_array()) {
                  batch->nodes.push_back(flux::parse_telemetry_entry(n));
                }
                respond_with(original, meta, std::move(batch));
              },
              /*timeout_s=*/15.0);
          return;
        }

        // Aggregation state shared by the per-rank response handlers.
        struct Pending {
          Json meta;
          TelemetryBatch batch;
          std::size_t outstanding = 0;
        };
        auto pending = std::make_shared<Pending>();
        pending->meta = std::move(meta);
        pending->outstanding = ranks.size();

        flux::request_typed_telemetry(window);
        for (const Json& r : ranks) {
          const auto rank = static_cast<flux::Rank>(r.as_int());
          broker->rpc(
              rank, kGetDataTopic, window,
              [original, pending, rank, respond_with](const Message& resp) {
                if (resp.is_error()) {
                  // Fault-tolerant aggregation: a dead or unloaded
                  // node-agent yields an empty *partial* per-node entry
                  // rather than failing the whole query — the client's
                  // completeness column carries the bad news.
                  TelemetryNodeEntry entry;
                  entry.rank = rank;
                  entry.complete = false;
                  entry.errored = true;
                  entry.error = resp.error_text;
                  pending->batch.nodes.push_back(std::move(entry));
                } else if (resp.telemetry &&
                           !resp.telemetry->nodes.empty()) {
                  pending->batch.nodes.push_back(resp.telemetry->nodes.front());
                } else {
                  pending->batch.nodes.push_back(
                      flux::parse_telemetry_entry(resp.payload));
                }
                if (--pending->outstanding == 0) {
                  respond_with(
                      original, std::move(pending->meta),
                      std::make_shared<TelemetryBatch>(std::move(pending->batch)));
                }
              },
              /*timeout_s=*/5.0);
        }
      });
}

}  // namespace fluxpower::monitor
