// power_monitor.hpp — the flux-power-monitor broker module (§III-A).
//
// Design follows the paper exactly:
//   * STATELESS node-agent on every broker: a control loop samples Variorum
//     every `sample_period_s` (default 2 s) into a fixed-size circular
//     buffer (default 100,000 samples), with no knowledge of whether a job
//     is running. Statelessness is what keeps telemetry overhead low.
//   * root-agent on rank 0: receives client queries, resolves the job id to
//     its node set and time window via job-info, fans RPCs out to the
//     node-agents, and relays the aggregated data back.
//   * The client receives per-node data plus a completeness flag: if the
//     circular buffer flushed samples inside the job's window, the dataset
//     is reported as partial.
//
// The buffer is a columnar (structure-of-arrays) ring: per-domain watt
// columns, a timestamp column and validity bitmaps (see sample_store.hpp),
// so window lookups are binary searches and stats/percentile sweeps run
// unit-stride. Samples materialize back to `hwsim::PowerSample` at the
// accessor boundary, and the TBON subtree merge ships typed batches by
// pointer. JSON is rendered only at the edges: for requesters that did not
// opt into the typed protocol, for the live sample stream, and at the
// codec/wire boundary. The edge JSON is byte-identical to the old
// JSON-everywhere data plane (see DESIGN.md, "Telemetry data plane").
//
// Every sensor read costs `sample_cost_s` of CPU on the node, deposited as
// stolen time — the physical source of the monitor's 0.04–1.2% measured
// overhead (§IV-B). In-band OCC reads on IBM are markedly slower than MSR
// reads on AMD, hence per-platform defaults.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "flux/broker.hpp"
#include "flux/jobspec.hpp"
#include "flux/module.hpp"
#include "flux/telemetry.hpp"
#include "hwsim/types.hpp"
#include "monitor/sample_store.hpp"
#include "sim/simulation.hpp"
#include "util/json.hpp"

namespace fluxpower::monitor {

struct PowerMonitorConfig {
  double sample_period_s = 2.0;
  std::size_t buffer_capacity = 100000;
  /// CPU time stolen from the application per sensor sweep.
  double sample_cost_s = 0.008;  ///< IBM OCC in-band read cost
  /// Root-agent job archive: when a job completes, automatically query its
  /// telemetry and store a summary at KVS key `jobs.<id>.power`, so
  /// accounting survives the circular buffer's eventual flush.
  bool archive_jobs = true;
  /// Live streaming: when true, every sample is also published as a
  /// `power-monitor.sample` event (payload: the Variorum JSON plus the
  /// rank). Off by default — the stateless pull model is the low-overhead
  /// path; streaming exists for dashboards and tests.
  bool stream_samples = false;
  /// Aggregate job queries through the TBON (each broker merges its
  /// subtree's data and sends one response upward) instead of the root
  /// fanning out one RPC per node. Tree aggregation bounds the root's
  /// fan-in by the tree fanout — the scalability property the paper's
  /// overlay design provides. Off = direct fan-out (kept for the ablation).
  bool tree_aggregation = true;
  /// Incremental subtree aggregation: internal hops exchange per-rank
  /// *deltas* against the requester's watermarks instead of re-shipping the
  /// whole window each query; every broker mirrors its descendants' buffers
  /// in columnar replicas and full content is materialized only at the
  /// final (client-facing) serve. The RPC pattern — one request and one
  /// response per child per query — is unchanged, so fault schedules and
  /// merged results are identical to full re-merge; only steady-state bytes
  /// per hop shrink. A child RPC error or quarantined subtree drops the
  /// affected replicas, forcing a full resync on the next query (the
  /// faultsim degradation semantics). Off = classic full re-merge.
  bool delta_aggregation = true;
  static PowerMonitorConfig for_lassen() {
    return {.sample_period_s = 2.0,
            .buffer_capacity = 100000,
            .sample_cost_s = 0.008,
            .archive_jobs = true,
            .stream_samples = false,
            .tree_aggregation = true,
            .delta_aggregation = true};
  }
  static PowerMonitorConfig for_tioga() {
    return {.sample_period_s = 2.0,
            .buffer_capacity = 100000,
            .sample_cost_s = 0.0008,
            .archive_jobs = true,
            .stream_samples = false,
            .tree_aggregation = true,
            .delta_aggregation = true};
  }
};

/// Service topics offered by the module.
inline constexpr const char* kGetDataTopic = "power-monitor.get-data";
inline constexpr const char* kGetSubtreeTopic = "power-monitor.get-subtree";
inline constexpr const char* kQueryJobTopic = "power-monitor.query-job";
inline constexpr const char* kStatusTopic = "power-monitor.status";
inline constexpr const char* kSetConfigTopic = "power-monitor.set-config";
/// Cluster-wide metrics aggregation: any broker answers with its own
/// registry merged with its TBON subtree's. Ask the root for the whole
/// cluster; the aggregate equals the per-node registry sums exactly.
inline constexpr const char* kMetricsTopic = "power.metrics";

/// Sentinel watermark meaning "no samples mirrored yet — ship everything".
/// Any real simulation timestamp is greater.
inline constexpr double kNoWatermark = -1.0e300;

/// Columnar mirror of one descendant node-agent's ring, maintained by the
/// broker that roots delta-aggregated queries. `prune_front` to the source's
/// oldest retained timestamp plus appending the shipped delta keeps the
/// retained-sample set bit-identical to the source at its request-handle
/// time; the source's own lifetime ledger travels in the meta fields (the
/// replica's internal eviction count is meaningless for completeness).
struct TelemetryReplica {
  std::unique_ptr<ColumnarSampleStore> store;
  double watermark_ts = kNoWatermark;  ///< newest mirrored timestamp
  std::string hostname;
  bool source_empty = true;
  double front_ts_s = 0.0;
  std::uint64_t source_evicted = 0;
};

class PowerMonitorModule final : public flux::Module {
 public:
  explicit PowerMonitorModule(PowerMonitorConfig config = {});
  ~PowerMonitorModule() override;

  const char* name() const override { return "power-monitor"; }
  void load(flux::Broker& broker) override;
  void unload() override;

  const PowerMonitorConfig& config() const noexcept { return config_; }
  /// Backed by the broker registry (fluxpower_monitor_samples_total) once
  /// loaded; 0 before load, like the plain counter it replaced.
  std::uint64_t samples_taken() const noexcept {
    return samples_total_ != nullptr ? samples_total_->value() : 0;
  }

  /// Sweeps discarded because the sensors faulted (dead node, dropout or
  /// stuck-at reading). Every sweep lands in exactly one bucket, so
  /// samples_taken == buffer evicted + buffer size + sensor_failures holds
  /// at all times — the chaos suite's no-double-count invariant.
  std::uint64_t sensor_failures() const noexcept {
    return sensor_failures_total_ != nullptr ? sensor_failures_total_->value()
                                             : 0;
  }

  /// Prometheus-style text exposition of this node-agent's state: sample
  /// counters, buffer fill, and the newest sample's per-domain powers.
  /// What a sidecar exporter would scrape on each node.
  std::string metrics_text() const;

  // -- Twin-codec introspection ---------------------------------------------
  /// The node-agent's columnar sample ring (null before load()).
  const ColumnarSampleStore* store() const noexcept { return buffer_.get(); }
  /// Delta-aggregation replica mirrors + watermarks (null before load();
  /// empty at brokers that never rooted a delta query).
  const std::map<flux::Rank, TelemetryReplica>* replica_map() const noexcept {
    return replicas_.get();
  }

 private:
  void take_sample();
  void handle_get_data(const flux::Message& req);
  void handle_get_subtree(const flux::Message& req);
  void handle_query_job(const flux::Message& req);
  void handle_metrics(const flux::Message& req);
  /// Build this rank's own per-node entry for a window request.
  flux::TelemetryNodeEntry local_entry(const util::Json& window);
  /// Build this rank's own *delta* entry: every retained sample strictly
  /// newer than the requester's watermark, plus the source-buffer meta that
  /// lets the requester maintain an exact replica. Snapshotted at
  /// request-handle time — samples taken while child RPCs are in flight
  /// must not leak into this query's contribution, or the merged payload
  /// would diverge from the full re-merge it must match byte-for-byte.
  flux::TelemetryNodeEntry local_delta_entry(double since_ts);
  void handle_status(const flux::Message& req);
  void handle_set_config(const flux::Message& req);
  void archive_job(flux::JobId id, flux::UserId userid);
  /// Push the buffer-derived gauges into the registry. Called just-in-time
  /// before any exposition so gauges are never stale.
  void refresh_gauges();

  PowerMonitorConfig config_;
  flux::Broker* broker_ = nullptr;
  std::unique_ptr<ColumnarSampleStore> buffer_;
  /// Descendant-buffer mirrors keyed by rank, populated only at brokers
  /// that *root* delta-aggregated queries (interior hops pass deltas
  /// through untouched). Held by shared_ptr so in-flight merge callbacks
  /// stay safe across an unload; reset in load() — a module reload is a
  /// natural full resync.
  std::shared_ptr<std::map<flux::Rank, TelemetryReplica>> replicas_;
  std::unique_ptr<sim::PeriodicTask> sampler_;
  // Instruments in the owning broker's registry (bound in load(), reset
  // there too so a reloaded module starts a fresh ledger like the plain
  // counters it replaced). The registry outlives the module.
  obs::Counter* samples_total_ = nullptr;
  obs::Counter* sensor_failures_total_ = nullptr;
  obs::Counter* subtree_merges_total_ = nullptr;
  obs::Counter* merge_bytes_total_ = nullptr;
  obs::Counter* delta_resyncs_total_ = nullptr;
  obs::Histogram* sweep_duration_ = nullptr;
  obs::Histogram* subtree_batch_nodes_ = nullptr;
  obs::Histogram* delta_batch_samples_ = nullptr;
  obs::Gauge* delta_watermark_lag_ = nullptr;
  obs::Gauge* tbon_level_ = nullptr;
  obs::Gauge* buffer_fill_ratio_ = nullptr;
  obs::Gauge* buffer_size_ = nullptr;
  obs::Gauge* buffer_evicted_ = nullptr;
  std::uint64_t archive_subscription_ = 0;
};

}  // namespace fluxpower::monitor
