#include "monitor/sample_store.hpp"

#include <cstring>
#include <stdexcept>

namespace fluxpower::monitor {

ColumnarSampleStore::ColumnarSampleStore(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ColumnarSampleStore capacity must be positive");
  }
}

std::uint32_t ColumnarSampleStore::intern_hostname(
    const hwsim::FixedHostname& h) {
  // A node-agent's hostname never changes and a replica mirrors one node,
  // so the table is one or two entries deep; linear search wins.
  for (std::size_t i = 0; i < host_table_.size(); ++i) {
    if (host_table_[i] == h) return static_cast<std::uint32_t>(i);
  }
  host_table_.push_back(h);
  return static_cast<std::uint32_t>(host_table_.size() - 1);
}

void ColumnarSampleStore::assign_slot(std::size_t p,
                                      const hwsim::PowerSample& s) {
  timestamp_[p] = s.timestamp_s;
  best_w_[p] = s.best_node_w();
  node_w_[p] = s.node_w.watts;
  node_estimate_w_[p] = s.node_estimate_w.watts;
  mem_w_[p] = s.mem_w.watts;
  for (std::size_t c = 0; c < hwsim::kMaxSockets; ++c) {
    cpu_w_[c][p] = c < s.cpu_w.size() ? s.cpu_w[c] : 0.0;
  }
  for (std::size_t g = 0; g < hwsim::kMaxGpuSensors; ++g) {
    gpu_w_[g][p] = g < s.gpu_w.size() ? s.gpu_w[g] : 0.0;
  }
  cpu_count_[p] = static_cast<std::uint8_t>(s.cpu_w.size());
  gpu_count_[p] = static_cast<std::uint8_t>(s.gpu_w.size());
  host_idx_[p] = intern_hostname(s.hostname);
  node_present_.set(p, s.node_w.has_value());
  estimate_present_.set(p, s.node_estimate_w.has_value());
  mem_present_.set(p, s.mem_w.has_value());
  gpu_is_oam_.set(p, s.gpu_is_oam);
  sensor_fault_.set(p, s.sensor_fault);
}

void ColumnarSampleStore::append_slot(const hwsim::PowerSample& s) {
  const std::size_t p = timestamp_.size();
  timestamp_.push_back(0.0);
  best_w_.push_back(0.0);
  node_w_.push_back(0.0);
  node_estimate_w_.push_back(0.0);
  mem_w_.push_back(0.0);
  for (auto& col : cpu_w_) col.push_back(0.0);
  for (auto& col : gpu_w_) col.push_back(0.0);
  cpu_count_.push_back(0);
  gpu_count_.push_back(0);
  host_idx_.push_back(0);
  node_present_.resize_for(p + 1);
  estimate_present_.resize_for(p + 1);
  mem_present_.resize_for(p + 1);
  gpu_is_oam_.resize_for(p + 1);
  sensor_fault_.resize_for(p + 1);
  assign_slot(p, s);
}

void ColumnarSampleStore::push(const hwsim::PowerSample& s) {
  if (size_ == capacity_) {
    // Overwrite the oldest in place; the ring is necessarily fully grown.
    assign_slot(head_, s);
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  } else {
    const std::size_t p = phys(size_);
    if (p == phys_len()) {
      append_slot(s);
    } else {
      assign_slot(p, s);
    }
    ++size_;
  }
  ++total_pushed_;
}

hwsim::PowerSample ColumnarSampleStore::get(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("ColumnarSampleStore index");
  const std::size_t p = phys(i);
  hwsim::PowerSample s;
  s.timestamp_s = timestamp_[p];
  s.hostname = host_table_[host_idx_[p]];
  if (node_present_.get(p)) s.node_w = node_w_[p];
  if (estimate_present_.get(p)) s.node_estimate_w = node_estimate_w_[p];
  for (std::size_t c = 0; c < cpu_count_[p]; ++c) {
    s.cpu_w.push_back(cpu_w_[c][p]);
  }
  if (mem_present_.get(p)) s.mem_w = mem_w_[p];
  for (std::size_t g = 0; g < gpu_count_[p]; ++g) {
    s.gpu_w.push_back(gpu_w_[g][p]);
  }
  s.gpu_is_oam = gpu_is_oam_.get(p);
  s.sensor_fault = sensor_fault_.get(p);
  return s;
}

double ColumnarSampleStore::timestamp_at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("ColumnarSampleStore index");
  return timestamp_[phys(i)];
}

double ColumnarSampleStore::best_w_at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("ColumnarSampleStore index");
  return best_w_[phys(i)];
}

std::pair<std::size_t, std::size_t> ColumnarSampleStore::window_range(
    double start_s, double end_s) const {
  // Timestamps are monotone non-decreasing in logical order, so the window
  // is a contiguous logical range found by two binary searches — O(log n)
  // against the old layout's full linear scan.
  std::size_t a = 0, b = size_;
  while (a < b) {
    const std::size_t mid = a + (b - a) / 2;
    if (timestamp_[phys(mid)] < start_s) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  const std::size_t lo = a;
  b = size_;
  while (a < b) {
    const std::size_t mid = a + (b - a) / 2;
    if (timestamp_[phys(mid)] <= end_s) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return {lo, a};
}

ColumnarSampleStore::Segments ColumnarSampleStore::best_w_segments(
    std::size_t lo, std::size_t hi) const {
  if (hi > size_ || lo > hi) throw std::out_of_range("segment range");
  Segments seg;
  if (lo == hi) return seg;
  const std::size_t p0 = phys(lo);
  const std::size_t n = hi - lo;
  const std::size_t first_len = std::min(n, capacity_ - p0);
  seg.first = {best_w_.data() + p0, first_len};
  seg.second = {best_w_.data(), n - first_len};
  return seg;
}

ColumnarSampleStore::Segments ColumnarSampleStore::timestamp_segments(
    std::size_t lo, std::size_t hi) const {
  if (hi > size_ || lo > hi) throw std::out_of_range("segment range");
  Segments seg;
  if (lo == hi) return seg;
  const std::size_t p0 = phys(lo);
  const std::size_t n = hi - lo;
  const std::size_t first_len = std::min(n, capacity_ - p0);
  seg.first = {timestamp_.data() + p0, first_len};
  seg.second = {timestamp_.data(), n - first_len};
  return seg;
}

void ColumnarSampleStore::copy_best_w(std::size_t lo, std::size_t hi,
                                      std::vector<double>& out) const {
  const Segments seg = best_w_segments(lo, hi);
  out.resize(seg.size());
  if (!seg.first.empty()) {
    std::memcpy(out.data(), seg.first.data(),
                seg.first.size() * sizeof(double));
  }
  if (!seg.second.empty()) {
    std::memcpy(out.data() + seg.first.size(), seg.second.data(),
                seg.second.size() * sizeof(double));
  }
}

void ColumnarSampleStore::prune_front(double min_ts_s) {
  // The dropped prefix is contiguous in logical order; find its length by
  // binary search and advance the head past it.
  std::size_t a = 0, b = size_;
  while (a < b) {
    const std::size_t mid = a + (b - a) / 2;
    if (timestamp_[phys(mid)] < min_ts_s) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  if (a == 0) return;
  head_ = phys(a);
  size_ -= a;
  if (size_ == 0) head_ = 0;
}

void ColumnarSampleStore::clear() noexcept {
  head_ = 0;
  size_ = 0;
  timestamp_.clear();
  best_w_.clear();
  node_w_.clear();
  node_estimate_w_.clear();
  mem_w_.clear();
  for (auto& col : cpu_w_) col.clear();
  for (auto& col : gpu_w_) col.clear();
  cpu_count_.clear();
  gpu_count_.clear();
  host_idx_.clear();
  host_table_.clear();
  node_present_.clear();
  estimate_present_.clear();
  mem_present_.clear();
  gpu_is_oam_.clear();
  sensor_fault_.clear();
  // total_pushed_ deliberately retained (see header).
}

bool ColumnarSampleStore::check_integrity() const noexcept {
  const std::size_t n = phys_len();
  if (n > capacity_ || size_ > capacity_ || size_ > n) return false;
  if (best_w_.size() != n || node_w_.size() != n ||
      node_estimate_w_.size() != n || mem_w_.size() != n ||
      cpu_count_.size() != n || gpu_count_.size() != n ||
      host_idx_.size() != n) {
    return false;
  }
  for (const auto& col : cpu_w_) {
    if (col.size() != n) return false;
  }
  for (const auto& col : gpu_w_) {
    if (col.size() != n) return false;
  }
  const std::size_t words = (n + 63) / 64;
  if (node_present_.words.size() != words ||
      estimate_present_.words.size() != words ||
      mem_present_.words.size() != words ||
      gpu_is_oam_.words.size() != words ||
      sensor_fault_.words.size() != words) {
    return false;
  }
  if (size_ > 0 && head_ >= n) return false;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::size_t p = phys(i);
    if (cpu_count_[p] > hwsim::kMaxSockets) return false;
    if (gpu_count_[p] > hwsim::kMaxGpuSensors) return false;
    if (host_idx_[p] >= host_table_.size()) return false;
    // The derived best_w column must agree with the validity bitmaps: the
    // direct sensor when present, else the estimate, else zero.
    const double expect = node_present_.get(p)
                              ? node_w_[p]
                              : (estimate_present_.get(p)
                                     ? node_estimate_w_[p]
                                     : 0.0);
    if (best_w_[p] != expect) return false;
    if (i > 0 && timestamp_[phys(i - 1)] > timestamp_[p]) return false;
  }
  return true;
}

}  // namespace fluxpower::monitor
