// sample_store.hpp — columnar (structure-of-arrays) power-sample ring.
//
// The monitor's hot read paths — ledger stats over a window, percentile
// sweeps for reports, and the dsp period detector — all consume a single
// scalar per sample (timestamp or one watt domain). Storing samples as an
// array of `hwsim::PowerSample` structs makes every such sweep a strided
// walk with `sizeof(PowerSample)` between consecutive values; storing each
// domain in its own contiguous `double` column makes them unit-stride,
// cache-friendly and vectorizable. This class is that layout change and
// nothing else: it reproduces `util::RingBuffer<PowerSample>` semantics
// exactly — insertion order, overwrite-oldest eviction, and the lifetime
// accounting (`total_pushed`, `evicted`, `inherit_lifetime`) that the
// chaos suite's ledger identity depends on — behind accessors that
// materialize `PowerSample` values on demand.
//
// Presence of the optional domains (node sensor, node estimate, memory)
// and the per-sample flags (gpu_is_oam, sensor_fault) live in packed
// validity bitmaps, one bit per physical slot; the per-sample cpu/gpu
// sensor counts in byte columns; hostnames in a tiny interned table (a
// node-agent's hostname never changes, so the table holds one entry).
//
// The same class backs the TBON delta-aggregation replicas: a broker
// mirrors each descendant's buffer by appending delta batches and pruning
// the front to the child's reported oldest-retained timestamp
// (`prune_front`), which keeps the mirror exact across evictions, crash
// reboots and set-config buffer swaps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "hwsim/types.hpp"

namespace fluxpower::monitor {

class ColumnarSampleStore {
 public:
  /// Capacity must be > 0; a monitor with no sample storage is a config
  /// error (same contract as util::RingBuffer).
  explicit ColumnarSampleStore(std::size_t capacity);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == capacity_; }

  /// Total number of push() calls over the store's lifetime; evicted() is
  /// everything pushed that is no longer retained (ring overwrites and
  /// prune_front drops alike).
  std::uint64_t total_pushed() const noexcept { return total_pushed_; }
  std::uint64_t evicted() const noexcept { return total_pushed_ - size_; }

  /// Append one sample, overwriting the oldest when full. Timestamps must
  /// be monotone non-decreasing across pushes (the simulator's sample
  /// clock only moves forward) — the window search relies on it.
  void push(const hwsim::PowerSample& s);

  /// Element i in insertion order (0 = oldest retained), materialized by
  /// value from the columns. Throws std::out_of_range like RingBuffer.
  hwsim::PowerSample get(std::size_t i) const;
  hwsim::PowerSample front() const { return get(0); }
  hwsim::PowerSample back() const { return get(size_ - 1); }

  double timestamp_at(std::size_t i) const;
  double best_w_at(std::size_t i) const;

  /// Logical index range [lo, hi) of samples with
  /// start_s <= timestamp <= end_s, by binary search over the monotone
  /// timestamp column.
  std::pair<std::size_t, std::size_t> window_range(double start_s,
                                                   double end_s) const;

  /// A logical range of a column as at most two contiguous spans (the ring
  /// seam splits wrapped ranges). `second` is empty when the range is
  /// contiguous.
  struct Segments {
    std::span<const double> first;
    std::span<const double> second;
    std::size_t size() const noexcept { return first.size() + second.size(); }
  };
  Segments best_w_segments(std::size_t lo, std::size_t hi) const;
  Segments timestamp_segments(std::size_t lo, std::size_t hi) const;

  /// Copy the best-node-watts column for logical [lo, hi) into `out`
  /// (resized to hi-lo): two bulk copies instead of size() strided loads.
  void copy_best_w(std::size_t lo, std::size_t hi,
                   std::vector<double>& out) const;

  /// Drop retained samples from the front while their timestamp is older
  /// than `min_ts_s`. Used by delta-aggregation replicas to mirror the
  /// child's evictions; dropped samples count as evicted.
  void prune_front(double min_ts_s);

  /// Discard retained samples. total_pushed is deliberately retained so
  /// eviction accounting covers the whole lifetime (RingBuffer semantics).
  void clear() noexcept;

  /// Credit pushes that happened before this store existed (buffer swap on
  /// reconfiguration); see RingBuffer::inherit_lifetime.
  void inherit_lifetime(std::uint64_t pushed_before) noexcept {
    total_pushed_ += pushed_before;
  }

  /// Internal consistency check for the regression suite: every column and
  /// bitmap must describe exactly the retained slots (sizes in lockstep,
  /// counts within sensor ceilings, hostname indices valid). Returns false
  /// on any desynchronization.
  bool check_integrity() const noexcept;

 private:
  std::size_t phys(std::size_t i) const noexcept {
    std::size_t p = head_ + i;
    if (p >= capacity_) p -= capacity_;
    return p;
  }
  std::size_t phys_len() const noexcept { return timestamp_.size(); }
  void assign_slot(std::size_t p, const hwsim::PowerSample& s);
  void append_slot(const hwsim::PowerSample& s);
  std::uint32_t intern_hostname(const hwsim::FixedHostname& h);

  // Packed one-bit-per-slot flags.
  struct Bitmap {
    std::vector<std::uint64_t> words;
    void resize_for(std::size_t slots) { words.resize((slots + 63) / 64, 0); }
    bool get(std::size_t i) const noexcept {
      return (words[i >> 6] >> (i & 63)) & 1u;
    }
    void set(std::size_t i, bool v) noexcept {
      const std::uint64_t mask = std::uint64_t{1} << (i & 63);
      if (v) {
        words[i >> 6] |= mask;
      } else {
        words[i >> 6] &= ~mask;
      }
    }
    void clear() noexcept { words.clear(); }
  };

  std::size_t capacity_;
  std::size_t head_ = 0;  ///< physical index of logical element 0
  std::size_t size_ = 0;  ///< retained samples
  std::uint64_t total_pushed_ = 0;

  // Scalar columns, indexed by physical slot. Grown on first use up to
  // capacity_ so an idle replica costs nothing.
  std::vector<double> timestamp_;
  std::vector<double> best_w_;  ///< best_node_w(), precomputed at push
  std::vector<double> node_w_;
  std::vector<double> node_estimate_w_;
  std::vector<double> mem_w_;
  std::vector<double> cpu_w_[hwsim::kMaxSockets];
  std::vector<double> gpu_w_[hwsim::kMaxGpuSensors];
  std::vector<std::uint8_t> cpu_count_;
  std::vector<std::uint8_t> gpu_count_;
  std::vector<std::uint32_t> host_idx_;
  std::vector<hwsim::FixedHostname> host_table_;

  Bitmap node_present_;
  Bitmap estimate_present_;
  Bitmap mem_present_;
  Bitmap gpu_is_oam_;
  Bitmap sensor_fault_;
};

}  // namespace fluxpower::monitor
