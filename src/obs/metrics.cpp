#include "obs/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fluxpower::obs {

namespace {

/// Render a double the way Prometheus text exposition expects: integral
/// values without a fractional part ("42"), everything else with enough
/// digits to round-trip visually ("0.0625"). %.9g keeps sim-time-derived
/// values byte-stable without trailing-zero noise.
void append_number(std::string& out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

Histogram::Histogram(std::span<const double> bounds) {
  if (bounds.size() > kMaxBuckets) {
    throw std::invalid_argument("Histogram: too many buckets");
  }
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i > 0 && !(bounds[i] > bounds[i - 1])) {
      throw std::invalid_argument("Histogram: bounds must be ascending");
    }
    bounds_[i] = bounds[i];
  }
  nbounds_ = bounds.size();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= nbounds_; ++i) counts_[i] = 0;
  count_ = 0;
  sum_ = 0.0;
}

MetricsRegistry::Metric& MetricsRegistry::get_or_create(std::string_view name,
                                                        std::string_view help,
                                                        Kind kind) {
  if (auto it = index_.find(name); it != index_.end()) {
    Metric& m = *metrics_[it->second];
    if (m.kind != kind) {
      throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    return m;
  }
  auto metric = std::make_unique<Metric>();
  metric->name = std::string(name);
  metric->help = std::string(help);
  metric->kind = kind;
  Metric& ref = *metric;
  index_.emplace(ref.name, metrics_.size());
  metrics_.push_back(std::move(metric));
  return ref;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  return get_or_create(name, help, Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return get_or_create(name, help, Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::span<const double> bounds) {
  if (auto it = index_.find(name); it != index_.end()) {
    Metric& m = *metrics_[it->second];
    if (m.kind != Kind::Histogram) {
      throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                             "' re-registered with a different kind");
    }
    return m.histogram;
  }
  Metric& m = get_or_create(name, help, Kind::Histogram);
  m.histogram = Histogram(bounds);
  return m.histogram;
}

std::optional<double> MetricsRegistry::value(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  const Metric& m = *metrics_[it->second];
  switch (m.kind) {
    case Kind::Counter:
      return static_cast<double>(m.counter.value());
    case Kind::Gauge:
      return m.gauge.value();
    case Kind::Histogram:
      return std::nullopt;
  }
  return std::nullopt;
}

std::string MetricsRegistry::expose_text(const std::string& labels) const {
  std::string out;
  out.reserve(metrics_.size() * 96);
  const std::string plain = labels.empty() ? "" : "{" + labels + "}";
  for (const auto& mp : metrics_) {
    const Metric& m = *mp;
    out += "# HELP ";
    out += m.name;
    out += ' ';
    out += m.help;
    out += "\n# TYPE ";
    out += m.name;
    out += ' ';
    out += kind_name(static_cast<int>(m.kind));
    out += '\n';
    switch (m.kind) {
      case Kind::Counter: {
        out += m.name;
        out += plain;
        out += ' ';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, m.counter.value());
        out += buf;
        out += '\n';
        break;
      }
      case Kind::Gauge: {
        out += m.name;
        out += plain;
        out += ' ';
        append_number(out, m.gauge.value());
        out += '\n';
        break;
      }
      case Kind::Histogram: {
        const Histogram& h = m.histogram;
        // Cumulative _bucket series, then _sum and _count, per the
        // Prometheus text format.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i <= h.bucket_count(); ++i) {
          cum += h.count_in(i);
          out += m.name;
          out += "_bucket{";
          if (!labels.empty()) {
            out += labels;
            out += ',';
          }
          out += "le=\"";
          if (i < h.bucket_count()) {
            append_number(out, h.bound(i));
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%" PRIu64, cum);
          out += buf;
          out += '\n';
        }
        out += m.name;
        out += "_sum";
        out += plain;
        out += ' ';
        append_number(out, h.sum());
        out += '\n';
        out += m.name;
        out += "_count";
        out += plain;
        out += ' ';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count());
        out += buf;
        out += '\n';
        break;
      }
    }
  }
  return out;
}

util::Json MetricsRegistry::to_json() const {
  util::Json arr = util::Json::array();
  for (const auto& mp : metrics_) {
    const Metric& m = *mp;
    util::Json obj = util::Json::object();
    obj["name"] = m.name;
    obj["type"] = kind_name(static_cast<int>(m.kind));
    obj["help"] = m.help;
    switch (m.kind) {
      case Kind::Counter:
        obj["value"] = m.counter.value();
        break;
      case Kind::Gauge:
        obj["value"] = m.gauge.value();
        break;
      case Kind::Histogram: {
        const Histogram& h = m.histogram;
        util::Json bounds = util::Json::array();
        util::Json counts = util::Json::array();
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          bounds.push_back(h.bound(i));
        }
        for (std::size_t i = 0; i <= h.bucket_count(); ++i) {
          counts.push_back(h.count_in(i));
        }
        obj["bounds"] = std::move(bounds);
        obj["counts"] = std::move(counts);
        obj["sum"] = h.sum();
        obj["count"] = h.count();
        break;
      }
    }
    arr.push_back(std::move(obj));
  }
  return arr;
}

void MetricsRegistry::merge_json(const util::Json& metrics_array) {
  for (const util::Json& obj : metrics_array.as_array()) {
    const std::string& name = obj.at("name").as_string();
    const std::string& type = obj.at("type").as_string();
    const std::string help = obj.string_or("help", "");
    if (type == "counter") {
      counter(name, help).inc(
          static_cast<std::uint64_t>(obj.at("value").as_int()));
    } else if (type == "gauge") {
      gauge(name, help).add(obj.at("value").as_double());
    } else if (type == "histogram") {
      const util::JsonArray& bounds = obj.at("bounds").as_array();
      const util::JsonArray& counts = obj.at("counts").as_array();
      std::vector<double> bvec;
      bvec.reserve(bounds.size());
      for (const util::Json& b : bounds) bvec.push_back(b.as_double());
      Histogram& h = histogram(name, help, bvec);
      if (h.bucket_count() != bvec.size()) {
        throw std::logic_error("MetricsRegistry::merge_json: histogram '" +
                               name + "' bucket-count mismatch");
      }
      for (std::size_t i = 0; i < bvec.size(); ++i) {
        if (h.bound(i) != bvec[i]) {
          throw std::logic_error("MetricsRegistry::merge_json: histogram '" +
                                 name + "' bound mismatch");
        }
      }
      if (counts.size() != bvec.size() + 1) {
        throw std::logic_error("MetricsRegistry::merge_json: histogram '" +
                               name + "' counts length mismatch");
      }
      for (std::size_t i = 0; i < counts.size(); ++i) {
        h.counts_[i] += static_cast<std::uint64_t>(counts[i].as_int());
      }
      h.count_ += static_cast<std::uint64_t>(obj.at("count").as_int());
      h.sum_ += obj.at("sum").as_double();
    } else {
      throw std::logic_error("MetricsRegistry::merge_json: unknown type '" +
                             type + "'");
    }
  }
}

MetricsRegistry& process_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fluxpower::obs
