// metrics.hpp — process-wide metrics registry (observability plane).
//
// The paper's production story depends on operators *seeing* job power
// behaviour: per-job telemetry, cap actions, degradation under faults. This
// registry is the one place every layer deposits its counters so the whole
// stack exposes a single, coherent Prometheus-style surface:
//
//   * Counter    — monotonically increasing u64 (events, retries, faults).
//   * Gauge      — instantaneous double (buffer fill, queue depth).
//   * Histogram  — fixed-bucket distribution (latency, batch sizes).
//
// Design constraints (see DESIGN.md, "Observability plane"):
//   * Stable registration order: exposition renders metrics in the order
//     they were first registered, so output is byte-stable across runs.
//   * O(1) hot-path updates with zero heap allocations: callers hold a
//     Counter*/Gauge*/Histogram* obtained once at registration; inc/set/
//     observe touch only plain members. Name lookup happens at registration
//     time only, never on the update path.
//   * Mergeable: to_json()/merge_json() let per-broker registries be summed
//     hop by hop over the TBON (the `power.metrics` RPC), with the invariant
//     that the aggregate equals the per-node registry sums exactly.
//
// Naming convention: fluxpower_<module>_<name>_<unit>, e.g.
// fluxpower_monitor_samples_total, fluxpower_broker_rpc_latency_seconds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace fluxpower::obs {

/// Monotonic event counter. Updates are a single add; reset() exists only
/// for module reload (a fresh module instance starts a fresh ledger, which
/// is what the pre-registry per-module counters did).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous value. Aggregation over nodes sums gauges (documented:
/// cluster-level gauges are totals, e.g. total retained samples).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: at most kMaxBuckets finite upper bounds plus an
/// implicit +Inf bucket. observe() is a short linear scan over an inline
/// array — no allocation, no resize, suitable for per-message hot paths.
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 16;

  Histogram() = default;
  /// Bounds must be strictly ascending; at most kMaxBuckets of them.
  explicit Histogram(std::span<const double> bounds);

  /// Count `v` in the first bucket with v <= bound (or +Inf).
  void observe(double v) noexcept {
    std::size_t i = 0;
    while (i < nbounds_ && v > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += v;
    ++count_;
  }

  std::size_t bucket_count() const noexcept { return nbounds_; }
  double bound(std::size_t i) const noexcept { return bounds_[i]; }
  /// Non-cumulative count of bucket i; i == bucket_count() is +Inf.
  std::uint64_t count_in(std::size_t i) const noexcept { return counts_[i]; }
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  void reset() noexcept;

 private:
  friend class MetricsRegistry;
  double bounds_[kMaxBuckets] = {};
  std::uint64_t counts_[kMaxBuckets + 1] = {};
  std::size_t nbounds_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// A registry of named metrics. One per broker (per-node scope) plus one
/// process-wide instance (engine/bench scope). Registration is get-or-create
/// by name; registering an existing name with a different kind throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::span<const double> bounds);

  std::size_t size() const noexcept { return metrics_.size(); }

  /// Scalar value of a counter or gauge (nullopt if absent or a histogram).
  std::optional<double> value(std::string_view name) const;

  /// Prometheus text exposition in registration order. `labels`, when
  /// non-empty, is spliced into every sample's label set verbatim (e.g.
  /// `host="lassen0",rank="3"`).
  std::string expose_text(const std::string& labels = {}) const;

  /// JSON form for RPC transport: an array of metric objects
  ///   {"name","type","help","value"} or
  ///   {"name","type","help","bounds":[],"counts":[],"sum","count"}.
  util::Json to_json() const;

  /// Add another registry's to_json() output into this one: counters and
  /// gauges sum, histograms add per-bucket counts (bounds must match).
  /// Unknown metrics are registered on first sight, preserving the donor's
  /// order — so merging the same sequence of registries always produces the
  /// same exposition bytes.
  void merge_json(const util::Json& metrics_array);

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Metric {
    std::string name;
    std::string help;
    Kind kind = Kind::Counter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Metric& get_or_create(std::string_view name, std::string_view help,
                        Kind kind);

  /// unique_ptr elements so Counter*/Gauge* handles stay valid as the
  /// vector grows; vector order is registration (exposition) order.
  std::vector<std::unique_ptr<Metric>> metrics_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

/// The process-wide registry: scope for anything that is not per-broker —
/// the (shared) discrete-event engine, bench-runner bookkeeping.
MetricsRegistry& process_registry();

}  // namespace fluxpower::obs
