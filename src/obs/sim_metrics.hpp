// sim_metrics.hpp — export discrete-event-engine introspection as gauges.
//
// The engine is process-scope (one Simulation drives every broker), so its
// occupancy numbers belong in the process registry, not in any per-broker
// registry — keeping the `power.metrics` TBON aggregate exactly equal to
// the per-node registry sums. Tools and bench runners call this just before
// dumping the process registry.
//
// Header-only by design: fp_obs itself does not link against fp_sim; only
// translation units that already see both libraries pay the include.
#pragma once

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::obs {

inline void export_engine_gauges(const sim::Simulation& sim,
                                 MetricsRegistry& reg) {
  reg.gauge("fluxpower_sim_pending_events", "Events live in the engine")
      .set(static_cast<double>(sim.pending()));
  reg.gauge("fluxpower_sim_pool_chunks",
            "Chunks in the engine's pooled callback allocator")
      .set(static_cast<double>(sim.pool_chunks()));
  reg.gauge("fluxpower_sim_events_executed_total",
            "Events executed since construction")
      .set(static_cast<double>(sim.events_executed()));
  reg.gauge("fluxpower_sim_callback_heap_allocs_total",
            "Callbacks that spilled out of the inline event storage")
      .set(static_cast<double>(sim.callback_heap_allocs()));
}

}  // namespace fluxpower::obs
