// sim_metrics.hpp — export discrete-event-engine introspection as gauges.
//
// The engine is process-scope (one Simulation drives every broker), so its
// occupancy numbers belong in the process registry, not in any per-broker
// registry — keeping the `power.metrics` TBON aggregate exactly equal to
// the per-node registry sums. Tools and bench runners call this just before
// dumping the process registry.
//
// Header-only by design: fp_obs itself does not link against fp_sim; only
// translation units that already see both libraries pay the include.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulation.hpp"

namespace fluxpower::obs {

inline void export_engine_gauges(const sim::Simulation& sim,
                                 MetricsRegistry& reg) {
  reg.gauge("fluxpower_sim_pending_events", "Events live in the engine")
      .set(static_cast<double>(sim.pending()));
  reg.gauge("fluxpower_sim_pool_chunks",
            "Chunks in the engine's pooled callback allocator")
      .set(static_cast<double>(sim.pool_chunks()));
  reg.gauge("fluxpower_sim_events_executed_total",
            "Events executed since construction")
      .set(static_cast<double>(sim.events_executed()));
  reg.gauge("fluxpower_sim_callback_heap_allocs_total",
            "Callbacks that spilled out of the inline event storage")
      .set(static_cast<double>(sim.callback_heap_allocs()));
}

/// Sharded engine: engine-wide totals plus a per-island occupancy breakdown
/// (load-skew visibility — island 0 carries the root's control plane, so its
/// executed-events gauge dominating the others is the expected signature).
/// Call between windows (after advance_until/run returned), never while
/// worker threads hold the islands.
inline void export_engine_gauges(const sim::ShardedEngine& engine,
                                 MetricsRegistry& reg) {
  reg.gauge("fluxpower_sim_pending_events", "Events live across all islands")
      .set(static_cast<double>(engine.total_pending()));
  reg.gauge("fluxpower_sim_events_executed_total",
            "Events executed across all islands")
      .set(static_cast<double>(engine.total_events_executed()));
  reg.gauge("fluxpower_sim_callback_heap_allocs_total",
            "Callbacks that spilled out of inline storage, all islands")
      .set(static_cast<double>(engine.total_callback_heap_allocs()));
  reg.gauge("fluxpower_sim_windows_total",
            "Conservative time windows executed")
      .set(static_cast<double>(engine.windows_executed()));
  reg.gauge("fluxpower_sim_cross_island_posts_total",
            "Cross-island posts delivered through the window mailbox")
      .set(static_cast<double>(engine.posts_delivered()));
  reg.gauge("fluxpower_sim_cross_island_posts_pending",
            "Cross-island posts waiting for the next barrier")
      .set(static_cast<double>(engine.posts_pending()));
  for (int i = 0; i < engine.islands(); ++i) {
    const sim::Simulation& island = engine.island(i);
    const std::string suffix = "_island" + std::to_string(i);
    reg.gauge("fluxpower_sim_pending_events" + suffix,
              "Events live in one island")
        .set(static_cast<double>(island.pending()));
    reg.gauge("fluxpower_sim_events_executed_total" + suffix,
              "Events executed by one island")
        .set(static_cast<double>(island.events_executed()));
  }
}

}  // namespace fluxpower::obs
