#include "obs/trace.hpp"

namespace fluxpower::obs {

const char* TraceSink::intern(std::string_view s) {
  auto it = interned_.find(s);
  if (it == interned_.end()) {
    it = interned_.emplace(std::string(s)).first;
  }
  return it->c_str();
}

util::Json TraceSink::to_chrome_json() const {
  util::Json events = util::Json::array();
  ring_.for_each([&events](const TraceEvent& e) {
    util::Json obj = util::Json::object();
    obj["name"] = e.name;
    obj["cat"] = e.cat;
    obj["ph"] = std::string(1, e.phase);
    // Chrome trace timestamps are microseconds. Sim time is seconds; the
    // conversion is exact enough for display and, being a pure function of
    // sim time, deterministic across runs.
    obj["ts"] = e.ts_s * 1e6;
    if (e.phase == 'X') obj["dur"] = e.dur_s * 1e6;
    obj["pid"] = 0;
    obj["tid"] = e.tid;
    if (e.phase == 'i') obj["s"] = "t";  // thread-scoped instant
    if (e.arg_name != nullptr) {
      util::Json args = util::Json::object();
      args[e.arg_name] = e.arg_value;
      obj["args"] = std::move(args);
    }
    events.push_back(std::move(obj));
  });
  util::Json root = util::Json::object();
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  return root;
}

TraceSink& process_trace() {
  static TraceSink sink;
  return sink;
}

}  // namespace fluxpower::obs
