// trace.hpp — sim-time structured trace-event sink (observability plane).
//
// Records spans ('X', complete events with a duration) and instants ('i')
// stamped with simulation time, in a bounded ring so a long chaos run cannot
// grow memory without limit. Export is Chrome trace-event JSON
// (https://ui.perfetto.dev loads it directly; see README).
//
// Determinism and cost rules:
//   * Timestamps are sim-time only — never wall clock — so two identical
//     runs produce byte-identical trace output.
//   * The sink is disabled by default. Every record call checks enabled()
//     first and returns immediately; instrumented code paths pay one
//     predictable branch when tracing is off, and bench stdout is
//     unaffected either way (traces only ever go to files).
//   * record calls do not allocate: names/categories are `const char*`
//     string literals, or strings interned once via intern().
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/ring_buffer.hpp"

namespace fluxpower::obs {

/// One trace record. `phase` follows the Chrome trace-event phases we emit:
/// 'X' (complete: ts + dur) and 'i' (instant). `tid` is the flux rank (or 0
/// for process-scope events) so Perfetto renders one row per node.
struct TraceEvent {
  double ts_s = 0.0;
  double dur_s = 0.0;
  std::int32_t tid = 0;
  char phase = 'i';
  const char* name = "";
  const char* cat = "";
  /// Optional single numeric argument (shown in Perfetto's detail pane).
  const char* arg_name = nullptr;
  double arg_value = 0.0;
};

/// Bounded trace ring. When full, the oldest events are overwritten and
/// counted as dropped — matching the monitor's sample-buffer semantics.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity) {}

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Record an instant event at sim-time `ts_s`. No-op while disabled.
  void instant(double ts_s, const char* name, const char* cat,
               std::int32_t tid = 0, const char* arg_name = nullptr,
               double arg_value = 0.0) {
    if (!enabled_) return;
    ring_.push(TraceEvent{ts_s, 0.0, tid, 'i', name, cat, arg_name,
                          arg_value});
  }

  /// Record a complete span [ts_s, ts_s + dur_s]. No-op while disabled.
  void complete(double ts_s, double dur_s, const char* name, const char* cat,
                std::int32_t tid = 0, const char* arg_name = nullptr,
                double arg_value = 0.0) {
    if (!enabled_) return;
    ring_.push(TraceEvent{ts_s, dur_s, tid, 'X', name, cat, arg_name,
                          arg_value});
  }

  /// Intern a dynamic string (e.g. an RPC topic assembled at runtime) so
  /// record calls can keep passing `const char*` without per-event copies.
  /// The returned pointer is stable for the sink's lifetime.
  const char* intern(std::string_view s);

  std::size_t size() const noexcept { return ring_.size(); }
  std::uint64_t dropped() const noexcept { return ring_.evicted(); }
  const TraceEvent& operator[](std::size_t i) const { return ring_[i]; }

  /// Discard buffered events (interned strings and enabled state survive).
  void clear() noexcept { ring_.clear(); }

  /// Chrome trace-event JSON:
  ///   {"traceEvents":[{"name","cat","ph","ts","dur"?,"pid","tid",
  ///                    "s"?,"args"?}], "displayTimeUnit":"ms"}
  /// `ts`/`dur` are microseconds of sim time.
  util::Json to_chrome_json() const;

 private:
  util::RingBuffer<TraceEvent> ring_;
  /// std::set gives pointer-stable node-based storage for interned names.
  std::set<std::string, std::less<>> interned_;
  bool enabled_ = false;
};

/// The process-wide trace sink, shared by all instrumented layers. Disabled
/// until a tool/bench explicitly enables it.
TraceSink& process_trace();

}  // namespace fluxpower::obs
