#include "policy/engine.hpp"

#include <stdexcept>
#include <utility>

#include "policy/sched_policies.hpp"

namespace fluxpower::policy {

PolicyEngine& PolicyEngine::global() {
  static PolicyEngine engine;
  return engine;
}

PolicyEngine::PolicyEngine() { register_builtin_sched_policies(*this); }

void PolicyEngine::register_sched(std::string name, std::string summary,
                                  SchedFactory f) {
  if (sched_.contains(name)) return;
  sched_order_.push_back(name);
  sched_.emplace(std::move(name),
                 SchedEntry{std::move(summary), std::move(f)});
}

bool PolicyEngine::has_sched(std::string_view name) const {
  return sched_.find(name) != sched_.end();
}

std::unique_ptr<SchedulerPolicy> PolicyEngine::make_sched(
    std::string_view name) const {
  const auto it = sched_.find(name);
  if (it == sched_.end()) {
    std::string known;
    for (const std::string& n : sched_order_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("PolicyEngine: unknown scheduler policy \"" +
                                std::string(name) + "\" (known: " + known +
                                ")");
  }
  return it->second.factory();
}

std::vector<PolicyInfo> PolicyEngine::sched_policies() const {
  std::vector<PolicyInfo> out;
  out.reserve(sched_order_.size());
  for (const std::string& n : sched_order_) {
    out.push_back({n, sched_.at(n).summary});
  }
  return out;
}

void PolicyEngine::register_node(std::string name, std::string summary,
                                 int code) {
  if (node_.contains(name)) return;
  node_order_.push_back(name);
  node_.emplace(std::move(name), NodeEntry{std::move(summary), code});
}

std::optional<int> PolicyEngine::node_code(std::string_view name) const {
  const auto it = node_.find(name);
  if (it == node_.end()) return std::nullopt;
  return it->second.code;
}

std::vector<PolicyInfo> PolicyEngine::node_policies() const {
  std::vector<PolicyInfo> out;
  out.reserve(node_order_.size());
  for (const std::string& n : node_order_) {
    out.push_back({n, node_.at(n).summary});
  }
  return out;
}

}  // namespace fluxpower::policy
