// engine.hpp — PolicyEngine: the registry both policy planes dispatch
// through.
//
// One process-wide engine maps policy names to factories (scheduler side)
// and to node-policy codes (manager side). Registration is explicit and
// idempotent — no static-initializer self-registration, which a static-lib
// link would silently dead-strip. The scheduler built-ins register in the
// engine constructor; the manager's node policies register through
// manager::register_builtin_node_policies() (called at scenario/module
// setup, where the manager library is guaranteed to be linked).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "policy/policy.hpp"

namespace fluxpower::policy {

/// Catalog entry for `list` surfaces (docs, benches, error messages).
struct PolicyInfo {
  std::string name;
  std::string summary;
};

class PolicyEngine {
 public:
  using SchedFactory = std::function<std::unique_ptr<SchedulerPolicy>()>;

  /// The process-wide engine (function-local static: deterministic
  /// construction on first use, no init-order hazards).
  static PolicyEngine& global();

  PolicyEngine();
  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  // -- scheduler policies ----------------------------------------------------
  /// Get-or-keep registration: a name registered twice keeps its first
  /// factory (idempotent across repeated setup calls).
  void register_sched(std::string name, std::string summary, SchedFactory f);
  bool has_sched(std::string_view name) const;
  /// Construct a policy by name; throws std::invalid_argument on unknown
  /// names (listing the known ones).
  std::unique_ptr<SchedulerPolicy> make_sched(std::string_view name) const;
  std::vector<PolicyInfo> sched_policies() const;

  // -- node policies ---------------------------------------------------------
  /// Node policies are constructed by their owning module; the engine
  /// resolves names to the module's policy code (manager::NodePolicy value).
  void register_node(std::string name, std::string summary, int code);
  std::optional<int> node_code(std::string_view name) const;
  std::vector<PolicyInfo> node_policies() const;

 private:
  struct SchedEntry {
    std::string summary;
    SchedFactory factory;
  };
  struct NodeEntry {
    std::string summary;
    int code = 0;
  };
  /// Registration order preserved for list surfaces.
  std::vector<std::string> sched_order_;
  std::map<std::string, SchedEntry, std::less<>> sched_;
  std::vector<std::string> node_order_;
  std::map<std::string, NodeEntry, std::less<>> node_;
};

}  // namespace fluxpower::policy
