// policy.hpp — the pluggable power-policy plane (observe/act contracts).
//
// The paper's §III-B policy hooks appear twice in this reproduction: the
// scheduler decides *when a job may start* (admission under node and power
// constraints) and the per-node manager decides *how a node enforces its
// limit* (cap placement across GPUs/sockets). Both used to be closed enums
// with if/else dispatch; this header carves out the common interface so new
// policies from the related work (PI-bounded degradation, eco-mode
// user-assisted capping, power-aware EASY) plug in without editing every
// layer by hand.
//
// Observe/act contract:
//   * SchedulerPolicy observes the queue scan (one admit() verdict per
//     queued job, in submission order) plus a SchedView snapshot of the
//     cluster ledger, and acts through scheduling hints (Start / HoldQueue
//     / SkipJob) and an admission charge against the admitted-power ledger.
//   * NodePolicyPlugin observes pushed node limits, job progress events and
//     the host module's telemetry (typed PowerSample windows via the FPP
//     engine, obs gauges via the broker registry), and acts through the
//     module's cap primitives — every watt written to hardware still flows
//     through the existing push/batch/retry/quarantine machinery.
//
// Determinism rules (DESIGN.md "Policy plane"):
//   * Policies must be pure functions of their observed inputs: no wall
//     clock, no RNG, no hidden globals. A policy re-run from a twin
//     snapshot must produce the identical decision sequence.
//   * admit() is consulted once per queued job per scan; it must not
//     mutate shared state (the scheduler owns the ledger and commits the
//     admission charge only when the job actually starts).
//   * Mutable policy state must be exposed via encode_state() so the twin's
//     POL section can fingerprint it (FNV-1a digest tripwires).
#pragma once

#include <cstdint>
#include <vector>

#include "flux/jobspec.hpp"

namespace fluxpower::policy {

/// Verdict for one queued job during the scheduler's queue scan.
enum class SchedHint {
  Start,      ///< admit: try to place the job now
  HoldQueue,  ///< head-of-line block: stop the scan entirely
  SkipJob,    ///< pass over this job; scan may continue if backfill() allows
};

/// Read-only snapshot of the scheduler's ledger, taken once per scan.
/// Policies decide from this view only — never from the scheduler's
/// internals — so a decision is reproducible from the twin's POL section.
struct SchedView {
  double now_s = 0.0;             ///< sim time of the scan
  double cluster_bound_w = 0.0;   ///< 0 = no power admission control
  double node_peak_w = 3050.0;    ///< per-node peak assumed without estimate
  double admitted_power_w = 0.0;  ///< sum of running-job estimates
  std::size_t admitted_jobs = 0;  ///< running jobs charged to the ledger
  int free_nodes = 0;
  int total_nodes = 0;
};

/// Estimated peak draw of a job: the jobspec attribute
/// `power_estimate_w_per_node` (node peak assumed when absent) times the
/// node count. Shared by every power-aware scheduler policy so their
/// ledgers agree byte-for-byte.
inline double job_power_estimate_w(const SchedView& view,
                                   const flux::Job& job) {
  const double per_node = job.spec.attributes.number_or(
      "power_estimate_w_per_node", view.node_peak_w);
  return per_node * job.spec.nnodes;
}

/// Scheduler-side policy: admission hints + power-ledger charges.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Verdict for `job` during the queue scan. `blocked_head` is the first
  /// job the scan passed over (nullptr while no job has been skipped) —
  /// power-aware EASY uses it to reserve the head job's power.
  virtual SchedHint admit(const SchedView& view, const flux::Job& job,
                          const flux::Job* blocked_head) = 0;

  /// May the scan continue past a job that failed node placement?
  /// (EASY-style backfill; false = strict FCFS head-of-line blocking.)
  virtual bool backfill() const noexcept { return false; }

  /// Power charged against the admitted-power ledger when the job starts;
  /// <= 0 means the job is not tracked by the ledger.
  virtual double admission_estimate_w(const SchedView& view,
                                      const flux::Job& job) const {
    (void)view;
    (void)job;
    return 0.0;
  }

  /// Self-imposed per-node cap the policy requests for a starting job
  /// (eco-mode); 0 = none. Flows into the job.state-run event as
  /// `power_limit_w_per_node`, i.e. through the manager's existing
  /// water-filling — no new message shapes.
  virtual double requested_node_power_w(const flux::Job& job) const {
    (void)job;
    return 0.0;
  }

  /// Serialize mutable policy state for the twin's POL section (empty for
  /// stateless policies). Must be deterministic.
  virtual void encode_state(std::vector<std::uint8_t>& out) const {
    (void)out;
  }
};

/// Node-side policy: how a node enforces its pushed power limit. Concrete
/// plugins live next to the power-manager module (they act through its cap
/// primitives); this interface is what the module dispatches through.
class NodePolicyPlugin {
 public:
  virtual ~NodePolicyPlugin() = default;

  virtual const char* name() const noexcept = 0;

  // -- capability flags: which of the host module's periodic machinery is
  //    wired up at load. Mirrors the former enum gating exactly.
  virtual bool wants_progress() const noexcept { return false; }
  virtual bool wants_control_tick() const noexcept { return false; }
  virtual bool wants_fpp_engine() const noexcept { return false; }
  /// Period of the progress-driven control tick (only consulted when
  /// wants_progress()).
  virtual double progress_tick_period_s() const noexcept { return 0.0; }

  // -- observe
  /// A local job reported cumulative work `work_done` at sim time `now_s`.
  virtual void on_progress(double work_done, double now_s) {
    (void)work_done;
    (void)now_s;
  }
  /// Periodic progress-control tick (period = progress_tick_period_s()).
  virtual void on_progress_tick() {}
  /// The node limit was freshly installed or raised (new headroom epoch).
  virtual void on_limit_refresh() {}

  // -- act
  /// Apply the active node limit to the local hardware; false only on a
  /// transient cap-write failure (arms the host's backoff ladder).
  virtual bool enforce() = 0;

  // -- introspection (keeps the twin MGR section byte-compatible: the
  //    defaults equal the former module members' initial values).
  virtual double progress_rate() const noexcept { return -1.0; }
  virtual double progress_cap_w() const noexcept { return 0.0; }
  virtual bool progress_holding() const noexcept { return false; }

  /// Serialize mutable plugin state for the twin's POL section.
  virtual void encode_state(std::vector<std::uint8_t>& out) const {
    (void)out;
  }
};

}  // namespace fluxpower::policy
