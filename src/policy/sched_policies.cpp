#include "policy/sched_policies.hpp"

#include <algorithm>

#include "policy/engine.hpp"

namespace fluxpower::policy {

SchedHint PowerAwarePolicy::admit(const SchedView& view, const flux::Job& job,
                                  const flux::Job*) {
  if (view.cluster_bound_w <= 0.0) return SchedHint::Start;
  const double estimate = job_power_estimate_w(view, job);
  // A job whose estimate alone exceeds the bound would wait forever;
  // admit it alone (it will be throttled by the power manager instead).
  if (estimate >= view.cluster_bound_w) {
    return view.admitted_jobs == 0 ? SchedHint::Start : SchedHint::HoldQueue;
  }
  return view.admitted_power_w + estimate <= view.cluster_bound_w
             ? SchedHint::Start
             : SchedHint::HoldQueue;
}

SchedHint PowerAwareEasyPolicy::admit(const SchedView& view,
                                      const flux::Job& job,
                                      const flux::Job* blocked_head) {
  if (view.cluster_bound_w <= 0.0) return SchedHint::Start;
  const double estimate = job_power_estimate_w(view, job);
  if (estimate >= view.cluster_bound_w) {
    // Oversized job: admissible alone at an empty cluster with nothing
    // skipped ahead of it; otherwise it waits (skipped, not blocking).
    return view.admitted_jobs == 0 && blocked_head == nullptr
               ? SchedHint::Start
               : SchedHint::SkipJob;
  }
  // EASY power reservation: a job admitted past a blocked head must leave
  // room for the head's own estimate, or it could delay the head forever.
  const double reserved =
      blocked_head != nullptr ? job_power_estimate_w(view, *blocked_head) : 0.0;
  return view.admitted_power_w + reserved + estimate <= view.cluster_bound_w
             ? SchedHint::Start
             : SchedHint::SkipJob;
}

double EcoModePolicy::requested_node_power_w(const flux::Job& job) const {
  // cap = estimate x (1 - tolerance); tolerance clamped to [0, 0.6] so a
  // typo'd attribute cannot strangle a job, 0/absent means no self-cap.
  // The estimate must be explicit: without `power_estimate_w_per_node`
  // there is nothing meaningful to derive a saving from.
  const double tolerance = std::clamp(
      job.spec.attributes.number_or("eco_tolerance", 0.0), 0.0, 0.6);
  if (tolerance <= 0.0) return 0.0;
  const double estimate =
      job.spec.attributes.number_or("power_estimate_w_per_node", 0.0);
  if (estimate <= 0.0) return 0.0;
  return estimate * (1.0 - tolerance);
}

void register_builtin_sched_policies(PolicyEngine& engine) {
  engine.register_sched("fcfs", "strict first-come-first-served",
                        [] { return std::make_unique<FcfsPolicy>(); });
  engine.register_sched("easy-backfill",
                        "conservative node-count backfill",
                        [] { return std::make_unique<EasyBackfillPolicy>(); });
  engine.register_sched("power-aware",
                        "overprovisioning power admission control",
                        [] { return std::make_unique<PowerAwarePolicy>(); });
  engine.register_sched(
      "power-aware-easy", "EASY backfill with power reservations",
      [] { return std::make_unique<PowerAwareEasyPolicy>(); });
  engine.register_sched("eco-mode",
                        "user-assisted self-capping via eco_tolerance",
                        [] { return std::make_unique<EcoModePolicy>(); });
}

}  // namespace fluxpower::policy
