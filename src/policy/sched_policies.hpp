// sched_policies.hpp — built-in scheduler policies for the policy plane.
//
// The three legacy policies (fcfs, easy-backfill, power-aware) reproduce the
// former Scheduler::Policy enum semantics byte-for-byte; the two new ones
// come from PAPERS.md:
//   * power-aware-easy — EASY backfill under the cluster power budget:
//     jobs behind a blocked head may start only when the budget covers the
//     already-admitted jobs, the candidate AND the blocked head's estimate
//     (a power reservation, not just a node-count check).
//   * eco-mode — user-assisted bi-objective capping ("Run your HPC jobs in
//     Eco-Mode"): FCFS admission, but a job carrying the jobspec attribute
//     `eco_tolerance` (acceptable relative slowdown, clamped to [0, 0.6])
//     self-caps at power_estimate_w_per_node x (1 - eco_tolerance); the
//     surplus is water-filled to the other jobs by the manager.
#pragma once

#include <memory>

#include "policy/policy.hpp"

namespace fluxpower::policy {

class PolicyEngine;

/// Strict FCFS: only the head of the queue may start.
class FcfsPolicy final : public SchedulerPolicy {
 public:
  const char* name() const noexcept override { return "fcfs"; }
  SchedHint admit(const SchedView&, const flux::Job&,
                  const flux::Job*) override {
    return SchedHint::Start;
  }
};

/// Conservative node-count backfill: jobs behind a blocked head may start
/// when they fit in the leftover nodes.
class EasyBackfillPolicy final : public SchedulerPolicy {
 public:
  const char* name() const noexcept override { return "easy-backfill"; }
  SchedHint admit(const SchedView&, const flux::Job&,
                  const flux::Job*) override {
    return SchedHint::Start;
  }
  bool backfill() const noexcept override { return true; }
};

/// Hardware-overprovisioning admission control: a job starts only when the
/// cluster power bound can accommodate its estimated peak draw on top of
/// the already-admitted jobs; a blocked head blocks the queue.
class PowerAwarePolicy final : public SchedulerPolicy {
 public:
  const char* name() const noexcept override { return "power-aware"; }
  SchedHint admit(const SchedView& view, const flux::Job& job,
                  const flux::Job*) override;
  double admission_estimate_w(const SchedView& view,
                              const flux::Job& job) const override {
    return job_power_estimate_w(view, job);
  }
};

/// EASY backfill with power reservations: like PowerAware, but a
/// power-blocked job is skipped (not head-of-line blocking), and any job
/// admitted past a blocked head must leave room for the head's estimate.
class PowerAwareEasyPolicy final : public SchedulerPolicy {
 public:
  const char* name() const noexcept override { return "power-aware-easy"; }
  SchedHint admit(const SchedView& view, const flux::Job& job,
                  const flux::Job* blocked_head) override;
  bool backfill() const noexcept override { return true; }
  double admission_estimate_w(const SchedView& view,
                              const flux::Job& job) const override {
    return job_power_estimate_w(view, job);
  }
};

/// Eco-mode user-assisted capping: FCFS admission plus a per-job self-cap
/// derived from the `eco_tolerance` jobspec attribute.
class EcoModePolicy final : public SchedulerPolicy {
 public:
  const char* name() const noexcept override { return "eco-mode"; }
  SchedHint admit(const SchedView&, const flux::Job&,
                  const flux::Job*) override {
    return SchedHint::Start;
  }
  double requested_node_power_w(const flux::Job& job) const override;
};

/// Register the built-in scheduler policies with `engine` (idempotent);
/// called from the PolicyEngine constructor.
void register_builtin_sched_policies(PolicyEngine& engine);

}  // namespace fluxpower::policy
