// state_codec.hpp — tiny append-only encoders for policy state blobs.
//
// Policies serialize their mutable state into a raw byte vector (the twin
// wraps those blobs in its framed POL section and digests them). Layout
// matches the twin codec's primitives — little-endian fixed width, f64 as
// IEEE bits — so the blobs are stable across platforms and the digests are
// meaningful determinism tripwires.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace fluxpower::policy {

inline void state_put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void state_put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void state_put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  state_put_u64(out, bits);
}

inline void state_put_bool(std::vector<std::uint8_t>& out, bool v) {
  out.push_back(v ? 1 : 0);
}

}  // namespace fluxpower::policy
