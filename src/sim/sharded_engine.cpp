#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fluxpower::sim {

namespace {
constexpr Time kInf = std::numeric_limits<Time>::infinity();
}

ShardedEngine::ShardedEngine(int islands, int workers, double lookahead_s)
    : lookahead_(lookahead_s) {
  if (islands < 1) {
    throw std::invalid_argument("ShardedEngine: need at least one island");
  }
  if (workers < 1) {
    throw std::invalid_argument("ShardedEngine: need at least one worker");
  }
  if (!(lookahead_s > 0.0)) {
    throw std::invalid_argument("ShardedEngine: lookahead must be positive");
  }
  shards_.reserve(static_cast<std::size_t>(islands));
  mailboxes_.reserve(static_cast<std::size_t>(islands));
  for (int i = 0; i < islands; ++i) {
    shards_.push_back(std::make_unique<Simulation>());
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  post_counters_.resize(static_cast<std::size_t>(islands));
  const int nthreads = std::min(workers, islands) - 1;
  threads_.reserve(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) {
    threads_.emplace_back(
        [this, w] { worker_loop(static_cast<std::size_t>(w)); });
  }
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedEngine::post(int src_island, int dest_island, Time fire_time,
                         std::function<void()> fn) {
  if (dest_island < 0 || dest_island >= islands()) {
    throw std::out_of_range("ShardedEngine::post: bad destination island");
  }
  if (!fn) {
    throw std::invalid_argument("ShardedEngine::post: empty callback");
  }
  if (window_open_ && fire_time < window_end_) {
    // The conservative contract is broken: the modelled latency of this
    // handoff is below the lookahead, so the destination island may have
    // already run past the fire time.
    throw std::logic_error(
        "ShardedEngine::post: fire time inside the current window "
        "(cross-island latency below the lookahead)");
  }
  Post p;
  p.fire = fire_time;
  p.send = island(src_island).now();
  p.src = src_island;
  p.seq = post_counters_[static_cast<std::size_t>(src_island)].n++;
  p.dest = dest_island;
  p.fn = std::move(fn);
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest_island)];
  std::lock_guard<std::mutex> lk(mb.mu);
  mb.posts.push_back(std::move(p));
}

std::uint64_t ShardedEngine::add_barrier_hook(std::function<void()> fn) {
  const std::uint64_t handle = next_hook_++;
  hooks_.emplace_back(handle, std::move(fn));
  return handle;
}

void ShardedEngine::remove_barrier_hook(std::uint64_t handle) {
  hooks_.erase(std::remove_if(hooks_.begin(), hooks_.end(),
                              [handle](const auto& h) {
                                return h.first == handle;
                              }),
               hooks_.end());
}

void ShardedEngine::drain_and_hooks() {
  drain_scratch_.clear();
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lk(mb->mu);
    for (Post& p : mb->posts) drain_scratch_.push_back(std::move(p));
    mb->posts.clear();
  }
  // Canonical drain order: independent of which thread parked which post
  // first. (src, seq) makes the key unique, so this is a total order.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const Post& a, const Post& b) {
              if (a.fire != b.fire) return a.fire < b.fire;
              if (a.send != b.send) return a.send < b.send;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (Post& p : drain_scratch_) {
    island(p.dest).schedule_at(p.fire, std::move(p.fn));
    ++posts_delivered_;
  }
  drain_scratch_.clear();
  for (auto& [handle, fn] : hooks_) fn();
}

Time ShardedEngine::min_island_event_time() {
  Time t = kInf;
  for (auto& s : shards_) t = std::min(t, s->next_event_time());
  return t;
}

Time ShardedEngine::min_post_time() {
  Time t = kInf;
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lk(mb->mu);
    for (const Post& p : mb->posts) t = std::min(t, p.fire);
  }
  return t;
}

Time ShardedEngine::next_event_time() {
  return std::min(min_island_event_time(), min_post_time());
}

bool ShardedEngine::open_window(Time horizon) {
  drain_and_hooks();
  const Time start = min_island_event_time();
  if (start > horizon || start == kInf) return false;
  Time end = start + lookahead_;
  if (std::isfinite(horizon)) {
    // Events at exactly the horizon belong to the advance; anything later
    // must stay queued. nextafter gives the tightest exclusive bound.
    end = std::min(end, std::nextafter(horizon, kInf));
  }
  window_end_ = end;
  window_open_ = true;
  ++windows_;
  return true;
}

void ShardedEngine::work_one_epoch() {
  const int n = islands();
  for (;;) {
    const int i = next_island_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      island(i).run_before(window_end_);
    } catch (...) {
      std::lock_guard<std::mutex> lk(pool_mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ShardedEngine::worker_loop(std::size_t) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(pool_mu_);
  for (;;) {
    pool_cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
    if (shutdown_) return;
    seen = epoch_;
    lk.unlock();
    work_one_epoch();
    lk.lock();
    if (++idle_workers_ == threads_.size()) done_cv_.notify_one();
  }
}

void ShardedEngine::execute_window_parallel() {
  if (threads_.empty()) {
    // Single-worker configuration: run islands in index order inline.
    for (auto& s : shards_) s->run_before(window_end_);
  } else {
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      idle_workers_ = 0;
      next_island_.store(0, std::memory_order_relaxed);
      ++epoch_;
    }
    pool_cv_.notify_all();
    work_one_epoch();
    std::unique_lock<std::mutex> lk(pool_mu_);
    done_cv_.wait(lk, [&] { return idle_workers_ == threads_.size(); });
  }
  window_open_ = false;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    std::swap(err, error_);
  }
  if (err) std::rethrow_exception(err);
}

void ShardedEngine::run() {
  finish_window();
  while (open_window(kInf)) execute_window_parallel();
}

void ShardedEngine::advance_until(Time horizon,
                                  const std::function<bool()>& stop) {
  finish_window();
  for (;;) {
    if (stop && stop()) return;  // barrier-granular stop: no idle elapse
    if (!open_window(horizon)) break;
    execute_window_parallel();
  }
  if (std::isfinite(horizon)) {
    for (auto& s : shards_) s->run_until(horizon);
  }
}

bool ShardedEngine::pump_one() {
  for (;;) {
    if (!window_open_) {
      if (!open_window(kInf)) return false;
    }
    int best = -1;
    Time best_t = window_end_;
    const int n = islands();
    for (int i = 0; i < n; ++i) {
      const Time t = island(i).next_event_time();
      if (t < best_t) {
        best_t = t;
        best = i;
      }
    }
    if (best < 0) {
      window_open_ = false;  // window exhausted: next loop opens the next
      continue;
    }
    island(best).step();
    return true;
  }
}

void ShardedEngine::finish_window() {
  if (!window_open_) return;
  for (auto& s : shards_) s->run_before(window_end_);
  window_open_ = false;
}

void ShardedEngine::finalize_clocks() {
  finish_window();
  const Time t = now();
  if (!std::isfinite(t)) return;
  advance_until(t);
}

Time ShardedEngine::now() const noexcept {
  Time t = 0.0;
  for (const auto& s : shards_) t = std::max(t, s->now());
  return t;
}

std::uint64_t ShardedEngine::posts_pending() const noexcept {
  std::uint64_t n = 0;
  for (const auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lk(mb->mu);
    n += mb->posts.size();
  }
  return n;
}

std::uint64_t ShardedEngine::total_seq_counter() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->seq_counter();
  return n;
}

std::uint64_t ShardedEngine::total_events_executed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->events_executed();
  return n;
}

std::uint64_t ShardedEngine::total_pending() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->pending();
  return n;
}

std::uint64_t ShardedEngine::total_callback_heap_allocs() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->callback_heap_allocs();
  return n;
}

}  // namespace fluxpower::sim
