// sharded_engine.hpp — conservative parallel discrete-event engine.
//
// Shards a simulation into N islands, each a full single-threaded
// Simulation (own timer wheel, slab pool, seq counter), advanced by a
// fixed worker-thread pool under a conservative time-window barrier:
//
//   * A window [W, W + Δ) starts at the globally earliest pending event
//     time W (across every island and the cross-island mailboxes) and is
//     Δ = lookahead() wide. Within the window each island executes its own
//     events independently on a worker thread — legal because every
//     cross-island interaction is charged at least Δ of latency, so
//     nothing sent inside the window can be due before it ends.
//   * Cross-island traffic never touches another island's Simulation
//     directly. The sender calls post(): the closure is parked in the
//     destination island's ingress mailbox and scheduled only at the next
//     barrier, after every island has reached the window end. Drains are
//     sorted by (fire_time, send_time, src_island, src_post_seq) — a total
//     order independent of thread interleaving — so a delivery's insertion
//     seq on the destination island is deterministic run-to-run.
//   * Barrier hooks run single-threaded at every barrier (between the
//     drain and the next window) — the spot for cross-island folds such as
//     observability mirrors.
//
// Determinism contract: for a fixed island count the run is bit-for-bit
// reproducible. Across island counts, the window sequence itself is
// invariant (W and Δ depend only on event times, never on the partition),
// so any client whose cross-island sends commute at equal (fire, send)
// times observes byte-identical results for every shard count — the
// property the shard-invariance suite pins. See DESIGN.md, "Sharded
// engine and conservative window barrier".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulation.hpp"

namespace fluxpower::sim {

class ShardedEngine {
 public:
  /// `islands` >= 1 engine shards advanced by `workers` >= 1 threads
  /// (clamped to the island count; workers - 1 threads are spawned, the
  /// caller's thread is the last worker). `lookahead_s` is the minimum
  /// cross-island latency: post() may never target a fire time closer
  /// than the end of the window the send happens in.
  explicit ShardedEngine(int islands, int workers = 1,
                         double lookahead_s = 100e-6);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int islands() const noexcept { return static_cast<int>(shards_.size()); }
  int workers() const noexcept { return static_cast<int>(threads_.size()) + 1; }
  double lookahead() const noexcept { return lookahead_; }
  Simulation& island(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const Simulation& island(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }

  /// Hand a closure across the island boundary: it is scheduled on
  /// `dest_island` at `fire_time` at the next barrier. Must be called from
  /// `src_island`'s execution context (its worker thread during a window,
  /// or any single-threaded phase). fire_time must be >= the end of the
  /// current window — guaranteed when the modelled latency >= lookahead().
  void post(int src_island, int dest_island, Time fire_time,
            std::function<void()> fn);

  /// Register a hook run single-threaded at every barrier (after the
  /// mailbox drain, before the next window). Returns a handle for remove.
  std::uint64_t add_barrier_hook(std::function<void()> fn);
  void remove_barrier_hook(std::uint64_t handle);

  /// Run windows until every island's queue is empty and no posts remain.
  void run();

  /// Run windows while the globally earliest event time is <= horizon
  /// (events at exactly `horizon` are executed), then advance every
  /// island's clock to `horizon`. `stop` (optional) is evaluated at each
  /// barrier; returning true ends the advance at that barrier.
  void advance_until(Time horizon,
                     const std::function<bool()>& stop = nullptr);

  /// Sequential drive: execute exactly one event, choosing the globally
  /// earliest (time, island) pending event and respecting the same window
  /// and drain schedule as the parallel driver. Returns false when no
  /// events remain. Used by post-run blocking helpers that pump the
  /// engine between checks.
  bool pump_one();

  /// Execute the remainder of the current window sequentially so that
  /// every island has run every event earlier than the window end —
  /// realigning the islands after a pump_one() loop stopped mid-window.
  void finish_window();

  /// Advance every island's clock to the maximum island now() (executing
  /// any events up to it). Gives post-run readers a single consistent
  /// end-of-run clock regardless of which island saw the last event.
  void finalize_clocks();

  /// Globally earliest pending event time (islands + mailboxes), or +inf.
  Time next_event_time();

  // -- Introspection (obs gauges, benches, twin canonical section) ---------
  std::uint64_t windows_executed() const noexcept { return windows_; }
  std::uint64_t posts_delivered() const noexcept { return posts_delivered_; }
  std::uint64_t posts_pending() const noexcept;
  std::uint64_t total_seq_counter() const noexcept;
  std::uint64_t total_events_executed() const noexcept;
  std::uint64_t total_pending() const noexcept;
  std::uint64_t total_callback_heap_allocs() const noexcept;
  /// Max island now() — the engine-wide clock after finalize_clocks().
  Time now() const noexcept;

 private:
  struct Post {
    Time fire = 0.0;
    Time send = 0.0;
    int src = 0;
    std::uint64_t seq = 0;  ///< src island's post counter at send
    int dest = 0;
    std::function<void()> fn;
  };
  struct Mailbox {
    mutable std::mutex mu;
    std::vector<Post> posts;
  };
  struct alignas(64) PostCounter {
    std::uint64_t n = 0;
  };

  /// Drain every mailbox into the destination islands in canonical order
  /// and run the barrier hooks. Single-threaded (barrier context only).
  void drain_and_hooks();
  /// Earliest island event time, ignoring mailboxes.
  Time min_island_event_time();
  /// Earliest parked post fire time, or +inf. Single-threaded context.
  Time min_post_time();
  /// Open the next window: drain, hooks, compute [start, window_end_).
  /// Returns false when nothing is pending.
  bool open_window(Time horizon);
  /// Execute the current window on the worker pool.
  void execute_window_parallel();
  void worker_loop(std::size_t worker_index);
  void work_one_epoch();

  std::vector<std::unique_ptr<Simulation>> shards_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<PostCounter> post_counters_;  ///< per src island
  std::vector<std::pair<std::uint64_t, std::function<void()>>> hooks_;
  std::uint64_t next_hook_ = 1;
  double lookahead_;
  Time window_end_ = 0.0;
  bool window_open_ = false;  ///< pump_one is inside a window
  std::uint64_t windows_ = 0;
  std::uint64_t posts_delivered_ = 0;
  std::vector<Post> drain_scratch_;

  // Worker pool: epoch-driven. Workers wait for epoch_ to advance, then
  // claim islands via next_island_ and run them to window_end_; the main
  // thread participates and waits until idle_workers_ == thread count.
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;   ///< workers: new epoch / shutdown
  std::condition_variable done_cv_;   ///< main: all workers idle
  std::uint64_t epoch_ = 0;
  std::size_t idle_workers_ = 0;
  std::atomic<int> next_island_{0};
  bool shutdown_ = false;
  std::exception_ptr error_;  ///< first island exception; rethrown at barrier
};

}  // namespace fluxpower::sim
