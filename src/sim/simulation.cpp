#include "sim/simulation.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace fluxpower::sim {

Simulation::Simulation() : buckets_(kNumBuckets) {}

Simulation::~Simulation() = default;

void Simulation::check_time(Time t) const {
  if (t < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  if (std::isnan(t)) {
    throw std::invalid_argument("Simulation::schedule_at: NaN time");
  }
}

std::uint32_t Simulation::acquire_slot() {
  if (free_head_ == kNoFreeSlot) {
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkSlots);
    chunks_.push_back(std::make_unique<EventSlot[]>(kChunkSlots));
    // Thread the new chunk onto the free list, last slot first, so slots
    // are handed out in ascending index order.
    for (std::uint32_t i = kChunkSlots; i-- > 0;) {
      EventSlot& s = chunks_.back()[i];
      s.next_free = free_head_;
      free_head_ = base + i;
    }
  }
  const std::uint32_t idx = free_head_;
  free_head_ = slot(idx).next_free;
  return idx;
}

void Simulation::free_slot(std::uint32_t idx) noexcept {
  EventSlot& s = slot(idx);
  ++s.generation;  // any id minted for this occupancy is now stale
  s.next_free = free_head_;
  free_head_ = idx;
}

void Simulation::release_slot(std::uint32_t idx) noexcept {
  slot(idx).callback.reset();
  free_slot(idx);
}

EventId Simulation::enqueue(Time t, std::uint32_t idx) {
  EventSlot& s = slot(idx);
  s.live = true;
  ++live_;
  push_entry(Entry{t, next_seq_++, idx, s.generation});
  return make_id(idx, s.generation);
}

void Simulation::push_entry(const Entry& e) {
  // Everything earlier than the cursor bucket's end competes with the
  // current front, so it must be heap-ordered now (the cursor bucket was
  // already drained into the ready run). This also covers times before
  // wheel_base_ (possible right after a rebase jumped ahead of now()).
  if (e.time < bucket_end(cursor_)) {
    push_overflow(e);
    return;
  }
  const double rel = (e.time - wheel_base_) / kBucketWidth;
  if (!(rel < static_cast<double>(kNumBuckets))) {  // beyond horizon (or inf)
    far_.push(e);
    return;
  }
  int b = static_cast<int>(rel);
  // Guard against FP rounding at bucket boundaries: b must satisfy
  // wheel_base_ + b*width <= e.time < wheel_base_ + (b+1)*width.
  while (b > 0 && e.time < wheel_base_ + b * kBucketWidth) --b;
  while (b + 1 < kNumBuckets && e.time >= bucket_end(b)) ++b;
  if (b <= cursor_) {
    push_overflow(e);
    return;
  }
  buckets_[static_cast<std::size_t>(b)].push_back(e);
  occupied_[static_cast<std::size_t>(b) / 64] |= std::uint64_t{1} << (b % 64);
}

int Simulation::next_occupied_bucket(int from) const noexcept {
  if (from >= kNumBuckets) return -1;
  std::size_t word = static_cast<std::size_t>(from) / 64;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (from % 64));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>(word * 64) + std::countr_zero(bits);
    }
    if (++word >= occupied_.size()) return -1;
    bits = occupied_[word];
  }
}

void Simulation::drain_bucket(int b) {
  // Only reached once the previous ready run is fully consumed, so the
  // bucket's storage and the ready run's can trade places: no copy, and
  // both vectors keep their capacity — steady-state re-arms never allocate.
  std::vector<Entry>& bucket = buckets_[static_cast<std::size_t>(b)];
  ready_.clear();
  ready_pos_ = 0;
  ready_.swap(bucket);
  // Tombstones sort fine by their recorded (time, seq) and the consume
  // loop skips them anyway, so no compaction pass (which would cost one
  // slot probe per entry). Synchronized periodic sweeps re-arm in firing
  // order, which is already sorted — the common case is one linear scan.
  if (!std::is_sorted(ready_.begin(), ready_.end(), &entry_less)) {
    std::sort(ready_.begin(), ready_.end(), &entry_less);
  }
  occupied_[static_cast<std::size_t>(b) / 64] &=
      ~(std::uint64_t{1} << (b % 64));
}

void Simulation::rebase(Time t) {
  const double base = std::floor(t / kBucketWidth) * kBucketWidth;
  if (!std::isfinite(base)) {
    // Degenerate epoch (events at +inf): order the far heap directly.
    push_overflow(far_.top());
    far_.pop();
    return;
  }
  wheel_base_ = base;
  cursor_ = 0;
  ++rebases_;
  while (!far_.empty()) {
    const Entry& top = far_.top();
    if (!entry_live(top)) {
      far_.pop();
      continue;
    }
    if (top.time >= wheel_base_ + kNumBuckets * kBucketWidth) break;
    const Entry moved = top;
    far_.pop();
    push_entry(moved);
  }
}

void Simulation::push_overflow(const Entry& e) {
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(), &entry_greater);
}

void Simulation::pop_overflow() {
  std::pop_heap(overflow_.begin(), overflow_.end(), &entry_greater);
  overflow_.pop_back();
}

const Simulation::Entry* Simulation::peek_next() {
  for (;;) {
    while (ready_pos_ < ready_.size() && !entry_live(ready_[ready_pos_])) {
      ++ready_pos_;
    }
    if (ready_pos_ < ready_.size()) {
      const Entry& r = ready_[ready_pos_];
      while (!overflow_.empty() && !entry_live(overflow_.front())) {
        pop_overflow();
      }
      if (!overflow_.empty() && entry_less(overflow_.front(), r)) {
        return &overflow_.front();
      }
      return &r;
    }
    if (!overflow_.empty()) {
      // The run is spent: steal the overflow heap's backing vector as the
      // next run. A fan-out burst (N deliveries pushed in ascending time)
      // leaves the heap array exactly in insertion order, so the sort
      // usually collapses to the is_sorted scan — one linear pass instead
      // of N log N heap pops.
      ready_.clear();
      ready_pos_ = 0;
      ready_.swap(overflow_);
      if (!std::is_sorted(ready_.begin(), ready_.end(), &entry_less)) {
        std::sort(ready_.begin(), ready_.end(), &entry_less);
      }
      continue;
    }
    const int b = next_occupied_bucket(cursor_ + 1);
    if (b >= 0) {
      cursor_ = b;
      drain_bucket(b);
      continue;
    }
    while (!far_.empty() && !entry_live(far_.top())) far_.pop();
    if (far_.empty()) return nullptr;
    rebase(far_.top().time);
  }
}

void Simulation::pop_front(const Entry* top) {
  if (ready_pos_ < ready_.size() && top == ready_.data() + ready_pos_) {
    ++ready_pos_;
#if defined(__GNUC__)
    // The next run entry's slot will be probed (and written) right after
    // the current callback returns; issuing the fetch now hides its
    // latency behind the callback's own work. At 8k nodes the slot pool
    // is far larger than L2, so this is a guaranteed miss otherwise.
    if (ready_pos_ < ready_.size()) {
      __builtin_prefetch(&slot(ready_[ready_pos_].slot), 1, 1);
    }
#endif
  } else {
    pop_overflow();
  }
}

void Simulation::fire(const Entry& e) {
  EventSlot& s = slot(e.slot);
  now_ = e.time;
  ++executed_;
  --live_;
  s.live = false;
  s.on_stack = true;
  // Release on scope exit even if the callback throws; a re-armed slot
  // (live again) is kept, everything else is destroyed and recycled.
  struct FireGuard {
    Simulation* sim;
    std::uint32_t idx;
    ~FireGuard() {
      EventSlot& fired = sim->slot(idx);
      fired.on_stack = false;
      if (!fired.live) sim->release_slot(idx);
    }
  } guard{this, e.slot};
  s.callback.invoke();
}

bool Simulation::cancel(EventId id) {
  const std::uint32_t high = static_cast<std::uint32_t>(id >> 32);
  if (high == 0) return false;
  const std::uint32_t idx = high - 1;
  if (idx >= chunks_.size() * kChunkSlots) return false;
  EventSlot& s = slot(idx);
  if (!s.live || s.generation != static_cast<std::uint32_t>(id)) return false;
  s.live = false;
  --live_;
  if (s.on_stack) {
    // Cancelled from inside its own (re-armed) callback: the callable is
    // executing and cannot be destroyed yet; the fire guard recycles it.
    ++s.generation;
  } else {
    release_slot(idx);
  }
  return true;
}

EventId Simulation::rearm_fired(EventId fired, Time t) {
  const std::uint32_t high = static_cast<std::uint32_t>(fired >> 32);
  if (high == 0) {
    throw std::logic_error("Simulation::rearm_fired: invalid event id");
  }
  const std::uint32_t idx = high - 1;
  if (idx >= chunks_.size() * kChunkSlots) {
    throw std::logic_error("Simulation::rearm_fired: invalid event id");
  }
  EventSlot& s = slot(idx);
  if (!s.on_stack || s.live ||
      s.generation != static_cast<std::uint32_t>(fired)) {
    throw std::logic_error(
        "Simulation::rearm_fired: not inside this event's callback");
  }
  check_time(t);
  ++s.generation;
  return enqueue(t, idx);
}

bool Simulation::step() {
  const Entry* top = peek_next();
  if (top == nullptr) return false;
  const Entry e = *top;
  pop_front(top);
  fire(e);
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  for (;;) {
    // Skip over cancelled entries without advancing time.
    const Entry* top = peek_next();
    if (top == nullptr || top->time > t) break;
    const Entry e = *top;
    pop_front(top);
    fire(e);
  }
  if (now_ < t) now_ = t;
}

void Simulation::run_before(Time end) {
  for (;;) {
    const Entry* top = peek_next();
    if (top == nullptr || top->time >= end) break;
    const Entry e = *top;
    pop_front(top);
    fire(e);
  }
}

Time Simulation::next_event_time() {
  const Entry* top = peek_next();
  return top == nullptr ? std::numeric_limits<Time>::infinity() : top->time;
}

PeriodicTask::PeriodicTask(Simulation& sim, Time period,
                           std::function<bool()> fn, Time initial_delay)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period <= 0.0) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
  next_fire_ = sim_.now() + (initial_delay >= 0.0 ? initial_delay : period_);
  pending_ = sim_.schedule_at(next_fire_, [this] { fire(); });
}

void PeriodicTask::fire() {
  const EventId fired = pending_;
  pending_ = kInvalidEvent;
  if (!running_) return;
  if (fn_()) {
    next_fire_ += period_;  // absolute re-arm: long callbacks don't drift
    if (next_fire_ < sim_.now()) next_fire_ = sim_.now();
    pending_ = sim_.rearm_fired(fired, next_fire_);
  } else {
    running_ = false;
  }
}

void PeriodicTask::stop() {
  running_ = false;
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

}  // namespace fluxpower::sim
