#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

namespace fluxpower::sim {

EventId Simulation::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Simulation::schedule_at: empty callback");
  }
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulation::cancel(EventId id) {
  return callbacks_.erase(id) > 0;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = entry.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries without advancing time.
    const QueueEntry& top = queue_.top();
    if (!callbacks_.contains(top.id)) {
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

PeriodicTask::PeriodicTask(Simulation& sim, Time period,
                           std::function<bool()> fn, Time initial_delay)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period <= 0.0) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
  arm(initial_delay >= 0.0 ? initial_delay : period_);
}

void PeriodicTask::arm(Time delay) {
  pending_ = sim_.schedule_after(delay, [this] {
    pending_ = kInvalidEvent;
    if (!running_) return;
    if (fn_()) {
      arm(period_);
    } else {
      running_ = false;
    }
  });
}

void PeriodicTask::stop() {
  running_ = false;
  if (pending_ != kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

}  // namespace fluxpower::sim
