// simulation.hpp — deterministic discrete-event simulation engine.
//
// Everything above the hardware models (brokers, modules, applications,
// power policies) executes against this virtual clock instead of wall time.
// The engine is single-threaded and strictly ordered: events fire in
// (time, insertion-sequence) order, so a given scenario + seed always
// produces identical tables. "Threads of control" in the real Flux (module
// threads, the node-level-manager's tracking thread) map to periodic tasks
// here; the substitution is behaviour-preserving because those threads are
// themselves timer-driven loops.
//
// Internals (see DESIGN.md, "Event engine internals" for the full story):
//
//   * Callbacks live in a slab-allocated pool of fixed slots with 56 bytes
//     of inline storage each (heap fallback for larger captures). An
//     EventId encodes {slot, generation}, so cancel() and the fired-check
//     are O(1) array probes — no hashing, no tombstone map, and a stale id
//     held across slot reuse can never cancel the new occupant.
//   * Scheduling routes through a bucketed timer wheel (0.25 s buckets,
//     1024 s horizon) for the dominant near-future periodic events
//     (2 s monitor sweeps, FFT windows, FPP intervals). When the cursor
//     reaches a bucket its entries are compacted and sorted once into a
//     sequentially-consumed "ready run" (synchronized periodic sweeps
//     arrive already sorted, so the sort usually degenerates to one
//     is_sorted scan) — avoiding O(log n) heap percolation per event. A
//     small overflow heap order events scheduled into the current bucket
//     after its drain (e.g. sub-millisecond message hops), and a far heap
//     holds everything behind the horizon. The (time, insertion-seq) total
//     order is identical to a single global heap's.
//   * A fired callback may re-arm its own slot in place
//     (Simulation::rearm_fired), which is how PeriodicTask and the
//     app-runtime step loop repeat with zero per-event heap allocations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace fluxpower::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Handle for a scheduled event; valid until the event fires or is
/// cancelled. Encodes {pool slot + 1, slot generation} so stale handles
/// fail an O(1) probe instead of aliasing a reused slot.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

namespace detail {

/// Type-erased void() callable pinned to a pool slot. Slots never move, so
/// no move/copy machinery is needed — only emplace, invoke and destroy.
/// Captures up to kInlineBytes live in the slot itself; larger ones fall
/// back to one heap allocation (counted by the engine).
class SlotCallback {
 public:
  static constexpr std::size_t kInlineBytes = 56;

  SlotCallback() = default;
  SlotCallback(const SlotCallback&) = delete;
  SlotCallback& operator=(const SlotCallback&) = delete;
  ~SlotCallback() { reset(); }

  /// Returns true when the callable required a heap allocation.
  template <typename F>
  bool emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    reset();
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      target_ = ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &Ops::For<Fn>::inline_ops;
      return false;
    } else {
      target_ = new Fn(std::forward<F>(fn));
      ops_ = &Ops::For<Fn>::heap_ops;
      return true;
    }
  }

  void invoke() { ops_->invoke(target_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(target_);
      ops_ = nullptr;
      target_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);

    template <typename Fn>
    struct For {
      static void do_invoke(void* p) { (*static_cast<Fn*>(p))(); }
      static void do_destroy_inline(void* p) noexcept {
        static_cast<Fn*>(p)->~Fn();
      }
      static void do_destroy_heap(void* p) noexcept {
        delete static_cast<Fn*>(p);
      }
      static constexpr Ops inline_ops{&do_invoke, &do_destroy_inline};
      static constexpr Ops heap_ops{&do_invoke, &do_destroy_heap};
    };
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* target_ = nullptr;
  const Ops* ops_ = nullptr;
};

/// Detects default-constructed std::function / null function pointers at
/// schedule time, preserving the seed engine's empty-callback guard.
/// Capturing lambdas are not bool-testable and pass through; non-capturing
/// ones decay to a (non-null) function pointer.
template <typename F>
bool is_empty_callable(const F& fn) {
  if constexpr (std::is_constructible_v<bool, const F&>) {
    return !static_cast<bool>(fn);
  } else {
    return false;
  }
}

}  // namespace detail

class Simulation {
 public:
  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  template <typename F>
  EventId schedule_at(Time t, F&& fn) {
    check_time(t);
    if (detail::is_empty_callable(fn)) {
      throw std::invalid_argument("Simulation::schedule_at: empty callback");
    }
    const std::uint32_t idx = acquire_slot();
    try {
      if (slot(idx).callback.emplace(std::forward<F>(fn))) {
        ++callback_heap_allocs_;
      }
    } catch (...) {
      free_slot(idx);
      throw;
    }
    return enqueue(t, idx);
  }
  EventId schedule_at(Time, std::nullptr_t) {
    throw std::invalid_argument("Simulation::schedule_at: empty callback");
  }

  /// Schedule `fn` after a delay of `dt` seconds (dt >= 0).
  template <typename F>
  EventId schedule_after(Time dt, F&& fn) {
    return schedule_at(now_ + dt, std::forward<F>(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or never
  /// existed — cancelling twice is benign, as module unload paths race
  /// naturally with their own timers. O(1): a generation probe on the slot;
  /// the queue entry becomes a tombstone skipped lazily.
  bool cancel(EventId id);

  /// Re-arm the event whose callback is currently executing at absolute
  /// time `t`, reusing its pool slot and stored callback: no destruction,
  /// no construction, no allocation. Only legal from inside that event's
  /// own callback with the id it fired under; returns the new id (the old
  /// one is invalidated). This is the zero-allocation path PeriodicTask and
  /// the app-runtime step loop repeat through.
  EventId rearm_fired(EventId fired, Time t);

  /// Execute the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= t, then set now() to t even if idle.
  void run_until(Time t);

  /// Run events with time strictly < end, leaving now() at the last
  /// executed event (idle time does not elapse). The sharded engine's
  /// window driver uses this to advance one island through a conservative
  /// time window [start, end) between barriers.
  void run_before(Time end);

  /// Absolute time of the next live event without executing it, or
  /// +infinity when the queue is empty. Shares run_until's front
  /// normalization (tombstones dropped, wheel cursor advanced, epoch
  /// rebased) — a pure queue reshaping that cannot change the (time, seq)
  /// firing order. The digital twin's phased runner uses this to stop a
  /// scenario exactly at a snapshot horizon.
  Time next_event_time();

  /// Number of live (scheduled, not fired, not cancelled) events.
  /// Tombstoned queue entries are never counted.
  std::size_t pending() const noexcept { return live_; }
  std::uint64_t events_executed() const noexcept { return executed_; }

  // --- Engine introspection (tests, benches) ------------------------------

  /// Callbacks whose captures exceeded the inline slot storage and took the
  /// heap fallback, over the engine's lifetime.
  std::uint64_t callback_heap_allocs() const noexcept {
    return callback_heap_allocs_;
  }
  /// Slab chunks allocated by the event pool (kChunkSlots slots each).
  std::size_t pool_chunks() const noexcept { return chunks_.size(); }
  /// Monotone insertion-sequence counter — the tie-break half of the
  /// (time, seq) total order. Two runs that agree on now(), pending() and
  /// seq_counter() have scheduled exactly the same number of events in the
  /// same causal positions; the twin codec digests it for that reason.
  std::uint64_t seq_counter() const noexcept { return next_seq_; }
  /// Timer-wheel epoch state (digested by the twin codec; a replayed run
  /// must land on the identical epoch or far-heap contents could differ).
  Time wheel_epoch_base() const noexcept { return wheel_base_; }
  int wheel_cursor() const noexcept { return cursor_; }
  std::uint64_t wheel_rebases() const noexcept { return rebases_; }

  static constexpr std::size_t kChunkSlots = 256;
  static constexpr double kBucketWidth = 0.25;   // seconds per wheel bucket
  static constexpr int kNumBuckets = 4096;       // => 1024 s wheel horizon

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::uint32_t slot;
    std::uint32_t gen;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  static bool entry_less(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  static bool entry_greater(const Entry& a, const Entry& b) noexcept {
    return entry_less(b, a);
  }

  struct EventSlot {
    detail::SlotCallback callback;
    std::uint32_t generation = 1;
    std::uint32_t next_free = 0;
    bool live = false;      // scheduled and not yet fired/cancelled
    bool on_stack = false;  // callback currently executing
  };

  static constexpr std::uint32_t kNoFreeSlot =
      std::numeric_limits<std::uint32_t>::max();

  static EventId make_id(std::uint32_t idx, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(idx + 1) << 32) | gen;
  }

  EventSlot& slot(std::uint32_t idx) noexcept {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }
  const EventSlot& slot(std::uint32_t idx) const noexcept {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }

  bool entry_live(const Entry& e) const noexcept {
    const EventSlot& s = slot(e.slot);
    return s.live && s.generation == e.gen;
  }

  void check_time(Time t) const;
  std::uint32_t acquire_slot();
  void free_slot(std::uint32_t idx) noexcept;     // no callback destruction
  void release_slot(std::uint32_t idx) noexcept;  // destroy callback + free
  EventId enqueue(Time t, std::uint32_t idx);
  void push_entry(const Entry& e);
  Time bucket_end(int b) const noexcept {
    return wheel_base_ + (b + 1) * kBucketWidth;
  }
  int next_occupied_bucket(int from) const noexcept;
  void drain_bucket(int b);
  void rebase(Time t);
  void push_overflow(const Entry& e);
  void pop_overflow();
  /// Normalize the queue front: drop tombstones, advance the wheel cursor,
  /// rebase the epoch. Returns the next live entry (in the ready run or the
  /// overflow heap) or nullptr when the queue is empty. Does not execute or
  /// advance now().
  const Entry* peek_next();
  /// Consume the entry peek_next() just returned.
  void pop_front(const Entry* top);
  void fire(const Entry& e);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::uint64_t callback_heap_allocs_ = 0;
  std::uint64_t rebases_ = 0;  ///< epoch rebases over the engine's lifetime

  // Event pool: chunked slabs so slots never move while callbacks run.
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  std::uint32_t free_head_ = kNoFreeSlot;

  // Timer wheel epoch [wheel_base_, wheel_base_ + kNumBuckets * width).
  // The cursor bucket's entries, compacted + sorted once at drain time,
  // form ready_ (consumed sequentially from ready_pos_). overflow_ orders
  // entries scheduled before the cursor bucket's end after its drain; far_
  // holds everything at/after the horizon; buckets in between hold
  // unsorted entries until the cursor reaches them. The live front is
  // min(ready_[ready_pos_], overflow_.top()) by (time, seq) — identical to
  // a single global heap's order, but synchronized periodic sweeps pay one
  // linear scan per bucket instead of a heap percolation per event.
  // overflow_ is a manual min-heap (std::push_heap on entry_greater) so
  // that once the ready run drains, its whole backing vector can be stolen
  // and sorted into the next run — a broadcast fan-out (N deliveries at
  // near-identical times) then costs one linear scan instead of N log N
  // heap pops.
  std::vector<Entry> ready_;
  std::size_t ready_pos_ = 0;
  std::vector<Entry> overflow_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> far_;
  std::vector<std::vector<Entry>> buckets_;
  std::array<std::uint64_t, kNumBuckets / 64> occupied_{};
  Time wheel_base_ = 0.0;
  int cursor_ = 0;
};

/// A repeating task: fires every `period` seconds until stop() or until the
/// callback returns false. Models module control loops (power sampling every
/// 2 s, FPP's 90 s power-capping interval, 30 s FFT window updates).
///
/// Re-arm contract: firing times are absolute multiples of the period from
/// the first firing (t_first, t_first + period, t_first + 2*period, ...) —
/// the task re-arms at `t_fire + period`, not `now() + period`, so a
/// callback that consumes simulated time (e.g. by pumping a nested
/// run_until) does not skew subsequent periods. If a callback runs past the
/// next deadline, the next firing is clamped to now() (fires as soon as
/// possible; missed periods are not replayed). Re-arming reuses the event's
/// pool slot and stored callback — zero heap allocations per firing.
class PeriodicTask {
 public:
  /// `fn` returns true to keep running. First firing is at now()+period by
  /// default, or now()+initial_delay when given.
  PeriodicTask(Simulation& sim, Time period, std::function<bool()> fn,
               Time initial_delay = -1.0);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const noexcept { return running_; }
  Time period() const noexcept { return period_; }

 private:
  void fire();

  Simulation& sim_;
  Time period_;
  std::function<bool()> fn_;
  EventId pending_ = kInvalidEvent;
  Time next_fire_ = 0.0;
  bool running_ = true;
};

}  // namespace fluxpower::sim
