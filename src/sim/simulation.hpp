// simulation.hpp — deterministic discrete-event simulation engine.
//
// Everything above the hardware models (brokers, modules, applications,
// power policies) executes against this virtual clock instead of wall time.
// The engine is single-threaded and strictly ordered: events fire in
// (time, insertion-sequence) order, so a given scenario + seed always
// produces identical tables. "Threads of control" in the real Flux (module
// threads, the node-level-manager's tracking thread) map to periodic tasks
// here; the substitution is behaviour-preserving because those threads are
// themselves timer-driven loops.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace fluxpower::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Handle for a scheduled event; valid until the event fires or is cancelled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedule `fn` after a delay of `dt` seconds (dt >= 0).
  EventId schedule_after(Time dt, std::function<void()> fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already fired or never
  /// existed — cancelling twice is benign, as module unload paths race
  /// naturally with their own timers.
  bool cancel(EventId id);

  /// Execute the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with time <= t, then set now() to t even if idle.
  void run_until(Time t);

  std::size_t pending() const noexcept { return callbacks_.size(); }
  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct QueueEntry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  // Lazy cancellation: cancelled ids are simply absent from this map.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

/// A repeating task: fires every `period` seconds until stop() or until the
/// callback returns false. Models module control loops (power sampling every
/// 2 s, FPP's 90 s power-capping interval, 30 s FFT window updates).
class PeriodicTask {
 public:
  /// `fn` returns true to keep running. First firing is at now()+period by
  /// default, or now()+initial_delay when given.
  PeriodicTask(Simulation& sim, Time period, std::function<bool()> fn,
               Time initial_delay = -1.0);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const noexcept { return running_; }
  Time period() const noexcept { return period_; }

 private:
  void arm(Time delay);

  Simulation& sim_;
  Time period_;
  std::function<bool()> fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = true;
};

}  // namespace fluxpower::sim
