// codec.hpp — versioned binary state codec for the digital twin.
//
// Snapshots must be (a) byte-stable — the same sim state always encodes to
// the same bytes, on every platform, so digests are comparable across
// processes and machine generations — and (b) versioned, so a snapshot
// taken by an older build is either decoded correctly or rejected loudly,
// never misinterpreted. The codec is therefore deliberately boring:
// little-endian fixed-width integers, IEEE-754 bit patterns for doubles
// (NaN payloads preserved; -0.0 and 0.0 are distinct states), and
// length-prefixed strings. Containers encode size first, elements in
// canonical (insertion or key) order — never pointer or hash order.
//
// The digest is 64-bit FNV-1a over the encoded payload. It is a
// determinism fingerprint, not a cryptographic commitment: the equivalence
// suite compares full section bytes whenever digests disagree, so a
// collision cannot hide a real divergence from the tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fluxpower::twin {

/// Malformed or truncated snapshot bytes, or a version this build cannot
/// read. Always an error, never a silent best-effort decode.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Streaming FNV-1a (64-bit): stable across platforms, one multiply per
/// byte — cheap enough to digest every section at capture time.
class Digest64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  void update(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = h_;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    h_ = h;
  }
  std::uint64_t value() const noexcept { return h_; }

  static std::uint64_t of(std::span<const std::uint8_t> bytes) noexcept {
    Digest64 d;
    d.update(bytes.data(), bytes.size());
    return d.value();
  }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern: NaNs and signed zeros round-trip exactly.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  /// Patch a previously written u64 in place (section length back-fill).
  void patch_u64(std::size_t offset, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_[offset + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw CodecError("ByteReader: bool byte out of range");
    return v == 1;
  }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  std::span<const std::uint8_t> raw(std::size_t n) { return take(n); }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) {
      throw CodecError("ByteReader: truncated input (wanted " +
                       std::to_string(n) + " bytes, have " +
                       std::to_string(remaining()) + ")");
    }
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Four-character section tag packed into a u32 (e.g. "SIM!").
constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/// Human-readable tag for error messages ("SIM!", "HW!!", ...).
inline std::string fourcc_name(std::uint32_t tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    s[static_cast<std::size_t>(i)] = (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

}  // namespace fluxpower::twin
