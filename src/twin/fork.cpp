#include "twin/fork.hpp"

#include <algorithm>
#include <stdexcept>

#include "faultsim/fault_plane.hpp"
#include "manager/power_manager.hpp"

namespace fluxpower::twin {

namespace {

void apply_budget(TwinSession& session, double bound_w) {
  // The owner-only set-cluster-bound service lives on the root broker; the
  // root sends the RPC to itself so the change flows through the same
  // message path an operator's tool would use.
  flux::Broker& root = session.scenario().instance().root();
  util::Json payload = util::Json::object();
  payload["bound_w"] = bound_w;
  root.rpc(flux::kRootRank, manager::kSetClusterBoundTopic, std::move(payload),
           [](const flux::Message&) {});
}

void apply(TwinSession& session, const Perturbation& p) {
  switch (p.kind) {
    case Perturbation::Kind::BudgetSet:
      apply_budget(session, p.value);
      break;
    case Perturbation::Kind::BudgetScale:
      apply_budget(session,
                   session.spec().scenario.manager.cluster_power_bound_w *
                       p.value);
      break;
    case Perturbation::Kind::NodeKill: {
      faultsim::FaultPlane* plane = session.scenario().fault_plane();
      if (plane == nullptr) {
        throw std::logic_error(
            "TwinFork: NodeKill requires a fault plane (materialize injects "
            "one; do not bypass it)");
      }
      plane->force_crash(p.rank, p.down_s);
      break;
    }
  }
}

}  // namespace

std::unique_ptr<TwinSession> TwinFork::materialize() const {
  const bool needs_plane = std::any_of(
      overlay_.begin(), overlay_.end(), [](const Perturbation& p) {
        return p.kind == Perturbation::Kind::NodeKill;
      });

  std::unique_ptr<TwinSession> session;
  if (needs_plane && !base_->spec().scenario.faults.has_value()) {
    // Zero-rate plane: attaches the crash/sensor/link hooks but draws no
    // randomness and schedules nothing, so every stored section replays
    // byte-identically; only force_crash drives it.
    TwinSpec spec = base_->spec();
    spec.scenario.faults = faultsim::FaultPlaneConfig{};
    session = base_->restore_with_spec(spec);
  } else {
    session = base_->restore();
  }

  // Schedule after the fast-forward (see header): clamp into the future.
  sim::Simulation& sim = session->scenario().sim();
  TwinSession* raw = session.get();
  for (const Perturbation& p : overlay_) {
    const double t = std::max(p.at_s, sim.now());
    const Perturbation copy = p;
    sim.schedule_at(t, [raw, copy] { apply(*raw, copy); });
  }
  return session;
}

}  // namespace fluxpower::twin
