// fork.hpp — copy-on-write forks of a snapshot, with perturbation overlays.
//
// A TwinFork is a cheap handle: a shared_ptr to the immutable base Snapshot
// plus a private overlay of perturbations to inject. Creating or copying a
// fork is O(overlay) — no simulation state is touched — so a server can
// mint thousands of forks per second and hand them to workers. The
// expensive part, materialize(), builds a private live session from the
// shared snapshot (verified replay restore) and schedules the overlay into
// it; from that point the fork's divergent future is entirely its own, and
// the base Snapshot (and every sibling fork) is untouched by construction —
// forks never share mutable state, which is what the fork-isolation suite
// proves under TSan.
//
// Perturbations are scheduled only AFTER the restore fast-forward: an event
// scheduled up front would consume an engine sequence number, shift the
// (time, seq) order of the replayed prefix, and break the restore's
// byte-for-byte verification.
#pragma once

#include <memory>
#include <vector>

#include "flux/message.hpp"
#include "twin/snapshot.hpp"

namespace fluxpower::twin {

/// One what-if intervention, applied at sim time `at_s` (clamped up to the
/// snapshot time — the twin cannot rewrite the past it restored).
struct Perturbation {
  enum class Kind {
    BudgetSet,    ///< set the cluster power bound to `value` watts
    BudgetScale,  ///< scale the spec's configured bound by `value`
    NodeKill,     ///< crash rank `rank` for `down_s` seconds
  };
  Kind kind = Kind::BudgetSet;
  double at_s = 0.0;
  double value = 0.0;     ///< watts (BudgetSet) or factor (BudgetScale)
  flux::Rank rank = 0;    ///< NodeKill target
  double down_s = -1.0;   ///< NodeKill downtime; <0 = config reboot time
};

class TwinFork {
 public:
  explicit TwinFork(std::shared_ptr<const Snapshot> base)
      : base_(std::move(base)) {}

  /// O(1) child fork sharing the same base; the overlay is copied.
  TwinFork fork() const { return *this; }

  TwinFork& add(const Perturbation& p) {
    overlay_.push_back(p);
    return *this;
  }
  const std::vector<Perturbation>& overlay() const noexcept {
    return overlay_;
  }
  const Snapshot& base() const noexcept { return *base_; }

  /// Build a private live session: verified replay restore of the base,
  /// then the overlay scheduled into the restored engine. NodeKill against
  /// a faultless spec transparently injects an inert zero-rate fault plane
  /// (see Snapshot::restore_with_spec).
  std::unique_ptr<TwinSession> materialize() const;

 private:
  std::shared_ptr<const Snapshot> base_;
  std::vector<Perturbation> overlay_;
};

}  // namespace fluxpower::twin
