#include "twin/probe.hpp"

#include <algorithm>
#include <cstddef>

#include "faultsim/fault_plane.hpp"
#include "flux/job_manager.hpp"
#include "manager/power_manager.hpp"
#include "monitor/power_monitor.hpp"

namespace fluxpower::twin {

namespace {

void put_rng(ByteWriter& w, const util::Rng& rng) {
  const util::Rng::State st = rng.state();
  for (std::uint64_t word : st.s) w.u64(word);
}

void put_opt_watts(ByteWriter& w, const hwsim::OptWatts& v) {
  w.boolean(v.present);
  w.f64(v.watts);
}

template <std::size_t N>
void put_watts_vec(ByteWriter& w, const hwsim::FixedWattsVec<N>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) w.f64(x);
}

void put_sample(ByteWriter& w, const hwsim::PowerSample& s) {
  w.f64(s.timestamp_s);
  w.str(s.hostname.view());
  put_opt_watts(w, s.node_w);
  put_opt_watts(w, s.node_estimate_w);
  put_watts_vec(w, s.cpu_w);
  put_opt_watts(w, s.mem_w);
  put_watts_vec(w, s.gpu_w);
  w.boolean(s.gpu_is_oam);
  w.boolean(s.sensor_fault);
}

void put_store(ByteWriter& w, const monitor::ColumnarSampleStore& store) {
  w.u64(store.capacity());
  w.u64(store.total_pushed());
  w.u64(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) put_sample(w, store.get(i));
}

// -- Section encoders --------------------------------------------------------

void encode_sim(ByteWriter& w, experiments::Scenario& sc) {
  if (sim::ShardedEngine* engine = sc.engine()) {
    // Sharded profile: the canonical section holds only quantities that are
    // invariant across shard counts — the synchronized clock and the summed
    // event statistics. Allocator internals (pool chunks, heap allocs) and
    // wheel cursors are per-island implementation detail and partition-
    // dependent, so they are deliberately excluded: two runs of the same
    // scenario at different shard counts produce byte-identical sections.
    w.f64(engine->now());
    w.u64(engine->total_seq_counter());
    w.u64(static_cast<std::uint64_t>(engine->total_pending()));
    w.u64(engine->total_events_executed());
    return;
  }
  sim::Simulation& sim = sc.sim();
  w.f64(sim.now());
  w.u64(sim.seq_counter());
  w.u64(static_cast<std::uint64_t>(sim.pending()));
  w.u64(sim.events_executed());
  w.f64(sim.wheel_epoch_base());
  w.u32(static_cast<std::uint32_t>(sim.wheel_cursor()));
  w.u64(sim.wheel_rebases());
  w.u64(sim.callback_heap_allocs());
  w.u64(static_cast<std::uint64_t>(sim.pool_chunks()));
}

void encode_hw(ByteWriter& w, experiments::Scenario& sc) {
  hwsim::Cluster& cluster = sc.cluster();
  w.u32(static_cast<std::uint32_t>(cluster.size()));
  for (int i = 0; i < cluster.size(); ++i) {
    hwsim::Node& node = cluster.node(i);
    w.str(node.hostname());
    const hwsim::LoadDemand& d = node.demand();
    w.u32(static_cast<std::uint32_t>(d.cpu_w.size()));
    for (double x : d.cpu_w) w.f64(x);
    w.u32(static_cast<std::uint32_t>(d.gpu_w.size()));
    for (double x : d.gpu_w) w.f64(x);
    w.f64(d.mem_w);
    const hwsim::Grants& g = node.grants();
    w.u32(static_cast<std::uint32_t>(g.cpu_w.size()));
    for (double x : g.cpu_w) w.f64(x);
    w.u32(static_cast<std::uint32_t>(g.gpu_w.size()));
    for (double x : g.gpu_w) w.f64(x);
    w.f64(g.mem_w);
    w.f64(g.base_w);
    w.f64(node.energy_joules());
    w.boolean(node.low_power_state());
    w.f64(node.stolen_time());
    const std::optional<double> node_cap = node.node_power_cap();
    w.boolean(node_cap.has_value());
    w.f64(node_cap.value_or(0.0));
    w.u32(static_cast<std::uint32_t>(node.gpu_count()));
    for (int gpu = 0; gpu < node.gpu_count(); ++gpu) {
      const std::optional<double> cap = node.gpu_power_cap(gpu);
      w.boolean(cap.has_value());
      w.f64(cap.value_or(0.0));
    }
    w.u32(static_cast<std::uint32_t>(node.socket_count()));
    for (int socket = 0; socket < node.socket_count(); ++socket) {
      const std::optional<double> cap = node.socket_power_cap(socket);
      w.boolean(cap.has_value());
      w.f64(cap.value_or(0.0));
    }
    w.u64(node.cap_write_faults());
    put_rng(w, node.sensor_rng());
  }
}

void encode_flux(ByteWriter& w, experiments::Scenario& sc) {
  flux::Instance& inst = sc.instance();
  w.u64(inst.messages_routed());
  w.u64(inst.messages_dropped());
  w.u32(static_cast<std::uint32_t>(inst.size()));
  for (int rank = 0; rank < inst.size(); ++rank) {
    flux::Broker& b = inst.broker(rank);
    w.u64(b.messages_sent());
    w.u64(b.messages_received());
    w.u64(static_cast<std::uint64_t>(b.pending_rpc_count()));
    w.u64(b.late_responses());
  }
}

void encode_jobs(ByteWriter& w, experiments::Scenario& sc) {
  flux::JobManager& jm = sc.instance().jobs();
  w.u64(jm.next_id());
  std::vector<flux::JobId> ids = jm.all_jobs();
  std::sort(ids.begin(), ids.end());
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (flux::JobId id : ids) {
    const flux::Job& job = jm.job(id);
    w.u64(job.id);
    w.str(job.spec.name);
    w.str(job.spec.app);
    w.u32(static_cast<std::uint32_t>(job.spec.nnodes));
    w.u32(static_cast<std::uint32_t>(job.spec.tasks_per_node));
    w.u32(static_cast<std::uint32_t>(job.state));
    w.u32(static_cast<std::uint32_t>(job.ranks.size()));
    for (flux::Rank r : job.ranks) w.u32(static_cast<std::uint32_t>(r));
    w.f64(job.t_submit);
    w.f64(job.t_start);
    w.f64(job.t_end);
  }
}

void encode_mon(ByteWriter& w, experiments::Scenario& sc) {
  flux::Instance& inst = sc.instance();
  w.u32(static_cast<std::uint32_t>(inst.size()));
  for (int rank = 0; rank < inst.size(); ++rank) {
    auto* mod = dynamic_cast<monitor::PowerMonitorModule*>(
        inst.broker(rank).find_module("power-monitor"));
    w.boolean(mod != nullptr);
    if (mod == nullptr) continue;
    w.u64(mod->samples_taken());
    w.u64(mod->sensor_failures());
    const monitor::ColumnarSampleStore* store = mod->store();
    w.boolean(store != nullptr);
    if (store != nullptr) put_store(w, *store);
    // Delta-aggregation replica mirrors: watermark meta + mirrored content.
    // std::map keys by rank, so iteration order is canonical.
    const auto* replicas = mod->replica_map();
    w.boolean(replicas != nullptr);
    if (replicas == nullptr) continue;
    w.u32(static_cast<std::uint32_t>(replicas->size()));
    for (const auto& [src_rank, replica] : *replicas) {
      w.u32(static_cast<std::uint32_t>(src_rank));
      w.f64(replica.watermark_ts);
      w.str(replica.hostname);
      w.boolean(replica.source_empty);
      w.f64(replica.front_ts_s);
      w.u64(replica.source_evicted);
      w.boolean(replica.store != nullptr);
      if (replica.store != nullptr) put_store(w, *replica.store);
    }
  }
}

void encode_mgr(ByteWriter& w, experiments::Scenario& sc) {
  flux::Instance& inst = sc.instance();
  w.u32(static_cast<std::uint32_t>(inst.size()));
  for (int rank = 0; rank < inst.size(); ++rank) {
    auto* mod = dynamic_cast<manager::PowerManagerModule*>(
        inst.broker(rank).find_module("power-manager"));
    w.boolean(mod != nullptr);
    if (mod == nullptr) continue;
    // Node-level enforcement state (every rank).
    w.f64(mod->node_limit_w());
    w.f64(mod->last_gpu_budget_w());
    w.u64(mod->cap_retries());
    w.boolean(mod->cap_retry_pending());
    w.f64(mod->cap_retry_delay_s());
    w.u64(static_cast<std::uint64_t>(mod->fpp_control_round()));
    w.f64(mod->time_since_fpp_control_s());
    w.f64(mod->progress_rate());
    w.f64(mod->progress_cap_w());
    w.boolean(mod->progress_holding());
    // Cluster-level ledgers (populated on the root only; empty elsewhere).
    const auto& allocations = mod->allocations();
    w.u32(static_cast<std::uint32_t>(allocations.size()));
    for (const auto& [job_id, alloc] : allocations) {
      w.u64(job_id);
      w.u32(static_cast<std::uint32_t>(alloc.ranks.size()));
      for (flux::Rank r : alloc.ranks) w.u32(static_cast<std::uint32_t>(r));
      w.f64(alloc.job_power_w);
      w.f64(alloc.node_power_w);
      w.f64(alloc.requested_node_power_w);
    }
    const auto& strikes = mod->push_strikes();
    w.u32(static_cast<std::uint32_t>(strikes.size()));
    for (const auto& [r, count] : strikes) {
      w.u32(static_cast<std::uint32_t>(r));
      w.u32(static_cast<std::uint32_t>(count));
    }
    const auto& quarantined = mod->quarantined();
    w.u32(static_cast<std::uint32_t>(quarantined.size()));
    for (flux::Rank r : quarantined) w.u32(static_cast<std::uint32_t>(r));
    w.u64(mod->quarantine_events());
    w.boolean(mod->emergency_active());
    w.u32(static_cast<std::uint32_t>(mod->emergency_strike_count()));
  }
}

void encode_pol(ByteWriter& w, experiments::Scenario& sc) {
  // Scheduler-side policy plane: identity, power-admission ledger, queue
  // contents (scan order), and the policy object's opaque state blob.
  flux::Scheduler& sched = sc.instance().scheduler();
  w.str(sched.policy_name());
  w.f64(sched.admitted_power_w());
  const auto& admitted = sched.admitted();  // std::map: canonical id order
  w.u32(static_cast<std::uint32_t>(admitted.size()));
  for (const auto& [id, watts] : admitted) {
    w.u64(id);
    w.f64(watts);
  }
  const auto& queue = sched.queued_jobs();
  w.u32(static_cast<std::uint32_t>(queue.size()));
  for (flux::JobId id : queue) w.u64(id);
  std::vector<std::uint8_t> blob;
  sched.policy_object().encode_state(blob);
  w.u32(static_cast<std::uint32_t>(blob.size()));
  w.bytes(blob);

  // Node-side plugins, rank order: plugin identity + opaque state blob.
  flux::Instance& inst = sc.instance();
  w.u32(static_cast<std::uint32_t>(inst.size()));
  for (int rank = 0; rank < inst.size(); ++rank) {
    auto* mod = dynamic_cast<manager::PowerManagerModule*>(
        inst.broker(rank).find_module("power-manager"));
    w.boolean(mod != nullptr);
    if (mod == nullptr) continue;
    const policy::NodePolicyPlugin& plugin = mod->node_plugin();
    w.str(plugin.name());
    blob.clear();
    plugin.encode_state(blob);
    w.u32(static_cast<std::uint32_t>(blob.size()));
    w.bytes(blob);
  }
}

void encode_fault(ByteWriter& w, experiments::Scenario& sc) {
  faultsim::FaultPlane& plane = *sc.fault_plane();
  const faultsim::FaultCounters& c = plane.counters();
  w.u64(c.msgs_dropped);
  w.u64(c.msgs_blackholed);
  w.u64(c.msgs_duplicated);
  w.u64(c.msgs_delayed);
  w.u64(c.node_crashes);
  w.u64(c.node_reboots);
  w.u64(c.sensor_dropouts);
  w.u64(c.sensor_stuck_sweeps);
  w.u64(c.cap_write_failures);
  put_rng(w, plane.link_rng());
  const int n = plane.attached_nodes();
  w.u32(static_cast<std::uint32_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    const faultsim::FaultPlane::NodeFaultStatus st = plane.node_status(rank);
    w.boolean(st.down);
    w.boolean(st.stuck);
    w.f64(st.stuck_until_s);
    w.boolean(st.crash_pending);
    put_rng(w, plane.node_rng(rank));
  }
}

void encode_scen(ByteWriter& w, experiments::Scenario& sc) {
  w.u32(static_cast<std::uint32_t>(sc.completed_jobs()));
  w.u64(static_cast<std::uint64_t>(sc.submitted_jobs()));
  w.boolean(sc.all_jobs_done());
  const auto& timeline = sc.cluster_timeline_so_far();
  w.u32(static_cast<std::uint32_t>(timeline.size()));
  for (const auto& [t, watts] : timeline) {
    w.f64(t);
    w.f64(watts);
  }
}

StateSection make_section(std::uint32_t tag, ByteWriter&& w) {
  StateSection s;
  s.tag = tag;
  s.bytes = std::move(w).take();
  s.digest = Digest64::of(s.bytes);
  return s;
}

template <typename EncodeFn>
void add_section(StateImage& image, std::uint32_t tag,
                 experiments::Scenario& sc, EncodeFn encode) {
  ByteWriter w;
  encode(w, sc);
  image.sections.push_back(make_section(tag, std::move(w)));
}

}  // namespace

const StateSection* StateImage::find(std::uint32_t tag) const noexcept {
  for (const StateSection& s : sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

std::uint64_t StateImage::digest() const noexcept {
  Digest64 d;
  for (const StateSection& s : sections) {
    d.update(&s.tag, sizeof(s.tag));
    d.update(&s.digest, sizeof(s.digest));
  }
  return d.value();
}

void StateImage::encode(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const StateSection& s : sections) {
    w.u32(s.tag);
    w.u32(s.version);
    w.u64(static_cast<std::uint64_t>(s.bytes.size()));
    w.bytes(s.bytes);
    w.u64(s.digest);
  }
}

StateImage StateImage::decode(ByteReader& r) {
  StateImage image;
  const std::uint32_t n = r.u32();
  image.sections.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    StateSection s;
    s.tag = r.u32();
    s.version = r.u32();
    if (s.version != kSectionVersion) {
      throw CodecError("StateImage: section " + fourcc_name(s.tag) +
                       " has unsupported version " + std::to_string(s.version));
    }
    const std::uint64_t len = r.u64();
    const auto raw = r.raw(static_cast<std::size_t>(len));
    s.bytes.assign(raw.begin(), raw.end());
    s.digest = r.u64();
    if (s.digest != Digest64::of(s.bytes)) {
      throw CodecError("StateImage: section " + fourcc_name(s.tag) +
                       " digest does not match its payload (corrupt bytes)");
    }
    image.sections.push_back(std::move(s));
  }
  return image;
}

StateImage capture_state(experiments::Scenario& scenario) {
  StateImage image;
  add_section(image, kTagSim, scenario, encode_sim);
  add_section(image, kTagHw, scenario, encode_hw);
  add_section(image, kTagFlux, scenario, encode_flux);
  add_section(image, kTagJobs, scenario, encode_jobs);
  add_section(image, kTagMon, scenario, encode_mon);
  add_section(image, kTagMgr, scenario, encode_mgr);
  add_section(image, kTagPol, scenario, encode_pol);
  if (scenario.fault_plane() != nullptr) {
    add_section(image, kTagFault, scenario, encode_fault);
  }
  add_section(image, kTagScen, scenario, encode_scen);
  return image;
}

std::string describe_divergence(const StateImage& lhs, const StateImage& rhs,
                                const std::string& lhs_label,
                                const std::string& rhs_label) {
  std::string out;
  for (const StateSection& a : lhs.sections) {
    const StateSection* b = rhs.find(a.tag);
    if (b == nullptr) {
      out += "section " + fourcc_name(a.tag) + ": present in " + lhs_label +
             ", missing in " + rhs_label + "\n";
      continue;
    }
    if (a.digest == b->digest) continue;
    std::size_t offset = 0;
    const std::size_t common = std::min(a.bytes.size(), b->bytes.size());
    while (offset < common && a.bytes[offset] == b->bytes[offset]) ++offset;
    out += "section " + fourcc_name(a.tag) + ": digests differ (" + lhs_label +
           " " + std::to_string(a.bytes.size()) + "B vs " + rhs_label + " " +
           std::to_string(b->bytes.size()) + "B, first byte mismatch at offset " +
           std::to_string(offset) + ")\n";
  }
  for (const StateSection& b : rhs.sections) {
    if (lhs.find(b.tag) == nullptr) {
      out += "section " + fourcc_name(b.tag) + ": present in " + rhs_label +
             ", missing in " + lhs_label + "\n";
    }
  }
  if (out.empty()) out = "images are identical\n";
  return out;
}

}  // namespace fluxpower::twin
