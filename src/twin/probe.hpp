// probe.hpp — deterministic serialization of a live scenario's state.
//
// The probe walks every layer of a running Scenario — event engine, node
// hardware, broker plane, job ledger, monitor rings and replicas, manager
// control state, fault plane substreams, scenario bookkeeping — and encodes
// each into its own framed, versioned, digested section. Two process states
// that produce identical StateImages are observably equivalent: every
// downstream output (tables, timelines, metrics) is a pure function of the
// captured state plus the deterministic event future.
//
// Iteration discipline: sections visit entities in *rank or id order only*,
// never in pointer-keyed or hash order — a probe that serialized
// `FaultPlane::by_node_` (keyed by Node*) would digest ASLR, not sim state.
//
// The probe is read-only and allocation-light; capture cost scales with
// retained telemetry (the monitor ring dominates). micro_twin_bench reports
// the bytes and the capture latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "twin/codec.hpp"

namespace fluxpower::twin {

/// Section tags, in capture order. '!' pads short names to four chars.
inline constexpr std::uint32_t kTagSim = fourcc('S', 'I', 'M', '!');
inline constexpr std::uint32_t kTagHw = fourcc('H', 'W', '!', '!');
inline constexpr std::uint32_t kTagFlux = fourcc('F', 'L', 'U', 'X');
inline constexpr std::uint32_t kTagJobs = fourcc('J', 'O', 'B', 'S');
inline constexpr std::uint32_t kTagMon = fourcc('M', 'O', 'N', '!');
inline constexpr std::uint32_t kTagMgr = fourcc('M', 'G', 'R', '!');
/// Policy plane: scheduler policy identity + admission ledger + queue, and
/// every rank's node-policy plugin identity + opaque state blob.
inline constexpr std::uint32_t kTagPol = fourcc('P', 'O', 'L', '!');
inline constexpr std::uint32_t kTagFault = fourcc('F', 'L', 'T', '!');
inline constexpr std::uint32_t kTagScen = fourcc('S', 'C', 'E', 'N');

/// Bump when a section's byte layout changes; decode rejects mismatches.
inline constexpr std::uint32_t kSectionVersion = 1;

struct StateSection {
  std::uint32_t tag = 0;
  std::uint32_t version = kSectionVersion;
  std::vector<std::uint8_t> bytes;
  std::uint64_t digest = 0;  ///< Digest64 of bytes
};

/// The full per-layer image of one scenario at one instant.
struct StateImage {
  std::vector<StateSection> sections;

  const StateSection* find(std::uint32_t tag) const noexcept;
  /// Digest of digests, in section order — the state fingerprint.
  std::uint64_t digest() const noexcept;

  void encode(ByteWriter& w) const;
  static StateImage decode(ByteReader& r);
};

/// Capture every section from a live scenario. The FLT section is emitted
/// only when a fault plane is attached.
StateImage capture_state(experiments::Scenario& scenario);

/// Human-readable diff of two images for SnapshotMismatch messages: which
/// sections differ (by digest), plus the first differing byte offset of
/// each. `rhs_label`/`lhs_label` name the sides (e.g. "snapshot"/"replay").
std::string describe_divergence(const StateImage& lhs, const StateImage& rhs,
                                const std::string& lhs_label,
                                const std::string& rhs_label);

}  // namespace fluxpower::twin
