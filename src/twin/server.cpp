#include "twin/server.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace fluxpower::twin {

namespace {

constexpr double kLatencyBounds[] = {0.001, 0.0025, 0.005, 0.01, 0.025,
                                     0.05,  0.1,    0.25,  0.5,  1.0,
                                     2.5,   5.0,    10.0,  30.0};

}  // namespace

TwinServer::TwinServer(std::shared_ptr<const Snapshot> base, int workers)
    : base_(std::move(base)) {
  queries_total_ = &registry_.counter("fluxpower_twin_queries_total",
                                      "What-if queries completed");
  forks_total_ = &registry_.counter("fluxpower_twin_forks_total",
                                    "Forks materialized (incl. baseline)");
  query_latency_ = &registry_.histogram(
      "fluxpower_twin_query_latency_seconds",
      "Wall-clock what-if query latency", kLatencyBounds);
  const int n = std::max(1, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TwinServer::~TwinServer() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Queries still queued at teardown are abandoned: break their promises so
  // waiters see an exception rather than a hang.
  for (PendingQuery& pending : queue_) {
    pending.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("TwinServer destroyed before query ran")));
  }
}

std::future<WhatIfResult> TwinServer::submit(WhatIfQuery query) {
  PendingQuery pending;
  pending.query = std::move(query);
  std::future<WhatIfResult> future = pending.promise.get_future();
  {
    std::lock_guard lock(queue_mutex_);
    if (stopping_) {
      throw std::logic_error("TwinServer::submit after shutdown");
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

void TwinServer::worker_loop() {
  for (;;) {
    PendingQuery pending;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      pending.promise.set_value(run_query(pending.query));
    } catch (...) {
      pending.promise.set_exception(std::current_exception());
    }
  }
}

WhatIfResult TwinServer::endpoint_of(const experiments::ScenarioResult& result,
                                     double snapshot_t) {
  WhatIfResult out;
  out.energy_j = result.total_energy_j;
  out.makespan_s = result.makespan_s;
  out.completed_jobs = 0;
  for (const experiments::JobResult& j : result.jobs) {
    if (j.t_end >= 0.0) ++out.completed_jobs;
  }
  // Peak over the post-snapshot future only: the shared past is identical
  // across every fork, so including it would mask perturbation effects
  // whenever the historical peak dominates.
  out.peak_w = 0.0;
  for (const auto& [t, w] : result.cluster_timeline) {
    if (t >= snapshot_t) out.peak_w = std::max(out.peak_w, w);
  }
  return out;
}

WhatIfResult TwinServer::baseline() {
  std::call_once(baseline_once_, [this] {
    TwinFork fork(base_);
    std::unique_ptr<TwinSession> session = fork.materialize();
    {
      std::lock_guard lock(metrics_mutex_);
      forks_total_->inc();
    }
    const experiments::ScenarioResult result = session->finish();
    baseline_ = endpoint_of(result, base_->time());
    baseline_.label = "baseline";
  });
  return baseline_;
}

WhatIfResult TwinServer::run_query(const WhatIfQuery& query) {
  const auto t0 = std::chrono::steady_clock::now();
  const WhatIfResult base = baseline();

  TwinFork fork(base_);
  for (const Perturbation& p : query.perturbations) fork.add(p);
  std::unique_ptr<TwinSession> session = fork.materialize();
  const experiments::ScenarioResult result = session->finish();

  WhatIfResult out = endpoint_of(result, base_->time());
  out.label = query.label;
  out.d_energy_j = out.energy_j - base.energy_j;
  out.d_makespan_s = out.makespan_s - base.makespan_s;
  out.d_peak_w = out.peak_w - base.peak_w;

  // Effective bound after the overlay's budget interventions (last applied
  // wins), and the first intervention instant — the overshoot window.
  double bound_w = base_->spec().scenario.manager.cluster_power_bound_w;
  double first_at = std::numeric_limits<double>::infinity();
  std::vector<const Perturbation*> budget_changes;
  for (const Perturbation& p : query.perturbations) {
    first_at = std::min(first_at, p.at_s);
    if (p.kind != Perturbation::Kind::NodeKill) budget_changes.push_back(&p);
  }
  if (query.perturbations.empty()) first_at = base_->time();
  std::sort(budget_changes.begin(), budget_changes.end(),
            [](const Perturbation* a, const Perturbation* b) {
              return a->at_s < b->at_s;
            });
  const double spec_bound =
      base_->spec().scenario.manager.cluster_power_bound_w;
  for (const Perturbation* p : budget_changes) {
    bound_w = p->kind == Perturbation::Kind::BudgetSet ? p->value
                                                       : spec_bound * p->value;
  }
  out.overshoot_w = 0.0;
  if (bound_w > 0.0) {
    for (const auto& [t, w] : result.cluster_timeline) {
      if (t >= first_at) out.overshoot_w = std::max(out.overshoot_w, w - bound_w);
    }
    out.overshoot_w = std::max(out.overshoot_w, 0.0);
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  out.latency_s = elapsed.count();
  {
    std::lock_guard lock(metrics_mutex_);
    queries_total_->inc();
    forks_total_->inc();
    query_latency_->observe(out.latency_s);
  }
  return out;
}

std::uint64_t TwinServer::queries_served() const {
  std::lock_guard lock(metrics_mutex_);
  return queries_total_->value();
}

std::uint64_t TwinServer::forks_materialized() const {
  std::lock_guard lock(metrics_mutex_);
  return forks_total_->value();
}

std::string TwinServer::metrics_text() const {
  std::lock_guard lock(metrics_mutex_);
  return registry_.expose_text();
}

}  // namespace fluxpower::twin
