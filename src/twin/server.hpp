// server.hpp — the twin serving plane: concurrent what-if queries.
//
// A TwinServer owns one immutable base Snapshot and a pool of worker
// threads. Each query ("what if the budget drops 20% at t?", "what if node
// 3 dies at t?") becomes a fork materialized on a worker: verified replay
// restore, overlay injection, fast-forward to completion, typed deltas
// against the lazily computed (and cached) unperturbed baseline. Workers
// share NOTHING mutable but the queue and the metrics registry (both
// mutex-guarded): every simulation object graph is private to its worker,
// which is the property the fork-isolation suite pins under TSan.
//
// Query latency lands in an obs::Histogram (the registry the observability
// plane uses everywhere else); micro_twin_bench reads the percentiles out
// of the bucket counts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "twin/fork.hpp"

namespace fluxpower::twin {

struct WhatIfQuery {
  std::string label;
  std::vector<Perturbation> perturbations;
};

/// Typed outcome of one what-if: absolute endpoint metrics plus deltas
/// against the unperturbed baseline run of the same snapshot.
struct WhatIfResult {
  std::string label;

  // Absolute endpoint values of the perturbed future.
  double energy_j = 0.0;
  double makespan_s = 0.0;
  double peak_w = 0.0;       ///< peak 2 s-sampled cluster draw
  int completed_jobs = 0;

  // Deltas vs. baseline (perturbed − baseline).
  double d_energy_j = 0.0;
  double d_makespan_s = 0.0;
  double d_peak_w = 0.0;

  /// Worst exceedance of the effective cluster bound by the sampled draw at
  /// or after the first perturbation (0 when unconstrained or never
  /// exceeded) — "does this intervention break the power contract?".
  double overshoot_w = 0.0;

  double latency_s = 0.0;  ///< wall-clock materialize+run+diff time
};

class TwinServer {
 public:
  /// Spin up `workers` threads serving queries against `base`.
  TwinServer(std::shared_ptr<const Snapshot> base, int workers);
  ~TwinServer();

  TwinServer(const TwinServer&) = delete;
  TwinServer& operator=(const TwinServer&) = delete;

  /// Enqueue a query; the future resolves when a worker finishes it. A
  /// query whose fork fails verification carries the SnapshotMismatch out
  /// through the future.
  std::future<WhatIfResult> submit(WhatIfQuery query);

  /// The unperturbed baseline endpoint (computed once, on first need).
  WhatIfResult baseline();

  const Snapshot& base() const noexcept { return *base_; }
  std::uint64_t queries_served() const;
  std::uint64_t forks_materialized() const;
  /// Prometheus text of the server's registry (latency histogram included).
  std::string metrics_text() const;
  /// Direct histogram access for percentile interpolation (bench).
  const obs::Histogram& latency_histogram() const noexcept {
    return *query_latency_;
  }

 private:
  struct PendingQuery {
    WhatIfQuery query;
    std::promise<WhatIfResult> promise;
  };

  void worker_loop();
  WhatIfResult run_query(const WhatIfQuery& query);
  static WhatIfResult endpoint_of(const experiments::ScenarioResult& result,
                                  double snapshot_t);

  std::shared_ptr<const Snapshot> base_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingQuery> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::once_flag baseline_once_;
  WhatIfResult baseline_;

  mutable std::mutex metrics_mutex_;
  obs::MetricsRegistry registry_;
  obs::Counter* queries_total_ = nullptr;
  obs::Counter* forks_total_ = nullptr;
  obs::Histogram* query_latency_ = nullptr;
};

}  // namespace fluxpower::twin
