// session.hpp — a live twin: one spec materialized into a running scenario.
//
// TwinSession pairs a TwinSpec with the Scenario it built, so snapshot
// capture and fork materialization always know the genome of the state they
// hold. Sessions are single-threaded like the engine beneath them; the twin
// server gives each worker its own session.
#pragma once

#include <memory>

#include "experiments/scenario.hpp"
#include "twin/spec.hpp"

namespace fluxpower::twin {

class TwinSession {
 public:
  /// Build the scenario and submit every job from the spec. The simulation
  /// has not executed anything yet (now() == 0).
  explicit TwinSession(TwinSpec spec)
      : spec_(std::move(spec)), scenario_(spec_.materialize()) {}

  /// Execute events up to `t` (same stop conditions as Scenario::run — all
  /// jobs done or the spec horizon ends the run earlier).
  void advance_to(double t) { scenario_->advance_until(t, spec_.max_time_s); }

  /// Run to completion and collect results. Terminal.
  experiments::ScenarioResult finish() {
    return scenario_->finish(spec_.max_time_s);
  }

  double now() const noexcept { return scenario_->sim().now(); }
  const TwinSpec& spec() const noexcept { return spec_; }
  experiments::Scenario& scenario() noexcept { return *scenario_; }

 private:
  TwinSpec spec_;
  std::unique_ptr<experiments::Scenario> scenario_;
};

}  // namespace fluxpower::twin
