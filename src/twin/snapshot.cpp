#include "twin/snapshot.hpp"

namespace fluxpower::twin {

Snapshot Snapshot::capture(TwinSession& session) {
  Snapshot snap;
  snap.spec_ = session.spec();
  snap.t_snapshot_ = session.now();
  snap.image_ = capture_state(session.scenario());
  return snap;
}

std::unique_ptr<TwinSession> Snapshot::restore() const {
  return restore_with_spec(spec_);
}

std::unique_ptr<TwinSession> Snapshot::restore_with_spec(
    const TwinSpec& spec_override) const {
  auto session = std::make_unique<TwinSession>(spec_override);
  session->advance_to(t_snapshot_);
  const StateImage replayed = capture_state(session->scenario());
  for (const StateSection& stored : image_.sections) {
    const StateSection* live = replayed.find(stored.tag);
    if (live == nullptr || live->digest != stored.digest ||
        live->bytes != stored.bytes) {
      throw SnapshotMismatch(
          "Snapshot::restore: replayed state diverges from the captured "
          "image at t=" +
          std::to_string(t_snapshot_) + "s\n" +
          describe_divergence(image_, replayed, "snapshot", "replay"));
    }
  }
  return session;
}

std::vector<std::uint8_t> Snapshot::encode() const {
  ByteWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  spec_.encode(w);
  w.f64(t_snapshot_);
  image_.encode(w);
  return std::move(w).take();
}

Snapshot Snapshot::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t magic = r.u32();
  if (magic != kSnapshotMagic) {
    throw CodecError("Snapshot: bad magic " + fourcc_name(magic) +
                     " (expected " + fourcc_name(kSnapshotMagic) + ")");
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw CodecError("Snapshot: unsupported container version " +
                     std::to_string(version) + " (this build reads " +
                     std::to_string(kSnapshotVersion) + ")");
  }
  Snapshot snap;
  snap.spec_ = TwinSpec::decode(r);
  snap.t_snapshot_ = r.f64();
  snap.image_ = StateImage::decode(r);
  if (!r.done()) {
    throw CodecError("Snapshot: " + std::to_string(r.remaining()) +
                     " trailing bytes after container");
  }
  return snap;
}

}  // namespace fluxpower::twin
