// snapshot.hpp — deterministic snapshot/restore for the digital twin.
//
// A Snapshot is {spec, time, state image}: the scenario's genome, the
// instant it was captured, and the framed per-layer serialization of
// everything observable at that instant (see probe.hpp).
//
// Restore is REPLAY-BASED AND CODEC-VERIFIED, not memcpy-based. The event
// engine's queue holds type-erased closures over live object graphs, which
// no byte codec can rehydrate; but the whole stack is deterministic, so
// rebuilding the scenario from its spec and fast-forwarding to the capture
// time reaches the *same* state — and the probe proves it, byte for byte,
// against the stored image before restore() returns. A restore that drifts
// by even one bit in any section throws SnapshotMismatch with a per-section
// diff instead of handing back a subtly different twin. The stored image is
// therefore load-bearing: it is the tripwire that converts "we believe the
// sim is deterministic" into a checked invariant at every restore.
//
// encode()/decode() give snapshots a stable wire form ('FPTW' magic,
// container version, spec, image) so they can be persisted or shipped;
// decode() re-verifies every section digest against its payload.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "twin/probe.hpp"
#include "twin/session.hpp"
#include "twin/spec.hpp"

namespace fluxpower::twin {

/// Snapshot container magic + version (independent of spec/section versions).
inline constexpr std::uint32_t kSnapshotMagic = fourcc('F', 'P', 'T', 'W');
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// A replayed scenario failed byte-for-byte verification against the stored
/// image — the determinism contract is broken (or the snapshot came from a
/// different build). The message carries the per-section divergence.
class SnapshotMismatch : public std::runtime_error {
 public:
  explicit SnapshotMismatch(const std::string& what)
      : std::runtime_error(what) {}
};

class Snapshot {
 public:
  /// Capture the session's current state. The session remains live and
  /// unmodified (the probe is read-only).
  static Snapshot capture(TwinSession& session);

  const TwinSpec& spec() const noexcept { return spec_; }
  double time() const noexcept { return t_snapshot_; }
  const StateImage& image() const noexcept { return image_; }
  /// Fingerprint over section digests — cheap state identity.
  std::uint64_t state_digest() const noexcept { return image_.digest(); }

  /// Rebuild a live session at time(): materialize the spec, fast-forward,
  /// and verify every captured section byte-for-byte. Throws
  /// SnapshotMismatch on any divergence.
  std::unique_ptr<TwinSession> restore() const;

  /// Restore under a *modified* spec (the fork engine's NodeKill support
  /// injects an inert zero-rate fault plane into faultless specs so
  /// force_crash has a plane to drive; a zero-rate plane consults no RNG
  /// and leaves every other section byte-identical). Sections present in
  /// the stored image are verified as usual; sections the override adds
  /// (FLT for a newly attached plane) have no stored counterpart and are
  /// skipped.
  std::unique_ptr<TwinSession> restore_with_spec(
      const TwinSpec& spec_override) const;

  // -- Wire form -------------------------------------------------------------
  std::vector<std::uint8_t> encode() const;
  static Snapshot decode(std::span<const std::uint8_t> bytes);

 private:
  Snapshot() = default;

  TwinSpec spec_;
  double t_snapshot_ = 0.0;
  StateImage image_;
};

}  // namespace fluxpower::twin
