#include "twin/spec.hpp"

#include <memory>
#include <string>

namespace fluxpower::twin {

namespace {

// Enums travel as u32 of the underlying value; decode re-checks range so a
// snapshot from a newer build (unknown enum member) fails loudly instead of
// materializing a subtly different scenario.
template <typename E>
void put_enum(ByteWriter& w, E v) {
  w.u32(static_cast<std::uint32_t>(v));
}

template <typename E>
E get_enum(ByteReader& r, std::uint32_t max_value, const char* what) {
  const std::uint32_t v = r.u32();
  if (v > max_value) {
    throw CodecError(std::string("TwinSpec: ") + what + " value " +
                     std::to_string(v) + " out of range");
  }
  return static_cast<E>(v);
}

void encode_monitor(ByteWriter& w, const monitor::PowerMonitorConfig& m) {
  w.f64(m.sample_period_s);
  w.u64(m.buffer_capacity);
  w.f64(m.sample_cost_s);
  w.boolean(m.archive_jobs);
  w.boolean(m.stream_samples);
  w.boolean(m.tree_aggregation);
  w.boolean(m.delta_aggregation);
}

monitor::PowerMonitorConfig decode_monitor(ByteReader& r) {
  monitor::PowerMonitorConfig m;
  m.sample_period_s = r.f64();
  m.buffer_capacity = static_cast<std::size_t>(r.u64());
  m.sample_cost_s = r.f64();
  m.archive_jobs = r.boolean();
  m.stream_samples = r.boolean();
  m.tree_aggregation = r.boolean();
  m.delta_aggregation = r.boolean();
  return m;
}

void encode_faults(ByteWriter& w, const faultsim::FaultPlaneConfig& f) {
  w.u64(f.seed);
  w.f64(f.msg_drop_rate);
  w.f64(f.msg_dup_rate);
  w.f64(f.msg_delay_rate);
  w.f64(f.msg_delay_max_s);
  w.f64(f.node_mtbf_s);
  w.f64(f.node_reboot_s);
  w.boolean(f.protect_root);
  w.f64(f.sensor_dropout_rate);
  w.f64(f.sensor_stuck_rate);
  w.f64(f.sensor_stuck_duration_s);
  w.f64(f.cap_write_failure_rate);
}

faultsim::FaultPlaneConfig decode_faults(ByteReader& r) {
  faultsim::FaultPlaneConfig f;
  f.seed = r.u64();
  f.msg_drop_rate = r.f64();
  f.msg_dup_rate = r.f64();
  f.msg_delay_rate = r.f64();
  f.msg_delay_max_s = r.f64();
  f.node_mtbf_s = r.f64();
  f.node_reboot_s = r.f64();
  f.protect_root = r.boolean();
  f.sensor_dropout_rate = r.f64();
  f.sensor_stuck_rate = r.f64();
  f.sensor_stuck_duration_s = r.f64();
  f.cap_write_failure_rate = r.f64();
  return f;
}

void encode_manager(ByteWriter& w, const manager::PowerManagerConfig& m) {
  w.f64(m.cluster_power_bound_w);
  w.f64(m.node_peak_w);
  w.f64(m.static_node_cap_w);
  put_enum(w, m.node_policy);
  w.f64(m.control_period_s);
  w.f64(m.sample_cost_s);
  w.boolean(m.idle_low_power);
  w.f64(m.history_period_s);
  w.u64(m.history_capacity);
  w.boolean(m.emergency_response);
  w.f64(m.emergency_check_period_s);
  w.f64(m.emergency_threshold);
  w.u32(static_cast<std::uint32_t>(m.emergency_consecutive));
  w.f64(m.emergency_margin);
  w.f64(m.cap_retry_initial_s);
  w.f64(m.cap_retry_max_s);
  w.u32(static_cast<std::uint32_t>(m.quarantine_threshold));
  w.f64(m.push_timeout_s);
  w.f64(m.quarantine_probe_s);
  w.f64(m.limit_refresh_s);
  w.boolean(m.batch_limit_pushes);

  const manager::FppConfig& fpp = m.fpp;
  w.f64(fpp.converge_th_s);
  w.f64(fpp.change_th_s);
  w.f64(fpp.p_reduce_w);
  for (double level : fpp.powercap_levels_w) w.f64(level);
  w.f64(fpp.powercap_time_s);
  w.f64(fpp.fft_update_s);
  w.f64(fpp.sample_period_s);
  w.f64(fpp.max_gpu_cap_w);
  w.f64(fpp.min_gpu_cap_w);
  w.f64(fpp.max_socket_cap_w);
  w.f64(fpp.min_socket_cap_w);
  put_enum(w, fpp.period_method);
  w.boolean(fpp.exploratory_first_reduce);
  w.boolean(fpp.stagger_probes);

  w.f64(m.progress.control_period_s);
  w.f64(m.progress.step_w);
  w.f64(m.progress.tolerance);

  // v3: PI-bound controller knobs.
  w.f64(m.pi.control_period_s);
  w.f64(m.pi.degradation_bound);
  w.f64(m.pi.kp);
  w.f64(m.pi.ki);
}

manager::PowerManagerConfig decode_manager(ByteReader& r,
                                           std::uint32_t version) {
  manager::PowerManagerConfig m;
  m.cluster_power_bound_w = r.f64();
  m.node_peak_w = r.f64();
  m.static_node_cap_w = r.f64();
  m.node_policy = get_enum<manager::NodePolicy>(
      r, static_cast<std::uint32_t>(manager::NodePolicy::PiBound),
      "NodePolicy");
  m.control_period_s = r.f64();
  m.sample_cost_s = r.f64();
  m.idle_low_power = r.boolean();
  m.history_period_s = r.f64();
  m.history_capacity = static_cast<std::size_t>(r.u64());
  m.emergency_response = r.boolean();
  m.emergency_check_period_s = r.f64();
  m.emergency_threshold = r.f64();
  m.emergency_consecutive = static_cast<int>(r.u32());
  m.emergency_margin = r.f64();
  m.cap_retry_initial_s = r.f64();
  m.cap_retry_max_s = r.f64();
  m.quarantine_threshold = static_cast<int>(r.u32());
  m.push_timeout_s = r.f64();
  m.quarantine_probe_s = r.f64();
  m.limit_refresh_s = r.f64();
  m.batch_limit_pushes = r.boolean();

  manager::FppConfig& fpp = m.fpp;
  fpp.converge_th_s = r.f64();
  fpp.change_th_s = r.f64();
  fpp.p_reduce_w = r.f64();
  for (double& level : fpp.powercap_levels_w) level = r.f64();
  fpp.powercap_time_s = r.f64();
  fpp.fft_update_s = r.f64();
  fpp.sample_period_s = r.f64();
  fpp.max_gpu_cap_w = r.f64();
  fpp.min_gpu_cap_w = r.f64();
  fpp.max_socket_cap_w = r.f64();
  fpp.min_socket_cap_w = r.f64();
  fpp.period_method = get_enum<dsp::PeriodMethod>(
      r, static_cast<std::uint32_t>(dsp::PeriodMethod::WelchPeriodogram),
      "PeriodMethod");
  fpp.exploratory_first_reduce = r.boolean();
  fpp.stagger_probes = r.boolean();

  m.progress.control_period_s = r.f64();
  m.progress.step_w = r.f64();
  m.progress.tolerance = r.f64();
  if (version >= 3) {
    m.pi.control_period_s = r.f64();
    m.pi.degradation_bound = r.f64();
    m.pi.kp = r.f64();
    m.pi.ki = r.f64();
  }
  return m;
}

}  // namespace

void TwinSpec::encode(ByteWriter& w) const {
  w.u32(kSpecVersion);

  const experiments::ScenarioConfig& s = scenario;
  put_enum(w, s.platform);
  w.u32(static_cast<std::uint32_t>(s.nodes));
  w.u32(static_cast<std::uint32_t>(s.tbon_fanout));
  w.boolean(s.load_monitor);
  w.boolean(s.monitor.has_value());
  if (s.monitor) encode_monitor(w, *s.monitor);
  w.boolean(s.load_manager);
  encode_manager(w, s.manager);
  w.boolean(s.report_progress);
  w.boolean(s.faults.has_value());
  if (s.faults) encode_faults(w, *s.faults);
  w.f64(s.sensor_noise);
  w.boolean(s.runtime_variability);
  w.u64(s.seed);
  w.f64(s.app_step_s);
  w.f64(s.record_period_s);
  w.u32(static_cast<std::uint32_t>(s.shards));
  w.u32(static_cast<std::uint32_t>(s.workers));
  w.str(s.sched_policy);  // v3: policy-plane scheduler name ("" = FCFS)

  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const experiments::JobRequest& j : jobs) {
    put_enum(w, j.kind);
    w.u32(static_cast<std::uint32_t>(j.nnodes));
    w.f64(j.work_scale);
    w.f64(j.submit_time_s);
    w.f64(j.eco_tolerance);  // v3
  }
  w.f64(max_time_s);
}

TwinSpec TwinSpec::decode(ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version < 1 || version > kSpecVersion) {
    throw CodecError("TwinSpec: unsupported version " + std::to_string(version) +
                     " (this build reads " + std::to_string(kSpecVersion) + ")");
  }

  TwinSpec spec;
  experiments::ScenarioConfig& s = spec.scenario;
  s.platform = get_enum<hwsim::Platform>(
      r, static_cast<std::uint32_t>(hwsim::Platform::GenericArmGrace),
      "Platform");
  s.nodes = static_cast<int>(r.u32());
  s.tbon_fanout = static_cast<int>(r.u32());
  s.load_monitor = r.boolean();
  if (r.boolean()) s.monitor = decode_monitor(r);
  s.load_manager = r.boolean();
  s.manager = decode_manager(r, version);
  s.report_progress = r.boolean();
  if (r.boolean()) s.faults = decode_faults(r);
  s.sensor_noise = r.f64();
  s.runtime_variability = r.boolean();
  s.seed = r.u64();
  s.app_step_s = r.f64();
  s.record_period_s = r.f64();
  if (version >= 2) {
    s.shards = static_cast<int>(r.u32());
    s.workers = static_cast<int>(r.u32());
  }
  if (version >= 3) s.sched_policy = r.str();

  const std::uint32_t njobs = r.u32();
  spec.jobs.reserve(njobs);
  for (std::uint32_t i = 0; i < njobs; ++i) {
    experiments::JobRequest j;
    j.kind = get_enum<apps::AppKind>(
        r, static_cast<std::uint32_t>(apps::AppKind::Kripke), "AppKind");
    j.nnodes = static_cast<int>(r.u32());
    j.work_scale = r.f64();
    j.submit_time_s = r.f64();
    if (version >= 3) j.eco_tolerance = r.f64();
    spec.jobs.push_back(j);
  }
  spec.max_time_s = r.f64();
  return spec;
}

std::uint64_t TwinSpec::digest() const {
  ByteWriter w;
  encode(w);
  return Digest64::of(w.data());
}

std::unique_ptr<experiments::Scenario> TwinSpec::materialize() const {
  auto scenario_ptr = std::make_unique<experiments::Scenario>(scenario);
  for (const experiments::JobRequest& j : jobs) scenario_ptr->submit(j);
  return scenario_ptr;
}

}  // namespace fluxpower::twin
