// spec.hpp — serializable scenario definition (the twin's "genome").
//
// A TwinSpec captures everything needed to rebuild a Scenario from nothing:
// the full ScenarioConfig (platform, fleet size, module configs, fault
// weather, seeds) plus the ordered job submissions and the run horizon.
// Because the whole stack is deterministic, spec + event count is a complete
// description of any reachable state — which is what makes replay-based
// snapshot restore (see snapshot.hpp) exact rather than approximate.
//
// The encoding is versioned independently of the snapshot container so a
// spec-only change (new config field) doesn't invalidate state-section
// decoding, and vice versa. Enums encode as u32 of their underlying value;
// adding enum values is backward compatible, reordering is not (guarded by
// codec_test's pinned-bytes cases).
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/scenario.hpp"
#include "twin/codec.hpp"

namespace fluxpower::twin {

/// Current TwinSpec wire version. Bump on any field addition/removal and
/// teach decode() both shapes (or reject the old one loudly).
/// v2 adds the sharded execution profile knobs (shards, workers) after
/// record_period_s; v1 specs decode with shards=0 (monolithic engine).
/// v3 adds the policy plane: PiPolicyConfig after progress in the manager
/// block, the scheduler policy name after workers, and per-job
/// eco_tolerance; older specs decode with the defaults (empty name = FCFS,
/// tolerance 0 = not enrolled).
inline constexpr std::uint32_t kSpecVersion = 3;

struct TwinSpec {
  experiments::ScenarioConfig scenario;
  std::vector<experiments::JobRequest> jobs;
  double max_time_s = 86400.0;

  void encode(ByteWriter& w) const;
  static TwinSpec decode(ByteReader& r);

  /// Digest over the encoded form — two specs with equal digests build
  /// byte-identical scenarios.
  std::uint64_t digest() const;

  /// Build a fresh, unstarted Scenario with all jobs submitted. Each call
  /// yields an independent simulation that will replay the same event
  /// sequence as every sibling.
  std::unique_ptr<experiments::Scenario> materialize() const;
};

}  // namespace fluxpower::twin
