#include "util/csv.hpp"

#include <stdexcept>

namespace fluxpower::util {

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row_impl(const std::vector<std::string>& cells) {
  bool first = true;
  for (const std::string& cell : cells) {
    if (!first) (*out_) << ',';
    first = false;
    (*out_) << escape(cell);
  }
  (*out_) << '\n';
  ++rows_;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF terminators
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) throw std::invalid_argument("csv: unterminated quote");
  cells.push_back(std::move(cur));
  return cells;
}

}  // namespace fluxpower::util
