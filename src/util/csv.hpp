// csv.hpp — CSV emission for monitor-client output and bench tables.
//
// The flux-power-monitor client presents job telemetry "in the form of a CSV
// file, along with a column specifying whether the module had a complete data
// set for the job or a partial one" (§III-A). This writer implements RFC-4180
// quoting and is also used by benches to dump figure series.
#pragma once

#include <initializer_list>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fluxpower::util {

class CsvWriter {
 public:
  /// Writes to an external stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Self-buffering variant; retrieve content with str().
  CsvWriter() : owned_(std::make_unique<std::ostringstream>()), out_(owned_.get()) {}

  void header(std::initializer_list<std::string_view> names) {
    write_row_impl(std::vector<std::string>(names.begin(), names.end()));
  }

  void row(const std::vector<std::string>& cells) { write_row_impl(cells); }

  /// Convenience variadic row: accepts strings and arithmetic values.
  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> out;
    out.reserve(sizeof...(cells));
    (out.push_back(to_cell(cells)), ...);
    write_row_impl(out);
  }

  std::size_t rows_written() const noexcept { return rows_; }

  /// Content of the internal buffer (only valid for the buffering ctor).
  std::string str() const {
    return owned_ ? owned_->str() : std::string{};
  }

  static std::string escape(std::string_view cell);

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      return std::string(std::string_view(v));
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os.precision(10);
      os << v;
      return os.str();
    } else {
      return std::to_string(v);
    }
  }

  void write_row_impl(const std::vector<std::string>& cells);

  std::unique_ptr<std::ostringstream> owned_;
  std::ostream* out_;
  std::size_t rows_ = 0;
};

/// Parse one CSV line into cells (RFC-4180, no embedded newlines). Used by
/// tests to round-trip monitor output.
std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace fluxpower::util
