#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace fluxpower::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    const auto bin = static_cast<std::size_t>((value - lo_) / bin_width_);
    ++counts_[std::min(bin, counts_.size() - 1)];
  }
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

std::uint64_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

double Histogram::fraction_at_or_above(double value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = overflow_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bin_lo(b) >= value) {
      above += counts_[b];
    } else if (bin_hi(b) > value) {
      // Partial bin: attribute proportionally (uniform-in-bin assumption).
      const double frac = (bin_hi(b) - value) / bin_width_;
      above += static_cast<std::uint64_t>(frac * static_cast<double>(counts_[b]));
    }
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

std::string Histogram::render(int width) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const int bar = static_cast<int>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * width);
    std::snprintf(line, sizeof line, "%9.1f-%9.1f | %-6llu ", bin_lo(b),
                  bin_hi(b), static_cast<unsigned long long>(counts_[b]));
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out.push_back('\n');
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(line, sizeof line, "(underflow %llu, overflow %llu)\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace fluxpower::util
