// histogram.hpp — fixed-bin histograms for power distributions.
//
// Power telemetry is usually summarized by mean/max, but capping questions
// ("how often is this node above 1200 W?") are distribution questions.
// A Histogram bins samples over a fixed range, tracks out-of-range counts
// explicitly, and renders a terminal bar chart for bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fluxpower::util {

class Histogram {
 public:
  /// Bins of equal width covering [lo, hi); values below lo / at-or-above
  /// hi are counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Fraction of all samples (including out-of-range) at or above `value`.
  double fraction_at_or_above(double value) const;

  /// Terminal rendering: one line per bin, bar scaled to `width` chars.
  std::string render(int width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fluxpower::util
