#include "util/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace fluxpower::util {

// ---------------------------------------------------------------------------
// JsonObject
// ---------------------------------------------------------------------------

Json& JsonObject::operator[](std::string_view key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(std::string(key), Json{});
  return items_.back().second;
}

const Json& JsonObject::at(std::string_view key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return v;
  }
  throw JsonError("json: missing key '" + std::string(key) + "'");
}

Json& JsonObject::at(std::string_view key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  throw JsonError("json: missing key '" + std::string(key) + "'");
}

bool JsonObject::contains(std::string_view key) const noexcept {
  for (const auto& [k, v] : items_) {
    if (k == key) return true;
  }
  return false;
}

void JsonObject::erase(std::string_view key) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->first == key) {
      items_.erase(it);
      return;
    }
  }
}

bool JsonObject::operator==(const JsonObject& other) const {
  if (items_.size() != other.items_.size()) return false;
  // Order-insensitive comparison: two telemetry objects with the same keys
  // and values are equal regardless of emission order.
  for (const auto& [k, v] : items_) {
    if (!other.contains(k) || !(other.at(k) == v)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Json accessors
// ---------------------------------------------------------------------------

std::int64_t Json::as_int() const {
  if (const auto* p = std::get_if<std::int64_t>(&value_)) return *p;
  if (const auto* p = std::get_if<double>(&value_)) {
    return static_cast<std::int64_t>(*p);
  }
  throw JsonError("json: value is not a number");
}

double Json::as_double() const {
  if (const auto* p = std::get_if<double>(&value_)) return *p;
  if (const auto* p = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*p);
  }
  throw JsonError("json: value is not a number");
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

void Json::push_back(Json v) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw JsonError("json: size() on non-container");
}

double Json::number_or(std::string_view key, double fallback) const {
  if (!is_object() || !as_object().contains(key)) return fallback;
  const Json& v = as_object().at(key);
  return v.is_number() ? v.as_double() : fallback;
}

std::int64_t Json::int_or(std::string_view key, std::int64_t fallback) const {
  if (!is_object() || !as_object().contains(key)) return fallback;
  const Json& v = as_object().at(key);
  return v.is_number() ? v.as_int() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  if (!is_object() || !as_object().contains(key)) return fallback;
  const Json& v = as_object().at(key);
  return v.is_string() ? v.as_string() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  if (!is_object() || !as_object().contains(key)) return fallback;
  const Json& v = as_object().at(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    // JSON has no NaN/Inf; emit null so downstream parsers stay strict.
    out += "null";
    return;
  }
  std::array<char, 32> buf{};
  // %.17g round-trips doubles exactly; trim to shortest by retrying widths.
  for (int prec = 15; prec <= 17; ++prec) {
    int n = std::snprintf(buf.data(), buf.size(), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf.data(), "%lf", &back);
    if (back == v) {
      out.append(buf.data(), static_cast<std::size_t>(n));
      return;
    }
  }
  int n = std::snprintf(buf.data(), buf.size(), "%.17g", v);
  out.append(buf.data(), static_cast<std::size_t>(n));
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += (std::get<bool>(value_) ? "true" : "false"); break;
    case Type::Int: out += std::to_string(std::get<std::int64_t>(value_)); break;
    case Type::Double: append_double(out, std::get<double>(value_)); break;
    case Type::String: append_escaped(out, std::get<std::string>(value_)); break;
    case Type::Array: {
      const auto& arr = std::get<JsonArray>(value_);
      out.push_back('[');
      bool first = true;
      for (const Json& v : arr) {
        if (!first) out.push_back(',');
        first = false;
        append_newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!arr.empty()) append_newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      const auto& obj = std::get<JsonObject>(value_);
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj) {
        if (!first) out.push_back(',');
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj.empty()) append_newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser — recursive descent over a string_view cursor.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are not produced by any component in this codebase).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (!is_double) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc() && p == token.data() + token.size()) return Json(v);
      // Integer overflow: fall through to double.
    }
    double d = 0.0;
    std::string owned(token);  // strtod needs NUL termination
    char* end = nullptr;
    d = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) fail("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace fluxpower::util
