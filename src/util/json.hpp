// json.hpp — minimal, dependency-free JSON value type, parser and serializer.
//
// Variorum's telemetry contract is a JSON object per sample
// (variorum_get_node_power_json); the Flux message protocol encodes request
// and response payloads as JSON objects. Both substrates therefore share this
// value type. The implementation favours clarity and determinism over raw
// throughput: object keys preserve insertion order so serialized samples are
// byte-stable across runs (required for reproducible experiment output).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace fluxpower::util {

class Json;

/// Error thrown on malformed JSON input or invalid type access.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// Insertion-ordered string->Json map. JSON objects in telemetry samples must
/// round-trip with stable key order so CSV/JSON exports are reproducible.
class JsonObject {
 public:
  using value_type = std::pair<std::string, Json>;
  using storage = std::vector<value_type>;
  using iterator = storage::iterator;
  using const_iterator = storage::const_iterator;

  JsonObject() = default;

  Json& operator[](std::string_view key);
  const Json& at(std::string_view key) const;
  Json& at(std::string_view key);
  bool contains(std::string_view key) const noexcept;
  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  void erase(std::string_view key);

  iterator begin() noexcept { return items_.begin(); }
  iterator end() noexcept { return items_.end(); }
  const_iterator begin() const noexcept { return items_.begin(); }
  const_iterator end() const noexcept { return items_.end(); }

  bool operator==(const JsonObject& other) const;

 private:
  storage items_;
};

using JsonArray = std::vector<Json>;

/// A JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so timestamps and counters
/// serialize without precision loss.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  /// Construct an empty object / array explicitly.
  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(JsonArray{}); }

  Type type() const noexcept {
    return static_cast<Type>(value_.index());
  }
  bool is_null() const noexcept { return type() == Type::Null; }
  bool is_bool() const noexcept { return type() == Type::Bool; }
  bool is_int() const noexcept { return type() == Type::Int; }
  bool is_double() const noexcept { return type() == Type::Double; }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return type() == Type::String; }
  bool is_array() const noexcept { return type() == Type::Array; }
  bool is_object() const noexcept { return type() == Type::Object; }

  bool as_bool() const { return get<bool>("bool"); }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return get<std::string>("string"); }
  const JsonArray& as_array() const { return get<JsonArray>("array"); }
  JsonArray& as_array() { return get<JsonArray>("array"); }
  const JsonObject& as_object() const { return get<JsonObject>("object"); }
  JsonObject& as_object() { return get<JsonObject>("object"); }

  /// Object access; creates the object/key on mutation like std::map.
  Json& operator[](std::string_view key);
  const Json& at(std::string_view key) const { return as_object().at(key); }
  bool contains(std::string_view key) const {
    return is_object() && as_object().contains(key);
  }

  /// Array access.
  Json& operator[](std::size_t i) { return as_array().at(i); }
  const Json& operator[](std::size_t i) const { return as_array().at(i); }
  void push_back(Json v);
  std::size_t size() const;

  /// Typed lookup with default, for tolerant decoding of RPC payloads.
  double number_or(std::string_view key, double fallback) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  /// Serialize. `indent` < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; throws JsonError on any syntax error or
  /// trailing garbage.
  static Json parse(std::string_view text);

  /// Structural equality. Numbers compare by value across the int/double
  /// divide ("2" == "2.0"), matching how telemetry consumers treat them.
  bool operator==(const Json& other) const {
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return value_ == other.value_;
  }

 private:
  template <typename T>
  const T& get(const char* name) const {
    if (const T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("json: value is not a ") + name);
  }
  template <typename T>
  T& get(const char* name) {
    if (T* p = std::get_if<T>(&value_)) return *p;
    throw JsonError(std::string("json: value is not a ") + name);
  }
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

}  // namespace fluxpower::util
