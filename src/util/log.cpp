#include "util/log.hpp"

namespace fluxpower::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (sink_) {
    sink_(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", log_level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warning: return "warning";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "unknown";
}

}  // namespace fluxpower::util
