// log.hpp — leveled logging for brokers and modules.
//
// Flux brokers log through a ring of severity-tagged messages; we keep the
// same levels (RFC 5424 subset) and allow benches to silence everything so
// table output stays clean. Logging is process-global and not thread-safe by
// design: the simulator is single-threaded (see sim/simulation.hpp).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

namespace fluxpower::util {

enum class LogLevel : int {
  Debug = 0,
  Info = 1,
  Warning = 2,
  Error = 3,
  Off = 4,
};

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view msg);

  void debug(std::string_view msg) { log(LogLevel::Debug, msg); }
  void info(std::string_view msg) { log(LogLevel::Info, msg); }
  void warning(std::string_view msg) { log(LogLevel::Warning, msg); }
  void error(std::string_view msg) { log(LogLevel::Error, msg); }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warning;
  Sink sink_;
};

/// Convenience free functions.
inline void log_debug(std::string_view msg) { Logger::instance().debug(msg); }
inline void log_info(std::string_view msg) { Logger::instance().info(msg); }
inline void log_warning(std::string_view msg) { Logger::instance().warning(msg); }
inline void log_error(std::string_view msg) { Logger::instance().error(msg); }

const char* log_level_name(LogLevel level) noexcept;

}  // namespace fluxpower::util
