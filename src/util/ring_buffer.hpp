// ring_buffer.hpp — fixed-capacity circular buffer.
//
// The flux-power-monitor node-agent stores power samples in a circular
// buffer of configurable size (the paper's default stores 100,000 Variorum
// JSON samples, ~43.4 MB). When the buffer wraps, the oldest samples are
// overwritten; the monitor client then reports a *partial* dataset for jobs
// whose window extends past the flush point.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace fluxpower::util {

template <typename T>
class RingBuffer {
 public:
  /// Capacity must be > 0; a monitor with no sample storage is a config error.
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("RingBuffer capacity must be positive");
    }
    items_.reserve(capacity);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  bool full() const noexcept { return items_.size() == capacity_; }

  /// Total number of push() calls over the buffer's lifetime. The number of
  /// evicted (lost) items is total_pushed() - size().
  std::uint64_t total_pushed() const noexcept { return total_pushed_; }
  std::uint64_t evicted() const noexcept { return total_pushed_ - items_.size(); }

  // const&/&& pair instead of by-value: a 200+ byte PowerSample on the 2 s
  // sampling hot path is copied once, straight into its slot.
  void push(const T& value) {
    if (items_.size() < capacity_) {
      items_.push_back(value);
    } else {
      items_[head_] = value;
      head_ = (head_ + 1) % capacity_;
    }
    ++total_pushed_;
  }
  void push(T&& value) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(value));
    } else {
      items_[head_] = std::move(value);
      head_ = (head_ + 1) % capacity_;
    }
    ++total_pushed_;
  }

  /// Element i in insertion order: 0 = oldest retained, size()-1 = newest.
  /// head_ is 0 until the buffer wraps, so (head_ + i) % capacity_ is
  /// correct in both the filling and the wrapped regimes.
  const T& operator[](std::size_t i) const {
    if (i >= items_.size()) throw std::out_of_range("RingBuffer index");
    return items_[(head_ + i) % capacity_];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size() - 1]; }

  void clear() noexcept {
    items_.clear();
    head_ = 0;
    // total_pushed_ deliberately retained: eviction accounting survives a
    // clear so completeness reporting covers the whole monitor lifetime.
  }

  /// Credit pushes that happened before this buffer existed. When a
  /// reconfiguration replaces the buffer (capacity changes are not
  /// in-place), the replacement must inherit the predecessor's lifetime
  /// total — its discarded samples count as evicted here — or completeness
  /// reporting silently resets and a flushed window reads as complete.
  void inherit_lifetime(std::uint64_t pushed_before) noexcept {
    total_pushed_ += pushed_before;
  }

  /// Visit items oldest-to-newest.
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < items_.size(); ++i) {
      fn((*this)[i]);
    }
  }

  /// Copy out all retained items oldest-to-newest.
  std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(items_.size());
    for_each([&out](const T& v) { out.push_back(v); });
    return out;
  }

 private:
  std::size_t capacity_;
  std::vector<T> items_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::uint64_t total_pushed_ = 0;
};

}  // namespace fluxpower::util
