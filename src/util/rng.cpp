#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace fluxpower::util {

double Rng::normal(double mean, double stddev) {
  // Box–Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

}  // namespace fluxpower::util
