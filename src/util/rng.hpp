// rng.hpp — deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (OS jitter, run-to-run
// variability, NVML capping failures, queue workload mixes) draws from a
// seeded generator so each table and figure is byte-reproducible. We use
// xoshiro256** seeded via splitmix64 — fast, high quality, and identical
// across platforms (unlike std::default_random_engine).
#pragma once

#include <cstdint>
#include <limits>

namespace fluxpower::util {

/// splitmix64: used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDB0A7ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal via Box–Muller (one value per call; simple and exact
  /// enough for jitter modelling).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with given mean (inter-arrival modelling).
  double exponential(double mean);

  /// The full 256-bit generator state, exposed for the digital twin's
  /// state codec: a substream's position *is* sim state (two runs agreeing
  /// on every stream position will draw identical futures).
  struct State {
    std::uint64_t s[4] = {};
    bool operator==(const State&) const = default;
  };
  State state() const noexcept {
    return State{{state_[0], state_[1], state_[2], state_[3]}};
  }
  void set_state(const State& st) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace fluxpower::util
