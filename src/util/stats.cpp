#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fluxpower::util {

double sum(std::span<const double> xs) {
  // Kahan summation: energy integrals accumulate ~1e5 samples and plain
  // summation drifts enough to perturb 0.1%-level comparisons.
  double s = 0.0, c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) {
    throw std::invalid_argument("variance: need at least 2 samples");
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

BoxStats box_stats(std::span<const double> xs) {
  BoxStats b;
  b.min = min_of(xs);
  b.q1 = quantile(xs, 0.25);
  b.median = median(xs);
  b.q3 = quantile(xs, 0.75);
  b.max = max_of(xs);
  return b;
}

double percent_change(double a, double b) {
  if (a == 0.0) throw std::invalid_argument("percent_change: zero baseline");
  return (b - a) / a * 100.0;
}

double coefficient_of_variation_pct(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m * 100.0;
}

double trapezoid(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("trapezoid: size mismatch");
  }
  if (xs.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    acc += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  return acc;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    max_ = x;
    min_ = x;
  } else {
    max_ = std::max(max_, x);
    min_ = std::min(min_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace fluxpower::util
