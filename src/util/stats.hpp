// stats.hpp — descriptive statistics for experiment reporting.
//
// The paper reports averages (power, energy, overhead %), maxima (peak
// cluster power in Table III/IV) and box plots (run-to-run variability in
// Fig 4). These helpers centralize those computations so every bench and
// example reports them identically.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fluxpower::util {

/// Empty-input contract: every reduction that has no defined value on its
/// degenerate input throws std::invalid_argument instead of silently
/// returning 0.0 — a mean of 0.0 is a plausible power reading, so the old
/// behaviour could masquerade as data. mean/min_of/max_of/quantile/median
/// throw on empty; variance/stddev (sample, n-1) throw for fewer than 2
/// samples. sum() of an empty span is genuinely 0 and stays 0.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // sample variance (n-1)
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]; matches numpy's default.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Five-number summary used for Fig 4 style box plots.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};
BoxStats box_stats(std::span<const double> xs);

/// Relative change (b - a) / a, in percent. Used for overhead and
/// energy-improvement reporting.
double percent_change(double a, double b);

/// Coefficient of variation in percent (stddev / mean * 100); the paper uses
/// >20% run-to-run variation as the threshold for flagging noisy configs.
/// Inherits the contract above: throws for fewer than 2 samples.
double coefficient_of_variation_pct(std::span<const double> xs);

/// Trapezoidal integration of a sampled signal: y values at the given
/// x coordinates (seconds). Returns the integral (e.g. W·s = J).
double trapezoid(std::span<const double> xs, std::span<const double> ys);

/// Online mean/max accumulator for streaming power samples.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double max() const noexcept { return max_; }
  double min() const noexcept { return min_; }
  /// Sample variance via Welford's algorithm.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
};

}  // namespace fluxpower::util
