#include "util/table.hpp"

#include <algorithm>

namespace fluxpower::util {

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto print_sep = [&] {
    out << '+';
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace fluxpower::util
