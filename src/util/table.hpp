// table.hpp — fixed-width ASCII table rendering for bench output.
//
// Every bench binary prints the paper's table/figure as an aligned text
// table with a paper-reported column next to the measured one, so the
// reproduction can be eyeballed directly from `for b in build/bench/*; do $b; done`.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace fluxpower::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Format a double with fixed precision for table cells.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fluxpower::util
