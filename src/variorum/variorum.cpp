#include "variorum/variorum.hpp"

#include <string>

namespace fluxpower::variorum {

using hwsim::CapResult;
using hwsim::CapStatus;
using hwsim::PowerSample;
using util::Json;

PowerSample get_node_power_sample(hwsim::Node& node) { return node.sample(); }

Json render_node_power_json(const PowerSample& s) {
  Json j = Json::object();
  j["hostname"] = s.hostname.view();
  j["timestamp"] = s.timestamp_s;
  if (s.node_w) j["power_node_watts"] = *s.node_w;
  if (s.node_estimate_w) j["power_node_estimate_watts"] = *s.node_estimate_w;
  for (std::size_t i = 0; i < s.cpu_w.size(); ++i) {
    j["power_cpu_watts_socket_" + std::to_string(i)] = s.cpu_w[i];
  }
  if (s.mem_w) j["power_mem_watts"] = *s.mem_w;
  const char* gpu_key = s.gpu_is_oam ? "power_gpu_watts_oam_" : "power_gpu_watts_gpu_";
  for (std::size_t i = 0; i < s.gpu_w.size(); ++i) {
    j[gpu_key + std::to_string(i)] = s.gpu_w[i];
  }
  return j;
}

Json get_node_power_json(hwsim::Node& node) {
  return render_node_power_json(node.sample());
}

PowerSample parse_node_power_json(const Json& json) {
  PowerSample s;
  s.hostname = json.string_or("hostname", "");
  s.timestamp_s = json.number_or("timestamp", 0.0);
  if (json.contains("power_node_watts")) {
    s.node_w = json.at("power_node_watts").as_double();
  }
  if (json.contains("power_node_estimate_watts")) {
    s.node_estimate_w = json.at("power_node_estimate_watts").as_double();
  }
  if (json.contains("power_mem_watts")) {
    s.mem_w = json.at("power_mem_watts").as_double();
  }
  for (std::size_t i = 0;; ++i) {
    const std::string key = "power_cpu_watts_socket_" + std::to_string(i);
    if (!json.contains(key)) break;
    s.cpu_w.push_back(json.at(key).as_double());
  }
  for (std::size_t i = 0;; ++i) {
    const std::string key = "power_gpu_watts_gpu_" + std::to_string(i);
    if (!json.contains(key)) break;
    s.gpu_w.push_back(json.at(key).as_double());
  }
  if (s.gpu_w.empty()) {
    for (std::size_t i = 0;; ++i) {
      const std::string key = "power_gpu_watts_oam_" + std::to_string(i);
      if (!json.contains(key)) break;
      s.gpu_w.push_back(json.at(key).as_double());
      s.gpu_is_oam = true;
    }
  }
  return s;
}

CapResult cap_best_effort_node_power_limit(hwsim::Node& node, double watts) {
  // Prefer the platform's direct node dial (IBM AC922).
  CapResult direct = node.set_node_power_cap(watts);
  if (direct.status != CapStatus::Unsupported) return direct;

  // Best-effort fallback: split across sockets uniformly after reserving
  // the unmanageable domains (memory + base) at their idle draw.
  const hwsim::LoadDemand floor = node.idle_demand();
  double reserve = floor.mem_w;
  for (double g : floor.gpu_w) reserve += g;
  const int sockets = node.socket_count();
  if (sockets <= 0) return {CapStatus::Unsupported, std::nullopt};
  const double per_socket = (watts - reserve) / sockets;

  CapResult aggregate{CapStatus::Ok, 0.0};
  double applied_total = reserve;
  for (int i = 0; i < sockets; ++i) {
    const CapResult r = node.set_socket_power_cap(i, per_socket);
    if (!r.ok()) {
      // Propagate the strongest failure; a single denied socket means the
      // node budget cannot be guaranteed.
      return {r.status, std::nullopt};
    }
    if (r.status == CapStatus::Clamped) aggregate.status = CapStatus::Clamped;
    applied_total += r.applied_watts.value_or(per_socket);
  }
  aggregate.applied_watts = applied_total;
  return aggregate;
}

std::vector<CapResult> cap_each_gpu_power_limit(hwsim::Node& node,
                                                double watts) {
  std::vector<CapResult> results;
  results.reserve(static_cast<std::size_t>(node.gpu_count()));
  for (int i = 0; i < node.gpu_count(); ++i) {
    results.push_back(node.set_gpu_power_cap(i, watts));
  }
  return results;
}

CapResult cap_gpu_power_limit(hwsim::Node& node, int gpu, double watts) {
  return node.set_gpu_power_cap(gpu, watts);
}

}  // namespace fluxpower::variorum
