// variorum.hpp — vendor-neutral power telemetry and capping API.
//
// Mirrors the three Variorum entry points the paper's Flux integration uses
// (§II-C):
//   * variorum_get_node_power_json  — vendor-neutral telemetry as JSON;
//   * variorum_cap_best_effort_node_power_limit — node-level capping that
//     uses the platform's node dial when one exists (IBM AC922) and
//     otherwise distributes the budget uniformly across sockets;
//   * variorum_cap_each_gpu_power_limit — the same cap on every GPU.
//
// The API dispatches on the hwsim::Node capability surface rather than on a
// vendor enum: a platform that reports Unsupported for the node dial gets
// the best-effort socket distribution, exactly like the real library's
// per-architecture backends.
#pragma once

#include <vector>

#include "hwsim/node.hpp"
#include "util/json.hpp"

namespace fluxpower::variorum {

/// Telemetry sample in the neutral typed form — the canonical read used by
/// the monitor's sampling loop and the manager's control loops. Costs one
/// sensor sweep and zero heap allocations.
hwsim::PowerSample get_node_power_sample(hwsim::Node& node);

/// Render a typed sample as the Variorum JSON object. Keys follow the real
/// library's convention *in this exact insertion order*: `hostname`,
/// `timestamp` (seconds, simulated), `power_node_watts` (absent on
/// platforms without a node sensor, in which case
/// `power_node_estimate_watts` carries the conservative CPU+GPU sum),
/// `power_cpu_watts_socket_<i>`, `power_mem_watts` and either
/// `power_gpu_watts_gpu_<i>` or `power_gpu_watts_oam_<i>` depending on the
/// platform's accelerator sensor granularity. The order is a compatibility
/// invariant: edge-rendered JSON must stay byte-stable (see DESIGN.md,
/// "Telemetry data plane").
util::Json render_node_power_json(const hwsim::PowerSample& sample);

/// Telemetry sample as a JSON object: get_node_power_sample rendered by
/// render_node_power_json. Kept for edge consumers (dashboards, wire
/// streams); internal paths should carry the typed sample instead.
util::Json get_node_power_json(hwsim::Node& node);

/// Decode a telemetry JSON object back into the neutral PowerSample form.
/// Used by the monitor's aggregation path and by tests for round-tripping.
hwsim::PowerSample parse_node_power_json(const util::Json& json);

/// Best-effort node-level power cap. On platforms with a hardware node dial
/// the cap is applied directly. Otherwise the budget minus an idle
/// memory/base reserve is split uniformly across CPU sockets (the real
/// library's documented fallback). Returns the dominant status.
hwsim::CapResult cap_best_effort_node_power_limit(hwsim::Node& node,
                                                  double watts);

/// Apply the same power cap to every GPU on the node. Returns per-GPU
/// results (a node with capping fused off yields PermissionDenied for each).
std::vector<hwsim::CapResult> cap_each_gpu_power_limit(hwsim::Node& node,
                                                       double watts);

/// Cap a single GPU (used by FPP's per-GPU, non-uniform capping).
hwsim::CapResult cap_gpu_power_limit(hwsim::Node& node, int gpu, double watts);

}  // namespace fluxpower::variorum
