// Tests for apps/app_model: profiles, perf curves, phase speeds.
#include "apps/app_model.hpp"

#include <gtest/gtest.h>

namespace fluxpower::apps {
namespace {

using hwsim::Platform;

TEST(AppKind, Names) {
  EXPECT_STREQ(app_kind_name(AppKind::Lammps), "lammps");
  EXPECT_STREQ(app_kind_name(AppKind::Quicksilver), "quicksilver");
  EXPECT_EQ(app_kind_from_name("gemm"), AppKind::Gemm);
  EXPECT_EQ(app_kind_from_name("laghos"), AppKind::Laghos);
  EXPECT_EQ(app_kind_from_name("nqueens"), AppKind::NQueens);
  EXPECT_THROW(app_kind_from_name("hpl"), std::invalid_argument);
}

TEST(PerfCurve, EmptyCurveIsIdentity) {
  EXPECT_DOUBLE_EQ(eval_perf_curve({}, 0.3), 0.3);
  EXPECT_DOUBLE_EQ(eval_perf_curve({}, 1.5), 1.0);
  EXPECT_DOUBLE_EQ(eval_perf_curve({}, -0.5), 0.0);
}

TEST(PerfCurve, InterpolatesAnchors) {
  PerfCurve c{{0.0, 0.0}, {0.5, 0.6}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(eval_perf_curve(c, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(eval_perf_curve(c, 0.5), 0.6);
  EXPECT_DOUBLE_EQ(eval_perf_curve(c, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(eval_perf_curve(c, 0.25), 0.3);
  EXPECT_DOUBLE_EQ(eval_perf_curve(c, 0.75), 0.8);
}

TEST(PerfCurve, ClampsOutOfRange) {
  PerfCurve c{{0.2, 0.1}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(eval_perf_curve(c, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(eval_perf_curve(c, 2.0), 1.0);
}

TEST(Profiles, InvalidArgsRejected) {
  EXPECT_THROW(make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 0),
               std::invalid_argument);
  EXPECT_THROW(make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 4, 0.0),
               std::invalid_argument);
}

TEST(Profiles, PhaseWorkFractionsSumToOne) {
  for (AppKind kind : {AppKind::Lammps, AppKind::Gemm, AppKind::Quicksilver,
                       AppKind::Laghos, AppKind::NQueens}) {
    for (Platform p : {Platform::LassenIbmAc922, Platform::TiogaCrayEx235a,
                       Platform::GenericIntelXeon}) {
      const AppProfile prof = make_profile(kind, p, 4);
      double total = 0.0;
      for (const AppPhase& ph : prof.phases) total += ph.work_frac;
      EXPECT_NEAR(total, 1.0, 1e-9)
          << app_kind_name(kind) << " on " << hwsim::platform_name(p);
      EXPECT_GT(prof.iteration_s, 0.0);
      EXPECT_GT(prof.runtime_s, 0.0);
    }
  }
}

TEST(Profiles, WeightsAreSane) {
  for (AppKind kind : {AppKind::Lammps, AppKind::Gemm, AppKind::Quicksilver,
                       AppKind::Laghos, AppKind::NQueens}) {
    const AppProfile prof = make_profile(kind, Platform::LassenIbmAc922, 4);
    for (const AppPhase& ph : prof.phases) {
      EXPECT_GE(ph.gpu_weight, 0.0);
      EXPECT_GE(ph.cpu_weight, 0.0);
      EXPECT_LE(ph.gpu_weight + ph.cpu_weight, 1.0 + 1e-9);
    }
  }
}

TEST(Profiles, LammpsStrongScalingMatchesPaperRuntimes) {
  // Table II anchors.
  EXPECT_NEAR(make_profile(AppKind::Lammps, Platform::LassenIbmAc922, 4).runtime_s,
              77.17, 1.5);
  EXPECT_NEAR(make_profile(AppKind::Lammps, Platform::LassenIbmAc922, 8).runtime_s,
              46.33, 1.5);
  EXPECT_NEAR(make_profile(AppKind::Lammps, Platform::TiogaCrayEx235a, 4).runtime_s,
              51.0, 1.5);
  EXPECT_NEAR(make_profile(AppKind::Lammps, Platform::TiogaCrayEx235a, 8).runtime_s,
              29.67, 1.5);
}

TEST(Profiles, LammpsRuntimeDecreasesWithNodes) {
  double prev = 1e9;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double t =
        make_profile(AppKind::Lammps, Platform::LassenIbmAc922, n).runtime_s;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Profiles, LammpsPowerDecreasesWithStrongScaling) {
  // Fig 2 / Table II: per-node (and per-GPU) power falls as the strongly
  // scaled problem shrinks.
  const auto p4 = make_profile(AppKind::Lammps, Platform::LassenIbmAc922, 4);
  const auto p32 = make_profile(AppKind::Lammps, Platform::LassenIbmAc922, 32);
  EXPECT_GT(p4.phases[0].gpu_w, p32.phases[0].gpu_w);
}

TEST(Profiles, WeakScaledRuntimesRoughlyFlat) {
  for (AppKind kind : {AppKind::Gemm, AppKind::Laghos}) {
    const double t1 =
        make_profile(kind, Platform::LassenIbmAc922, 1).runtime_s;
    const double t32 =
        make_profile(kind, Platform::LassenIbmAc922, 32).runtime_s;
    EXPECT_NEAR(t32 / t1, 1.0, 0.15) << app_kind_name(kind);
  }
}

TEST(Profiles, QuicksilverHipAnomalyOnTioga) {
  // Table II: expected ~26 s, observed ~102-106 s.
  const double t4 =
      make_profile(AppKind::Quicksilver, Platform::TiogaCrayEx235a, 4).runtime_s;
  const double t8 =
      make_profile(AppKind::Quicksilver, Platform::TiogaCrayEx235a, 8).runtime_s;
  EXPECT_NEAR(t4, 102.0, 6.0);
  EXPECT_NEAR(t8, 106.0, 6.0);
}

TEST(Profiles, QuicksilverHasStrongPeriodicPhases) {
  const auto p = make_profile(AppKind::Quicksilver, Platform::LassenIbmAc922, 2,
                              27.5);
  ASSERT_EQ(p.phases.size(), 2u);
  // Square-wave amplitude: GPU demand swings by > 3x between phases.
  EXPECT_GT(p.phases[0].gpu_w / p.phases[1].gpu_w, 3.0);
  // Period sits in FPP's detectable band at 2 s sampling.
  EXPECT_GT(p.iteration_s, 5.0);
  EXPECT_LT(p.iteration_s, 30.0);
}

TEST(Profiles, NQueensIsCpuOnly) {
  const auto p = make_profile(AppKind::NQueens, Platform::LassenIbmAc922, 2);
  for (const AppPhase& ph : p.phases) {
    EXPECT_DOUBLE_EQ(ph.gpu_weight, 0.0);
    EXPECT_LE(ph.gpu_w, 35.0);  // GPUs stay at idle
  }
}

TEST(Profiles, WorkScaleMultipliesRuntime) {
  const double base =
      make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 6, 1.0).runtime_s;
  const double doubled =
      make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 6, 2.0).runtime_s;
  EXPECT_NEAR(doubled, 2.0 * base, 1e-9);
  // Table IV: 2x GEMM runs ~548 s unconstrained.
  EXPECT_NEAR(doubled, 548.0, 10.0);
}

TEST(Profiles, IntelVariantHasNoGpuDemand) {
  const auto p = make_profile(AppKind::Gemm, Platform::GenericIntelXeon, 2);
  for (const AppPhase& ph : p.phases) {
    EXPECT_DOUBLE_EQ(ph.gpu_w, 0.0);
    EXPECT_DOUBLE_EQ(ph.gpu_weight, 0.0);
    EXPECT_GT(ph.cpu_weight, 0.0);
  }
}

TEST(RuntimeSigma, MatchesPaperVariabilityPattern) {
  // Lassen Laghos/QS at 1-2 nodes: >20% swings (we model sigma=10%);
  // larger scales and Tioga are quiet.
  EXPECT_GT(runtime_sigma(AppKind::Laghos, Platform::LassenIbmAc922, 1), 0.05);
  EXPECT_GT(runtime_sigma(AppKind::Quicksilver, Platform::LassenIbmAc922, 2), 0.05);
  EXPECT_LT(runtime_sigma(AppKind::Laghos, Platform::LassenIbmAc922, 8), 0.03);
  EXPECT_LT(runtime_sigma(AppKind::Lammps, Platform::LassenIbmAc922, 1), 0.03);
  EXPECT_LT(runtime_sigma(AppKind::Laghos, Platform::TiogaCrayEx235a, 1), 0.01);
}

TEST(PhaseSpeed, FullPowerIsFullSpeed) {
  const auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 6);
  const AppPhase& compute = prof.phases[1];
  hwsim::LoadDemand demand;
  demand.gpu_w = std::vector<double>(4, compute.gpu_w);
  demand.cpu_w = std::vector<double>(2, compute.cpu_w);
  hwsim::Grants grants;
  grants.gpu_w = demand.gpu_w;
  grants.cpu_w = demand.cpu_w;
  EXPECT_NEAR(phase_speed(prof, compute, demand, grants), 1.0, 1e-9);
}

TEST(PhaseSpeed, GpuCapSlowsComputePhase) {
  const auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 6);
  const AppPhase& compute = prof.phases[1];
  hwsim::LoadDemand demand;
  demand.gpu_w = std::vector<double>(4, compute.gpu_w);
  demand.cpu_w = std::vector<double>(2, compute.cpu_w);
  hwsim::Grants grants;
  grants.gpu_w = std::vector<double>(4, 100.0);  // IBM-default 1200 W cap
  grants.cpu_w = demand.cpu_w;
  const double speed = phase_speed(prof, compute, demand, grants);
  // Table IV implies ~0.48x on the dominant phase (548 s -> 1145 s).
  EXPECT_GT(speed, 0.30);
  EXPECT_LT(speed, 0.60);
}

TEST(PhaseSpeed, CpuOnlyPhaseIgnoresGpuCap) {
  const auto prof = make_profile(AppKind::NQueens, Platform::LassenIbmAc922, 2);
  const AppPhase& solve = prof.phases[0];
  hwsim::LoadDemand demand;
  demand.gpu_w = std::vector<double>(4, solve.gpu_w);
  demand.cpu_w = std::vector<double>(2, solve.cpu_w);
  hwsim::Grants grants;
  grants.gpu_w = std::vector<double>(4, 0.0);  // fully starved GPUs
  grants.cpu_w = demand.cpu_w;
  EXPECT_NEAR(phase_speed(prof, solve, demand, grants), 1.0, 0.06);
}

TEST(PhaseSpeed, MonotoneInGrantedPower) {
  const auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 6);
  const AppPhase& compute = prof.phases[1];
  hwsim::LoadDemand demand;
  demand.gpu_w = std::vector<double>(4, compute.gpu_w);
  demand.cpu_w = std::vector<double>(2, compute.cpu_w);
  double prev = 0.0;
  for (double cap = 50.0; cap <= 300.0; cap += 25.0) {
    hwsim::Grants grants;
    grants.gpu_w = std::vector<double>(4, std::min(cap, compute.gpu_w));
    grants.cpu_w = demand.cpu_w;
    const double s = phase_speed(prof, compute, demand, grants);
    EXPECT_GE(s, prev - 1e-12);
    prev = s;
  }
}

}  // namespace
}  // namespace fluxpower::apps
