// Tests for apps/app_runtime: workload execution against node models.
#include "apps/app_runtime.hpp"

#include <gtest/gtest.h>

#include "hwsim/cluster.hpp"
#include "variorum/variorum.hpp"

namespace fluxpower::apps {
namespace {

using hwsim::Platform;

class AppRuntimeTest : public ::testing::Test {
 protected:
  std::vector<hwsim::Node*> make_nodes(int n) {
    cluster_ = hwsim::make_cluster(sim_, Platform::LassenIbmAc922, n);
    std::vector<hwsim::Node*> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(&cluster_.node(i));
    return nodes;
  }

  double run_to_completion(AppRuntime& rt) {
    double finished_at = -1.0;
    rt.start([&] { finished_at = sim_.now(); });
    while (finished_at < 0.0 && sim_.step()) {
    }
    return finished_at;
  }

  sim::Simulation sim_;
  hwsim::Cluster cluster_;
};

TEST_F(AppRuntimeTest, ConstructionValidation) {
  auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 1);
  EXPECT_THROW(AppRuntime(sim_, {}, prof), std::invalid_argument);
  auto nodes = make_nodes(1);
  AppProfile empty = prof;
  empty.phases.clear();
  EXPECT_THROW(AppRuntime(sim_, nodes, empty), std::invalid_argument);
  AppProfile badfrac = prof;
  badfrac.phases[0].work_frac = 0.9;
  EXPECT_THROW(AppRuntime(sim_, nodes, badfrac), std::invalid_argument);
  AppRuntimeOptions opts;
  opts.step_s = 0.0;
  EXPECT_THROW(AppRuntime(sim_, nodes, prof, opts), std::invalid_argument);
}

TEST_F(AppRuntimeTest, UnconstrainedRunMatchesNominalRuntime) {
  auto nodes = make_nodes(2);
  auto prof = make_profile(AppKind::Laghos, Platform::LassenIbmAc922, 2);
  AppRuntime rt(sim_, nodes, prof);
  const double t = run_to_completion(rt);
  EXPECT_NEAR(t, prof.runtime_s, 1.0);
  EXPECT_DOUBLE_EQ(rt.work_done(), prof.total_work());
  EXPECT_FALSE(rt.running());
}

TEST_F(AppRuntimeTest, NodesReturnToIdleAfterCompletion) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Laghos, Platform::LassenIbmAc922, 1);
  AppRuntime rt(sim_, nodes, prof);
  run_to_completion(rt);
  EXPECT_NEAR(nodes[0]->node_draw_w(), 400.0, 1.0);
}

TEST_F(AppRuntimeTest, DrawRisesWhileRunning) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 1);
  AppRuntime rt(sim_, nodes, prof);
  rt.start([] {});
  sim_.run_until(30.0);
  EXPECT_GT(nodes[0]->node_draw_w(), 800.0);
  rt.cancel();
}

TEST_F(AppRuntimeTest, GpuCapSlowsGemm) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 1);
  // IBM default at 1200 W: each GPU capped to 100 W.
  variorum::cap_best_effort_node_power_limit(*nodes[0], 1200.0);
  AppRuntime rt(sim_, nodes, prof);
  const double t = run_to_completion(rt);
  // Paper: 548 -> 1145 s (2.09x) for the 2x problem; same factor applies.
  EXPECT_GT(t, 1.7 * prof.runtime_s);
  EXPECT_LT(t, 2.6 * prof.runtime_s);
}

TEST_F(AppRuntimeTest, GpuCapBarelyAffectsQuicksilver) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Quicksilver, Platform::LassenIbmAc922, 1,
                           27.5);
  variorum::cap_each_gpu_power_limit(*nodes[0], 100.0);
  AppRuntime rt(sim_, nodes, prof);
  const double t = run_to_completion(rt);
  // Table IV: 348 -> 359 s (~3%).
  EXPECT_LT(t, 1.12 * prof.runtime_s);
}

TEST_F(AppRuntimeTest, JobRunsAtSlowestNodeSpeed) {
  auto nodes = make_nodes(2);
  auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 2);
  // Cap only the second node: bulk-synchronous MPI drags both.
  variorum::cap_each_gpu_power_limit(*nodes[1], 100.0);
  AppRuntime rt(sim_, nodes, prof);
  const double t = run_to_completion(rt);
  EXPECT_GT(t, 1.6 * prof.runtime_s);
}

TEST_F(AppRuntimeTest, SpeedFactorScalesRuntime) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Laghos, Platform::LassenIbmAc922, 1);
  AppRuntimeOptions opts;
  opts.speed_factor = 0.5;
  AppRuntime rt(sim_, nodes, prof, opts);
  const double t = run_to_completion(rt);
  EXPECT_NEAR(t, 2.0 * prof.runtime_s, 2.0);
}

TEST_F(AppRuntimeTest, StolenTimeSlowsProgress) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Laghos, Platform::LassenIbmAc922, 1);
  // Steal 10% of every step via a periodic thief (telemetry-like).
  sim::PeriodicTask thief(sim_, 0.5, [&] {
    nodes[0]->add_stolen_time(0.05);
    return true;
  });
  AppRuntime rt(sim_, nodes, prof);
  const double t = run_to_completion(rt);
  EXPECT_NEAR(t, prof.runtime_s / 0.9, 2.5);
}

TEST_F(AppRuntimeTest, CancelStopsAndIdles) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 1);
  bool completed = false;
  AppRuntime rt(sim_, nodes, prof);
  rt.start([&] { completed = true; });
  sim_.run_until(20.0);
  rt.cancel();
  sim_.run_until(2000.0);
  EXPECT_FALSE(completed);
  EXPECT_FALSE(rt.running());
  EXPECT_NEAR(nodes[0]->node_draw_w(), 400.0, 1.0);
}

TEST_F(AppRuntimeTest, DoubleStartThrows) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Laghos, Platform::LassenIbmAc922, 1);
  AppRuntime rt(sim_, nodes, prof);
  rt.start([] {});
  EXPECT_THROW(rt.start([] {}), std::logic_error);
  rt.cancel();
}

TEST_F(AppRuntimeTest, PhaseAtWalksIterationStructure) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Gemm, Platform::LassenIbmAc922, 1);
  AppRuntime rt(sim_, nodes, prof);
  // GEMM: staging is the first 15% of each iteration.
  const double iter = prof.iteration_s;
  EXPECT_EQ(rt.phase_at(0.0).name, "staging");
  EXPECT_EQ(rt.phase_at(0.10 * iter).name, "staging");
  EXPECT_EQ(rt.phase_at(0.50 * iter).name, "dgemm");
  EXPECT_EQ(rt.phase_at(iter + 0.05 * iter).name, "staging");  // wraps
}

TEST_F(AppRuntimeTest, QuicksilverPowerSignalIsPeriodic) {
  auto nodes = make_nodes(1);
  auto prof = make_profile(AppKind::Quicksilver, Platform::LassenIbmAc922, 1,
                           27.5);
  AppRuntime rt(sim_, nodes, prof);
  rt.start([] {});
  std::vector<double> series;
  sim::PeriodicTask sampler(sim_, 2.0, [&] {
    series.push_back(nodes[0]->node_draw_w());
    return series.size() < 60;
  });
  sim_.run_until(125.0);
  rt.cancel();
  const double lo = *std::min_element(series.begin(), series.end());
  const double hi = *std::max_element(series.begin(), series.end());
  EXPECT_GT(hi - lo, 300.0);  // visible square wave (Fig 1b)
}

}  // namespace
}  // namespace fluxpower::apps
